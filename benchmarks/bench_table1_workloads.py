"""Table 1: the embedded benchmark corpus and its application domains."""

from repro.evaluation import format_table
from repro.sim import run_program
from repro.workloads import all_workloads

from _shared import emit, run_once


def test_table1_workload_corpus(benchmark):
    def build_and_run_all():
        rows = []
        for spec in all_workloads():
            program = spec.build()
            trace = run_program(program, max_instructions=5_000_000)
            summary = trace.summary()
            rows.append([
                spec.name, spec.domain, spec.suite,
                summary["instructions"],
                summary["memory_ops"] / summary["instructions"],
                summary["branches"] / summary["instructions"],
            ])
        return rows

    rows = run_once(benchmark, build_and_run_all)
    emit("table1_workloads", format_table(
        ["program", "domain", "suite", "dyn instrs", "mem frac", "br frac"],
        rows, float_format="{:.3f}"))
    assert len(rows) == 23
