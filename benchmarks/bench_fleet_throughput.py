"""Fleet engine vs the scattered ``--jobs`` grid path, equal workers.

The existing grid engine (``repro.evaluation.experiments`` /
``repro sweep --jobs``) distributes a matrix by scattering independent
cells over a process pool: every task re-acquires its trace through the
artifact store and runs a one-config sweep, so digests, outcome banks,
and compiled kernels are re-loaded (at best) per *cell*.  The fleet
path (``repro.fleet``) shards the same cells by trace with reuse-
affinity ordering and routes consecutive cells through one
:class:`~repro.uarch.incremental.IncrementalSession` per trace — the
acceptance bar is a ≥2x geomean wall-clock win at equal worker count,
from affinity + incremental routing, not from more processes.

Three matrix variants stress the three artifact classes the scheduler
keys on (pipeline knobs / cache hierarchies / predictors); each variant
is timed end-to-end through both paths on its own cold store, and every
cell's metrics must be *exactly* equal between the two paths before its
timing counts.

Runs two ways, like the other benches:

* under pytest-benchmark (full corpus, persisted to
  ``results/fleet_throughput.{txt,json}`` for EXPERIMENTS.md);
* as a script: ``python benchmarks/bench_fleet_throughput.py --smoke``
  times a four-kernel slice with the same assertions — the CI gate,
  compared against the committed baseline by ``check_regression.py``.
"""

import contextlib
import json
import os
import shutil
import tempfile
import time

import numpy as np

from repro.exec import parallel_map, reset_default_store
from repro.fleet import Recipe, collect_matrix, run_fleet
from repro.fleet.worker import cell_metrics
from repro.obs.journal import emit_event
from repro.uarch import native, shared_power_model
from repro.uarch.sweep import simulate_pipeline_sweep
from repro.workloads import workload_names

from _shared import emit, maybe_journal, run_once

PIPELINE_CAP = 60_000
WORKERS = 2

SMOKE_NAMES = ["crc32", "sha", "qsort", "fft"]

#: One multi-knob matrix per artifact class the affinity scheduler keys
#: on.  Deliberately config-heavy: the fleet's per-cell advantage is
#: incremental routing, so the win scales with configs-per-trace (the
#: paper's own grids are 9-40 configs per workload).
VARIANTS = [
    ("pipeline-knobs", {"width": [1, 2, 4], "rob_size": [8, 16, 32],
                        "lsq_size": [8, 16]}),
    ("cache-knobs", {"l1d": [[4096, 2, 32], [8192, 2, 32],
                             [16384, 2, 32]],
                     "l1_latency": [1, 2],
                     "memory_latency": [40, 80]}),
    ("predictor-knobs", {"predictor": ["gap", "nottaken", "taken",
                                       "bimodal", "gshare"],
                         "width": [1, 2]}),
]


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def _recipe(label, names, axes):
    return Recipe(name=f"fleet-bench-{label}", kernels=list(names),
                  pipeline_cap=PIPELINE_CAP, axes=axes)


@contextlib.contextmanager
def _cold_store(root):
    """Point the default store at a fresh directory for one path."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = root
    reset_default_store()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous
        reset_default_store()


def _baseline_cell(task):
    """One scattered-grid task: acquire trace, time one config.

    This is the existing engine's granularity — the pool worker that
    lands this cell shares nothing in-process with the worker that
    landed the neighboring config of the same kernel.
    """
    from repro.exec import trace_artifacts
    from repro.workloads import get_workload

    recipe_dict, index = task
    recipe = Recipe(**recipe_dict)
    cell = recipe.expand()[index]
    source = get_workload(cell.kernel).source()
    trace = trace_artifacts(cell.kernel, source,
                            max_instructions=recipe.functional_cap).trace
    [result] = simulate_pipeline_sweep(trace, [cell.config],
                                       max_instructions=recipe.pipeline_cap)
    power = shared_power_model(cell.config).evaluate(result).total
    return cell.cell_id, cell_metrics(result, power)


def _recipe_kwargs(recipe):
    return {"name": recipe.name, "kernels": list(recipe.kernels),
            "pipeline_cap": recipe.pipeline_cap,
            "axes": [[field, list(values)]
                     for field, values in recipe.axes.items()]}


def _prewarm_traces(recipe):
    """Populate the current store with the matrix's traces (untimed).

    Both paths start from traces-already-profiled — the common fleet
    posture (profiling is a separate, cached step) — so the timed
    regions compare grid *scheduling and reuse*, with digests, banks,
    and compiled kernels still cold.
    """
    from repro.exec import trace_artifacts
    from repro.workloads import get_workload

    for kernel in recipe.kernels:
        trace_artifacts(kernel, get_workload(kernel).source(),
                        max_instructions=recipe.functional_cap)


def _variant_row(label, names, axes, staging):
    """[variant, cells, baseline s, fleet s, fleet x]."""
    recipe = _recipe(label, names, axes)
    cells = recipe.expand()
    tasks = [(_recipe_kwargs(recipe), cell.index) for cell in cells]

    with _cold_store(tempfile.mkdtemp(prefix="scatter-", dir=staging)):
        _prewarm_traces(recipe)
        start = time.perf_counter()
        scattered = dict(parallel_map(_baseline_cell, tasks, jobs=WORKERS))
        baseline_s = time.perf_counter() - start

    with _cold_store(tempfile.mkdtemp(prefix="fleet-", dir=staging)):
        _prewarm_traces(recipe)
        run_dir = tempfile.mkdtemp(prefix="fleet-run-", dir=staging)
        start = time.perf_counter()
        summary = run_fleet(run_dir, recipe, workers=WORKERS)
        fleet_s = time.perf_counter() - start
        assert summary["complete"], summary
        matrix = collect_matrix(run_dir)

    # Equal worker count, exactly equal numbers: the speedup is only
    # meaningful if both paths computed the same matrix.
    fleet_metrics = {row["cell_id"]: row["metrics"]
                     for row in matrix["cells"]}
    assert set(fleet_metrics) == set(scattered)
    for cell_id, metrics in scattered.items():
        assert fleet_metrics[cell_id] == metrics, cell_id
    return [label, len(cells), baseline_s, fleet_s,
            baseline_s / fleet_s]


def _measure(names):
    native.available()  # install the .so outside the timed regions
    rows = []
    staging = tempfile.mkdtemp(prefix="bench-fleet-")
    try:
        for index, (label, axes) in enumerate(VARIANTS):
            rows.append(_variant_row(label, names, axes, staging))
            emit_event("progress", done=index + 1, total=len(VARIANTS),
                       unit="variants", label=label)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return {
        "kernels": list(names),
        "workers": WORKERS,
        "pipeline_cap": PIPELINE_CAP,
        "native": native.available(),
        "rows": rows,
        "geomean_fleet": _geomean([row[4] for row in rows]),
    }


def _render(data):
    from repro.evaluation import format_table
    text = (f"fleet vs scattered --jobs grid "
            f"({len(data['kernels'])} kernels, {data['workers']} workers "
            f"each, {data['pipeline_cap']} instructions/cell):\n")
    text += format_table(
        ["variant", "cells", "scatter s", "fleet s", "fleet x"],
        data["rows"], float_format="{:.2f}")
    text += (f"\n  geomean fleet speedup: {data['geomean_fleet']:.2f}x"
             f"\n  native timing loop: "
             f"{'on' if data['native'] else 'off'}")
    return text


def _check_floors(data):
    """The tentpole's acceptance bar: >=2x geomean at equal workers."""
    assert data["geomean_fleet"] >= 2.0, data["geomean_fleet"]


def test_fleet_throughput(benchmark):
    data = run_once(benchmark, lambda: _measure(workload_names()))
    _check_floors(data)
    emit("fleet_throughput", _render(data), data=data)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="four-kernel equivalence/speedup gate; "
                             "prints but persists nothing")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the measured data as JSON "
                             "(for benchmarks/check_regression.py)")
    args = parser.parse_args(argv)
    names = SMOKE_NAMES if args.smoke else workload_names()
    with maybe_journal("fleet_throughput"):
        start = time.perf_counter()
        data = _measure(names)
        measure_seconds = time.perf_counter() - start
    print(_render(data))
    _check_floors(data)
    if not args.smoke:
        emit("fleet_throughput", _render(data), data=data,
             wall_seconds=measure_seconds)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"name": "fleet_throughput", "data": data}, handle,
                      indent=2)
            handle.write("\n")
    print("\nfleet-throughput bench OK "
          f"({'smoke, ' if args.smoke else ''}{len(names)} kernels)")


if __name__ == "__main__":
    main()
