"""Ablation A (the paper's motivating claim, Sections 1-3): synthesis
from microarchitecture-DEPENDENT attributes (target cache miss rate,
Bell & John style) yields large errors when the cache configuration
changes; the microarchitecture-independent clone does not."""

from repro.evaluation import baseline_cache_comparison, format_table

from _shared import emit, run_once

# A representative slice of the corpus (the full run is ~4x longer and
# adds no new information).
SUBSET = ["qsort", "sha", "susan", "crc32", "dijkstra", "fft",
          "basicmath", "rijndael", "gsm", "stringsearch"]


def test_ablation_uarch_dependent_baseline(benchmark):
    result = run_once(benchmark,
                      lambda: baseline_cache_comparison(SUBSET))
    rows = [[row["name"], row["clone_mpi_error"],
             row["baseline_mpi_error"], row["clone_correlation"],
             row["baseline_correlation"]]
            for row in result["rows"]]
    rows.append(["AVERAGE", result["avg_clone_mpi_error"],
                 result["avg_baseline_mpi_error"],
                 result["avg_clone_correlation"],
                 result["avg_baseline_correlation"]])
    emit("ablation_uarch_dependent", format_table(
        ["program", "clone MPI err", "baseline MPI err",
         "clone R", "baseline R"],
        rows, float_format="{:.3f}"))
    # The claim: the miss-rate-tuned baseline's error across the sweep is
    # a multiple of the independent clone's.
    assert result["avg_clone_mpi_error"] \
        < 0.6 * result["avg_baseline_mpi_error"]
