"""Simulator-backend throughput: turbo vs the reference interpreter,
plus the optimized pipeline hot loop vs ``run_reference``.

Every timed pair is also an equality assertion — the turbo trace must be
bit-identical to the interpreter's, and the optimized pipeline loop must
reproduce ``run_reference``'s result field for field — so the recorded
speedups are guaranteed to be numerics-preserving.

Runs two ways:

* under pytest-benchmark (the full 23-kernel corpus, persisted to
  ``results/sim_turbo.{txt,json}`` for EXPERIMENTS.md);
* as a script: ``python benchmarks/bench_sim_turbo.py --smoke`` runs a
  four-kernel slice with the same assertions and *no* result files —
  the cheap CI gate against codegen regressions.
"""

import dataclasses
import json
import time

import numpy as np

from repro.obs.journal import emit_event
from repro.obs.timing import TRACER
from repro.sim import FunctionalSimulator
from repro.sim.turbo import turbo_program
from repro.uarch import BASE_CONFIG
from repro.uarch.pipeline import PipelineModel
from repro.workloads import build_workload, workload_names

from _shared import emit, maybe_journal, run_once

#: Functional cap: every corpus kernel completes well inside it.
FUNCTIONAL_CAP = 5_000_000

#: Pipeline-model instruction cap per kernel (long enough for stable
#: MIPS, short enough that 23 reference runs stay in seconds).
PIPELINE_CAP = 60_000

SMOKE_NAMES = ["crc32", "sha", "qsort", "fft"]


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def _timed_run(program, backend):
    simulator = FunctionalSimulator(program, backend=backend)
    start = time.perf_counter()
    trace = simulator.run(max_instructions=FUNCTIONAL_CAP, trace=True)
    return simulator, trace, time.perf_counter() - start


def _functional_rows(names):
    """Per-kernel interpreter vs turbo MIPS, asserting bit-identity.

    Both backends are timed best-of-two on fresh simulator instances.
    Turbo's first run compiles its translation units (the ``cold``
    column — codegen rides on the program object, so every later
    simulation of the same program reuses it); the ``turbo MIPS`` /
    ``speedup`` columns are the warm steady state, which is what
    profiling, compare/sweep grids, and the artifact-cache pipeline
    actually pay.
    """
    rows = []
    codegen_seconds = 0.0
    for index, name in enumerate(names):
        with TRACER.span("bench.functional", kernel=name):
            program = build_workload(name)
            interp_sim, interp_trace, interp_a = _timed_run(program,
                                                            "interp")
            _, _, interp_b = _timed_run(program, "interp")
            interp_s = min(interp_a, interp_b)

            turbo_sim, turbo_trace, cold_s = _timed_run(program, "turbo")
            _, _, warm_a = _timed_run(program, "turbo")
            _, _, warm_b = _timed_run(program, "turbo")
            warm_s = min(warm_a, warm_b)

            assert np.array_equal(interp_trace.pcs, turbo_trace.pcs)
            assert np.array_equal(interp_trace.addrs, turbo_trace.addrs)
            assert np.array_equal(interp_trace.taken, turbo_trace.taken)
            assert interp_sim.regs == turbo_sim.regs
            assert bytes(interp_sim.memory.data) \
                == bytes(turbo_sim.memory.data)

            compiled = turbo_program(turbo_sim)
            codegen_seconds += compiled.codegen_seconds
            instructions = interp_sim.instructions_executed
            rows.append([name, instructions,
                         instructions / interp_s / 1e6,
                         instructions / cold_s / 1e6,
                         instructions / warm_s / 1e6,
                         interp_s / cold_s,
                         interp_s / warm_s])
        emit_event("progress", done=index + 1, total=len(names),
                   unit="kernels", label=name)
    return rows, codegen_seconds


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("wall_seconds")  # host timing, not a simulated number
    return fields


def _pipeline_rows(names):
    """Optimized ``run`` vs ``run_reference`` on each kernel's trace."""
    rows = []
    for index, name in enumerate(names):
        with TRACER.span("bench.pipeline", kernel=name):
            rows.append(_pipeline_row(name))
        emit_event("progress", done=index + 1, total=len(names),
                   unit="pipeline kernels", label=name)
    return rows


def _pipeline_row(name):
    trace = FunctionalSimulator(build_workload(name)).run(
        max_instructions=FUNCTIONAL_CAP, trace=True)
    reference = PipelineModel(BASE_CONFIG).run_reference(
        trace, max_instructions=PIPELINE_CAP)
    optimized = PipelineModel(BASE_CONFIG).run(
        trace, max_instructions=PIPELINE_CAP)
    assert _result_fields(optimized) == _result_fields(reference)
    return [name, optimized.instructions,
            optimized.instructions / reference.wall_seconds / 1e6,
            optimized.instructions / optimized.wall_seconds / 1e6,
            reference.wall_seconds / optimized.wall_seconds]


def _measure(names):
    functional_rows, codegen_seconds = _functional_rows(names)
    pipeline_rows = _pipeline_rows(names)
    return {
        "functional_rows": functional_rows,
        "pipeline_rows": pipeline_rows,
        "functional_geomean": _geomean([row[6] for row in functional_rows]),
        "functional_geomean_cold": _geomean(
            [row[5] for row in functional_rows]),
        "pipeline_geomean": _geomean([row[4] for row in pipeline_rows]),
        "codegen_seconds": codegen_seconds,
    }


def _render(data):
    from repro.evaluation import format_table
    header = ["kernel", "instructions", "interp MIPS", "cold MIPS",
              "turbo MIPS", "cold x", "speedup"]
    text = "functional simulation (trace capture on):\n"
    text += format_table(header, data["functional_rows"],
                         float_format="{:.2f}")
    text += (f"\n  geomean speedup: {data['functional_geomean']:.2f}x warm"
             f" / {data['functional_geomean_cold']:.2f}x cold"
             f"  (codegen warm-up total: "
             f"{data['codegen_seconds'] * 1e3:.1f} ms)\n")
    text += "\npipeline model (run_reference vs run):\n"
    text += format_table(["kernel", "instructions", "reference MIPS",
                          "optimized MIPS", "speedup"],
                         data["pipeline_rows"], float_format="{:.2f}")
    text += f"\n  geomean speedup: {data['pipeline_geomean']:.2f}x"
    return text


def _check_regression_floors(data):
    """Loose floors: the targets are 3x / 1.3x; flag a real regression
    without making the bench flaky on slow or noisy hosts."""
    assert data["functional_geomean"] >= 2.0, data["functional_geomean"]
    assert data["pipeline_geomean"] >= 1.1, data["pipeline_geomean"]


def test_sim_turbo_speedups(benchmark):
    data = run_once(benchmark, lambda: _measure(workload_names()))
    _check_regression_floors(data)
    emit("sim_turbo", _render(data), data=data)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="four-kernel equivalence/codegen gate; "
                             "prints but persists nothing")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the measured data as JSON "
                             "(for benchmarks/check_regression.py)")
    args = parser.parse_args(argv)
    names = SMOKE_NAMES if args.smoke else workload_names()
    with maybe_journal("sim_turbo"):
        data = _measure(names)
    print(_render(data))
    _check_regression_floors(data)
    if not args.smoke:
        emit("sim_turbo", _render(data), data=data)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"name": "sim_turbo", "data": data}, handle,
                      indent=2)
            handle.write("\n")
    print("\nsim-turbo bench OK "
          f"({'smoke, ' if args.smoke else ''}{len(names)} kernels)")


if __name__ == "__main__":
    main()
