"""Shared helpers for the per-figure/table benchmark harness.

Every bench regenerates one table or figure from the paper: it runs the
experiment once inside ``benchmark.pedantic`` (so pytest-benchmark also
reports the experiment's runtime), prints the rows the paper reports,
and persists them under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Instruction cap for pipeline-model runs inside benches: long enough
#: for stable IPC, short enough that the full suite stays in minutes.
PIPELINE_CAP = 100_000


def emit(name, text):
    """Print a result block and persist it for the experiment log."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)
