"""Shared helpers for the per-figure/table benchmark harness.

Every bench regenerates one table or figure from the paper: it runs the
experiment once inside ``benchmark.pedantic`` (so pytest-benchmark also
reports the experiment's runtime), prints the rows the paper reports,
and persists them under ``benchmarks/results/`` for EXPERIMENTS.md —
both as plain text and as a schema-versioned JSON whose ``meta`` block
records full provenance (git rev, python, platform, timestamp), so a
result file is always traceable to the code that produced it.
"""

import json
import os
import time
from contextlib import contextmanager

from repro.exec import default_store
from repro.obs.journal import configure_journal, emit_event
from repro.obs.runinfo import provenance

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Schema version of the emitted ``results/*.json`` files.  Bump when
#: the envelope (not the per-bench ``data``) changes shape.
#: v2: added ``wall_seconds`` and ``artifact_cache`` provenance.
RESULTS_SCHEMA_VERSION = 2

#: Instruction cap for pipeline-model runs inside benches: long enough
#: for stable IPC, short enough that the full suite stays in minutes.
PIPELINE_CAP = 100_000


#: Wall time of the most recent :func:`run_once`, folded into the next
#: :func:`emit` envelope so every result records how long its
#: experiment took without touching per-bench call sites.
_LAST_WALL_SECONDS = None


def emit(name, text, data=None, wall_seconds=None):
    """Print a result block and persist it for the experiment log.

    Writes ``results/<name>.txt`` (the human rows, as before) and
    ``results/<name>.json`` — an envelope of ``schema_version``, a
    ``meta`` provenance block, the experiment's wall time, the artifact
    store's hit/miss provenance (so a result can be told apart from a
    cached rerun), the rendered ``text``, and the bench's optional
    structured ``data`` (rows, labels, ...).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    if wall_seconds is None:
        wall_seconds = _LAST_WALL_SECONDS
    envelope = {
        "schema_version": RESULTS_SCHEMA_VERSION,
        "name": name,
        "meta": provenance(),
        "wall_seconds": wall_seconds,
        "artifact_cache": default_store().stats(),
        "text": text,
        "data": data,
    }
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as handle:
        json.dump(envelope, handle, indent=2, default=str)
        handle.write("\n")


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    global _LAST_WALL_SECONDS
    start = time.perf_counter()
    result = benchmark.pedantic(func, rounds=1, iterations=1,
                                warmup_rounds=0)
    _LAST_WALL_SECONDS = time.perf_counter() - start
    return result


@contextmanager
def maybe_journal(name):
    """Record this bench's run as an event journal when asked to.

    With ``REPRO_BENCH_JOURNAL_DIR`` set (CI sets it on the smoke jobs),
    the bench journals to ``$REPRO_BENCH_JOURNAL_DIR/<name>/`` — the
    same ``journal-*.jsonl`` stream CLI runs record, so BENCH
    trajectories are span-attributable via ``repro trace``.  Unset, the
    bench runs exactly as before (no journal, no overhead).
    """
    base = os.environ.get("REPRO_BENCH_JOURNAL_DIR")
    if not base:
        yield None
        return
    run_dir = os.path.join(base, name)
    configure_journal(run_dir, fresh=True)
    emit_event("run_begin", command=f"bench:{name}", target=name)
    start = time.perf_counter()
    try:
        yield run_dir
    finally:
        emit_event("run_end", exit_code=0,
                   wall_seconds=round(time.perf_counter() - start, 6))
        configure_journal(None)
