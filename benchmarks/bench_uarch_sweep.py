"""Grid-sweep throughput: ``simulate_pipeline_sweep`` vs per-config
``PipelineModel.run`` on the paper's evaluation grid (base config +
Table 3 design changes + the Figure 8 width sweep — nine configs).

Every timed pair is also an equality assertion — each swept config must
reproduce the reference run field for field — so the recorded speedups
are guaranteed to be numerics-preserving.

Three sweep columns per kernel:

* ``cold``  — nothing cached anywhere: digest + banks built, kernels
  compiled, everything persisted to a fresh artifact store.  What the
  first grid study over a new trace pays.
* ``store`` — in-memory state dropped, artifact store warm: digests,
  banks, and compiled kernels all load from disk.  What a re-run (or a
  parallel worker in another process) pays.
* ``warm``  — same-process re-sweep with memoization intact.  What the
  second study in one ``repro exec`` invocation pays.

Runs two ways:

* under pytest-benchmark (the full 23-kernel corpus, persisted to
  ``results/uarch_sweep.{txt,json}`` for EXPERIMENTS.md);
* as a script: ``python benchmarks/bench_uarch_sweep.py --smoke`` runs
  a four-kernel slice with the same assertions and *no* result files —
  the cheap CI gate against sweep-engine regressions.
"""

import dataclasses
import shutil
import tempfile
import time

import numpy as np

from repro.exec.store import ArtifactStore
from repro.sim import FunctionalSimulator
from repro.uarch import BASE_CONFIG, DESIGN_CHANGES
from repro.uarch.pipeline import PipelineModel
from repro.uarch.sweep import simulate_pipeline_sweep
from repro.workloads import build_workload, workload_names

from _shared import emit, run_once

#: Functional cap: every corpus kernel completes well inside it.
FUNCTIONAL_CAP = 5_000_000

#: Timing-model instruction cap per config (matches the table3/fig8
#: study defaults used in EXPERIMENTS.md).
PIPELINE_CAP = 60_000

#: The grid the paper's evaluation actually sweeps.
GRID = ([BASE_CONFIG] + list(DESIGN_CHANGES)
        + [BASE_CONFIG.renamed(f"width-{width}", width=width)
           for width in (2, 4, 8)])

SMOKE_NAMES = ["crc32", "sha", "qsort", "fft"]


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("wall_seconds")  # host timing, not a simulated number
    return fields


def _forget(trace):
    """Drop in-memory sweep state so only the artifact store is warm."""
    for holder, attribute in ((trace, "_sweep_digest"),
                              (trace.program, "_sweep_static"),
                              (trace.program, "_sweep_kernels")):
        if hasattr(holder, attribute):
            delattr(holder, attribute)


def _sweep_rows(names, store):
    """Per-kernel reference vs cold/store-warm/warm sweep timings."""
    rows = []
    for name in names:
        trace = FunctionalSimulator(build_workload(name)).run(
            max_instructions=FUNCTIONAL_CAP, trace=True)

        start = time.perf_counter()
        reference = [PipelineModel(config).run(
            trace, max_instructions=PIPELINE_CAP) for config in GRID]
        reference_s = time.perf_counter() - start

        _forget(trace)
        start = time.perf_counter()
        cold = simulate_pipeline_sweep(trace, GRID,
                                       max_instructions=PIPELINE_CAP,
                                       store=store)
        cold_s = time.perf_counter() - start

        _forget(trace)
        start = time.perf_counter()
        store_warm = simulate_pipeline_sweep(
            trace, GRID, max_instructions=PIPELINE_CAP, store=store)
        store_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = simulate_pipeline_sweep(trace, GRID,
                                       max_instructions=PIPELINE_CAP,
                                       store=store)
        warm_s = time.perf_counter() - start

        for swept in (cold, store_warm, warm):
            assert [_result_fields(result) for result in swept] \
                == [_result_fields(result) for result in reference]

        instructions = sum(result.instructions for result in reference)
        rows.append([name, instructions,
                     instructions / reference_s / 1e6,
                     instructions / cold_s / 1e6,
                     reference_s / cold_s,
                     reference_s / store_s,
                     reference_s / warm_s])
    return rows


def _measure(names):
    staging = tempfile.mkdtemp(prefix="bench-uarch-sweep-")
    try:
        store = ArtifactStore(root=staging, enabled=True)
        rows = _sweep_rows(names, store)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return {
        "configs": [config.name for config in GRID],
        "pipeline_cap": PIPELINE_CAP,
        "rows": rows,
        "geomean_cold": _geomean([row[4] for row in rows]),
        "geomean_store": _geomean([row[5] for row in rows]),
        "geomean_warm": _geomean([row[6] for row in rows]),
    }


def _render(data):
    from repro.evaluation import format_table
    header = ["kernel", "instructions", "run MIPS", "sweep MIPS",
              "cold x", "store x", "warm x"]
    text = (f"grid sweep ({len(data['configs'])} configs x "
            f"{data['pipeline_cap']} instructions, run vs sweep):\n")
    text += format_table(header, data["rows"], float_format="{:.2f}")
    text += (f"\n  geomean speedup: {data['geomean_cold']:.2f}x cold"
             f" / {data['geomean_store']:.2f}x store-warm"
             f" / {data['geomean_warm']:.2f}x warm")
    return text


def _check_regression_floors(data):
    """Loose floors: the cold target is 2x on the full corpus; flag a
    real regression without making the bench flaky on noisy hosts."""
    assert data["geomean_cold"] >= 1.5, data["geomean_cold"]
    assert data["geomean_warm"] >= data["geomean_cold"] * 0.8


def test_uarch_sweep_speedups(benchmark):
    data = run_once(benchmark, lambda: _measure(workload_names()))
    _check_regression_floors(data)
    assert data["geomean_cold"] >= 2.0, data["geomean_cold"]
    emit("uarch_sweep", _render(data), data=data)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="four-kernel equivalence/speedup gate; "
                             "prints but persists nothing")
    args = parser.parse_args(argv)
    names = SMOKE_NAMES if args.smoke else workload_names()
    data = _measure(names)
    print(_render(data))
    _check_regression_floors(data)
    if not args.smoke:
        assert data["geomean_cold"] >= 2.0, data["geomean_cold"]
        emit("uarch_sweep", _render(data), data=data)
    print("\nuarch-sweep bench OK "
          f"({'smoke, ' if args.smoke else ''}{len(names)} kernels)")


if __name__ == "__main__":
    main()
