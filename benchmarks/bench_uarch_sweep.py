"""Grid-sweep throughput: ``simulate_pipeline_sweep`` vs per-config
``PipelineModel.run`` on the paper's evaluation grid (base config +
Table 3 design changes + the Figure 8 width sweep — nine configs).

Every timed pair is also an equality assertion — each swept config must
reproduce the reference run field for field — so the recorded speedups
are guaranteed to be numerics-preserving.

Three sweep columns per kernel:

* ``cold``  — nothing cached anywhere: digest + banks built, kernels
  compiled, everything persisted to a fresh artifact store.  What the
  first grid study over a new trace pays.
* ``store`` — in-memory state dropped, artifact store warm: digests,
  banks, and compiled kernels all load from disk.  What a re-run (or a
  parallel worker in another process) pays.
* ``warm``  — same-process re-sweep with memoization intact.  What the
  second study in one ``repro exec`` invocation pays.

Runs two ways:

* under pytest-benchmark (the full 23-kernel corpus, persisted to
  ``results/uarch_sweep.{txt,json}`` for EXPERIMENTS.md);
* as a script: ``python benchmarks/bench_uarch_sweep.py --smoke`` runs
  a four-kernel slice with the same assertions and *no* result files —
  the cheap CI gate against sweep-engine regressions.
"""

import dataclasses
import json
import shutil
import tempfile
import time

import numpy as np

from repro.exec.store import ArtifactStore
from repro.obs.journal import (configure_journal, emit_event,
                               suspend_journal)
from repro.sim import FunctionalSimulator
from repro.uarch import BASE_CONFIG, DESIGN_CHANGES, native
from repro.uarch.pipeline import PipelineModel
from repro.uarch.sweep import simulate_pipeline_sweep
from repro.workloads import build_workload, workload_names

from _shared import emit, maybe_journal, run_once

#: Functional cap: every corpus kernel completes well inside it.
FUNCTIONAL_CAP = 5_000_000

#: Timing-model instruction cap per config (matches the table3/fig8
#: study defaults used in EXPERIMENTS.md).
PIPELINE_CAP = 60_000

#: The grid the paper's evaluation actually sweeps.
GRID = ([BASE_CONFIG] + list(DESIGN_CHANGES)
        + [BASE_CONFIG.renamed(f"width-{width}", width=width)
           for width in (2, 4, 8)])

SMOKE_NAMES = ["crc32", "sha", "qsort", "fft"]


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("wall_seconds")  # host timing, not a simulated number
    return fields


def _forget(trace):
    """Drop in-memory sweep state so only the artifact store is warm."""
    for holder, attribute in ((trace, "_sweep_digest"),
                              (trace.program, "_sweep_static"),
                              (trace.program, "_sweep_kernels")):
        if hasattr(holder, attribute):
            delattr(holder, attribute)


def _sweep_rows(names, store):
    """Per-kernel reference vs cold/store-warm/warm sweep timings."""
    rows = []
    for index, name in enumerate(names):
        trace = FunctionalSimulator(build_workload(name)).run(
            max_instructions=FUNCTIONAL_CAP, trace=True)

        start = time.perf_counter()
        reference = [PipelineModel(config).run(
            trace, max_instructions=PIPELINE_CAP) for config in GRID]
        reference_s = time.perf_counter() - start

        _forget(trace)
        start = time.perf_counter()
        cold = simulate_pipeline_sweep(trace, GRID,
                                       max_instructions=PIPELINE_CAP,
                                       store=store)
        cold_s = time.perf_counter() - start

        _forget(trace)
        start = time.perf_counter()
        store_warm = simulate_pipeline_sweep(
            trace, GRID, max_instructions=PIPELINE_CAP, store=store)
        store_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = simulate_pipeline_sweep(trace, GRID,
                                       max_instructions=PIPELINE_CAP,
                                       store=store)
        warm_s = time.perf_counter() - start

        for swept in (cold, store_warm, warm):
            assert [_result_fields(result) for result in swept] \
                == [_result_fields(result) for result in reference]

        instructions = sum(result.instructions for result in reference)
        rows.append([name, instructions,
                     instructions / reference_s / 1e6,
                     instructions / cold_s / 1e6,
                     reference_s / cold_s,
                     reference_s / store_s,
                     reference_s / warm_s])
        emit_event("progress", done=index + 1, total=len(names),
                   unit="kernels", label=name)
    return rows


#: Kernels used for the journaling-overhead measurement: a small and a
#: large trace, best-of-two per mode, so the ratio is stable without
#: doubling the whole bench.
OVERHEAD_NAMES = ["crc32", "fft"]


def _overhead_sweep_once(trace, journal_dir):
    """One cold sweep in a throwaway store; journaled iff ``journal_dir``."""
    staging = tempfile.mkdtemp(prefix="bench-uarch-ovh-")
    try:
        store = ArtifactStore(root=staging, enabled=True)
        _forget(trace)
        if journal_dir is not None:
            configure_journal(journal_dir, fresh=True)
        start = time.perf_counter()
        simulate_pipeline_sweep(trace, GRID,
                                max_instructions=PIPELINE_CAP, store=store)
        return time.perf_counter() - start
    finally:
        if journal_dir is not None:
            configure_journal(None)
        shutil.rmtree(staging, ignore_errors=True)


def _journal_overhead(names, reps=5):
    """Cold-sweep wall ratio with journaling on vs off (geomean).

    The acceptance bar for span/journal instrumentation is ≤3% on this
    path; the measured ratio is committed with the results so a
    regression is visible in review, not just on a CI host.  Best-of-N
    per mode, with the "off" leg under :func:`suspend_journal` so the
    baseline is journal-free even when the bench itself is journaled
    (CI sets ``REPRO_BENCH_JOURNAL_DIR``).
    """
    ratios = []
    journal_dir = tempfile.mkdtemp(prefix="bench-journal-overhead-")
    try:
        for name in names:
            trace = FunctionalSimulator(build_workload(name)).run(
                max_instructions=FUNCTIONAL_CAP, trace=True)
            off = on = None
            for _ in range(reps):  # interleaved: host drift hits both
                with suspend_journal():
                    elapsed = _overhead_sweep_once(trace, None)
                off = elapsed if off is None else min(off, elapsed)
                elapsed = _overhead_sweep_once(trace, journal_dir)
                on = elapsed if on is None else min(on, elapsed)
            ratios.append(on / off)
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)
    return _geomean(ratios)


def _measure(names, overhead=True):
    # Compile/load the native timing loop up front: the .so is a
    # per-machine install artifact (content-addressed in the cache
    # dir), not part of any kernel's cold-sweep cost.
    native.available()
    staging = tempfile.mkdtemp(prefix="bench-uarch-sweep-")
    try:
        store = ArtifactStore(root=staging, enabled=True)
        rows = _sweep_rows(names, store)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return {
        "configs": [config.name for config in GRID],
        "pipeline_cap": PIPELINE_CAP,
        "rows": rows,
        "geomean_cold": _geomean([row[4] for row in rows]),
        "geomean_store": _geomean([row[5] for row in rows]),
        "geomean_warm": _geomean([row[6] for row in rows]),
        "journal_overhead_cold":
            _journal_overhead(OVERHEAD_NAMES) if overhead else None,
    }


def _render(data):
    from repro.evaluation import format_table
    header = ["kernel", "instructions", "run MIPS", "sweep MIPS",
              "cold x", "store x", "warm x"]
    text = (f"grid sweep ({len(data['configs'])} configs x "
            f"{data['pipeline_cap']} instructions, run vs sweep):\n")
    text += format_table(header, data["rows"], float_format="{:.2f}")
    text += (f"\n  geomean speedup: {data['geomean_cold']:.2f}x cold"
             f" / {data['geomean_store']:.2f}x store-warm"
             f" / {data['geomean_warm']:.2f}x warm")
    if data.get("journal_overhead_cold"):
        overhead = (data["journal_overhead_cold"] - 1.0) * 100.0
        text += (f"\n  journaling overhead (cold sweep, spans + journal "
                 f"on): {overhead:+.1f}%")
    return text


def _check_regression_floors(data):
    """Loose floors: the cold target is 2x on the full corpus; flag a
    real regression without making the bench flaky on noisy hosts."""
    assert data["geomean_cold"] >= 1.5, data["geomean_cold"]
    assert data["geomean_warm"] >= data["geomean_cold"] * 0.8
    if data.get("journal_overhead_cold"):
        # Target is ≤3%; the hard gate leaves headroom for host noise.
        assert data["journal_overhead_cold"] <= 1.15, \
            data["journal_overhead_cold"]


def test_uarch_sweep_speedups(benchmark):
    data = run_once(benchmark, lambda: _measure(workload_names()))
    _check_regression_floors(data)
    assert data["geomean_cold"] >= 2.0, data["geomean_cold"]
    emit("uarch_sweep", _render(data), data=data)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="four-kernel equivalence/speedup gate; "
                             "prints but persists nothing")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the measured data as JSON "
                             "(for benchmarks/check_regression.py)")
    parser.add_argument("--overhead-only", action="store_true",
                        help="measure and persist only the journaling "
                             "overhead on the cold sweep path")
    args = parser.parse_args(argv)
    if args.overhead_only:
        start = time.perf_counter()
        ratio = _journal_overhead(OVERHEAD_NAMES, reps=7)
        data = {"kernels": OVERHEAD_NAMES, "reps": 7,
                "cold_sweep_ratio": ratio}
        text = (f"journaling overhead, cold grid sweep "
                f"({len(GRID)} configs x {PIPELINE_CAP} instructions, "
                f"best-of-7 per mode over {', '.join(OVERHEAD_NAMES)}):\n"
                f"  on/off wall ratio: {ratio:.3f} "
                f"({(ratio - 1.0) * 100.0:+.1f}%)")
        emit("journal_overhead", text, data=data,
             wall_seconds=time.perf_counter() - start)
        assert ratio <= 1.03, ratio  # the ≤3% acceptance bar, verbatim
        return
    names = SMOKE_NAMES if args.smoke else workload_names()
    with maybe_journal("uarch_sweep"):
        start = time.perf_counter()
        data = _measure(names)
        measure_seconds = time.perf_counter() - start
    print(_render(data))
    _check_regression_floors(data)
    if not args.smoke:
        assert data["geomean_cold"] >= 2.0, data["geomean_cold"]
        # Script mode never went through run_once, so thread the wall
        # time explicitly — a null here blinds check_regression.py.
        emit("uarch_sweep", _render(data), data=data,
             wall_seconds=measure_seconds)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"name": "uarch_sweep", "data": data}, handle,
                      indent=2)
            handle.write("\n")
    print("\nuarch-sweep bench OK "
          f"({'smoke, ' if args.smoke else ''}{len(names)} kernels)")


if __name__ == "__main__":
    main()
