"""Figure 3: fraction of dynamic memory references explained by one
stride per static load/store.  Paper: >= 0.90 for every benchmark,
mostly > 0.95."""

from repro.evaluation import format_table, stride_coverage_table

from _shared import emit, run_once


def test_fig3_stride_coverage(benchmark):
    rows = run_once(benchmark, stride_coverage_table)
    emit("fig3_stride_coverage", format_table(
        ["program", "single-stride coverage"],
        [[name, coverage] for name, coverage in rows],
        float_format="{:.3f}"))
    average = sum(coverage for _, coverage in rows) / len(rows)
    # Paper: >= 0.90 per benchmark on its Alpha-compiled corpus.  Our
    # kernels are heavier on table lookups (crc/blowfish/rijndael/
    # patricia), which depresses single-stride coverage — the low-
    # coverage ops are exactly what the memory model's scatter extension
    # handles (see DESIGN.md).  Shape: regular kernels are near 1.0.
    assert average > 0.65
    assert all(coverage > 0.2 for _, coverage in rows)
    regular = dict(rows)
    for name in ("basicmath", "susan", "sha", "gsm", "typeset", "lame"):
        assert regular[name] > 0.9
