"""Grid refinement throughput: cold grids and single-knob re-sweeps.

Measures the two workflows ROADMAP item 4 targets, against the seed
baseline (per-config ``PipelineModel.run``):

* **cold grid** — the fig6/fig8 nine-config study from nothing: digest
  built, banks derived, results persisted to a fresh artifact store.
  Target: ≥10x geomean over the corpus.
* **incremental cell** — an :class:`IncrementalSession` warmed on the
  base config re-times one single-knob edit (ROB size, L1D geometry,
  predictor kind, width, an FU latency).  Every untouched artifact is
  reused per the session's plan.  Target: ≥20x geomean vs timing the
  same cell cold with ``PipelineModel.run``.

Every timed cell is also an equality assertion against the reference
model, so the recorded speedups are numerics-preserving by
construction.  The per-edit reuse plans are journaled
(``sweep.incremental_plan`` events) when ``REPRO_BENCH_JOURNAL_DIR``
is set — CI uploads that journal as the reuse-accounting artifact.

Runs two ways, like the other benches:

* under pytest-benchmark (full 23-kernel corpus, persisted to
  ``results/incremental_resim.{txt,json}`` for EXPERIMENTS.md);
* as a script: ``python benchmarks/bench_incremental_resim.py --smoke``
  times a four-kernel slice with the same assertions — the CI gate,
  compared against the committed baseline by ``check_regression.py``.
"""

import dataclasses
import json
import shutil
import tempfile
import time

import numpy as np

from repro.exec.store import ArtifactStore
from repro.obs.journal import emit_event
from repro.sim import FunctionalSimulator
from repro.uarch import BASE_CONFIG, DESIGN_CHANGES, IncrementalSession, native
from repro.uarch.cache import CacheConfig
from repro.uarch.pipeline import PipelineModel
from repro.uarch.sweep import simulate_pipeline_sweep
from repro.workloads import build_workload, workload_names

from _shared import emit, maybe_journal, run_once

FUNCTIONAL_CAP = 5_000_000
PIPELINE_CAP = 60_000

#: The paper's evaluation grid (fig6/fig8): base + Table 3 + widths.
GRID = ([BASE_CONFIG] + list(DESIGN_CHANGES)
        + [BASE_CONFIG.renamed(f"width-{width}", width=width)
           for width in (2, 4, 8)])

SMOKE_NAMES = ["crc32", "sha", "qsort", "fft"]

#: Single-knob refinements applied to the base config — one per artifact
#: dependence class (kernel-params only, cache bank, predictor bank,
#: kernel shape, FU latency).
KNOB_EDITS = [
    ("rob=32", BASE_CONFIG.renamed("rob-32", rob_size=32)),
    ("l1d/2", BASE_CONFIG.renamed(
        "l1d-8k", l1d=CacheConfig(BASE_CONFIG.l1d.size // 2,
                                  BASE_CONFIG.l1d.assoc,
                                  BASE_CONFIG.l1d.line))),
    ("bpred=nottaken", BASE_CONFIG.renamed("nottaken",
                                           predictor="nottaken")),
    ("width=2", BASE_CONFIG.renamed("width-2", width=2)),
    ("fmul=6", BASE_CONFIG.renamed("fmul-6", latency_fmul=6)),
]


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def _result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("wall_seconds")  # host timing, not a simulated number
    return fields


def _forget(trace):
    for holder, attribute in ((trace, "_sweep_digest"),
                              (trace.program, "_sweep_static"),
                              (trace.program, "_sweep_kernels")):
        if hasattr(holder, attribute):
            delattr(holder, attribute)


def _grid_row(name, trace, store):
    """[kernel, instructions, ref MIPS, sweep MIPS, cold x]."""
    start = time.perf_counter()
    reference = [PipelineModel(config).run(
        trace, max_instructions=PIPELINE_CAP) for config in GRID]
    reference_s = time.perf_counter() - start

    _forget(trace)
    start = time.perf_counter()
    cold = simulate_pipeline_sweep(trace, GRID,
                                   max_instructions=PIPELINE_CAP,
                                   store=store)
    cold_s = time.perf_counter() - start

    assert [_result_fields(result) for result in cold] \
        == [_result_fields(result) for result in reference]
    instructions = sum(result.instructions for result in reference)
    return [name, instructions, instructions / reference_s / 1e6,
            instructions / cold_s / 1e6, reference_s / cold_s]


def _knob_rows(name, trace):
    """[kernel:knob, instructions, cold-cell ms, incr ms, incr x]."""
    _forget(trace)
    session = IncrementalSession(
        trace, max_instructions=PIPELINE_CAP,
        store=ArtifactStore(root=tempfile.gettempdir(), enabled=False))
    session.run(BASE_CONFIG)  # warm the session on the design point
    rows = []
    for knob, config in KNOB_EDITS:
        start = time.perf_counter()
        cell = PipelineModel(config).run(trace,
                                         max_instructions=PIPELINE_CAP)
        cell_s = time.perf_counter() - start

        start = time.perf_counter()
        incremental = session.run(config)
        incremental_s = time.perf_counter() - start

        assert _result_fields(incremental) == _result_fields(cell), \
            f"incremental diverges from cold cell for {name}/{knob}"
        plan = session.last_plan
        rows.append([f"{name}:{knob}", cell.instructions,
                     cell_s * 1e3, incremental_s * 1e3,
                     cell_s / incremental_s,
                     len(plan.reused), len(plan.rebuilt)])
        session.run(BASE_CONFIG)  # step back to the design point
    return rows


def _measure(names):
    # The native timing loop's .so is a per-machine install artifact
    # (content-addressed in the cache dir) — compile it outside the
    # timed regions, like Python's own bytecode cache.
    native.available()
    grid_rows = []
    knob_rows = []
    staging = tempfile.mkdtemp(prefix="bench-incremental-")
    try:
        for index, name in enumerate(names):
            trace = FunctionalSimulator(build_workload(name)).run(
                max_instructions=FUNCTIONAL_CAP, trace=True)
            store = ArtifactStore(
                root=tempfile.mkdtemp(dir=staging), enabled=True)
            grid_rows.append(_grid_row(name, trace, store))
            knob_rows.extend(_knob_rows(name, trace))
            emit_event("progress", done=index + 1, total=len(names),
                       unit="kernels", label=name)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return {
        "configs": [config.name for config in GRID],
        "knobs": [knob for knob, _ in KNOB_EDITS],
        "pipeline_cap": PIPELINE_CAP,
        "native": native.available(),
        "grid_rows": grid_rows,
        "knob_rows": knob_rows,
        "geomean_cold": _geomean([row[4] for row in grid_rows]),
        "geomean_incremental": _geomean([row[4] for row in knob_rows]),
    }


def _render(data):
    from repro.evaluation import format_table
    text = (f"cold grid ({len(data['configs'])} configs x "
            f"{data['pipeline_cap']} instructions, vs per-config run):\n")
    text += format_table(
        ["kernel", "instructions", "run MIPS", "sweep MIPS", "cold x"],
        data["grid_rows"], float_format="{:.2f}")
    text += (f"\n  geomean cold-grid speedup: "
             f"{data['geomean_cold']:.2f}x\n\n")
    text += "single-knob incremental re-sweep (vs cold cell):\n"
    text += format_table(
        ["kernel:knob", "instructions", "cell ms", "incr ms", "incr x",
         "reused", "rebuilt"],
        data["knob_rows"], float_format="{:.2f}")
    text += (f"\n  geomean incremental speedup: "
             f"{data['geomean_incremental']:.2f}x"
             f"\n  native timing loop: "
             f"{'on' if data['native'] else 'off'}")
    return text


def _check_floors(data):
    """ROADMAP item 4's acceptance bars, gated on the native loop being
    available (without a C compiler the engine falls back to the
    compiled-Python kernels and only clears the seed's ~2x)."""
    if not data["native"]:
        return
    assert data["geomean_cold"] >= 10.0, data["geomean_cold"]
    assert data["geomean_incremental"] >= 20.0, \
        data["geomean_incremental"]


def test_incremental_resim_speedups(benchmark):
    data = run_once(benchmark, lambda: _measure(workload_names()))
    _check_floors(data)
    emit("incremental_resim", _render(data), data=data)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="four-kernel equivalence/speedup gate; "
                             "prints but persists nothing")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the measured data as JSON "
                             "(for benchmarks/check_regression.py)")
    args = parser.parse_args(argv)
    names = SMOKE_NAMES if args.smoke else workload_names()
    with maybe_journal("incremental_resim"):
        start = time.perf_counter()
        data = _measure(names)
        measure_seconds = time.perf_counter() - start
    print(_render(data))
    _check_floors(data)
    if not args.smoke:
        emit("incremental_resim", _render(data), data=data,
             wall_seconds=measure_seconds)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"name": "incremental_resim", "data": data}, handle,
                      indent=2)
            handle.write("\n")
    print("\nincremental-resim bench OK "
          f"({'smoke, ' if args.smoke else ''}{len(names)} kernels)")


if __name__ == "__main__":
    main()
