"""Throughput of the ``repro.exec`` layer: batched cache sweeps, the
persistent artifact store, and the parallel grid runner.

Three wall-time comparisons, each paired with an equality assertion so
the recorded speedups are guaranteed to be numerics-preserving:

* per-config ``simulate_cache`` loop vs one ``simulate_cache_sweep``
  call over the 28-configuration grid (identical miss counts);
* cold pipeline builds vs warm artifact-store hits (identical profiles,
  clone assembly, and traces — and the warm path must be faster, since
  a hit skips both functional simulations);
* serial vs parallel ``cache_correlation_study`` (identical
  correlations and MPI matrices).
"""

import shutil
import tempfile
import time

import numpy as np

from repro.core.synthesizer import SynthesisParameters
from repro.evaluation import (
    cache_correlation_study,
    clear_artifact_cache,
    format_table,
)
from repro.exec import ArtifactStore, pipeline_artifacts
from repro.uarch import CACHE_SWEEP, simulate_cache, simulate_cache_sweep
from repro.workloads import get_workload

from _shared import emit, run_once

NAMES = ["crc32", "sha", "bitcount"]
GRID_NAMES = ["adpcm", "bitcount", "crc32", "dijkstra", "qsort", "sha"]
PARAMS = SynthesisParameters(dynamic_instructions=100_000)
MAX_FUNCTIONAL = 5_000_000
JOBS = 2


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def _build_all(store):
    return [pipeline_artifacts(name, get_workload(name).source(), PARAMS,
                               max_instructions=MAX_FUNCTIONAL, store=store)
            for name in NAMES]


def _measure():
    rows = []

    # -- batched sweep vs per-config loop (one shared address stream) --
    root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        store = ArtifactStore(root=root, enabled=True)
        cold, cold_seconds = _timed(lambda: _build_all(store))
        addresses = cold[0].trace.memory_addresses()
        serial_stats, serial_seconds = _timed(
            lambda: [simulate_cache(addresses, config)
                     for config in CACHE_SWEEP])
        batched_stats, batched_seconds = _timed(
            lambda: simulate_cache_sweep(addresses, CACHE_SWEEP))
        assert ([stats.misses for stats in batched_stats]
                == [stats.misses for stats in serial_stats])
        rows.append(["sweep 28 configs, per-config loop", serial_seconds, 1.0])
        rows.append(["sweep 28 configs, batched", batched_seconds,
                     serial_seconds / batched_seconds])

        # -- cold pipeline vs warm artifact-store hit -------------------
        warm, warm_seconds = _timed(lambda: _build_all(store))
        assert store.stats()["hits"] == len(NAMES)
        for before, after in zip(cold, warm):
            assert before.profile.to_dict() == after.profile.to_dict()
            assert before.clone.asm_source == after.clone.asm_source
            assert np.array_equal(before.trace.addrs, after.trace.addrs)
        assert warm_seconds < cold_seconds
        rows.append([f"pipeline x{len(NAMES)}, cold build", cold_seconds, 1.0])
        rows.append([f"pipeline x{len(NAMES)}, warm cache", warm_seconds,
                     cold_seconds / warm_seconds])
    finally:
        shutil.rmtree(root, ignore_errors=True)

    # -- serial vs parallel experiment grid ----------------------------
    # Drop the in-process memo before each timed run so both paths do
    # the full per-workload work (the persistent store may still serve
    # artifacts — identically to both, and that IS the deployed shape:
    # a warm disk cache behind a cold process).
    clear_artifact_cache()
    study_serial, grid_serial_seconds = _timed(
        lambda: cache_correlation_study(names=GRID_NAMES, jobs=1))
    clear_artifact_cache()
    study_parallel, grid_parallel_seconds = _timed(
        lambda: cache_correlation_study(names=GRID_NAMES, jobs=JOBS))
    assert study_parallel["correlations"] == study_serial["correlations"]
    assert study_parallel["mpi_real"] == study_serial["mpi_real"]
    assert study_parallel["mpi_clone"] == study_serial["mpi_clone"]
    rows.append(["correlation study, jobs=1", grid_serial_seconds, 1.0])
    rows.append([f"correlation study, jobs={JOBS}", grid_parallel_seconds,
                 grid_serial_seconds / grid_parallel_seconds])
    return rows


def test_exec_throughput(benchmark):
    rows = run_once(benchmark, _measure)
    emit("exec_throughput", format_table(
        ["stage", "seconds", "speedup"], rows, float_format="{:.3f}"),
        data={"rows": rows, "names": NAMES, "grid_names": GRID_NAMES,
              "jobs": JOBS, "configs": len(CACHE_SWEEP)})
