"""Ablation B (paper Section 5.1 discussion): programs needing many
unique streams to model their locality clone less accurately — the
paper's explanation for susan being its worst case (66 streams vs an
average of 18)."""

from repro.evaluation import format_table, stream_count_table

from _shared import emit, run_once


def test_ablation_stream_count(benchmark):
    rows = run_once(benchmark, stream_count_table)
    emit("ablation_stream_count", format_table(
        ["program", "unique streams", "cache pearson R"],
        [[name, streams, corr] for name, streams, corr in rows],
        float_format="{:+.3f}"))
    # Sanity on the statistic itself: sorted, positive, varied.
    streams = [row[1] for row in rows]
    assert streams == sorted(streams, reverse=True)
    assert streams[0] > streams[-1]
