"""Figure 7: absolute power of each real benchmark and its clone on the
Table 2 base configuration.  Paper: 6.44% average absolute error."""

from repro.evaluation import base_config_comparison, format_table

from _shared import PIPELINE_CAP, emit, run_once


def test_fig7_power_base_config(benchmark):
    result = run_once(
        benchmark,
        lambda: base_config_comparison(max_instructions=PIPELINE_CAP))
    rows = [[row["name"], row["power_real"], row["power_clone"],
             abs(row["power_clone"] - row["power_real"])
             / row["power_real"]]
            for row in result["rows"]]
    rows.append(["AVERAGE ERROR", "", "", result["average_power_error"]])
    emit("fig7_power_base", format_table(
        ["program", "power real", "power clone", "abs err"],
        rows, float_format="{:.3f}"))
    assert result["average_power_error"] < 0.15  # paper: 0.0644
