"""Table 3: average relative error in IPC and power of the clone for the
five design changes.  Paper: 4.49% average IPC relative error (worst
6.51%), 2.28% power (worst 4.59%)."""

from repro.evaluation import design_change_study, format_table

from _shared import PIPELINE_CAP, emit, run_once


def test_table3_design_changes(benchmark):
    study = run_once(
        benchmark,
        lambda: design_change_study(max_instructions=PIPELINE_CAP))
    rows = [[row["change"], row["avg_ipc_relative_error"],
             row["avg_power_relative_error"]]
            for row in study["changes"]]
    ipc_avg = sum(row[1] for row in rows) / len(rows)
    power_avg = sum(row[2] for row in rows) / len(rows)
    rows.append(["AVERAGE", ipc_avg, power_avg])
    emit("table3_design_changes", format_table(
        ["design change", "rel err IPC", "rel err power"],
        rows, float_format="{:.4f}"))
    # Shape: small relative errors, comfortably under the absolute ones.
    assert ipc_avg < 0.15      # paper: 0.0449
    assert power_avg < 0.10    # paper: 0.0228
