"""Figure 4: Pearson correlation between real benchmark and synthetic
clone of relative misses-per-instruction across the 28 L1D cache
configurations.  Paper: average 0.93, worst case 0.80 (susan)."""

from repro.evaluation import cache_correlation_study, format_table

from _shared import emit, run_once


def test_fig4_cache_correlation(benchmark):
    study = run_once(benchmark, cache_correlation_study)
    rows = [[name, value]
            for name, value in sorted(study["correlations"].items())]
    rows.append(["AVERAGE", study["average_correlation"]])
    emit("fig4_cache_correlation", format_table(
        ["program", "pearson R"], rows, float_format="{:+.3f}"))
    # Shape: strong average correlation, overwhelmingly positive.
    assert study["average_correlation"] > 0.6
    positive = sum(1 for value in study["correlations"].values()
                   if value > 0)
    assert positive >= 21  # of 23
