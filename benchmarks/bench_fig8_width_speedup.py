"""Figure 8: per-benchmark IPC speedup from doubling fetch/decode/issue
width, real vs clone.  Paper: average real speedup 1.72, clone tracks it
(relative error 5.41%)."""

from repro.evaluation import design_change_study, format_table
from repro.uarch import BASE_CONFIG

from _shared import PIPELINE_CAP, emit, run_once


def test_fig8_width_speedup(benchmark):
    study = run_once(
        benchmark,
        lambda: design_change_study(
            changes=[BASE_CONFIG.renamed("2x-width", width=2)],
            max_instructions=PIPELINE_CAP))
    detail = study["width_detail"]
    rows = [[row["name"], row["speedup_real"], row["speedup_clone"]]
            for row in detail]
    avg_real = sum(row[1] for row in rows) / len(rows)
    avg_clone = sum(row[2] for row in rows) / len(rows)
    rows.append(["AVERAGE", avg_real, avg_clone])
    emit("fig8_width_speedup", format_table(
        ["program", "speedup real", "speedup clone"],
        rows, float_format="{:.3f}"))
    # Everyone speeds up; the clone tracks the per-benchmark trend.
    assert all(row["speedup_real"] > 1.0 for row in detail)
    assert all(row["speedup_clone"] > 1.0 for row in detail)
    assert abs(avg_clone - avg_real) / avg_real < 0.15
