"""Benchmark regression guard: fresh smoke results vs committed ones.

Compares a fresh ``--smoke --out`` benchmark JSON against the committed
full-corpus envelope in ``benchmarks/results/<bench>.json`` and fails
with a distinct exit code on a geomean slowdown beyond the threshold.

Only host-independent *ratio* columns are compared (speedups of one
engine over another measured on the same host in the same run), never
absolute MIPS — CI runners differ wildly in single-core throughput, but
a speedup ratio moves only when the code's relative cost moves.

Usage (CI smoke jobs)::

    python benchmarks/bench_uarch_sweep.py --smoke --out fresh.json
    python benchmarks/check_regression.py --bench uarch_sweep \
        --fresh fresh.json [--threshold 0.20]

Exit codes: 0 no regression (or nothing comparable), 2 usage/unreadable
fresh input, 5 regression beyond threshold.
"""

import argparse
import json
import math
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_REGRESSION = 5

#: Per-bench comparison spec: which row tables to walk and which
#: columns of each row are host-independent speedup ratios.  Row
#: format is ``[kernel, instructions, ...columns...]``.
SPECS = {
    "uarch_sweep": [
        ("rows", {4: "cold", 5: "store", 6: "warm"}),
    ],
    "sim_turbo": [
        ("functional_rows", {5: "cold", 6: "warm"}),
        ("pipeline_rows", {4: "pipeline"}),
    ],
    "trace_acquisition": [
        ("acquisition_rows", {6: "vs_interp", 7: "vs_turbo"}),
        ("digest_rows", {4: "streamed"}),
    ],
    "incremental_resim": [
        ("grid_rows", {4: "cold"}),
        ("knob_rows", {4: "incremental"}),
    ],
    "static_lint": [
        ("rows", {4: "static"}),
    ],
    "fleet_throughput": [
        ("rows", {4: "fleet"}),
    ],
}


def _load_json(path, label):
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        return None, f"cannot read {label} {path!r}: {exc}"
    except ValueError as exc:
        return None, f"corrupt {label} JSON {path!r}: {exc}"
    if not isinstance(payload, dict):
        return None, f"{label} {path!r} is not a JSON object"
    data = payload.get("data")
    if not isinstance(data, dict):
        return None, f"{label} {path!r} has no 'data' block"
    return data, None


def _ratio_table(data, spec):
    """``{(table, kernel, column-label): ratio}`` for one result set."""
    ratios = {}
    for table, columns in spec:
        rows = data.get(table)
        if not isinstance(rows, list):
            continue
        for row in rows:
            if not isinstance(row, list) or not row:
                continue
            kernel = row[0]
            for column, label in columns.items():
                if column >= len(row):
                    continue
                value = row[column]
                if isinstance(value, (int, float)) and value > 0:
                    ratios[(table, kernel, label)] = float(value)
    return ratios


def compare(bench, fresh_data, committed_data, threshold):
    """(geomean fresh/committed over common ratios, per-key detail).

    Returns ``(None, [])`` when the two result sets share no comparable
    entries (e.g. a brand-new bench with no committed baseline rows).
    """
    spec = SPECS[bench]
    fresh = _ratio_table(fresh_data, spec)
    committed = _ratio_table(committed_data, spec)
    common = sorted(set(fresh) & set(committed))
    if not common:
        return None, []
    detail = []
    log_sum = 0.0
    for key in common:
        relative = fresh[key] / committed[key]
        log_sum += math.log(relative)
        detail.append((key, committed[key], fresh[key], relative))
    return math.exp(log_sum / len(common)), detail


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, choices=sorted(SPECS),
                        help="which benchmark's spec to apply")
    parser.add_argument("--fresh", required=True,
                        help="JSON from the bench's --out flag")
    parser.add_argument("--committed", default=None,
                        help="baseline JSON (default: "
                             "benchmarks/results/<bench>.json)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed geomean slowdown fraction "
                             "(default 0.20 = 20%%)")
    args = parser.parse_args(argv)

    fresh_data, error = _load_json(args.fresh, "fresh results")
    if error:
        print(f"check_regression: {error}", file=sys.stderr)
        return EXIT_USAGE

    committed_path = args.committed or os.path.join(
        RESULTS_DIR, f"{args.bench}.json")
    committed_data, error = _load_json(committed_path, "committed results")
    if error:
        # A missing or unreadable baseline is not a regression — warn
        # and pass so new benches can land before their first results.
        print(f"check_regression: {error} — nothing to compare, passing",
              file=sys.stderr)
        return EXIT_OK

    geomean, detail = compare(args.bench, fresh_data, committed_data,
                              args.threshold)
    if geomean is None:
        print("check_regression: no comparable speedup entries — passing",
              file=sys.stderr)
        return EXIT_OK

    for (table, kernel, label), base, now, relative in detail:
        print(f"  {table}/{kernel}/{label}: committed {base:.2f}x, "
              f"fresh {now:.2f}x ({relative:.2f} relative)")
    slowdown = 1.0 - geomean
    print(f"check_regression[{args.bench}]: geomean fresh/committed = "
          f"{geomean:.3f} over {len(detail)} entries "
          f"(threshold: {args.threshold:.0%} slowdown)")
    if slowdown > args.threshold:
        print(f"check_regression: REGRESSION — {slowdown:.1%} geomean "
              f"slowdown exceeds {args.threshold:.0%}", file=sys.stderr)
        return EXIT_REGRESSION
    print("check_regression: OK")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
