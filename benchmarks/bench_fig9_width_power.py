"""Figure 9: per-benchmark relative power increase from doubling the
width, real vs clone.  Paper: clone tracks with 4.59% relative error."""

from repro.evaluation import design_change_study, format_table
from repro.uarch import BASE_CONFIG

from _shared import PIPELINE_CAP, emit, run_once


def test_fig9_width_power(benchmark):
    study = run_once(
        benchmark,
        lambda: design_change_study(
            changes=[BASE_CONFIG.renamed("2x-width", width=2)],
            max_instructions=PIPELINE_CAP))
    detail = study["width_detail"]
    rows = [[row["name"], row["power_ratio_real"],
             row["power_ratio_clone"]]
            for row in detail]
    avg_real = sum(row[1] for row in rows) / len(rows)
    avg_clone = sum(row[2] for row in rows) / len(rows)
    rows.append(["AVERAGE", avg_real, avg_clone])
    emit("fig9_width_power", format_table(
        ["program", "power ratio real", "power ratio clone"],
        rows, float_format="{:.3f}"))
    assert all(row["power_ratio_real"] > 1.0 for row in detail)
    assert all(row["power_ratio_clone"] > 1.0 for row in detail)
    assert abs(avg_clone - avg_real) / avg_real < 0.15
