"""Wall-time overhead of the post-synthesis lint gate.

Measures ``CloneSynthesizer.synthesize()`` with the gate off and on
over the default corpus, plus the full clone pipeline (functional sim →
profile → synthesize) the gate actually rides in.  The acceptance
target is gate overhead under 5% of a workload's cloning cost; the
synthesize-only ratio is reported alongside because the gate's passes
re-derive the whole contract and are the same order of work as emission
itself.
"""

import time

from _shared import emit, run_once
from repro.core import profile_trace
from repro.core.synthesizer import CloneSynthesizer, SynthesisParameters
from repro.sim import run_program
from repro.workloads import build_workload

#: A cross-domain slice of the corpus (consumer, network, auto, telecom).
WORKLOADS = ("crc32", "dijkstra", "qsort", "sha", "fft", "jpeg")
ROUNDS = 5


def _best_of(func, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_lint_gate_overhead(benchmark):
    def experiment():
        rows = []
        for name in WORKLOADS:
            program = build_workload(name)
            sim_s = _best_of(lambda: run_program(program), rounds=1)
            trace = run_program(program)
            profile_s = _best_of(lambda: profile_trace(trace), rounds=1)
            profile = profile_trace(trace)

            def synth(gate):
                parameters = SynthesisParameters(
                    dynamic_instructions=120_000, lint_gate=gate)
                return lambda: CloneSynthesizer(profile,
                                                parameters).synthesize()

            off_s = _best_of(synth("off"))
            on_s = _best_of(synth("error"))
            gate_s = max(0.0, on_s - off_s)
            pipeline_s = sim_s + profile_s + on_s
            rows.append({
                "workload": name,
                "synthesize_ms": round(off_s * 1e3, 3),
                "gate_ms": round(gate_s * 1e3, 3),
                "pipeline_ms": round(pipeline_s * 1e3, 3),
                "of_synthesize_pct": round(100 * gate_s / off_s, 1),
                "of_pipeline_pct": round(100 * gate_s / pipeline_s, 1),
            })
        return rows

    rows = run_once(benchmark, experiment)

    total_gate = sum(row["gate_ms"] for row in rows)
    total_pipeline = sum(row["pipeline_ms"] for row in rows)
    total_synth = sum(row["synthesize_ms"] for row in rows)
    lines = [f"{'workload':<14}{'synth ms':>10}{'gate ms':>10}"
             f"{'pipe ms':>10}{'%synth':>8}{'%pipe':>8}"]
    for row in rows:
        lines.append(
            f"{row['workload']:<14}{row['synthesize_ms']:>10.3f}"
            f"{row['gate_ms']:>10.3f}{row['pipeline_ms']:>10.3f}"
            f"{row['of_synthesize_pct']:>8.1f}{row['of_pipeline_pct']:>8.1f}")
    pipeline_pct = 100 * total_gate / total_pipeline
    synth_pct = 100 * total_gate / total_synth
    lines.append(f"{'total':<14}{total_synth:>10.3f}{total_gate:>10.3f}"
                 f"{total_pipeline:>10.3f}{synth_pct:>8.1f}"
                 f"{pipeline_pct:>8.1f}")
    emit("lint_gate_overhead", "\n".join(lines),
         data={"rows": rows,
               "gate_of_pipeline_pct": round(pipeline_pct, 2),
               "gate_of_synthesize_pct": round(synth_pct, 2)})

    # Acceptance: the gate must stay under 5% of the cloning pipeline.
    assert pipeline_pct < 5.0, (
        f"lint gate costs {pipeline_pct:.1f}% of the clone pipeline")
    # Guardrail against pathological regression of the passes themselves.
    assert synth_pct < 60.0, (
        f"lint gate costs {synth_pct:.1f}% of synthesize() alone")
