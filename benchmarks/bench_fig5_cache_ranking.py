"""Figure 5: scatter of cache-configuration rankings (1 = fewest misses)
predicted by the clone vs measured on the real benchmark, averaged over
the corpus.  Paper: all points hug the 45-degree diagonal."""

from repro.evaluation import cache_correlation_study, format_table

from _shared import emit, run_once


def test_fig5_cache_ranking(benchmark):
    study = run_once(benchmark, cache_correlation_study)
    rows = []
    for config, real, clone in zip(study["configs"],
                                   study["mean_rank_real"],
                                   study["mean_rank_clone"]):
        rows.append([config.label(), real, clone, abs(real - clone)])
    rows.append(["RANK CORRELATION", study["ranking_correlation"], "", ""])
    emit("fig5_cache_ranking", format_table(
        ["configuration", "real rank", "clone rank", "|delta|"],
        rows, float_format="{:.2f}"))
    # The diagonal claim: mean ranks correlate almost perfectly.
    assert study["ranking_correlation"] > 0.9
    deltas = [abs(r - c) for r, c in zip(study["mean_rank_real"],
                                         study["mean_rank_clone"])]
    assert sum(deltas) / len(deltas) < 4.0  # of 28 rank positions
