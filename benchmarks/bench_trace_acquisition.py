"""Trace-acquisition throughput: native C engine vs turbo vs interpreter,
plus streamed vs materialized digest construction.

Every timed pair doubles as an equality assertion — the native trace
must be bit-identical to the interpreter's (arrays, registers, memory),
and the streamed digest must agree with the materialized one on the
content digest — so the recorded speedups are guaranteed to be
numerics-preserving.

The floors asserted here are the acquisition engine's contract: the
native tier must stay at least 10x over the interpreter and 3x over
turbo in geomean (measured: ~87x / ~23x on the 23-kernel corpus), so a
slow host cannot mask an engine regression.

Runs two ways:

* under pytest-benchmark (the full 23-kernel corpus, persisted to
  ``results/trace_acquisition.{txt,json}`` for EXPERIMENTS.md);
* as a script: ``python benchmarks/bench_trace_acquisition.py --smoke``
  runs a four-kernel slice with the same assertions and *no* result
  files — the cheap CI gate against translator regressions.
"""

import json
import time

import numpy as np
import pytest

from repro.obs.journal import emit_event
from repro.obs.timing import TRACER
from repro.sim import FunctionalSimulator
from repro.sim import native
from repro.uarch.sweep import StreamingDigestBuilder, trace_digest
from repro.workloads import build_workload, workload_names

from _shared import emit, maybe_journal, run_once

#: Functional cap: every corpus kernel completes well inside it.
FUNCTIONAL_CAP = 5_000_000

SMOKE_NAMES = ["crc32", "sha", "qsort", "fft"]

#: In-bench geomean floors for the native engine (the acceptance
#: criteria; the measured corpus geomeans are ~87x and ~23x).
MIN_VS_INTERP = 10.0
MIN_VS_TURBO = 3.0


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def _timed_run(program, backend):
    simulator = FunctionalSimulator(program, backend=backend)
    start = time.perf_counter()
    trace = simulator.run(max_instructions=FUNCTIONAL_CAP, trace=True)
    return simulator, trace, time.perf_counter() - start


def _best_of(program, backend, repeats=2):
    best = None
    for _ in range(repeats):
        simulator, trace, seconds = _timed_run(program, backend)
        best = seconds if best is None else min(best, seconds)
    return simulator, trace, best


def _acquisition_rows(names):
    """Per-kernel interp/turbo/native MIPS, asserting bit-identity.

    All backends are timed best-of-two on fresh simulator instances;
    native's first run compiles its translation unit (the ``cold``
    column — the ``.so`` is content-addressed per machine, so every
    later process reuses it), the ``native MIPS`` / speedup columns are
    the warm steady state that profiling and fleet acquisition pay.
    """
    rows = []
    for index, name in enumerate(names):
        with TRACER.span("bench.acquire", kernel=name):
            program = build_workload(name)
            interp_sim, interp_trace, interp_s = _best_of(program,
                                                          "interp")
            _, _, turbo_s = _best_of(program, "turbo")

            native_sim, native_trace, cold_s = _timed_run(program,
                                                          "native")
            _, _, warm_a = _timed_run(program, "native")
            _, _, warm_b = _timed_run(program, "native")
            native_s = min(warm_a, warm_b)

            assert np.array_equal(interp_trace.pcs, native_trace.pcs)
            assert np.array_equal(interp_trace.addrs, native_trace.addrs)
            assert np.array_equal(interp_trace.taken, native_trace.taken)
            assert interp_sim.regs == native_sim.regs
            assert bytes(interp_sim.memory.data) \
                == bytes(native_sim.memory.data)

            instructions = interp_sim.instructions_executed
            rows.append([name, instructions,
                         instructions / interp_s / 1e6,
                         instructions / turbo_s / 1e6,
                         instructions / cold_s / 1e6,
                         instructions / native_s / 1e6,
                         interp_s / native_s,
                         turbo_s / native_s])
        emit_event("progress", done=index + 1, total=len(names),
                   unit="kernels", label=name)
    return rows


def _digest_rows(names):
    """Streamed digest (native chunks, no trace) vs materialized."""
    rows = []
    for index, name in enumerate(names):
        with TRACER.span("bench.digest", kernel=name):
            program = build_workload(name)
            _, trace, _ = _timed_run(program, "turbo")  # warm engines

            start = time.perf_counter()
            materialized_trace = FunctionalSimulator(
                program, backend="turbo").run(
                    max_instructions=FUNCTIONAL_CAP, trace=True)
            materialized = trace_digest(materialized_trace, store=None)
            materialized_s = time.perf_counter() - start

            start = time.perf_counter()
            builder = StreamingDigestBuilder(program)
            native.stream_trace(
                FunctionalSimulator(program, backend="native"),
                FUNCTIONAL_CAP, builder.feed)
            streamed = builder.finish()
            streamed_s = time.perf_counter() - start

            assert streamed.trace.content_digest() \
                == materialized.trace.content_digest()
            rows.append([name, len(trace),
                         materialized_s * 1e3, streamed_s * 1e3,
                         materialized_s / streamed_s])
        emit_event("progress", done=index + 1, total=len(names),
                   unit="digest kernels", label=name)
    return rows


def _measure(names):
    acquisition_rows = _acquisition_rows(names)
    digest_rows = _digest_rows(names)
    return {
        "acquisition_rows": acquisition_rows,
        "digest_rows": digest_rows,
        "geomean_vs_interp": _geomean(
            [row[6] for row in acquisition_rows]),
        "geomean_vs_turbo": _geomean(
            [row[7] for row in acquisition_rows]),
        "digest_geomean": _geomean([row[4] for row in digest_rows]),
    }


def _render(data):
    from repro.evaluation import format_table
    text = "functional trace acquisition (trace capture on):\n"
    text += format_table(
        ["kernel", "instructions", "interp MIPS", "turbo MIPS",
         "cold MIPS", "native MIPS", "vs interp", "vs turbo"],
        data["acquisition_rows"], float_format="{:.2f}")
    text += (f"\n  geomean speedup: "
             f"{data['geomean_vs_interp']:.2f}x over interp, "
             f"{data['geomean_vs_turbo']:.2f}x over turbo\n")
    text += "\nsweep digest construction (materialized vs streamed):\n"
    text += format_table(
        ["kernel", "instructions", "materialized ms", "streamed ms",
         "speedup"],
        data["digest_rows"], float_format="{:.2f}")
    text += f"\n  geomean speedup: {data['digest_geomean']:.2f}x"
    return text


def _check_floors(data):
    """The acceptance floors, asserted on every run (bench and CI)."""
    assert data["geomean_vs_interp"] >= MIN_VS_INTERP, \
        data["geomean_vs_interp"]
    assert data["geomean_vs_turbo"] >= MIN_VS_TURBO, \
        data["geomean_vs_turbo"]


def test_trace_acquisition_speedups(benchmark):
    if not native.available():
        pytest.skip("no working C toolchain")
    data = run_once(benchmark, lambda: _measure(workload_names()))
    _check_floors(data)
    emit("trace_acquisition", _render(data), data=data)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="four-kernel equivalence/floor gate; "
                             "prints but persists nothing")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the measured data as JSON "
                             "(for benchmarks/check_regression.py)")
    args = parser.parse_args(argv)
    if not native.available():
        raise SystemExit("bench_trace_acquisition: no working C "
                         "toolchain (cc) — nothing to measure")
    names = SMOKE_NAMES if args.smoke else workload_names()
    with maybe_journal("trace_acquisition"):
        data = _measure(names)
    print(_render(data))
    _check_floors(data)
    if not args.smoke:
        emit("trace_acquisition", _render(data), data=data)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"name": "trace_acquisition", "data": data},
                      handle, indent=2)
            handle.write("\n")
    print("\ntrace-acquisition bench OK "
          f"({'smoke, ' if args.smoke else ''}{len(names)} kernels)")


if __name__ == "__main__":
    main()
