"""Ablation C: statistical simulation (the paper's Section 2 prior art)
vs the executable clone, as IPC estimators on the base machine.

Statistical simulation is faster (no functional execution, no code
generation) but the clone is an actual program a customer can ship and
run anywhere — and both should land near the real IPC."""

from repro.evaluation import format_table, workload_artifacts
from repro.statsim import StatisticalSimulator
from repro.uarch import BASE_CONFIG, simulate_pipeline

from _shared import PIPELINE_CAP, emit, run_once

SUBSET = ["qsort", "crc32", "sha", "adpcm", "fft", "rijndael",
          "dijkstra", "susan"]


def test_ablation_statistical_simulation(benchmark):
    def run():
        rows = []
        for name in SUBSET:
            artifacts = workload_artifacts(name)
            real = simulate_pipeline(artifacts.trace, BASE_CONFIG,
                                     max_instructions=PIPELINE_CAP)
            clone = simulate_pipeline(artifacts.clone_trace, BASE_CONFIG,
                                      max_instructions=PIPELINE_CAP)
            statistical = StatisticalSimulator(
                artifacts.profile).estimate(BASE_CONFIG, 50_000)
            rows.append([name, real.ipc, clone.ipc, statistical.ipc])
        return rows

    rows = run_once(benchmark, run)
    clone_err = sum(abs(c - r) / r for _, r, c, _ in rows) / len(rows)
    stat_err = sum(abs(s - r) / r for _, r, _, s in rows) / len(rows)
    rows.append(["AVG ERROR", "", clone_err, stat_err])
    emit("ablation_statsim", format_table(
        ["program", "IPC real", "IPC clone", "IPC statsim"],
        rows, float_format="{:.3f}"))
    # Both estimators land in the right region; the executable clone is
    # at least competitive with trace-level statistical simulation.
    assert clone_err < 0.25
    assert stat_err < 0.45
