"""Microbenchmarks of the framework's own components (real
pytest-benchmark timing, multiple rounds): functional simulation,
profiling, synthesis, cache simulation, and the pipeline model."""

import pytest

from repro.core import make_clone, profile_trace
from repro.core.synthesizer import SynthesisParameters
from repro.sim import FunctionalSimulator, run_program
from repro.uarch import BASE_CONFIG, CacheConfig, simulate_cache, simulate_pipeline
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def crc_program():
    return build_workload("crc32")


@pytest.fixture(scope="module")
def crc_trace(crc_program):
    return run_program(crc_program)


@pytest.fixture(scope="module")
def crc_profile(crc_trace):
    return profile_trace(crc_trace)


def test_functional_simulation_speed(benchmark, crc_program):
    def run():
        return FunctionalSimulator(crc_program).run()

    executed = benchmark(run)
    assert executed > 50_000


def test_trace_capture_speed(benchmark, crc_program):
    trace = benchmark(lambda: FunctionalSimulator(crc_program).run(trace=True))
    assert len(trace) > 50_000


def test_profiler_speed(benchmark, crc_trace):
    profile = benchmark(lambda: profile_trace(crc_trace))
    assert profile.total_instructions == len(crc_trace)


def test_synthesis_speed(benchmark, crc_profile):
    result = benchmark(
        lambda: make_clone(crc_profile,
                           SynthesisParameters(dynamic_instructions=50_000)))
    assert len(result.program) > 100


def test_cache_simulation_speed(benchmark, crc_trace):
    addresses = crc_trace.memory_addresses()

    def run():
        return simulate_cache(addresses, CacheConfig(4096, 2, 32))

    stats = benchmark(run)
    assert stats.accesses == len(addresses)


def test_pipeline_model_speed(benchmark, crc_trace):
    result = benchmark(
        lambda: simulate_pipeline(crc_trace, BASE_CONFIG,
                                  max_instructions=50_000))
    assert result.instructions == 50_000
