"""Figure 6: absolute IPC of each real benchmark and its clone on the
Table 2 base configuration.  Paper: 8.73% average absolute IPC error."""

from repro.evaluation import base_config_comparison, format_table

from _shared import PIPELINE_CAP, emit, run_once


def test_fig6_ipc_base_config(benchmark):
    result = run_once(
        benchmark,
        lambda: base_config_comparison(max_instructions=PIPELINE_CAP))
    rows = [[row["name"], row["ipc_real"], row["ipc_clone"],
             abs(row["ipc_clone"] - row["ipc_real"]) / row["ipc_real"]]
            for row in result["rows"]]
    rows.append(["AVERAGE ERROR", "", "", result["average_ipc_error"]])
    emit("fig6_ipc_base", format_table(
        ["program", "IPC real", "IPC clone", "abs err"],
        rows, float_format="{:.3f}"))
    assert result["average_ipc_error"] < 0.20  # paper: 0.0873
