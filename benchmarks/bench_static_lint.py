"""Static lint gate vs the simulate-and-compare conformance path.

The tentpole claim of the abstract-interpretation layer: a synthesized
clone can be *gated* — safety proofs, full profile prediction scored
against the target, disclosure audit — without executing a single
instruction, and that static gate is ≥50x cheaper than the dynamic
path (functionally simulate the clone, profile the trace, compare).

Protocol: clones are synthesized at ``dynamic_instructions=4_000_000``,
where the dynamic path costs seconds per kernel while the static gate
stays flat (the static program size is bounded by the block-instance
cap, independent of run length).  Both legs are best-of-N with GC
paused; the static leg drops every analysis cache between reps so each
rep pays the full cold analysis.  Exactness rides along: in full mode
every kernel's predicted profile is asserted bit-for-bit against the
simulated one (tolerance-level for the dependency histogram), so the
speedup is never bought with a wrong prediction.

At this scale the memory model stretches sweep-once reset periods
toward the run length (up to 8x their natural period), which pushes a
few kernels' *clones* outside the footprint tolerance (CF205/CF215 —
the gate working as designed, statically and dynamically in agreement).
Those gate-flagged kernels are excluded from the headline geomean and
logged explicitly; the ≥50x assertion runs over the gate-clean set.

Runs two ways, like the other benches:

* under pytest-benchmark: the full corpus, persisted to
  ``results/static_lint.{txt,json}``;
* as a script: ``python benchmarks/bench_static_lint.py --smoke`` for
  the four-kernel CI gate (prints, persists nothing).
"""

import gc
import json
import time

import numpy as np

from repro.core import profile_trace
from repro.core.synthesizer import CloneSynthesizer, SynthesisParameters
from repro.isa.columns import columns_for
from repro.lint import lint_clone, predict_profile
from repro.obs.journal import emit_event
from repro.sim import run_program
from repro.workloads import build_workload, workload_names

from _shared import emit, maybe_journal, run_once

#: Clone synthesis scale: long enough that the dynamic path costs
#: seconds, matching how a vendor would actually size a disseminated
#: clone; ``warn`` because a CF-flagged clone should be measured and
#: reported, not raise.
CLONE_INSTRUCTIONS = 4_000_000

#: Functional cap: clones overshoot their target slightly, never 2x.
FUNCTIONAL_CAP = 2 * CLONE_INSTRUCTIONS

DYNAMIC_REPS = 2
STATIC_REPS = 5

#: The speedup floor asserted here and guarded in CI (geomean over the
#: gate-clean corpus).
SPEEDUP_FLOOR = 50.0

SMOKE_NAMES = ["crc32", "sha", "qsort", "fft"]

#: Analysis caches the static leg must drop between reps to stay cold.
_DERIVED_KEYS = ("absint", "absint_plan", "absint_branch_facts",
                 "absint_memop_facts", "staticprof_block_facts")


def _best_of(func, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _geomean(values):
    return float(np.exp(np.mean(np.log(values))))


def _assert_prediction_exact(clone, dynamic_profile):
    """The speedup must not be bought with a wrong prediction."""
    predicted = predict_profile(clone.program).profile
    assert predicted.total_instructions == dynamic_profile.total_instructions
    assert predicted.global_mix == dynamic_profile.global_mix
    assert predicted.transitions == dynamic_profile.transitions
    assert {pc: (s.count, s.taken_rate) for pc, s
            in predicted.branches.items()} \
        == {pc: (s.count, s.taken_rate) for pc, s
            in dynamic_profile.branches.items()}
    assert {pc: (s.count, s.dominant_stride, s.first_address,
                 s.last_address) for pc, s in predicted.mem_ops.items()} \
        == {pc: (s.count, s.dominant_stride, s.first_address,
                 s.last_address) for pc, s in dynamic_profile.mem_ops.items()}
    assert predicted.data_footprint_bytes \
        == dynamic_profile.data_footprint_bytes


def _measure_kernel(name, check_exactness):
    program = build_workload(name)
    profile = profile_trace(run_program(program))
    parameters = SynthesisParameters(
        dynamic_instructions=CLONE_INSTRUCTIONS, lint_gate="warn")
    clone = CloneSynthesizer(profile, parameters).synthesize()
    gate_clean = bool(clone.stats["lint"]["ok"])

    columns = columns_for(clone.program)
    baseline_keys = set(columns.derived)

    def dynamic_leg():
        trace = run_program(clone.program,
                            max_instructions=FUNCTIONAL_CAP)
        return profile_trace(trace)

    def static_leg():
        for key in _DERIVED_KEYS:
            if key not in baseline_keys:
                columns.derived.pop(key, None)
        return lint_clone(clone)

    gc.collect()
    gc.disable()
    try:
        dynamic_s = _best_of(dynamic_leg, DYNAMIC_REPS)
        static_s = _best_of(static_leg, STATIC_REPS)
    finally:
        gc.enable()
    if check_exactness and gate_clean:
        _assert_prediction_exact(clone, dynamic_leg())
    return {
        "kernel": name,
        "dynamic_ms": dynamic_s * 1e3,
        "static_ms": static_s * 1e3,
        "speedup": dynamic_s / static_s,
        "gate_clean": gate_clean,
    }


def _measure(names, check_exactness=True):
    rows = []
    excluded = []
    for index, name in enumerate(names):
        measured = _measure_kernel(name, check_exactness)
        rows.append([measured["kernel"],
                     CLONE_INSTRUCTIONS,
                     round(measured["dynamic_ms"], 2),
                     round(measured["static_ms"], 2),
                     round(measured["speedup"], 1),
                     int(measured["gate_clean"])])
        if not measured["gate_clean"]:
            excluded.append(name)
        emit_event("progress", done=index + 1, total=len(names),
                   unit="kernels", label=name)
    clean = [row for row in rows if row[5]]
    return {
        "clone_instructions": CLONE_INSTRUCTIONS,
        "dynamic_reps": DYNAMIC_REPS,
        "static_reps": STATIC_REPS,
        "rows": rows,
        "gate_excluded": excluded,
        "geomean_speedup_clean": _geomean([row[4] for row in clean])
        if clean else None,
        "geomean_speedup_all": _geomean([row[4] for row in rows]),
        "min_speedup_clean": min((row[4] for row in clean),
                                 default=None),
    }


def _render(data):
    from repro.evaluation import format_table
    header = ["kernel", "instructions", "dynamic ms", "static ms",
              "speedup", "clean"]
    text = (f"static lint gate vs simulate-and-compare "
            f"(clones at {data['clone_instructions']:,} instructions):\n")
    text += format_table(header, data["rows"], float_format="{:.2f}")
    text += (f"\n  geomean speedup (gate-clean): "
             f"{data['geomean_speedup_clean']:.1f}x"
             f"  (all kernels: {data['geomean_speedup_all']:.1f}x,"
             f" min clean: {data['min_speedup_clean']:.1f}x)")
    if data["gate_excluded"]:
        text += ("\n  excluded from the headline (lint gate flagged the "
                 "clone at this scale, statically and dynamically): "
                 + ", ".join(data["gate_excluded"]))
    return text


def _assert_floor(data, smoke):
    geomean = data["geomean_speedup_clean"]
    assert geomean is not None, "no gate-clean kernels measured"
    floor = SPEEDUP_FLOOR if not smoke else SPEEDUP_FLOOR * 0.6
    assert geomean >= floor, \
        f"static gate geomean speedup {geomean:.1f}x < {floor:.0f}x"


def test_static_lint_speedup(benchmark):
    data = run_once(benchmark, lambda: _measure(workload_names()))
    _assert_floor(data, smoke=False)
    emit("static_lint", _render(data), data=data)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="four-kernel slice with a softened floor; "
                             "prints but persists nothing")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the measured data as JSON "
                             "(for benchmarks/check_regression.py)")
    args = parser.parse_args(argv)
    names = SMOKE_NAMES if args.smoke else workload_names()
    with maybe_journal("static_lint"):
        start = time.perf_counter()
        data = _measure(names)
        measure_seconds = time.perf_counter() - start
    print(_render(data))
    _assert_floor(data, smoke=args.smoke)
    if not args.smoke:
        emit("static_lint", _render(data), data=data,
             wall_seconds=measure_seconds)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"name": "static_lint", "data": data}, handle,
                      indent=2)
            handle.write("\n")
    print("\nstatic-lint bench OK "
          f"({'smoke, ' if args.smoke else ''}{len(names)} kernels)")


if __name__ == "__main__":
    main()
