"""Cache-backed execution of the full cloning pipeline.

:func:`pipeline_artifacts` is the one entry point: given a program's
assembly source and synthesis parameters it either replays the whole
build → run → profile → synthesize → run-clone pipeline, or
reconstitutes every product from the persistent :mod:`repro.exec.store`.
Reconstitution is exact by construction — the trace arrays round-trip
through ``.npz`` losslessly, the profile through its JSON schema, and
the clone is re-assembled from the stored assembly text with the same
deterministic assembler that produced it — so downstream simulations
cannot tell a warm run from a cold one.
"""

import os
from dataclasses import dataclass

from repro.core.cloning import make_clone
from repro.core.profile import WorkloadProfile
from repro.core.profiler import profile_trace
from repro.core.synthesizer import CloneResult
from repro.exec.store import artifact_key, default_store
from repro.isa.assembler import assemble
from repro.obs.logging import get_logger
from repro.obs.timing import span
from repro.sim.functional import run_program
from repro.sim.trace import DynamicTrace
from repro.sim.turbo import resolve_backend

_LOG = get_logger("repro.exec.artifacts")

#: Safety cap for functional simulation used when callers don't pass one
#: (mirrors the experiment harness's historical cap).
DEFAULT_MAX_FUNCTIONAL = 20_000_000


@dataclass
class Artifacts:
    """Everything produced by the cloning pipeline for one workload."""

    name: str
    program: object
    trace: object
    profile: object
    clone: object  # CloneResult
    clone_trace: object
    #: Resolved functional-simulator backend that produced (or, on a
    #: cache hit, originally produced) the traces:
    #: ``native``/``turbo``/``interp``.
    sim_backend: str = "interp"


def _build_artifacts(program, name, parameters, max_instructions,
                     sim_backend):
    """The cold path: run the whole pipeline from the assembled program."""
    trace = run_program(program, max_instructions=max_instructions,
                        backend=sim_backend)
    profile = profile_trace(trace)
    clone = make_clone(profile, parameters)
    clone_trace = run_program(clone.program,
                              max_instructions=max_instructions,
                              backend=sim_backend)
    return Artifacts(name=name, program=program, trace=trace,
                     profile=profile, clone=clone,
                     clone_trace=clone_trace, sim_backend=sim_backend)


def _load_artifacts(meta, entry, program, name, parameters):
    """Reconstitute a cached entry into live pipeline objects."""
    trace = DynamicTrace.load(os.path.join(entry, "trace.npz"), program)
    profile = WorkloadProfile.load(os.path.join(entry, "profile.json"))
    with open(os.path.join(entry, "clone.s")) as handle:
        clone_asm = handle.read()
    clone_program = assemble(clone_asm, name=meta["clone_name"])
    clone = CloneResult(program=clone_program, asm_source=clone_asm,
                        profile=profile, parameters=parameters,
                        stats=dict(meta.get("clone_stats") or {}))
    clone_trace = DynamicTrace.load(
        os.path.join(entry, "clone_trace.npz"), clone_program)
    return Artifacts(name=name, program=program, trace=trace,
                     profile=profile, clone=clone,
                     clone_trace=clone_trace,
                     sim_backend=meta.get("sim_backend", "interp"))


def pipeline_artifacts(name, source, parameters,
                       max_instructions=DEFAULT_MAX_FUNCTIONAL,
                       store=None):
    """Run (or reload) the cloning pipeline for one assembly source.

    ``store`` defaults to the process-wide persistent store; pass an
    explicit :class:`~repro.exec.store.ArtifactStore` to isolate, or a
    disabled one to force the cold path.
    """
    store = default_store() if store is None else store
    program = assemble(source, name=name)
    # Resolve auto/env selection down to a concrete engine *before*
    # keying, so mixed-backend runs can never alias in the cache.
    sim_backend = resolve_backend(None, program)
    key = artifact_key(name, source, parameters, max_instructions,
                       sim_backend=sim_backend)
    cached = store.load(key)
    if cached is not None:
        meta, entry = cached
        try:
            with span("exec.artifacts.load"):
                artifacts = _load_artifacts(meta, entry, program, name,
                                            parameters)
            _LOG.debug("artifacts.hit", name=name, key=key,
                       sim_backend=artifacts.sim_backend)
            return artifacts
        except (OSError, KeyError, ValueError) as exc:
            # A concurrent eviction or partial entry: rebuild.
            _LOG.warning("artifacts.reload_failed", name=name,
                         key=key, error=str(exc))
    # The cold pipeline runs unwrapped so its phase spans keep their
    # established manifest paths (``profile/...``, ``sim.run``, ...).
    artifacts = _build_artifacts(program, name, parameters,
                                 max_instructions, sim_backend)
    meta = {
        "name": name,
        "clone_name": artifacts.clone.program.name,
        "clone_stats": artifacts.clone.stats,
        # Surfaced redundantly with clone_stats["certificate"] so store
        # tooling can read the safety proof without parsing stats.
        "certificate": artifacts.clone.stats.get("certificate"),
        "parameters": repr(parameters),
        "max_instructions": max_instructions,
        "sim_backend": sim_backend,
        "trace_instructions": len(artifacts.trace),
        "clone_trace_instructions": len(artifacts.clone_trace),
    }
    files = {
        "trace.npz": artifacts.trace.save,
        "clone_trace.npz": artifacts.clone_trace.save,
        "profile.json": artifacts.profile.save,
        "clone.s": _text_writer(artifacts.clone.asm_source),
    }
    with span("exec.artifacts.save"):
        store.save(key, meta, files)
    return artifacts


def _text_writer(text):
    def write(path):
        with open(path, "w") as handle:
            handle.write(text)
    return write


# ----------------------------------------------------------------------
# Trace-only entries (fleet cells timing the real workload need no
# profile/clone, so they skip four fifths of the pipeline)
# ----------------------------------------------------------------------
@dataclass
class TraceArtifacts:
    """Just the functional-simulation products for one program."""

    name: str
    program: object
    trace: object
    sim_backend: str = "interp"


def trace_artifact_key(name, source, max_instructions, sim_backend):
    """Store key for a trace-only entry (disjoint from pipeline keys —
    the sentinel parameters string is not a ``SynthesisParameters``
    repr, so the two entry kinds can never alias)."""
    return artifact_key(name, source, "trace-only", max_instructions,
                        sim_backend=sim_backend)


def trace_artifacts(name, source, max_instructions=DEFAULT_MAX_FUNCTIONAL,
                    store=None):
    """Run (or reload) just the real-workload functional simulation.

    Same store semantics as :func:`pipeline_artifacts`; the entry holds
    only ``trace.npz``.  Used by fleet cells with ``subject: real``,
    which never need the profile or the clone.
    """
    store = default_store() if store is None else store
    program = assemble(source, name=name)
    sim_backend = resolve_backend(None, program)
    key = trace_artifact_key(name, source, max_instructions, sim_backend)
    cached = store.load(key)
    if cached is not None:
        meta, entry = cached
        try:
            with span("exec.artifacts.load"):
                trace = DynamicTrace.load(
                    os.path.join(entry, "trace.npz"), program)
            return TraceArtifacts(name=name, program=program, trace=trace,
                                  sim_backend=meta.get("sim_backend",
                                                       "interp"))
        except (OSError, KeyError, ValueError) as exc:
            _LOG.warning("artifacts.trace_reload_failed", name=name,
                         key=key, error=str(exc))
    trace = run_program(program, max_instructions=max_instructions,
                        backend=sim_backend)
    meta = {
        "name": name,
        "kind": "trace-only",
        "max_instructions": max_instructions,
        "sim_backend": sim_backend,
        "trace_instructions": len(trace),
    }
    with span("exec.artifacts.save"):
        store.save(key, meta, {"trace.npz": trace.save})
    return TraceArtifacts(name=name, program=program, trace=trace,
                          sim_backend=sim_backend)
