"""Experiment execution engine (``repro.exec``).

Three cooperating layers make the (workload × microarchitecture) grid —
the paper's whole evaluation — cheap to re-run:

* :mod:`repro.exec.store` — a persistent content-addressed artifact
  cache (traces, profiles, clone assembly) shared across processes,
  keyed so hits are bit-identical to cold runs;
* :mod:`repro.exec.artifacts` — the cache-backed pipeline runner that
  experiments, the CLI, and benchmarks all call;
* :mod:`repro.exec.parallel` — order-preserving process-pool mapping
  with ``--jobs`` / ``REPRO_JOBS`` resolution and a bit-identical
  serial fallback.
"""

from repro.exec.artifacts import (
    DEFAULT_MAX_FUNCTIONAL,
    Artifacts,
    TraceArtifacts,
    pipeline_artifacts,
    trace_artifact_key,
    trace_artifacts,
)
from repro.exec.parallel import parallel_map, resolve_jobs, shared_state_map
from repro.exec.store import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactStore,
    artifact_key,
    cache_enabled,
    default_cache_dir,
    default_store,
    reset_default_store,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "Artifacts",
    "ArtifactStore",
    "DEFAULT_MAX_FUNCTIONAL",
    "TraceArtifacts",
    "artifact_key",
    "cache_enabled",
    "default_cache_dir",
    "default_store",
    "parallel_map",
    "pipeline_artifacts",
    "reset_default_store",
    "resolve_jobs",
    "shared_state_map",
    "trace_artifact_key",
    "trace_artifacts",
]
