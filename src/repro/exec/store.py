"""Persistent, content-addressed artifact store (``repro.exec``).

Every entry is one pipeline run's worth of artifacts for a (program
source, synthesis parameters) pair: the real dynamic trace, the
microarchitecture-independent profile, the clone assembly, and the
clone's dynamic trace.  The key is a hash of everything that determines
those artifacts — the assembly source (which embeds the data image), the
``repr`` of the synthesis parameters, the functional-simulation cap, and
the store schema version — so a hit is *guaranteed* to reproduce the
cold pipeline bit for bit, and any change to inputs or layout misses
cleanly instead of serving stale data.

Layout on disk (``REPRO_CACHE_DIR``, default ``~/.cache/repro``)::

    <root>/artifacts/<name>-<digest>/
        meta.json        schema version, key material, clone stats
        trace.npz        real DynamicTrace arrays
        clone_trace.npz  clone DynamicTrace arrays
        profile.json     WorkloadProfile
        clone.s          clone assembly source

Writes are atomic (temp directory + ``os.replace``-style rename), so
concurrent processes — e.g. the parallel grid runner's workers — can
share one store without locks: the first writer wins and later writers
discard their duplicate.  Hit/miss/write/evict counts feed the
``exec.store.*`` telemetry counters, which run manifests pick up
automatically.

Set ``REPRO_CACHE=off`` (or ``0``/``false``) to disable persistence
entirely; ``REPRO_CACHE_MAX_BYTES`` bounds the store, evicting
least-recently-used entries after each write.
"""

import contextlib
import hashlib
import json
import os
import shutil
import socket
import tempfile
import time

from repro.obs.journal import emit_event
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

_LOG = get_logger("repro.exec.store")

#: Bump to invalidate every existing entry (changes the key, not just
#: the validation) whenever trace/profile/clone serialization, the
#: functional simulator, the profiler, or the synthesizer changes in a
#: way that affects artifact content.
ARTIFACT_SCHEMA_VERSION = 6  # v6: per-column (streamable) trace digests

META_FILENAME = "meta.json"
#: File set of a classic pipeline entry; the default when an entry's
#: meta predates per-entry manifests.
_LEGACY_ENTRY_FILES = ("trace.npz", "clone_trace.npz",
                       "profile.json", "clone.s")

_FALSY = {"0", "off", "false", "no", "disabled"}

#: Seconds after which a pin whose owner cannot be liveness-probed
#: (another host) is considered stale and dropped.
PIN_TTL_SECONDS = 24 * 3600.0


def cache_enabled(environ=None):
    """Whether persistence is on (``REPRO_CACHE`` env, default on)."""
    environ = os.environ if environ is None else environ
    return environ.get("REPRO_CACHE", "").strip().lower() not in _FALSY


def default_cache_dir(environ=None):
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    environ = os.environ if environ is None else environ
    configured = environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def artifact_key(name, source, parameters, max_instructions,
                 sim_backend="interp"):
    """Content hash identifying one pipeline run's artifacts.

    ``sim_backend`` is the *resolved* functional-simulator backend
    (``turbo``/``interp``, never ``auto``) that produced the traces.
    The backends are bit-identical by contract, but keying on the
    backend means a cached trace always says exactly which engine made
    it and a backend bug can never alias into the other backend's
    entries.
    """
    material = "\x1f".join([
        f"schema={ARTIFACT_SCHEMA_VERSION}",
        f"name={name}",
        f"max_instructions={max_instructions}",
        f"sim_backend={sim_backend}",
        f"parameters={parameters!r}",
        source,
    ])
    digest = hashlib.sha256(material.encode()).hexdigest()[:24]
    safe = "".join(ch if ch.isalnum() or ch in "._-" else "_"
                   for ch in name)[:48]
    return f"{safe}-{digest}"


class ArtifactStore:
    """On-disk artifact cache with LRU eviction and telemetry counters."""

    def __init__(self, root=None, enabled=None, max_bytes=None):
        self.root = root if root is not None else default_cache_dir()
        self.enabled = cache_enabled() if enabled is None else bool(enabled)
        if max_bytes is None:
            raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
            max_bytes = int(raw) if raw else None
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.pin_skips = 0

    # ------------------------------------------------------------------
    @property
    def artifacts_dir(self):
        return os.path.join(self.root, "artifacts")

    @property
    def pins_dir(self):
        return os.path.join(self.root, "pins")

    def entry_dir(self, key):
        return os.path.join(self.artifacts_dir, key)

    def has(self, key):
        """Whether an entry exists (its meta manifest is present).

        Entries declare their own payload files in ``meta["files"]``
        (validated by :meth:`load`), so presence of the meta manifest
        is the existence test — the store holds classic pipeline
        entries and single-file sweep digest/bank/kernel entries alike.
        """
        return os.path.exists(
            os.path.join(self.entry_dir(key), META_FILENAME))

    # ------------------------------------------------------------------
    def load(self, key):
        """Return ``(meta, entry_dir)`` on hit, ``None`` on miss.

        A structurally invalid entry (missing files, unreadable or
        schema-mismatched meta) counts as a miss and is removed so the
        next write can repopulate it.
        """
        if not self.enabled:
            return None
        entry = self.entry_dir(key)
        if not self.has(key):
            self._record("miss", key=key)
            return None
        try:
            with open(os.path.join(entry, META_FILENAME)) as handle:
                meta = json.load(handle)
            if meta.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
                raise ValueError(
                    f"schema {meta.get('schema_version')} != "
                    f"{ARTIFACT_SCHEMA_VERSION}")
            for filename in meta.get("files", _LEGACY_ENTRY_FILES):
                if not os.path.exists(os.path.join(entry, filename)):
                    raise ValueError(f"missing payload file {filename}")
        except (OSError, ValueError, KeyError) as exc:
            _LOG.warning("store.corrupt", key=key, error=str(exc))
            shutil.rmtree(entry, ignore_errors=True)
            self._record("miss", key=key)
            return None
        with contextlib.suppress(OSError):  # LRU freshness for eviction
            os.utime(entry)
        self._record("hit", key=key)
        return meta, entry

    def save(self, key, meta, files):
        """Atomically publish one entry.

        ``files`` maps entry filenames to writer callables taking the
        destination path.  Returns the entry directory (the winner's, if
        a concurrent process published first).
        """
        if not self.enabled:
            return None
        entry = self.entry_dir(key)
        os.makedirs(self.artifacts_dir, exist_ok=True)
        staging = tempfile.mkdtemp(prefix=f".tmp-{key}-",
                                   dir=self.artifacts_dir)
        try:
            meta = dict(meta)
            meta["schema_version"] = ARTIFACT_SCHEMA_VERSION
            meta["key"] = key
            meta["files"] = sorted(files)
            for filename, writer in files.items():
                writer(os.path.join(staging, filename))
            with open(os.path.join(staging, META_FILENAME), "w") as handle:
                json.dump(meta, handle, indent=2, default=str)
                handle.write("\n")
            try:
                os.rename(staging, entry)
            except OSError:
                # Concurrent writer won the rename; ours is redundant.
                shutil.rmtree(staging, ignore_errors=True)
                return entry
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        self._record("write", key=key)
        _LOG.debug("store.write", key=key)
        if self.max_bytes is not None:
            self.prune(self.max_bytes)
        return entry

    # ------------------------------------------------------------------
    def entries(self):
        """(key, mtime, bytes) per entry, least recently used first."""
        if not os.path.isdir(self.artifacts_dir):
            return []
        rows = []
        for key in os.listdir(self.artifacts_dir):
            entry = os.path.join(self.artifacts_dir, key)
            if key.startswith(".tmp-") or not os.path.isdir(entry):
                continue
            size = 0
            for filename in os.listdir(entry):
                with contextlib.suppress(OSError):
                    size += os.path.getsize(os.path.join(entry, filename))
            try:
                mtime = os.path.getmtime(entry)
            except OSError:
                mtime = 0.0
            rows.append((key, mtime, size))
        rows.sort(key=lambda row: row[1])
        return rows

    def total_bytes(self):
        return sum(size for _, _, size in self.entries())

    # ------------------------------------------------------------------
    # Pin-while-leased: live fleet runs mark the artifacts their pending
    # cells will read, and prune refuses to evict them — a long matrix
    # can no longer LRU-evict its own warm inputs mid-run.
    # ------------------------------------------------------------------
    def pin(self, owner, keys):
        """Register ``keys`` as evict-protected on behalf of ``owner``.

        One pin file per owner (atomic replace); re-pinning overwrites.
        An empty key list simply unpins.
        """
        keys = sorted(set(keys))
        if not keys:
            self.unpin(owner)
            return
        if not self.enabled:
            return
        os.makedirs(self.pins_dir, exist_ok=True)
        record = {"owner": owner, "pid": os.getpid(),
                  "host": socket.gethostname(),
                  "ts": round(time.time(), 6), "keys": keys}
        fd, staging = tempfile.mkstemp(prefix=".pin-", dir=self.pins_dir)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=2)
                handle.write("\n")
            os.rename(staging, self._pin_path(owner))
        except OSError:
            with contextlib.suppress(OSError):
                os.remove(staging)

    def unpin(self, owner):
        """Drop ``owner``'s pin file (idempotent)."""
        with contextlib.suppress(OSError):
            os.remove(self._pin_path(owner))

    def _pin_path(self, owner):
        safe = "".join(ch if ch.isalnum() or ch in "._-" else "_"
                       for ch in str(owner))[:120]
        return os.path.join(self.pins_dir, f"{safe}.json")

    def pinned_keys(self):
        """Union of live pins; stale pin files are garbage-collected.

        A pin is stale when its owner pid is provably dead on this host,
        or (cross-host) when it is older than ``PIN_TTL_SECONDS``.
        """
        if not os.path.isdir(self.pins_dir):
            return frozenset()
        pinned = set()
        host = socket.gethostname()
        now = time.time()
        for name in os.listdir(self.pins_dir):
            path = os.path.join(self.pins_dir, name)
            if not name.endswith(".json"):
                continue
            try:
                with open(path) as handle:
                    record = json.load(handle)
                keys = record["keys"]
            except (OSError, ValueError, KeyError, TypeError):
                with contextlib.suppress(OSError):
                    os.remove(path)
                continue
            stale = False
            if (record.get("host") == host
                    and isinstance(record.get("pid"), int)):
                try:
                    os.kill(record["pid"], 0)
                except ProcessLookupError:
                    stale = True
                except OSError:
                    pass
            elif now - float(record.get("ts") or 0.0) > PIN_TTL_SECONDS:
                stale = True
            if stale:
                _LOG.info("store.stale_pin", owner=record.get("owner"))
                with contextlib.suppress(OSError):
                    os.remove(path)
                continue
            pinned.update(keys)
        return frozenset(pinned)

    def prune(self, max_bytes):
        """Evict LRU entries until the store fits; returns evicted keys.

        Pinned entries are skipped (counted in ``pin_skips``), so a
        store whose overage is entirely pinned stays over budget rather
        than sabotaging the run that pinned it.
        """
        rows = self.entries()
        total = sum(size for _, _, size in rows)
        pinned = self.pinned_keys() if total > max_bytes else frozenset()
        evicted = []
        for key, _, size in rows:
            if total <= max_bytes:
                break
            if key in pinned:
                self.pin_skips += 1
                REGISTRY.counter("exec.store.pin_skips").inc()
                emit_event("store", event="pin_skip", key=key)
                continue
            shutil.rmtree(self.entry_dir(key), ignore_errors=True)
            total -= size
            evicted.append(key)
            self._record("eviction", key=key, bytes=size)
            self.evicted_bytes += size
            REGISTRY.counter("exec.store.evicted_bytes").inc(size)
            REGISTRY.counter("exec.store.evicted_entries").inc()
        if evicted:
            _LOG.info("store.pruned", evicted=len(evicted),
                      remaining_bytes=total)
        return evicted

    def clear(self):
        """Remove every entry (counters are left alone)."""
        shutil.rmtree(self.artifacts_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    _EVENT_ATTRS = {"hit": "hits", "miss": "misses", "write": "writes",
                    "eviction": "evictions"}

    def _record(self, event, **journal_fields):
        attribute = self._EVENT_ATTRS[event]
        setattr(self, attribute, getattr(self, attribute) + 1)
        REGISTRY.counter(f"exec.store.{event}").inc()
        emit_event("store", event=event, **journal_fields)

    def reset_counters(self):
        """Zero the per-instance event counts (per-command accounting)."""
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.pin_skips = 0

    def stats(self):
        """Provenance block for manifests and benchmark envelopes."""
        return {"root": self.root, "enabled": self.enabled,
                "hits": self.hits, "misses": self.misses,
                "writes": self.writes, "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "pin_skips": self.pin_skips}


_DEFAULT_STORE = None


def default_store():
    """The process-wide store, re-resolved when the env changes."""
    global _DEFAULT_STORE
    root = default_cache_dir()
    enabled = cache_enabled()
    if (_DEFAULT_STORE is None or _DEFAULT_STORE.root != root
            or _DEFAULT_STORE.enabled != enabled):
        _DEFAULT_STORE = ArtifactStore(root=root, enabled=enabled)
    return _DEFAULT_STORE


def reset_default_store():
    """Forget the cached default store (tests and CLI teardown)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = None
