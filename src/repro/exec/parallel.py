"""Parallel grid execution for (workload × configuration) experiments.

:func:`parallel_map` is an order-preserving map over independent tasks:
with ``jobs <= 1`` it is a plain Python loop (so serial results are
*bit-identical* to the pre-parallel code path), otherwise it fans out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Results come
back in input order either way, so experiment output never depends on
scheduling.

Workers that need one large shared input (an address stream, a pair of
traces) use :func:`shared_state_map`, which ships the state to each
worker exactly once through the pool initializer instead of pickling it
into every task.

Job counts resolve as: explicit argument → ``REPRO_JOBS`` env var → 1.
Worker processes inherit the environment, so the persistent artifact
store stays shared across the pool; telemetry counters incremented
inside workers stay in those processes (per-process registries are not
merged back — but with a run journal active, each worker journals its
own metric deltas and wraps every task in an ``exec.task`` span whose
parent is the dispatching span, inherited through
``REPRO_TRACE_PARENT``).
"""

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager

from repro.obs import trace as _trace
from repro.obs.journal import (active_journal, emit_event,
                               emit_metric_deltas)
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

_LOG = get_logger("repro.exec.parallel")


@contextmanager
def _propagated_trace():
    """Export the current span id to pool workers for the pool's life.

    Workers inherit ``REPRO_TRACE_PARENT`` at fork/spawn, so their first
    span attaches under the span that dispatched the grid.  No-op when
    there is nothing to propagate.
    """
    parent = _trace.current_span_id()
    if parent is None or active_journal() is None:
        yield
        return
    previous = os.environ.get(_trace.TRACE_PARENT_ENV)
    os.environ[_trace.TRACE_PARENT_ENV] = parent
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(_trace.TRACE_PARENT_ENV, None)
        else:
            os.environ[_trace.TRACE_PARENT_ENV] = previous


def _call_traced(task):
    """Worker-side wrapper journaling one task as an ``exec.task`` span."""
    func, index, item = task
    if active_journal() is None:
        return func(item)
    from repro.obs.timing import TRACER
    with TRACER.span("exec.task", task=index,
                     func=getattr(func, "__name__", str(func))):
        result = func(item)
    emit_event("task_done", task=index)
    emit_metric_deltas()
    return result


def resolve_jobs(jobs=None, environ=None):
    """Effective worker count: argument, else ``REPRO_JOBS``, else 1.

    ``0`` (from either source) means "one worker per CPU".  Anything
    unparseable falls back to serial.
    """
    environ = os.environ if environ is None else environ
    if jobs is None:
        raw = environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            _LOG.warning("parallel.bad_jobs", value=raw)
            return 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(func, items, jobs=None):
    """Map ``func`` over ``items``; deterministic, order-preserving.

    ``func`` must be picklable (a module-level function) when
    ``jobs > 1``.  With ``jobs <= 1`` no pool is created and the call is
    exactly ``[func(item) for item in items]``.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(jobs, len(items))
    REGISTRY.gauge("exec.parallel.jobs").set(workers)
    REGISTRY.counter("exec.parallel.tasks").inc(len(items))
    _LOG.debug("parallel.map", tasks=len(items), jobs=workers)
    emit_event("tasks", total=len(items), jobs=workers)
    with _propagated_trace(), \
            ProcessPoolExecutor(max_workers=workers) as pool:
        if active_journal() is None:
            return list(pool.map(func, items))
        return list(pool.map(
            _call_traced,
            [(func, index, item)
             for index, item in enumerate(items)]))


# ----------------------------------------------------------------------
# Shared-state variant: big inputs travel once per worker, not per task
# ----------------------------------------------------------------------
_SHARED_STATE = None


def _init_shared(state):
    global _SHARED_STATE
    _SHARED_STATE = state


def _call_with_shared(task):
    func, index, item = task
    if active_journal() is None:
        return func(_SHARED_STATE, item)
    from repro.obs.timing import TRACER
    with TRACER.span("exec.task", task=index,
                     func=getattr(func, "__name__", str(func))):
        result = func(_SHARED_STATE, item)
    emit_event("task_done", task=index)
    emit_metric_deltas()
    return result


def shared_state_map(func, items, state, jobs=None):
    """Like :func:`parallel_map` for ``func(state, item)`` tasks.

    ``state`` is delivered to each worker once via the pool initializer
    (and passed directly in the serial path), so a multi-megabyte
    address stream is pickled ``jobs`` times instead of ``len(items)``
    times.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [func(state, item) for item in items]
    workers = min(jobs, len(items))
    REGISTRY.gauge("exec.parallel.jobs").set(workers)
    REGISTRY.counter("exec.parallel.tasks").inc(len(items))
    _LOG.debug("parallel.shared_map", tasks=len(items), jobs=workers)
    emit_event("tasks", total=len(items), jobs=workers)
    with _propagated_trace(), \
            ProcessPoolExecutor(max_workers=workers,
                                initializer=_init_shared,
                                initargs=(state,)) as pool:
        return list(pool.map(
            _call_with_shared,
            [(func, index, item)
             for index, item in enumerate(items)]))
