"""Parallel grid execution for (workload × configuration) experiments.

:func:`parallel_map` is an order-preserving map over independent tasks:
with ``jobs <= 1`` it is a plain Python loop (so serial results are
*bit-identical* to the pre-parallel code path), otherwise it fans out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Results come
back in input order either way, so experiment output never depends on
scheduling.

Workers that need one large shared input (an address stream, a pair of
traces) use :func:`shared_state_map`, which ships the state to each
worker exactly once through the pool initializer instead of pickling it
into every task.

Job counts resolve as: explicit argument → ``REPRO_JOBS`` env var → 1.
Worker processes inherit the environment, so the persistent artifact
store stays shared across the pool; telemetry counters incremented
inside workers stay in those processes (per-process registries are not
merged back).
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

_LOG = get_logger("repro.exec.parallel")


def resolve_jobs(jobs=None, environ=None):
    """Effective worker count: argument, else ``REPRO_JOBS``, else 1.

    ``0`` (from either source) means "one worker per CPU".  Anything
    unparseable falls back to serial.
    """
    environ = os.environ if environ is None else environ
    if jobs is None:
        raw = environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            _LOG.warning("parallel.bad_jobs", value=raw)
            return 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(func, items, jobs=None):
    """Map ``func`` over ``items``; deterministic, order-preserving.

    ``func`` must be picklable (a module-level function) when
    ``jobs > 1``.  With ``jobs <= 1`` no pool is created and the call is
    exactly ``[func(item) for item in items]``.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    workers = min(jobs, len(items))
    REGISTRY.gauge("exec.parallel.jobs").set(workers)
    REGISTRY.counter("exec.parallel.tasks").inc(len(items))
    _LOG.debug("parallel.map", tasks=len(items), jobs=workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(func, items))


# ----------------------------------------------------------------------
# Shared-state variant: big inputs travel once per worker, not per task
# ----------------------------------------------------------------------
_SHARED_STATE = None


def _init_shared(state):
    global _SHARED_STATE
    _SHARED_STATE = state


def _call_with_shared(task):
    func, item = task
    return func(_SHARED_STATE, item)


def shared_state_map(func, items, state, jobs=None):
    """Like :func:`parallel_map` for ``func(state, item)`` tasks.

    ``state`` is delivered to each worker once via the pool initializer
    (and passed directly in the serial path), so a multi-megabyte
    address stream is pickled ``jobs`` times instead of ``len(items)``
    times.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [func(state, item) for item in items]
    workers = min(jobs, len(items))
    REGISTRY.gauge("exec.parallel.jobs").set(workers)
    REGISTRY.counter("exec.parallel.tasks").inc(len(items))
    _LOG.debug("parallel.shared_map", tasks=len(items), jobs=workers)
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_init_shared,
                             initargs=(state,)) as pool:
        return list(pool.map(_call_with_shared,
                             [(func, item) for item in items]))
