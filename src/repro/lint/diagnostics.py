"""Shared diagnostics engine for the static-analysis subsystem.

Every lint pass — structural (``SR1xx``), profile-conformance
(``CF2xx``), and disclosure (``DL3xx``) — reports through one
vocabulary: a stable *code* drawn from the :data:`CODES` registry, a
*severity*, a human message, and an optional source location
(instruction index, basic block, virtual pc).  Stability matters: codes
appear in run manifests, benchmark provenance, and CI logs, so
downstream tooling can count and compare them across revisions.

Severities:

* ``error``   — the program is malformed or violates the synthesis
  contract; the post-synthesis gate raises on these.
* ``warning`` — suspicious but well-defined behaviour (the SRISC machine
  zero-initializes registers, so e.g. use-before-def executes fine).
* ``info``    — observations that carry no judgement.

Severity precedence (most to least specific, applied uniformly across
every pass and every code family):

1. an explicit ``severity=`` argument to :func:`make_diagnostic` (used
   when one code covers situations of genuinely different weight);
2. a per-run ``severity_overrides`` mapping (``{code: severity}``),
   threaded from the CLI's repeatable ``--severity CODE=LEVEL`` flag
   and from ``SynthesisParameters.severity_overrides`` through every
   structural, conformance, safety, static-profile, and disclosure
   check;
3. the registry default recorded in :data:`CODES`.
"""

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Ordering for "is at least as severe as" comparisons.
SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


@dataclass(frozen=True)
class CodeSpec:
    """Registry entry for one stable diagnostic code."""

    code: str
    slug: str
    severity: str  # default severity; overridable per run
    summary: str


#: The full diagnostic vocabulary.  ``SR`` = structural verification,
#: ``CF`` = clone/profile conformance.  Codes are never renumbered.
CODES = {spec.code: spec for spec in (
    CodeSpec("SR101", "unreachable-block", WARNING,
             "basic block cannot be reached from the entry point"),
    CodeSpec("SR102", "bad-branch-target", ERROR,
             "branch or jump target is outside the program"),
    CodeSpec("SR103", "fallthrough-end", ERROR,
             "control can fall through past the last instruction"),
    CodeSpec("SR104", "use-before-def", WARNING,
             "register may be read before any write reaches it"),
    CodeSpec("SR105", "write-to-zero", WARNING,
             "instruction writes the hardwired zero register"),
    CodeSpec("SR106", "oob-memory", ERROR,
             "memory operand statically addresses outside the data "
             "image and stack"),
    CodeSpec("CF200", "clone-shape", ERROR,
             "clone does not have the synthesizer's init/loop/tail shape"),
    CodeSpec("CF201", "mix-divergence", ERROR,
             "static instruction mix diverges from the profile"),
    CodeSpec("CF202", "dep-divergence", WARNING,
             "dependency-distance histogram diverges from the profile"),
    CodeSpec("CF203", "branch-divergence", ERROR,
             "branch machinery does not realize the profiled "
             "taken/transition rates"),
    CodeSpec("CF204", "stream-divergence", ERROR,
             "stream pointer advance does not match the memory plan"),
    CodeSpec("CF205", "footprint-divergence", ERROR,
             "clone data footprint diverges from the profiled footprint"),
    # --- Safety proofs (abstract interpretation, repro.lint.absint) ---
    CodeSpec("SR110", "loop-bound", INFO,
             "loop trip count is statically bounded"),
    CodeSpec("SR111", "loop-unbounded", WARNING,
             "loop trip count cannot be statically bounded"),
    CodeSpec("SR112", "termination", INFO,
             "program provably terminates within a bounded instruction "
             "count"),
    CodeSpec("SR113", "footprint-interval", INFO,
             "every dynamic memory access stays within a proven address "
             "interval"),
    CodeSpec("SR114", "footprint-unbounded", WARNING,
             "some memory access address cannot be statically bounded"),
    # --- Static profile prediction (repro.lint.staticprof) ---
    CodeSpec("CF210", "static-shape", ERROR,
             "static analysis cannot recover a bounded single-loop "
             "execution structure for the clone"),
    CodeSpec("CF211", "static-mix", ERROR,
             "statically predicted instruction mix diverges from the "
             "target profile"),
    CodeSpec("CF212", "static-dep", WARNING,
             "statically predicted dependency-distance histogram "
             "diverges from the target profile"),
    CodeSpec("CF213", "static-branch", ERROR,
             "statically predicted branch behaviour diverges from the "
             "target profile"),
    CodeSpec("CF214", "static-stream", ERROR,
             "statically derived stream strides diverge from the memory "
             "plan"),
    CodeSpec("CF215", "static-footprint", ERROR,
             "statically predicted data footprint diverges from the "
             "profiled footprint"),
    # --- Disclosure audit (repro.lint.disclosure) ---
    CodeSpec("DL300", "unaccounted-literal", ERROR,
             "immediate has no recorded provenance in the synthesis "
             "statistics"),
    CodeSpec("DL301", "raw-literal", ERROR,
             "constant derives from a raw address/data value of the "
             "profiled application"),
    CodeSpec("DL302", "missing-provenance", WARNING,
             "clone carries no provenance annotations; audit degraded "
             "to raw-value screening"),
    CodeSpec("DL303", "disclosure-audit", INFO,
             "disclosure audit summary"),
)}


@dataclass
class Diagnostic:
    """One finding: code + severity + message + optional location."""

    code: str
    severity: str
    message: str
    index: int = None  # instruction index, when the finding has one
    block: int = None  # basic block id
    pc: int = None  # virtual address of ``index``
    data: dict = field(default_factory=dict)

    @property
    def slug(self):
        return CODES[self.code].slug

    def location(self):
        """Render the most precise location available (may be empty)."""
        if self.index is not None:
            return f"@{self.index}"
        if self.block is not None:
            return f"bb{self.block}"
        return ""

    def render(self, program_name=""):
        where = self.location()
        prefix = ":".join(part for part in (program_name, where) if part)
        head = f"{prefix}: " if prefix else ""
        return f"{head}{self.severity} {self.code} [{self.slug}] {self.message}"

    def to_dict(self):
        payload = {"code": self.code, "slug": self.slug,
                   "severity": self.severity, "message": self.message}
        for key in ("index", "block", "pc"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.data:
            payload["data"] = dict(self.data)
        return payload


def make_diagnostic(code, message, severity=None, severity_overrides=None,
                    **location):
    """Build a diagnostic with the code's default (or overridden) severity."""
    spec = CODES[code]
    if severity is None:
        severity = (severity_overrides or {}).get(code, spec.severity)
    if severity not in SEVERITY_RANK:
        raise ValueError(f"unknown severity {severity!r}")
    return Diagnostic(code=code, severity=severity, message=message,
                      **location)


class LintReport:
    """An ordered collection of diagnostics for one program.

    ``ok`` means *no error-severity findings* — warnings do not fail a
    report (the CLI's ``--strict`` tightens that at the edge).
    """

    def __init__(self, program_name="<program>", diagnostics=None):
        self.program_name = program_name
        self.diagnostics = list(diagnostics or [])

    def add(self, diagnostic):
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics):
        self.diagnostics.extend(diagnostics)

    def __len__(self):
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # ------------------------------------------------------------------
    def errors(self):
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self):
        return not self.errors()

    def codes(self):
        """``{code: count}`` over every finding (stable across runs)."""
        counts = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return dict(sorted(counts.items()))

    def max_severity(self):
        """The highest severity present, or None for a clean report."""
        best = None
        for diagnostic in self.diagnostics:
            if best is None or (SEVERITY_RANK[diagnostic.severity]
                                > SEVERITY_RANK[best]):
                best = diagnostic.severity
        return best

    # ------------------------------------------------------------------
    def summary(self):
        """Compact verdict block for manifests and artifact metadata."""
        return {"ok": self.ok, "errors": len(self.errors()),
                "warnings": len(self.warnings()), "codes": self.codes()}

    def to_dict(self):
        payload = self.summary()
        payload["program"] = self.program_name
        payload["diagnostics"] = [d.to_dict() for d in self.diagnostics]
        return payload

    def render_text(self):
        """Human-readable block: one line per finding plus a verdict."""
        lines = [d.render(self.program_name) for d in self.diagnostics]
        verdict = "clean" if not self.diagnostics else (
            f"{len(self.errors())} error(s), {len(self.warnings())} "
            f"warning(s)")
        lines.append(f"{self.program_name}: {verdict}")
        return "\n".join(lines)


def merge_reports(program_name, *reports):
    """Concatenate several passes' reports into one."""
    merged = LintReport(program_name)
    for report in reports:
        merged.extend(report.diagnostics)
    return merged
