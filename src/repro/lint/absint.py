"""Abstract interpretation over the lint CFG: machine-checked safety proofs.

This is the analysis substrate for certifying a clone *without running
it* (the paper's dissemination story): a worklist fixpoint over
:class:`repro.lint.cfg.ControlFlowGraph` with two abstract domains
tailored to SRISC and to the synthesizer's regular output shape:

* a **stride/interval domain** — every integer register is tracked as
  ``(lo, hi, stride)`` over the unsigned 32-bit value space, meaning
  "some value in ``{lo, lo+stride, ..., hi}``".  Transfer functions
  over-approximate (anything that may wrap goes straight to ⊤), and
  conditional branches refine the intervals on their out-edges, so
  counted loops guarded by ``blt``/``bge``/``bne`` converge to tight
  bounds without losing soundness;

* a **modulo-counter (countdown) domain** — the synthesizer realizes
  bounded pointer walks as ``advance a each iteration, reset to base
  when a countdown expires``.  A non-relational interval can never
  bound such a pointer (its maximum is tied to the countdown's value),
  so the analysis *recognizes* the pattern structurally, verifies the
  relational invariant ``p = base + a·(period - c)`` by a symbolic walk
  over the loop body, and then injects the implied header interval
  ``p ∈ [base, base + a·(period-1)]`` into the fixpoint as a proven
  clamp.

Three capabilities sit on the fixpoint:

1. loop trip-count bounds (``SR110``/``SR111``) via affine induction
   registers against loop-invariant limits;
2. whole-program termination plus a total dynamic instruction bound
   (``SR112``), valid when every retreating CFG edge is the back edge
   of a trip-bounded natural loop and the program contains no indirect
   jumps;
3. a proven dynamic memory footprint interval (``SR113``/``SR114``):
   every executed load/store address provably falls inside one
   ``[lo, hi)`` byte range.

Everything here is *sound by construction*: when a bound cannot be
proved the analysis reports "unbounded" (a warning diagnostic), never a
guess.  The machine-readable :func:`safety_certificate` rides along in
clone stats, exec-store metadata, and run manifests.
"""

from dataclasses import dataclass, field
from math import gcd

import numpy as np

from repro.isa.columns import columns_for
from repro.isa.registers import NUM_INT_REGS, REG_SP
from repro.lint.cfg import ControlFlowGraph
from repro.lint.dataflow import ACCESS_WIDTH
from repro.lint.diagnostics import LintReport, make_diagnostic

_M32 = 0xFFFFFFFF
_SIGNED_MAX = 0x7FFFFFFF

#: Interval = (lo, hi, stride): all values v with lo <= v <= hi and
#: v ≡ lo (mod stride); stride == 0 means the constant lo.
TOP = (0, _M32, 1)

#: Join-count at a widening point before bounds are widened to the
#: extremes (refinement-capped loops stabilize within this delay).
WIDEN_DELAY = 3

#: Address intervals wider than this are reported as unbounded rather
#: than claimed as a (vacuously true) footprint proof.
MAX_USEFUL_SPAN = 1 << 28

CERTIFICATE_SCHEMA_VERSION = 1


def _const(value):
    return (value & _M32, value & _M32, 0)


def _is_const(ivl):
    return ivl[2] == 0 and ivl[0] == ivl[1]


def _join(a, b):
    if a == b:
        return a
    lo = a[0] if a[0] <= b[0] else b[0]
    hi = a[1] if a[1] >= b[1] else b[1]
    stride = gcd(gcd(a[2], b[2]), abs(a[0] - b[0]))
    return (lo, hi, stride)


def _widen(old, new):
    """Classic interval widening with stride join; stable under iteration."""
    if old == new:
        return old
    lo = old[0] if new[0] >= old[0] else 0
    hi = old[1] if new[1] <= old[1] else _M32
    stride = gcd(gcd(old[2], new[2]), abs(old[0] - new[0]))
    return (lo, hi, stride)


def _clamp(ivl, lo, hi):
    """Meet ``ivl`` with ``[lo, hi]``, keeping the stride lattice sound.

    Returns None for an empty (infeasible) result.
    """
    new_lo = ivl[0] if ivl[0] >= lo else lo
    new_hi = ivl[1] if ivl[1] <= hi else hi
    stride = ivl[2]
    if stride:
        # Snap the bounds onto the residue class of the original set.
        offset = (new_lo - ivl[0]) % stride
        if offset:
            new_lo += stride - offset
        new_hi -= (new_hi - ivl[0]) % stride
    if new_lo > new_hi:
        return None
    if new_lo == new_hi:
        return (new_lo, new_hi, 0)
    return (new_lo, new_hi, stride)


def _add_const(ivl, imm):
    lo, hi = ivl[0] + imm, ivl[1] + imm
    if lo < 0 or hi > _M32:
        return TOP
    return (lo, hi, ivl[2])


def _add(a, b):
    lo, hi = a[0] + b[0], a[1] + b[1]
    if lo < 0 or hi > _M32:
        return TOP
    return (lo, hi, gcd(a[2], b[2]) if (a[2] or b[2]) else 0)


def _sub(a, b):
    lo, hi = a[0] - b[1], a[1] - b[0]
    if lo < 0 or hi > _M32:
        return TOP
    return (lo, hi, gcd(a[2], b[2]) if (a[2] or b[2]) else 0)


def _shift_left(a, k):
    hi = a[1] << k
    if hi > _M32:
        return TOP
    return (a[0] << k, hi, a[2] << k if a[2] else 0)


def _shift_right(a, k):
    lo, hi = a[0] >> k, a[1] >> k
    if lo == hi:
        return (lo, hi, 0)
    stride = a[2] >> k if a[2] and not a[2] % (1 << k) else 1
    return (lo, hi, stride or 1)


def _or_const(a, imm):
    """``ori``: exact when the immediate fills known-zero low bits."""
    if imm == 0:
        return a
    if imm < 0:
        return TOP
    if _is_const(a):
        return _const(a[0] | imm)
    width = imm.bit_length()
    unit = 1 << width
    if a[2] and a[2] % unit == 0 and a[0] % unit == 0:
        return _add_const(a, imm)  # low bits are provably zero
    return TOP


def _and_const(a, imm):
    if _is_const(a):
        return _const(a[0] & (imm & _M32))
    if imm >= 0:
        return (0, imm, 1) if imm else _const(0)
    return TOP


def _mul(a, b):
    if _is_const(a) and _is_const(b):
        return _const(a[0] * b[0])
    for x, y in ((a, b), (b, a)):
        if _is_const(x):
            c = x[0]
            if c == 0:
                return _const(0)
            if y[1] * c <= _M32:
                return (y[0] * c, y[1] * c, (y[2] * c) if y[2] else 0)
    return TOP


@dataclass
class LoopInfo:
    """One natural loop plus everything the proofs derived about it."""

    header: int
    back_sources: tuple
    body: frozenset
    trip_bound: int = None
    exact: bool = False
    reason: str = ""
    countdowns: list = field(default_factory=list)


@dataclass
class CountdownInfo:
    """A verified countdown-guarded pointer walk (modulo-counter domain).

    The relational invariant ``pointer = base + advance·(period -
    counter)`` holds at the loop header, with ``counter ∈ [1, period]``;
    both facts are established by the structural verification in
    :func:`_find_countdowns`, not assumed.
    """

    pointer: int
    counter: int
    advance: int
    period: int
    base: int
    advance_index: int
    decrement_index: int
    branch_index: int
    reset_start: int
    reset_end: int


@dataclass
class AbsintResult:
    """Fixpoint states plus the derived safety facts for one program."""

    program: object
    cfg: ControlFlowGraph
    loops: list
    in_states: dict
    terminates: bool = False
    instruction_bound: int = None
    footprint: tuple = None  # (lo, hi) byte interval, hi exclusive
    mem_intervals: dict = field(default_factory=dict)
    unbounded_memops: list = field(default_factory=list)
    degraded: str = ""
    block_bounds: dict = field(default_factory=dict)

    def loop_at(self, header):
        for loop in self.loops:
            if loop.header == header:
                return loop
        return None


# ----------------------------------------------------------------------
# Transfer functions
# ----------------------------------------------------------------------
def _entry_state(program):
    state = [_const(0)] * NUM_INT_REGS
    state[REG_SP] = _const(program.stack_top)
    return state


# Dispatch codes for the precomputed transfer plan.  Constant results
# (lui, link registers, lbu's byte range) fold at plan-build time.
_K_ADDI, _K_SET, _K_TOP, _K_ADD, _K_SUB = 0, 1, 2, 3, 4
_K_ORI, _K_ANDI, _K_XORI, _K_SLLI, _K_SRL, _K_SRA = 5, 6, 7, 8, 9, 10
_K_CMP, _K_BITOP, _K_MUL = 11, 12, 13

_CMP_OPS = ("slt", "sltu", "slti", "sltiu", "feq", "flt", "fle")
_BIT_OPS = ("and", "or", "xor", "nor", "sll", "srl", "sra")


def _transfer_plan(columns):
    """Per-instruction ``(kind, rd, r1, r2, aux, op)`` tuples, cached.

    One build per program replaces the per-sweep numpy scalar reads and
    opcode string chains with plain-int tuple dispatch; instructions
    that cannot change tracked state (no dest, r0 dest, fp dest) are
    ``None`` so the hot loop skips them with one load.
    """
    plan = columns.derived.get("absint_plan")
    if plan is not None:
        return plan
    plan = [None] * columns.n
    src1s = columns.src1.tolist()
    src2s = columns.src2.tolist()
    for index, rd in enumerate(columns.dest_list):
        if rd <= 0 or rd >= NUM_INT_REGS:
            continue  # r0 writes are discarded; fp file is not tracked
        op = columns.opcode_list[index]
        r1 = src1s[index]
        r2 = src2s[index]
        if not 0 <= r1 < NUM_INT_REGS:
            r1 = -1
        if not 0 <= r2 < NUM_INT_REGS:
            r2 = -1
        imm = columns.imm_list[index]
        if op == "addi":
            entry = (_K_ADDI, rd, r1, r2, imm, op)
        elif op == "add":
            entry = (_K_ADD, rd, r1, r2, imm, op)
        elif op == "sub":
            entry = (_K_SUB, rd, r1, r2, imm, op)
        elif op == "lui":
            entry = (_K_SET, rd, r1, r2, _const((imm << 16) & _M32), op)
        elif op == "ori":
            entry = (_K_ORI, rd, r1, r2, imm, op)
        elif op == "andi":
            entry = (_K_ANDI, rd, r1, r2, imm, op)
        elif op == "xori":
            entry = (_K_XORI, rd, r1, r2, imm, op)
        elif op == "slli":
            entry = (_K_SLLI, rd, r1, r2, imm & 31, op)
        elif op == "srli":
            entry = (_K_SRL, rd, r1, r2, imm & 31, op)
        elif op == "srai":
            entry = (_K_SRA, rd, r1, r2, imm & 31, op)
        elif op in _CMP_OPS:
            entry = (_K_CMP, rd, r1, r2, imm, op)
        elif op in _BIT_OPS:
            entry = (_K_BITOP, rd, r1, r2, imm, op)
        elif op == "mul":
            entry = (_K_MUL, rd, r1, r2, imm, op)
        elif op == "lbu":
            entry = (_K_SET, rd, r1, r2, (0, 255, 1), op)
        elif op in ("jal", "jalr"):
            entry = (_K_SET, rd, r1, r2,
                     _const(int(columns.pc_addresses[index]) + 4), op)
        else:
            # Loads, division, fp-to-int conversion, anything exotic.
            entry = (_K_TOP, rd, r1, r2, imm, op)
        plan[index] = entry
    columns.derived["absint_plan"] = plan
    return plan


def _transfer_range(state, start, end, columns):
    """Apply instructions ``[start, end)`` to a copied register state."""
    plan = columns.derived.get("absint_plan")
    if plan is None:
        plan = _transfer_plan(columns)
    state = list(state)
    for index in range(start, end):
        entry = plan[index]
        if entry is None:
            continue
        kind, rd, r1, r2, aux, op = entry
        a = state[r1] if r1 >= 0 else TOP
        if kind == _K_ADDI:
            value = _add_const(a, aux)
        elif kind == _K_SET:
            value = aux
        elif kind == _K_TOP:
            value = TOP
        elif kind == _K_ADD:
            value = _add(a, state[r2] if r2 >= 0 else TOP)
        elif kind == _K_SUB:
            value = _sub(a, state[r2] if r2 >= 0 else TOP)
        elif kind == _K_ORI:
            value = _or_const(a, aux)
        elif kind == _K_ANDI:
            value = _and_const(a, aux)
        elif kind == _K_XORI:
            value = _const(a[0] ^ (aux & _M32)) if _is_const(a) else TOP
        elif kind == _K_SLLI:
            value = _shift_left(a, aux)
        elif kind == _K_SRL:
            value = _shift_right(a, aux)
        elif kind == _K_SRA:
            value = TOP if a[1] > _SIGNED_MAX else _shift_right(a, aux)
        elif kind == _K_CMP:
            value = _comparison_value(
                op, a, state[r2] if r2 >= 0 else TOP, aux)
        elif kind == _K_BITOP:
            value = _varshift_or_bitop(
                op, a, state[r2] if r2 >= 0 else TOP)
        else:
            value = _mul(a, state[r2] if r2 >= 0 else TOP)
        state[rd] = value
    return state


def _comparison_value(op, a, b, imm):
    """slt-family results are {0,1}; decide them when the intervals do."""
    if op in ("slti", "sltiu"):
        b = _const(imm)
    if op in ("feq", "flt", "fle"):
        return (0, 1, 1)
    if op in ("sltu", "sltiu") or (a[1] <= _SIGNED_MAX
                                   and b[1] <= _SIGNED_MAX):
        if a[1] < b[0]:
            return _const(1)
        if a[0] >= b[1] and not (_is_const(a) and _is_const(b)
                                 and a[0] < b[0]):
            return _const(0)
    return (0, 1, 1)


def _varshift_or_bitop(op, a, b):
    if _is_const(a) and _is_const(b):
        x, y = a[0], b[0]
        if op == "and":
            return _const(x & y)
        if op == "or":
            return _const(x | y)
        if op == "xor":
            return _const(x ^ y)
        if op == "nor":
            return _const(~(x | y))
        if op == "sll":
            return _const((x << (y & 31)) & _M32)
        if op == "srl":
            return _const(x >> (y & 31))
        if op == "sra" and x <= _SIGNED_MAX:
            return _const(x >> (y & 31))
    if op == "and" and b[1] <= _SIGNED_MAX:
        return (0, b[1], 1)
    if op == "and" and a[1] <= _SIGNED_MAX:
        return (0, a[1], 1)
    return TOP


# ----------------------------------------------------------------------
# Branch refinement
# ----------------------------------------------------------------------
def _refine_edge(state, op, r1, r2, taken):
    """Refined copy of ``state`` on one branch edge; None if infeasible."""
    if r1 < 0 or r2 < 0:
        return state
    a = state[r1]
    b = state[r2]
    if op == "beq":
        equal = taken
    elif op == "bne":
        equal = not taken
    elif op in ("blt", "bge", "bltu", "bgeu"):
        return _refine_order(state, op, r1, r2, a, b, taken)
    else:
        return state
    if equal:
        lo = max(a[0], b[0])
        hi = min(a[1], b[1])
        na = _clamp(a, lo, hi)
        nb = _clamp(b, lo, hi)
        if na is None or nb is None:
            return None
        state = list(state)
        if r1:
            state[r1] = na
        if r2:
            state[r2] = nb
        return state
    # Not-equal edge: only single-point exclusions are expressible.
    if _is_const(a) and _is_const(b) and a[0] == b[0]:
        return None
    state = list(state)
    for reg, ivl, other in ((r1, a, b), (r2, b, a)):
        if reg and _is_const(other):
            c = other[0]
            step = ivl[2] or 1
            if ivl[0] == c:
                refined = _clamp(ivl, c + step, ivl[1])
            elif ivl[1] == c:
                refined = _clamp(ivl, ivl[0], c - step)
            else:
                continue
            if refined is None:
                return None
            state[reg] = refined
    return state


def _refine_order(state, op, r1, r2, a, b, taken):
    unsigned = op in ("bltu", "bgeu")
    if not unsigned and (a[1] > _SIGNED_MAX or b[1] > _SIGNED_MAX):
        return state  # may straddle the sign boundary; skip refinement
    less = taken if op in ("blt", "bltu") else not taken
    if less:  # a < b
        na = _clamp(a, a[0], b[1] - 1)
        nb = _clamp(b, a[0] + 1, b[1])
    else:  # a >= b
        na = _clamp(a, b[0], a[1])
        nb = _clamp(b, b[0], a[1])
    if na is None or nb is None:
        return None
    state = list(state)
    if r1:
        state[r1] = na
    if r2:
        state[r2] = nb
    return state


# ----------------------------------------------------------------------
# The worklist fixpoint
# ----------------------------------------------------------------------
def _branch_facts(columns):
    """``{index: (op, r1, r2, taken_bid)}`` per conditional, cached."""
    facts = columns.derived.get("absint_branch_facts")
    if facts is None:
        facts = {}
        for index in (i for i, cond in enumerate(columns.is_cond.tolist())
                      if cond):
            target = columns.target_list[index]
            taken_bid = (int(columns.block_of[target])
                         if 0 <= target < columns.n else -1)
            facts[index] = (columns.opcode_list[index],
                            int(columns.src1[index]),
                            int(columns.src2[index]), taken_bid)
        columns.derived["absint_branch_facts"] = facts
    return facts


def _edge_states(bid, out_state, cfg, columns):
    """[(succ, state)] with terminator refinement; infeasible edges drop."""
    block = cfg.blocks[bid]
    last = block.end - 1
    succs = cfg.successors[bid]
    if not succs:
        return []
    facts = _branch_facts(columns).get(last)
    if facts is not None and len(succs) == 2:
        op, r1, r2, taken_succ = facts
        results = []
        fall_succ = succs[1] if succs[0] == taken_succ else succs[0]
        taken_state = _refine_edge(out_state, op, r1, r2, True)
        fall_state = _refine_edge(out_state, op, r1, r2, False)
        if taken_state is not None:
            results.append((taken_succ, taken_state))
        if fall_state is not None:
            results.append((fall_succ, fall_state))
        return results
    return [(succ, out_state) for succ in succs]


def _fixpoint(cfg, columns, clamps=None):
    """Worklist interval analysis; returns ``{bid: entry state}``.

    ``clamps`` maps ``(bid, reg) -> (lo, hi, stride)`` intervals proven
    externally (the countdown domain); they are met into the block's
    joined entry state.  Widening at every retreating-edge target keeps
    the iteration finite even on irreducible graphs.
    """
    if cfg.entry is None:
        return {}
    order = cfg.rpo()
    position = {bid: i for i, bid in enumerate(order)}
    widen_points = {dst for _, dst in cfg.retreating_edges()}
    join_counts = dict.fromkeys(widen_points, 0)
    in_states = {cfg.entry: _entry_state(cfg.program)}
    pending = set(order)
    clamps = clamps or {}

    def apply_clamps(bid, state):
        for reg in range(1, NUM_INT_REGS):
            bound = clamps.get((bid, reg))
            if bound is not None:
                met = _clamp(state[reg], bound[0], bound[1])
                state[reg] = bound if met is None else met
        return state

    if clamps:
        in_states[cfg.entry] = apply_clamps(
            cfg.entry, list(in_states[cfg.entry]))

    while pending:
        bid = min(pending, key=position.get)
        pending.discard(bid)
        state = in_states.get(bid)
        if state is None:
            continue
        block = cfg.blocks[bid]
        out = _transfer_range(state, block.start, block.end, columns)
        for succ, edge_state in _edge_states(bid, out, cfg, columns):
            if succ not in position:
                continue
            current = in_states.get(succ)
            if current is None:
                new = list(edge_state)
            else:
                new = [_join(c, e) for c, e in zip(current, edge_state)]
                if succ in widen_points:
                    join_counts[succ] += 1
                    if join_counts[succ] > WIDEN_DELAY:
                        new = [_widen(c, n) for c, n in zip(current, new)]
            new = apply_clamps(succ, new)
            if current is None or new != current:
                in_states[succ] = new
                pending.add(succ)
    return in_states


def _single_pass(cfg, columns, loops, clamps=None, discover=None):
    """One-sweep interval analysis for reducible graphs.

    The worklist fixpoint carries no narrowing, so any register that a
    loop modifies and no countdown clamp covers ends at the widened
    bounds regardless of how many times the loop is re-analyzed.  On a
    reducible CFG the same (or a tighter) result is reached in a single
    reverse-post-order sweep by *havocking* at each loop header: the
    header's state joins only its entry edges, every register written
    anywhere in the loop body drops to TOP and is then met with its
    proven clamp, and each block is transferred exactly once.

    ``discover``, when given, is called at each loop header with the
    joined entry-edge state (pre-havoc) and returns additional clamps
    (``{(bid, reg): interval}``) to install.  Because reverse
    post-order visits a header before any of its body blocks, the
    countdown discovery that used to need a whole phase-1 sweep can
    run inline, so the reducible path needs exactly one sweep total.

    Soundness: TOP covers whatever the skipped back edges could carry;
    clamped registers are covered by the countdown invariant proof; and
    registers the loop never writes are loop-invariant by definition,
    so their entry-edge value is the fixpoint value.  This is what
    makes the static lint gate run in milliseconds instead of
    re-interpreting the body to convergence.
    """
    if cfg.entry is None:
        return {}
    clamp_rows = {}

    def add_clamps(mapping):
        for (bid, reg), bound in mapping.items():
            clamp_rows.setdefault(bid, []).append((reg, bound))

    if clamps:
        add_clamps(clamps)
    havoc = {}
    for loop in loops:
        written = set()
        for bid in loop.body:
            start, end = columns.block_bounds[bid]
            for index in range(start, end):
                rd = columns.dest_list[index]
                if 0 < rd < NUM_INT_REGS:
                    written.add(rd)
        havoc[loop.header] = (written, loop.body)

    in_states = {}
    edge_states = {}
    for bid in cfg.rpo():
        if bid == cfg.entry:
            state = _entry_state(cfg.program)
        else:
            state = None
            header = havoc.get(bid)
            for pred in cfg.predecessors[bid]:
                if header is not None and pred in header[1]:
                    continue  # back edge: replaced by the havoc below
                incoming = edge_states.get((pred, bid))
                if incoming is None:
                    continue
                state = list(incoming) if state is None else [
                    s if s == e else _join(s, e)
                    for s, e in zip(state, incoming)]
            if state is None:
                continue  # unreachable (or all entry edges infeasible)
        header = havoc.get(bid)
        if header is not None:
            if discover is not None:
                add_clamps(discover(bid, state))
            for reg in header[0]:
                state[reg] = TOP
        rows = clamp_rows.get(bid)
        if rows:
            for reg, bound in rows:
                met = _clamp(state[reg], bound[0], bound[1])
                state[reg] = bound if met is None else met
        in_states[bid] = state
        block = cfg.blocks[bid]
        out = _transfer_range(state, block.start, block.end, columns)
        for succ, edge_state in _edge_states(bid, out, cfg, columns):
            current = edge_states.get((bid, succ))
            # Both edges of a conditional can reach the same successor
            # (the clone machinery branches target the next line); the
            # edge contributions join rather than overwrite.
            edge_states[(bid, succ)] = edge_state if current is None \
                else [c if c == e else _join(c, e)
                      for c, e in zip(current, edge_state)]
    return in_states


def _loop_entry_state(cfg, columns, loop, in_states):
    """Join of predecessor out-states entering the loop from outside."""
    joined = None
    for pred in cfg.predecessors[loop.header]:
        if pred in loop.body:
            continue
        state = in_states.get(pred)
        if state is None:
            continue
        block = cfg.blocks[pred]
        out = _transfer_range(state, block.start, block.end, columns)
        joined = out if joined is None else [
            _join(a, b) for a, b in zip(joined, out)]
    return joined


# ----------------------------------------------------------------------
# Affine induction deltas over a loop body
# ----------------------------------------------------------------------
def _nested_blocks(loop, all_loops):
    nested = set()
    for other in all_loops:
        if other.header != loop.header and other.header in loop.body \
                and other.body <= loop.body:
            nested |= other.body
    return nested


def _affine_deltas(cfg, columns, loop, reg, nested):
    """Per-block entry deltas of ``reg`` relative to the loop header.

    Returns ``(delta_in, cycle_delta)`` or ``None`` when the register
    is not a path-invariant affine induction variable (written by a
    non-``addi`` op, written inside a nested loop, or accumulating
    different deltas along converging paths).
    """
    if reg == 0:
        return None
    opcodes = columns.opcode_list
    dests = columns.dest_list
    src1s = columns.src1
    imms = columns.imm_list

    def block_delta(bid):
        start, end = columns.block_bounds[bid]
        delta = 0
        for index in range(start, end):
            if dests[index] == reg:
                if opcodes[index] == "addi" and int(src1s[index]) == reg:
                    delta += imms[index]
                else:
                    return None
        return delta

    for bid in nested:
        start, end = columns.block_bounds[bid]
        for index in range(start, end):
            if dests[index] == reg:
                return None

    order = [bid for bid in cfg.rpo() if bid in loop.body]
    delta_in = {loop.header: 0}
    cycle_delta = None
    for bid in order:
        if bid not in delta_in:
            return None  # reached before any in-loop predecessor
        own = block_delta(bid)
        if own is None:
            return None
        out_delta = delta_in[bid] + own
        for succ in cfg.successors[bid]:
            if succ not in loop.body:
                continue
            if succ == loop.header:
                if cycle_delta is None:
                    cycle_delta = out_delta
                elif cycle_delta != out_delta:
                    return None
                continue
            if succ in delta_in:
                if delta_in[succ] != out_delta:
                    return None
            else:
                delta_in[succ] = out_delta
    if cycle_delta is None:
        return None
    return delta_in, cycle_delta


def _delta_at(columns, delta_in, bid, index, reg):
    """Delta of ``reg`` from the loop header to instruction ``index``."""
    start, _ = columns.block_bounds[bid]
    delta = delta_in[bid]
    for i in range(start, index):
        if columns.dest_list[i] == reg:
            if columns.opcode_list[i] == "addi" \
                    and int(columns.src1[i]) == reg:
                delta += columns.imm_list[i]
            else:
                return None
    return delta


# ----------------------------------------------------------------------
# Trip-count bounds
# ----------------------------------------------------------------------
def _ceil_div(a, b):
    return -(-a // b)


def _solve_trip(kind, limit, v_first, cycle_delta):
    """Smallest iteration t >= 1 whose exit condition fires, or None.

    ``v_t = v_first + (t-1)·cycle_delta`` is the induction value at the
    exit branch in iteration ``t``; all values must stay inside the
    non-negative signed range so machine arithmetic cannot wrap.
    """
    if kind == "ge":
        if cycle_delta <= 0:
            return None
        trips = 1 + max(0, _ceil_div(limit - v_first, cycle_delta))
    elif kind == "le":
        if cycle_delta >= 0:
            return None
        trips = 1 + max(0, _ceil_div(v_first - limit, -cycle_delta))
    elif kind == "eq":
        diff = limit - v_first
        if cycle_delta == 0 or diff % cycle_delta:
            return None
        steps = diff // cycle_delta
        if steps < 0:
            return None
        trips = steps + 1
    else:
        return None
    v_last = v_first + (trips - 1) * cycle_delta
    for value in (v_first, v_last, limit):
        if not 0 <= value <= _SIGNED_MAX:
            return None
    return trips


#: taken-condition comparator by opcode, from the induction side's view.
_EXIT_KINDS = {
    # (opcode, induction_on_left, exit_on_taken) -> exit kind + limit adj.
    # taken conditions: beq v==L; bne v!=L; blt v<L; bge v>=L.
    ("beq", True): ("eq", 0),
    ("blt", True): ("le", -1),   # exit when v < L  ⇒ v <= L-1
    ("bge", True): ("ge", 0),    # exit when v >= L
    ("bltu", True): ("le", -1),
    ("bgeu", True): ("ge", 0),
    ("blt", False): ("ge", 1),   # exit when L < v  ⇒ v >= L+1
    ("bge", False): ("le", 0),   # exit when L >= v ⇒ v <= L
    ("bltu", False): ("ge", 1),
    ("bgeu", False): ("le", 0),
    ("beq", False): ("eq", 0),
}


def _analyze_loop_trips(cfg, columns, loop, in_states, all_loops):
    """Fill ``loop.trip_bound``/``loop.exact`` from its exit branches."""
    entry = _loop_entry_state(cfg, columns, loop, in_states)
    if entry is None:
        loop.reason = "loop entry state unavailable"
        return
    nested = _nested_blocks(loop, all_loops)
    exit_edges = []
    for bid in loop.body:
        for succ in cfg.successors[bid]:
            if succ not in loop.body:
                exit_edges.append((bid, succ))
    if not exit_edges:
        loop.reason = "no exit edge"
        return

    bounds = []
    for src, dst in exit_edges:
        trips = _exit_bound(cfg, columns, loop, src, dst, entry,
                            nested)
        if trips is not None:
            bounds.append(trips)
    if bounds:
        loop.trip_bound = min(bounds)
        loop.exact = len(exit_edges) == 1 and len(bounds) == 1
    else:
        loop.reason = "no exit branch with an affine induction bound"


def _exit_bound(cfg, columns, loop, src, dst, entry, nested):
    if src in nested:
        return None  # exits from inner loops fire per inner iteration
    # The exit branch must execute every iteration to yield a bound.
    for back in loop.back_sources:
        if not cfg.dominates(src, back):
            return None
    block = cfg.blocks[src]
    last = block.end - 1
    if not columns.is_cond[last]:
        return None
    target = columns.target_list[last]
    taken_succ = cfg.program.block_of(target)
    exit_on_taken = taken_succ == dst and taken_succ not in loop.body
    exit_on_fall = (block.end < len(cfg.program)
                    and cfg.program.block_of(block.end) == dst
                    and dst not in loop.body)
    if not exit_on_taken and not exit_on_fall:
        return None
    op = columns.opcode_list[last]
    r1 = int(columns.src1[last])
    r2 = int(columns.src2[last])

    for induction, invariant, on_left in ((r1, r2, True), (r2, r1, False)):
        if induction <= 0:
            continue
        if not _loop_invariant(columns, loop, invariant):
            continue
        limit_ivl = entry[invariant] if invariant else _const(0)
        if not _is_const(limit_ivl):
            continue
        affine = _affine_deltas(cfg, columns, loop, induction, nested)
        if affine is None:
            continue
        delta_in, cycle_delta = affine
        at_branch = _delta_at(columns, delta_in, src, last, induction)
        if at_branch is None:
            continue
        v0_ivl = entry[induction]
        if not _is_const(v0_ivl):
            continue
        taken_kind = _EXIT_KINDS.get((op, on_left))
        if taken_kind is None:
            continue
        kind, adjust = taken_kind
        if exit_on_taken:
            exit_kind, limit = kind, limit_ivl[0] + adjust
        else:
            # Exit on fall-through: negate the taken condition.
            negate = {"ge": ("le", -1), "le": ("ge", 1), "eq": None}
            flipped = negate.get(kind)
            if flipped is None:
                continue  # "exit when !=" has no closed form
            exit_kind, limit = flipped[0], limit_ivl[0] + adjust + flipped[1]
        trips = _solve_trip(exit_kind, limit, v0_ivl[0] + at_branch,
                            cycle_delta)
        if trips is not None:
            return trips
    return None


def _loop_invariant(columns, loop, reg):
    if reg <= 0:
        return True
    return not any(
        columns.dest_list[index] == reg
        for bid in loop.body
        for index in range(*columns.block_bounds[bid]))


# ----------------------------------------------------------------------
# The countdown (modulo-counter) domain
# ----------------------------------------------------------------------
def _eval_reset_region(columns, start, end):
    """Constant-evaluate a straight-line reset region.

    Returns ``{reg: constant}`` for the registers it (re)defines, or
    None when the region contains control flow, memory writes, or any
    computation the mini-evaluator cannot prove constant.
    """
    consts = {}
    for index in range(start, end):
        op = columns.opcode_list[index]
        rd = columns.dest_list[index]
        r1 = int(columns.src1[index])
        imm = columns.imm_list[index]
        if rd <= 0 or rd >= NUM_INT_REGS:
            return None
        if op == "lui":
            consts[rd] = (imm << 16) & _M32
        elif op == "ori":
            base = 0 if r1 == 0 else consts.get(r1)
            if base is None:
                return None
            consts[rd] = base | (imm & _M32)
        elif op == "addi":
            base = 0 if r1 == 0 else consts.get(r1)
            if base is None:
                return None
            consts[rd] = (base + imm) & _M32
        else:
            return None
    return consts


def _find_countdowns(cfg, columns, loop, entry, nested):
    """Structurally verify countdown-guarded pointer walks in ``loop``.

    The proof obligations, each checked mechanically:

    1. ``addi c, c, -1`` immediately followed by its block terminator
       ``bne c, r0, skip`` with a forward in-loop target;
    2. the fall-through region up to ``skip`` is straight-line and
       constant-sets exactly ``{pointer, c}`` (the reset);
    3. exactly one other write to the pointer exists in the loop —
       ``addi p, p, a`` — and no other write to ``c``; neither lives in
       a nested loop, and both (plus the decrement) dominate every back
       edge, so they execute exactly once per iteration;
    4. the loop entry state carries exactly the reset constants, so
       the first iteration starts a fresh countdown window.

    Under 1–4 the relational invariant ``p = base + a·(period - c)``
    with ``c ∈ [1, period]`` holds at the header by induction (base
    case from 4, step from 1–3), which yields the header clamp
    ``p ∈ [base, base + a·(period-1)]`` — the fact a non-relational
    interval domain cannot express.
    """
    found = []
    opcodes = columns.opcode_list
    dests = columns.dest_list
    src1s = columns.src1
    src2s = columns.src2
    imms = columns.imm_list
    n = columns.n
    for bid in loop.body:
        if bid in nested:
            continue
        start, end = columns.block_bounds[bid]
        last = end - 1
        if last < 1 or opcodes[last] != "bne" or int(src2s[last]) != 0:
            continue
        decr = last - 1
        counter = int(src1s[last])
        if counter <= 0 or dests[decr] != counter:
            continue
        if opcodes[decr] != "addi" or int(src1s[decr]) != counter \
                or imms[decr] != -1:
            continue
        target = columns.target_list[last]
        if target is None or not end <= target <= n:
            continue
        if cfg.program.block_of(target) not in loop.body:
            continue
        reset_consts = _eval_reset_region(columns, end, target)
        if reset_consts is None or counter not in reset_consts:
            continue
        others = [reg for reg in reset_consts if reg != counter]
        if len(others) != 1:
            continue
        pointer = others[0]
        period = reset_consts[counter]
        base = reset_consts[pointer]
        if period < 1:
            continue
        # Reset-region blocks are excluded from the "no other writes"
        # scan; everything else in the loop must leave p and c alone,
        # except exactly one pointer advance.
        reset_range = range(end, target)
        advance_index = None
        advance = None
        ok = True
        for body_bid in loop.body:
            b_start, b_end = columns.block_bounds[body_bid]
            for index in range(b_start, b_end):
                if index in reset_range or index == decr:
                    continue
                rd = dests[index]
                if rd == counter:
                    ok = False
                    break
                if rd == pointer:
                    if advance_index is not None \
                            or opcodes[index] != "addi" \
                            or int(src1s[index]) != pointer \
                            or columns.block_of[index] in nested:
                        ok = False
                        break
                    advance_index = index
                    advance = imms[index]
            if not ok:
                break
        if not ok or advance_index is None:
            continue  # advance may be 0: a legal constant-address stream
        # The decrement and advance must run exactly once per iteration.
        decr_bid = int(columns.block_of[decr])
        adv_bid = int(columns.block_of[advance_index])
        if decr_bid in nested:
            continue
        per_iteration = True
        for back in loop.back_sources:
            if not cfg.dominates(decr_bid, back) \
                    or not cfg.dominates(adv_bid, back):
                per_iteration = False
                break
        if not per_iteration:
            continue
        # Loop entry must start a fresh window: p = base, c = period.
        if entry is None or not _is_const(entry[pointer]) \
                or not _is_const(entry[counter]):
            continue
        if entry[pointer][0] != base or entry[counter][0] != period:
            continue
        # The pointer walk must stay inside the 32-bit space even at
        # its momentary pre-reset extreme (base + a·period).
        for extreme in (base + advance * period,
                        base + advance * (period - 1)):
            if not 0 <= extreme <= _M32:
                break
        else:
            found.append(CountdownInfo(
                pointer=pointer, counter=counter, advance=advance,
                period=period, base=base, advance_index=advance_index,
                decrement_index=decr, branch_index=last,
                reset_start=end, reset_end=target))
    return found


def _countdown_clamps(loop, countdowns):
    clamps = {}
    for info in countdowns:
        span = info.advance * (info.period - 1)
        lo = min(info.base, info.base + span)
        hi = max(info.base, info.base + span)
        clamps[(loop.header, info.pointer)] = (lo, hi,
                                              abs(info.advance) or 1)
        clamps[(loop.header, info.counter)] = (1, info.period, 1)
    return clamps


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_program(program):
    """Run the full analysis; the result is cached on the columns."""
    columns = columns_for(program)
    cached = columns.derived.get("absint")
    if cached is not None:
        return cached
    result = _analyze(program, columns)
    columns.derived["absint"] = result
    return result


def _analyze(program, columns):
    cfg = ControlFlowGraph(program)
    loops = [LoopInfo(header=header, back_sources=backs, body=body)
             for header, backs, body in cfg.natural_loops()]
    result = AbsintResult(program=program, cfg=cfg, loops=loops,
                          in_states={})

    indirect = any(op in ("jr", "jalr") for op in columns.opcode_list)
    if indirect:
        # Static successors of jr/jalr are unknown, so neither the
        # fixpoint's state flow nor the loop forest models real control
        # flow; every proof is declined rather than risked.
        result.degraded = "indirect jumps (jr/jalr) defeat static flow"
        for loop in loops:
            loop.reason = result.degraded
        return result

    headers = {loop.header: loop for loop in loops}
    reducible = all(
        headers.get(dst) is not None and src in headers[dst].body
        for src, dst in cfg.retreating_edges())
    if reducible:
        # Countdown discovery only needs the loop's entry-edge state,
        # which the reverse-post-order sweep has in hand when it
        # reaches the header — so discovery and the clamped analysis
        # fuse into one pass instead of a discover/re-run pair.
        def discover(header_bid, entry):
            loop = headers[header_bid]
            nested = _nested_blocks(loop, loops)
            loop.countdowns = _find_countdowns(cfg, columns, loop, entry,
                                               nested)
            return _countdown_clamps(loop, loop.countdowns)

        in_states = _single_pass(cfg, columns, loops, discover=discover)
    else:
        # Irreducible graphs fall back to the two-phase worklist:
        # discover countdowns against the unclamped fixpoint, then
        # re-run with the proven header clamps injected.
        in_states = _fixpoint(cfg, columns)
        clamps = {}
        for loop in loops:
            nested = _nested_blocks(loop, loops)
            entry = _loop_entry_state(cfg, columns, loop, in_states)
            loop.countdowns = _find_countdowns(cfg, columns, loop, entry,
                                               nested)
            clamps.update(_countdown_clamps(loop, loop.countdowns))
        if clamps:
            in_states = _fixpoint(cfg, columns, clamps)
    result.in_states = in_states

    for loop in loops:
        _analyze_loop_trips(cfg, columns, loop, in_states, loops)

    _prove_termination(result, cfg, columns)
    _prove_footprint(result, cfg, columns)
    return result


def _prove_termination(result, cfg, columns):
    loops = result.loops
    headers = {loop.header: loop for loop in loops}
    for src, dst in cfg.retreating_edges():
        loop = headers.get(dst)
        if loop is None or src not in loop.body:
            result.degraded = (result.degraded
                               or "irreducible cycle outside natural loops")
            return
    if any(loop.trip_bound is None for loop in loops):
        return
    reachable = cfg.reachable()
    total = 0
    for bid in reachable:
        bound = 1
        for loop in loops:
            if bid in loop.body:
                bound *= loop.trip_bound
        result.block_bounds[bid] = bound
        size = int(columns.block_bounds[bid][1]
                   - columns.block_bounds[bid][0])
        total += size * bound
    result.terminates = True
    result.instruction_bound = total


def _memop_facts(columns):
    """``{bid: [(index, base_reg, imm, width)]}`` per block, cached."""
    facts = columns.derived.get("absint_memop_facts")
    if facts is None:
        facts = {}
        src1s = columns.src1.tolist()
        for index in np.nonzero(columns.is_mem)[0]:
            index = int(index)
            base_reg = src1s[index]
            if not 0 <= base_reg < NUM_INT_REGS:
                base_reg = -1
            facts.setdefault(int(columns.block_of[index]), []).append(
                (index, base_reg, columns.imm_list[index] or 0,
                 ACCESS_WIDTH.get(columns.opcode_list[index], 4)))
        columns.derived["absint_memop_facts"] = facts
    return facts


def _prove_footprint(result, cfg, columns):
    if result.degraded:
        return
    reachable = cfg.reachable()
    memops = _memop_facts(columns)
    lo = hi = None
    for bid in reachable:
        block_memops = memops.get(bid)
        if block_memops is None:
            continue
        state = result.in_states.get(bid)
        if state is None:
            continue
        start, _ = columns.block_bounds[bid]
        current = state
        scanned = start
        for index, base_reg, imm, width in block_memops:
            current = _transfer_range(current, scanned, index, columns)
            scanned = index
            ivl = current[base_reg] if base_reg >= 0 else TOP
            addr = _add_const(ivl, imm)
            if addr == TOP or addr[1] - addr[0] > MAX_USEFUL_SPAN:
                result.unbounded_memops.append(index)
                continue
            result.mem_intervals[index] = (addr[0], addr[1] + width,
                                           addr[2])
            lo = addr[0] if lo is None else min(lo, addr[0])
            hi = addr[1] + width if hi is None else max(hi, addr[1] + width)
    if not result.unbounded_memops and lo is not None:
        result.footprint = (lo, hi)
    elif not result.unbounded_memops and lo is None:
        result.footprint = (0, 0)  # no memory ops at all


# ----------------------------------------------------------------------
# Diagnostics + certificate
# ----------------------------------------------------------------------
def check_safety(program, severity_overrides=None, result=None):
    """``SR110``–``SR114``: safety-proof diagnostics for one program."""
    if result is None:
        result = analyze_program(program)
    report = LintReport(program.name)
    cfg = result.cfg
    for loop in result.loops:
        start = cfg.blocks[loop.header].start
        location = {"block": loop.header, "index": start,
                    "pc": program.pc_address(start)}
        if loop.trip_bound is not None:
            bound_kind = "exactly" if loop.exact else "at most"
            report.add(make_diagnostic(
                "SR110",
                f"loop at bb{loop.header} executes {bound_kind} "
                f"{loop.trip_bound} iterations",
                severity_overrides=severity_overrides,
                data={"trip_bound": loop.trip_bound, "exact": loop.exact,
                      "countdowns": len(loop.countdowns)},
                **location))
        else:
            report.add(make_diagnostic(
                "SR111",
                f"cannot bound the trip count of the loop at "
                f"bb{loop.header}"
                + (f" ({loop.reason})" if loop.reason else ""),
                severity_overrides=severity_overrides,
                data={"reason": loop.reason}, **location))
    if result.degraded and not result.loops:
        report.add(make_diagnostic(
            "SR111", f"termination analysis declined: {result.degraded}",
            severity_overrides=severity_overrides,
            data={"reason": result.degraded}))
    if result.terminates:
        report.add(make_diagnostic(
            "SR112",
            f"program terminates within {result.instruction_bound} "
            "dynamic instructions",
            severity_overrides=severity_overrides,
            data={"instruction_bound": result.instruction_bound}))
    if result.footprint is not None:
        lo, hi = result.footprint
        report.add(make_diagnostic(
            "SR113",
            f"every memory access stays within [{lo:#x}, {hi:#x}) "
            f"({hi - lo} bytes)",
            severity_overrides=severity_overrides,
            data={"lo": lo, "hi": hi, "bytes": hi - lo}))
    elif result.unbounded_memops or result.degraded:
        count = len(result.unbounded_memops)
        message = (f"{count} memory operation(s) have no provable "
                   "address bound" if count else
                   f"footprint analysis declined: {result.degraded}")
        report.add(make_diagnostic(
            "SR114", message,
            severity_overrides=severity_overrides,
            data={"unbounded": result.unbounded_memops[:16],
                  "count": count}))
    return report


def safety_certificate(program, result=None):
    """Machine-readable proof summary for manifests and artifact stores."""
    if result is None:
        result = analyze_program(program)
    loops = [{"header": loop.header,
              "trip_bound": loop.trip_bound,
              "exact": loop.exact,
              "countdowns": len(loop.countdowns)}
             for loop in result.loops]
    footprint = None
    if result.footprint is not None:
        lo, hi = result.footprint
        footprint = {"lo": lo, "hi": hi, "bytes": hi - lo}
    return {
        "schema": CERTIFICATE_SCHEMA_VERSION,
        "program": program.name,
        "terminates": result.terminates,
        "instruction_bound": result.instruction_bound,
        "loops": loops,
        "footprint": footprint,
        "unbounded_memops": len(result.unbounded_memops),
        "degraded": result.degraded or None,
    }
