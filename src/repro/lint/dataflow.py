"""Register and memory dataflow verification (lint layer 1, part two).

Two classic forward dataflow analyses over the lint CFG:

* **Definite assignment** (must-analysis, meet = intersection) backs the
  use-before-def pass (``SR104``): a register read is flagged when some
  path from the entry reaches it without any write.  The SRISC machine
  zero-initializes the register file and sets ``sp``, so this is
  well-defined behaviour — but in a synthesized clone it means a
  dependency edge the synthesizer intended does not exist, and in a
  hand-written kernel it is almost always a forgotten ``li``.

* **Constant propagation** (meet = equality) backs the out-of-bounds
  memory pass (``SR106``): a load/store whose base register is
  statically constant must address the declared data image or the stack
  region.  Only provably-constant addresses are checked, so every
  ``SR106`` is a genuine out-of-footprint access.

Both analyses iterate a worklist to a fixpoint, so loop-carried pointer
arithmetic (the common case in both kernels and clones) correctly
degrades to "not a constant" instead of producing false positives.

The gate inside :meth:`CloneSynthesizer.synthesize` runs these passes on
every clone, so the representations are chosen for speed: assignment
sets are register bitmasks (one machine-int intersection per edge) and
constant maps are sparse dicts restricted to the backward slice of the
memory base registers (absence means not-a-constant).

``SR105`` (writes to the hardwired zero register) rides along in the
same instruction scan; the canonical ``nop`` encoding
(``add r0, r0, r0``) is exempt.
"""

from repro.isa.assembler import STACK_TOP
from repro.isa.registers import FP_REG_BASE, REG_SP, ZERO_REG
from repro.lint.diagnostics import LintReport, make_diagnostic

#: Bytes below (and slack above) the initial stack pointer accepted as
#: legitimate stack addressing by the memory-bounds pass.
STACK_WINDOW = 0x10000
STACK_SLACK = 8

#: Memory access width per opcode (doubles for the FP file).
ACCESS_WIDTH = {"lw": 4, "sw": 4, "lb": 1, "lbu": 1, "sb": 1,
                "flw": 8, "fsw": 8}

_M32 = 0xFFFFFFFF

#: Bitmask covering the whole register file (int + fp).
_UNIVERSE = (1 << (2 * FP_REG_BASE)) - 1


def _is_nop(instr):
    return (instr.opcode == "add" and instr.rd == ZERO_REG
            and instr.rs1 == ZERO_REG and instr.rs2 == ZERO_REG)


# ----------------------------------------------------------------------
# Definite assignment (reaching "some write" on every path)
# ----------------------------------------------------------------------
def _block_summaries(cfg):
    """Per-block (definitely-written bitmask, upward-exposed reads).

    One fused scan feeds both the fixpoint and the reporting pass.
    Upward-exposed reads map register → the instruction index of the
    first exposed read, for the diagnostic's location; ``r0`` is seeded
    as written so zero-register reads never surface.
    """
    instructions = cfg.program.instructions
    def_masks = []
    exposed = []
    for block in cfg.blocks:
        written = 1 << ZERO_REG
        reads = None
        for index in range(block.start, block.end):
            instr = instructions[index]
            for src in instr.srcs:
                if not (written >> src) & 1:
                    if reads is None:
                        reads = {src: index}
                    elif src not in reads:
                        reads[src] = index
            rd = instr.rd
            if rd is not None:
                written |= 1 << rd
        def_masks.append(written)
        exposed.append(reads or {})
    return def_masks, exposed


def _assignment_masks(cfg, def_masks, entry_mask):
    """Per-block IN bitmasks of definitely-assigned registers.

    There are no kills (a written register stays written), so the entry
    block's IN is exactly the machine-initialized set — even when loops
    branch back to it — and every other block's IN only ever shrinks
    from the full register universe, which guarantees convergence.
    """
    n_blocks = len(cfg.blocks)
    in_masks = [_UNIVERSE] * n_blocks
    entry = cfg.entry
    if entry is not None:
        in_masks[entry] = entry_mask
    predecessors = cfg.predecessors
    successors = cfg.successors
    worklist = [bid for bid in range(n_blocks) if bid != entry]
    while worklist:
        bid = worklist.pop()
        preds = predecessors[bid]
        if not preds:
            continue  # unreachable non-entry block: stays at universe
        new_in = _UNIVERSE
        for pred in preds:
            new_in &= in_masks[pred] | def_masks[pred]
        if new_in != in_masks[bid]:
            in_masks[bid] = new_in
            for succ in successors[bid]:
                if succ != entry:
                    worklist.append(succ)
    return in_masks


def definite_assignments(cfg, entry_defined=(ZERO_REG, REG_SP)):
    """Per-block IN sets of definitely-assigned registers (fixpoint).

    A set view over the bitmask fixpoint the checks use directly;
    unreachable non-entry blocks sit at the full register universe.
    """
    def_masks, _ = _block_summaries(cfg)
    entry_mask = 0
    for register in entry_defined:
        entry_mask |= 1 << register
    in_masks = _assignment_masks(cfg, def_masks, entry_mask)
    return {block.bid: {register for register in range(2 * FP_REG_BASE)
                        if (in_masks[block.bid] >> register) & 1}
            for block in cfg.blocks}


def check_use_before_def(cfg, severity_overrides=None):
    """``SR104``: reads that some path can reach with no prior write."""
    from repro.isa.registers import reg_name
    program = cfg.program
    report = LintReport(program.name)
    reachable = cfg.reachable()
    def_masks, exposed = _block_summaries(cfg)
    in_masks = _assignment_masks(
        cfg, def_masks, (1 << ZERO_REG) | (1 << REG_SP))
    for block in cfg.blocks:
        bid = block.bid
        reads = exposed[bid]
        if not reads or bid not in reachable:
            continue
        defined = in_masks[bid]
        for register, index in sorted(reads.items(),
                                      key=lambda item: item[1]):
            if (defined >> register) & 1:
                continue
            report.add(make_diagnostic(
                "SR104",
                f"register {reg_name(register)} may be read by "
                f"{program.instructions[index].opcode!r} before any "
                "write reaches it",
                severity_overrides=severity_overrides,
                index=index, block=bid,
                pc=program.pc_address(index),
                data={"register": reg_name(register)}))
    return report


def check_register_writes(program, severity_overrides=None):
    """``SR105``: non-nop writes to the hardwired zero register.

    This includes link-writing jumps: ``jal r0, target`` names r0 as the
    link destination, which a correct simulator must discard (the
    interpreter once clobbered r0 here — the ``rd`` scan below is the
    static-side guard for that class of bug).  ``jalr`` is covered by
    the same ``instr.rd`` check.
    """
    report = LintReport(program.name)
    for index, instr in enumerate(program.instructions):
        if instr.rd == ZERO_REG and not _is_nop(instr):
            report.add(make_diagnostic(
                "SR105",
                f"{instr.opcode!r} writes r0; the result is discarded",
                severity_overrides=severity_overrides,
                index=index, pc=program.pc_address(index)))
    return report


# ----------------------------------------------------------------------
# Constant propagation and memory bounds
# ----------------------------------------------------------------------
#: Opcodes the constant folder models; anything else kills its
#: destination (defines not-a-constant).
_CONST_OPS = frozenset((
    "addi", "lui", "ori", "andi", "xori", "slli", "srli", "add", "sub"))


def _trackable_registers(instructions):
    """Integer registers whose constancy can matter to a memory operand.

    The backward closure from memory base registers through the modelled
    opcodes.  Tracking only these keeps the constant maps sparse — in a
    clone that is the pointer registers and their ``la`` feeders, a
    handful out of the whole file.
    """
    relevant = set()
    for instr in instructions:
        if instr.is_mem:
            base = instr.rs1
            if base and base < FP_REG_BASE:
                relevant.add(base)
    if relevant:
        grew = True
        while grew:
            grew = False
            for instr in reversed(instructions):
                if instr.rd in relevant and instr.opcode in _CONST_OPS:
                    for src in instr.srcs:
                        if src and src < FP_REG_BASE and src not in relevant:
                            relevant.add(src)
                            grew = True
    return relevant


def _transfer_const(instr, values):
    """Apply one instruction to a sparse {register: value} constant map.

    Absence means not-a-constant; ``r0`` reads as zero and is never a
    key.  Any write the folder does not model kills the destination.
    """
    rd = instr.rd
    if rd is None or rd == ZERO_REG or rd >= FP_REG_BASE:
        return
    op = instr.opcode
    result = None
    if op in _CONST_OPS:
        if op == "lui":
            result = (instr.imm << 16) & _M32
        else:
            rs1 = instr.rs1
            a = 0 if rs1 == ZERO_REG else values.get(rs1)
            if a is not None:
                if op == "addi":
                    result = (a + instr.imm) & _M32
                elif op == "ori":
                    result = (a | (instr.imm & _M32)) & _M32
                elif op == "andi":
                    result = a & instr.imm & _M32
                elif op == "xori":
                    result = (a ^ (instr.imm & _M32)) & _M32
                elif op == "slli":
                    result = (a << (instr.imm & 31)) & _M32
                elif op == "srli":
                    result = (a & _M32) >> (instr.imm & 31)
                else:  # add / sub
                    rs2 = instr.rs2
                    b = 0 if rs2 == ZERO_REG else values.get(rs2)
                    if b is not None:
                        result = ((a + b) if op == "add"
                                  else (a - b)) & _M32
    if result is None:
        values.pop(rd, None)
    else:
        values[rd] = result


def constant_inputs(cfg):
    """Per-block IN constant maps for the integer file (fixpoint).

    Maps are sparse over the trackable registers (absence means
    not-a-constant); ``None`` marks blocks the entry cannot reach.
    """
    program = cfg.program
    instructions = program.instructions
    tracked = _trackable_registers(instructions)
    in_maps = {block.bid: None for block in cfg.blocks}
    if cfg.entry is None:
        return in_maps

    # Only instructions writing a tracked register can change a map.
    per_block = [[instr for instr
                  in instructions[block.start:block.end]
                  if instr.rd in tracked]
                 for block in cfg.blocks]

    entry_values = {}
    if REG_SP in tracked:
        entry_values[REG_SP] = STACK_TOP
    in_maps[cfg.entry] = entry_values
    successors = cfg.successors
    worklist = [cfg.entry]
    while worklist:
        bid = worklist.pop()
        values = dict(in_maps[bid])
        for instr in per_block[bid]:
            _transfer_const(instr, values)
        for succ in successors[bid]:
            current = in_maps[succ]
            if current is None:
                in_maps[succ] = dict(values)
                worklist.append(succ)
            else:
                dead = [register for register in current
                        if values.get(register) != current[register]]
                if dead:
                    for register in dead:
                        del current[register]
                    worklist.append(succ)
    return in_maps


def _valid_regions(program):
    """[(start, end)) address ranges statically accepted for data access."""
    image_end = program.data_base + len(program.data_image)
    return [(program.data_base, image_end),
            (program.stack_top - STACK_WINDOW,
             program.stack_top + STACK_SLACK)]


def check_memory_bounds(cfg, severity_overrides=None):
    """``SR106``: constant-addressed memops must hit data or stack."""
    program = cfg.program
    instructions = program.instructions
    report = LintReport(program.name)
    regions = _valid_regions(program)
    in_maps = constant_inputs(cfg)
    for block in cfg.blocks:
        values = in_maps.get(block.bid)
        if values is None:  # unreachable: nothing to prove
            continue
        values = dict(values)
        for index in range(block.start, block.end):
            instr = instructions[index]
            if instr.is_mem:
                base = (0 if instr.rs1 == ZERO_REG
                        else values.get(instr.rs1))
                if base is not None:
                    address = (base + (instr.imm or 0)) & _M32
                    width = ACCESS_WIDTH[instr.opcode]
                    inside = any(start <= address and address + width <= end
                                 for start, end in regions)
                    if not inside:
                        report.add(make_diagnostic(
                            "SR106",
                            f"{instr.opcode} at address {address:#x} is "
                            "outside the data image "
                            f"[{regions[0][0]:#x}, {regions[0][1]:#x}) "
                            "and the stack region",
                            severity_overrides=severity_overrides,
                            index=index, block=block.bid,
                            pc=program.pc_address(index),
                            data={"address": address, "width": width}))
            if instr.rd is not None:
                _transfer_const(instr, values)
    return report
