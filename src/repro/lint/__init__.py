"""repro.lint — static verification for SRISC programs and clones.

Two layers over one diagnostics vocabulary (:mod:`repro.lint.diagnostics`):

* **Structural** (:mod:`repro.lint.cfg`, :mod:`repro.lint.dataflow`):
  CFG well-formedness, reachability, register dataflow, and static
  memory bounds for *any* assembled :class:`repro.isa.Program` —
  hand-written kernel or synthesized clone alike (``SR1xx`` codes).
* **Conformance** (:mod:`repro.lint.conformance`): given a
  :class:`repro.core.synthesizer.CloneResult`, statically re-derive the
  paper's synthesis contract — mix, dependency distances, branch
  machinery, streams, footprint — against the source profile (``CF2xx``
  codes).

Entry points: :func:`lint_program` for any program,
:func:`lint_clone` for a synthesis result, and :class:`LintGateError`,
which the post-synthesis gate raises on error-severity findings.
"""

from repro.lint.cfg import (ControlFlowGraph, check_branch_targets,
                            check_fallthrough_end, check_reachability)
from repro.lint.conformance import (CloneShape, ConformanceTolerances,
                                    check_conformance, discover_shape,
                                    recover_pattern)
from repro.lint.dataflow import (check_memory_bounds, check_register_writes,
                                 check_use_before_def)
from repro.lint.diagnostics import (CODES, ERROR, INFO, WARNING, Diagnostic,
                                    LintReport, make_diagnostic,
                                    merge_reports)
from repro.obs.metrics import REGISTRY
from repro.obs.timing import span

__all__ = [
    "CODES", "ERROR", "INFO", "WARNING",
    "CloneShape", "ConformanceTolerances", "ControlFlowGraph",
    "Diagnostic", "LintGateError", "LintReport",
    "check_branch_targets", "check_conformance", "check_fallthrough_end",
    "check_memory_bounds", "check_reachability", "check_register_writes",
    "check_use_before_def", "discover_shape", "lint_clone", "lint_program",
    "make_diagnostic", "merge_reports", "recover_pattern",
]


class LintGateError(Exception):
    """Error-severity findings stopped a gated pipeline stage.

    Carries the full :class:`LintReport` as ``.report`` so callers can
    render or serialize the findings.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(report.render_text())


def lint_program(program, severity_overrides=None):
    """Run every structural pass over one program; returns a report."""
    with span("lint.program"):
        cfg = ControlFlowGraph(program)
        report = merge_reports(
            program.name,
            check_branch_targets(program, severity_overrides),
            check_reachability(cfg, severity_overrides),
            check_fallthrough_end(cfg, severity_overrides),
            check_use_before_def(cfg, severity_overrides),
            check_register_writes(program, severity_overrides),
            check_memory_bounds(cfg, severity_overrides),
        )
    REGISTRY.counter("lint.programs").inc()
    REGISTRY.counter("lint.diagnostics").inc(len(report))
    if not report.ok:
        REGISTRY.counter("lint.failures").inc()
    return report


def lint_clone(clone, tolerances=None, severity_overrides=None,
               conformance=True):
    """Structural plus (optionally) conformance passes for one clone."""
    with span("lint.clone"):
        report = lint_program(clone.program, severity_overrides)
        if conformance:
            report = merge_reports(
                clone.program.name, report,
                check_conformance(clone, tolerances, severity_overrides))
    REGISTRY.counter("lint.clones").inc()
    return report
