"""repro.lint — static verification for SRISC programs and clones.

Three layers over one diagnostics vocabulary
(:mod:`repro.lint.diagnostics`):

* **Structural** (:mod:`repro.lint.cfg`, :mod:`repro.lint.dataflow`):
  CFG well-formedness, reachability, register dataflow, and static
  memory bounds for *any* assembled :class:`repro.isa.Program` —
  hand-written kernel or synthesized clone alike (``SR10x`` codes).
* **Static analysis** (:mod:`repro.lint.absint`,
  :mod:`repro.lint.staticprof`, :mod:`repro.lint.disclosure`): an
  abstract interpreter proves safety (trip bounds, termination, a
  footprint interval — ``SR11x``), predicts the clone's dynamic profile
  without simulation and scores it against the target (``CF21x``), and
  the disclosure audit proves no emitted constant derives from raw
  values of the profiled application (``DL3xx``).
* **Conformance** (:mod:`repro.lint.conformance`): given a
  :class:`repro.core.synthesizer.CloneResult`, statically re-derive the
  paper's synthesis contract — mix, dependency distances, branch
  machinery, streams, footprint — against the source profile (``CF20x``
  codes).

Entry points: :func:`lint_program` for any program,
:func:`lint_clone` for a synthesis result, and :class:`LintGateError`,
which the post-synthesis gate raises on error-severity findings.
"""

from repro.lint.absint import (CERTIFICATE_SCHEMA_VERSION, analyze_program,
                               check_safety, safety_certificate)
from repro.lint.cfg import (ControlFlowGraph, check_branch_targets,
                            check_fallthrough_end, check_reachability)
from repro.lint.conformance import (CloneShape, ConformanceTolerances,
                                    check_conformance, discover_shape,
                                    recover_pattern)
from repro.lint.dataflow import (check_memory_bounds, check_register_writes,
                                 check_use_before_def)
from repro.lint.diagnostics import (CODES, ERROR, INFO, WARNING, Diagnostic,
                                    LintReport, make_diagnostic,
                                    merge_reports)
from repro.lint.disclosure import (audit_disclosure, audit_program,
                                   profile_secrets)
from repro.lint.staticprof import (StaticPrediction, StaticPredictionError,
                                   check_static_conformance, predict_profile)
from repro.obs.metrics import REGISTRY
from repro.obs.timing import span

__all__ = [
    "CERTIFICATE_SCHEMA_VERSION", "CODES", "ERROR", "INFO", "WARNING",
    "CloneShape", "ConformanceTolerances", "ControlFlowGraph",
    "Diagnostic", "LintGateError", "LintReport", "StaticPrediction",
    "StaticPredictionError", "analyze_program", "audit_disclosure",
    "audit_program", "check_branch_targets", "check_conformance",
    "check_fallthrough_end", "check_memory_bounds", "check_reachability",
    "check_register_writes", "check_safety", "check_static_conformance",
    "check_use_before_def", "discover_shape", "lint_clone", "lint_program",
    "make_diagnostic", "merge_reports", "predict_profile",
    "profile_secrets", "recover_pattern", "safety_certificate",
]


class LintGateError(Exception):
    """Error-severity findings stopped a gated pipeline stage.

    Carries the full :class:`LintReport` as ``.report`` so callers can
    render or serialize the findings.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(report.render_text())


def lint_program(program, severity_overrides=None, safety=False,
                 audit=False, profile=None):
    """Run every structural pass over one program; returns a report.

    ``safety=True`` additionally runs the abstract-interpretation
    safety proofs (``SR11x``); ``audit=True`` runs the disclosure audit
    in its degraded (no-provenance) mode, screening against ``profile``
    when one is supplied.
    """
    with span("lint.program"):
        cfg = ControlFlowGraph(program)
        report = merge_reports(
            program.name,
            check_branch_targets(program, severity_overrides),
            check_reachability(cfg, severity_overrides),
            check_fallthrough_end(cfg, severity_overrides),
            check_use_before_def(cfg, severity_overrides),
            check_register_writes(program, severity_overrides),
            check_memory_bounds(cfg, severity_overrides),
        )
        if safety:
            report = merge_reports(
                program.name, report,
                check_safety(program, severity_overrides))
        if audit:
            report = merge_reports(
                program.name, report,
                audit_program(program, profile=profile,
                              severity_overrides=severity_overrides))
    REGISTRY.counter("lint.programs").inc()
    REGISTRY.counter("lint.diagnostics").inc(len(report))
    if not report.ok:
        REGISTRY.counter("lint.failures").inc()
    return report


def lint_clone(clone, tolerances=None, severity_overrides=None,
               conformance=True, static=True, audit=True):
    """Structural, static, and conformance passes for one clone.

    ``static`` adds the abstract-interpretation layer: safety proofs
    (``SR11x``) plus the static profile prediction scored against the
    target profile (``CF21x``).  ``audit`` adds the disclosure audit
    (``DL3xx``), using the provenance annotations the synthesizer
    recorded in ``clone.stats``.  Everything here is analysis — no pass
    simulates the clone.
    """
    with span("lint.clone"):
        report = lint_program(clone.program, severity_overrides)
        if static:
            report = merge_reports(
                clone.program.name, report,
                check_safety(clone.program, severity_overrides))
        if conformance:
            report = merge_reports(
                clone.program.name, report,
                check_conformance(clone, tolerances, severity_overrides))
            if static:
                static_report, _ = check_static_conformance(
                    clone, tolerances, severity_overrides)
                report = merge_reports(clone.program.name, report,
                                       static_report)
        if audit:
            report = merge_reports(
                clone.program.name, report,
                audit_disclosure(clone, severity_overrides))
    REGISTRY.counter("lint.clones").inc()
    return report
