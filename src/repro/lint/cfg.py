"""Structural control-flow verification (lint layer 1, part one).

Builds a static CFG over :meth:`repro.isa.Program.basic_blocks` and runs
the passes that need only edges: invalid branch targets (``SR102``),
unreachable blocks (``SR101``), and fall-through past the end of the
program (``SR103``).

Call semantics (``jal`` → target *and* fall-through, as the call
returns; ``jr``/``jalr`` → no static successors) are deliberately
conservative: they can miss dead code behind an indirect jump but never
invent an edge that does not exist, so error-severity findings are
trustworthy.
"""

from repro.isa.instructions import IClass
from repro.lint.diagnostics import LintReport, make_diagnostic


class ControlFlowGraph:
    """Static CFG: blocks plus successor/predecessor edges.

    Out-of-range targets contribute no edge (they are reported by
    :func:`check_branch_targets`); :meth:`repro.isa.Program.basic_blocks`
    likewise ignores them when choosing leaders, so the block partition
    stays valid even for malformed programs.
    """

    def __init__(self, program):
        self.program = program
        self.blocks = program.basic_blocks()
        n_instrs = len(program)
        self.successors = {block.bid: [] for block in self.blocks}
        self.predecessors = {block.bid: [] for block in self.blocks}
        #: Block ids whose terminator can fall through past the end.
        self.fallthrough_end = []

        for block in self.blocks:
            last = program.instructions[block.end - 1]
            succs = []
            falls_through = True
            if last.opcode == "halt":
                falls_through = False
            elif last.is_ctrl:
                if last.target is not None and 0 <= last.target < n_instrs:
                    succs.append(program.block_of(last.target))
                if last.iclass == IClass.JUMP:
                    # Direct jumps never fall through; calls (jal) resume
                    # after the call site once the callee returns, and
                    # indirect jumps (jr/jalr) have no static successor.
                    falls_through = last.opcode in ("jal", "jalr")
            if falls_through:
                if block.end < n_instrs:
                    succs.append(program.block_of(block.end))
                else:
                    self.fallthrough_end.append(block.bid)
            self.successors[block.bid] = succs
            for succ in succs:
                self.predecessors[succ].append(block.bid)

        self.entry = (program.block_of(program.entry)
                      if 0 <= program.entry < n_instrs else None)

    # ------------------------------------------------------------------
    def reachable(self):
        """Block ids reachable from the entry block (the entry included)."""
        if self.entry is None:
            return set()
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            for succ in self.successors[bid]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
def check_branch_targets(program, severity_overrides=None):
    """``SR102``: every static branch/jump target must be in-program."""
    report = LintReport(program.name)
    n_instrs = len(program)
    for index, instr in enumerate(program.instructions):
        if instr.target is not None and not 0 <= instr.target < n_instrs:
            report.add(make_diagnostic(
                "SR102",
                f"{instr.opcode} targets instruction {instr.target}, but "
                f"the program has {n_instrs} instructions",
                severity_overrides=severity_overrides,
                index=index, pc=program.pc_address(index),
                data={"target": instr.target}))
    return report


def check_reachability(cfg, severity_overrides=None):
    """``SR101``: every block should be reachable from the entry."""
    report = LintReport(cfg.program.name)
    reachable = cfg.reachable()
    for block in cfg.blocks:
        if block.bid not in reachable:
            report.add(make_diagnostic(
                "SR101",
                f"block {block.bid} (instructions {block.start}.."
                f"{block.end - 1}) is unreachable",
                severity_overrides=severity_overrides,
                block=block.bid, index=block.start,
                pc=cfg.program.pc_address(block.start)))
    return report


def check_fallthrough_end(cfg, severity_overrides=None):
    """``SR103``: no reachable path may run off the end of the program."""
    report = LintReport(cfg.program.name)
    if not len(cfg.program):
        report.add(make_diagnostic(
            "SR103", "program has no instructions",
            severity_overrides=severity_overrides))
        return report
    reachable = cfg.reachable()
    for bid in cfg.fallthrough_end:
        if bid not in reachable:
            continue  # dead code is SR101's finding, not a live fall-off
        block = cfg.blocks[bid]
        last = block.end - 1
        report.add(make_diagnostic(
            "SR103",
            f"block {bid} ends at the last instruction "
            f"({cfg.program.instructions[last].opcode!r}) and can fall "
            "through past the end of the program",
            severity_overrides=severity_overrides,
            block=bid, index=last, pc=cfg.program.pc_address(last)))
    return report
