"""Structural control-flow verification (lint layer 1, part one).

Builds a static CFG over :meth:`repro.isa.Program.basic_blocks` and runs
the passes that need only edges: invalid branch targets (``SR102``),
unreachable blocks (``SR101``), and fall-through past the end of the
program (``SR103``).

Call semantics (``jal`` → target *and* fall-through, as the call
returns; ``jr``/``jalr`` → no static successors) are deliberately
conservative: they can miss dead code behind an indirect jump but never
invent an edge that does not exist, so error-severity findings are
trustworthy.
"""

from repro.isa.instructions import IClass
from repro.lint.diagnostics import LintReport, make_diagnostic


class ControlFlowGraph:
    """Static CFG: blocks plus successor/predecessor edges.

    Out-of-range targets contribute no edge (they are reported by
    :func:`check_branch_targets`); :meth:`repro.isa.Program.basic_blocks`
    likewise ignores them when choosing leaders, so the block partition
    stays valid even for malformed programs.
    """

    def __init__(self, program):
        self.program = program
        self.blocks = program.basic_blocks()
        n_instrs = len(program)
        self.successors = {block.bid: [] for block in self.blocks}
        self.predecessors = {block.bid: [] for block in self.blocks}
        #: Block ids whose terminator can fall through past the end.
        self.fallthrough_end = []

        for block in self.blocks:
            last = program.instructions[block.end - 1]
            succs = []
            falls_through = True
            if last.opcode == "halt":
                falls_through = False
            elif last.is_ctrl:
                if last.target is not None and 0 <= last.target < n_instrs:
                    succs.append(program.block_of(last.target))
                if last.iclass == IClass.JUMP:
                    # Direct jumps never fall through; calls (jal) resume
                    # after the call site once the callee returns, and
                    # indirect jumps (jr/jalr) have no static successor.
                    falls_through = last.opcode in ("jal", "jalr")
            if falls_through:
                if block.end < n_instrs:
                    succs.append(program.block_of(block.end))
                else:
                    self.fallthrough_end.append(block.bid)
            self.successors[block.bid] = succs
            for succ in succs:
                self.predecessors[succ].append(block.bid)

        self.entry = (program.block_of(program.entry)
                      if 0 <= program.entry < n_instrs else None)
        # Derived traversals are pure functions of the edge set; they are
        # memoized because the abstract interpreter and the static
        # profile predictor query them repeatedly on the same graph.
        self._reachable = None
        self._rpo = None
        self._rpo_position = None
        self._idoms = None
        self._retreating = None

    # ------------------------------------------------------------------
    def reachable(self):
        """Block ids reachable from the entry block (the entry included)."""
        if self._reachable is not None:
            return self._reachable
        if self.entry is None:
            self._reachable = set()
            return self._reachable
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            for succ in self.successors[bid]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        self._reachable = seen
        return seen

    # ------------------------------------------------------------------
    def rpo(self):
        """Reachable block ids in reverse post-order from the entry."""
        if self._rpo is not None:
            return self._rpo
        if self.entry is None:
            self._rpo = []
            return self._rpo
        order = []
        seen = set()
        # Iterative post-order DFS (the corpus has deep linear chains).
        stack = [(self.entry, iter(self.successors[self.entry]))]
        seen.add(self.entry)
        while stack:
            bid, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self.successors[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(bid)
                stack.pop()
        order.reverse()
        self._rpo = order
        return order

    def rpo_position(self):
        """``{bid: index in rpo()}`` for reachable blocks (memoized)."""
        if self._rpo_position is None:
            self._rpo_position = {bid: i for i, bid in enumerate(self.rpo())}
        return self._rpo_position

    def idoms(self):
        """``{bid: immediate dominator}`` (entry maps to itself).

        Cooper–Harvey–Kennedy iteration over reverse post-order: a few
        sweeps of pairwise chain intersections instead of the quadratic
        set dataflow, so dominance queries stay cheap even on the
        block-heavy synthesized clones.
        """
        if self._idoms is not None:
            return self._idoms
        order = self.rpo()
        if not order:
            self._idoms = {}
            return self._idoms
        position = self.rpo_position()
        idom = {self.entry: self.entry}

        def intersect(a, b):
            while a != b:
                while position[a] > position[b]:
                    a = idom[a]
                while position[b] > position[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for bid in order[1:]:
                new = None
                for pred in self.predecessors[bid]:
                    if pred in idom:
                        new = pred if new is None else intersect(new, pred)
                if new is not None and idom.get(bid) != new:
                    idom[bid] = new
                    changed = True
        self._idoms = idom
        return idom

    def dominates(self, a, b):
        """True when block ``a`` dominates block ``b``."""
        idom = self.idoms()
        if b not in idom:
            return False
        position = self.rpo_position()
        target = position.get(a)
        if target is None:
            return False
        current = b
        while position[current] >= target:
            if current == a:
                return True
            if current == self.entry:
                break
            current = idom[current]
        return False

    def dominators(self):
        """``{bid: set of dominator bids}`` over reachable blocks.

        Materialized lazily from the immediate-dominator tree: each
        block's dominator set is its idom chain up to the entry.
        """
        idom = self.idoms()
        dom = {}
        for bid in self.rpo():
            chain = {bid}
            current = bid
            while current != self.entry:
                current = idom[current]
                chain.add(current)
            dom[bid] = chain
        return dom

    def natural_loops(self):
        """``[(header, back_source, frozenset(body))]`` natural loops.

        A back edge is an edge ``t -> h`` where ``h`` dominates ``t``;
        its natural loop is ``h`` plus every block that reaches ``t``
        without passing through ``h``.  Loops sharing a header are
        merged into one entry (their bodies unioned), matching the
        usual loop-forest construction.
        """
        bodies = {}
        sources = {}
        reachable = self.reachable()
        # Back edges are retreating in every DFS, so only the retreating
        # edges need the (chain-walk) dominance test.
        for bid, succ in self.retreating_edges():
            if self.dominates(succ, bid):
                body = {succ, bid}
                stack = [bid]
                while stack:
                    node = stack.pop()
                    if node == succ:
                        continue
                    for pred in self.predecessors[node]:
                        if pred not in body and pred in reachable:
                            body.add(pred)
                            stack.append(pred)
                bodies.setdefault(succ, set()).update(body)
                sources.setdefault(succ, set()).add(bid)
        return [(header, tuple(sorted(sources[header])),
                 frozenset(bodies[header]))
                for header in sorted(bodies)]

    def retreating_edges(self):
        """Edges ``(src, dst)`` that close a cycle in a DFS from entry.

        Used as the soundness backstop for termination proofs: in a
        reducible CFG every retreating edge is a back edge of some
        natural loop; an edge that is retreating but *not* a back edge
        marks an irreducible cycle the loop analysis cannot bound.
        """
        if self._retreating is not None:
            return self._retreating
        if self.entry is None:
            self._retreating = []
            return self._retreating
        color = {}
        edges = []
        stack = [(self.entry, iter(self.successors[self.entry]))]
        color[self.entry] = 1  # 1 = on stack, 2 = done
        while stack:
            bid, succs = stack[-1]
            advanced = False
            for succ in succs:
                state = color.get(succ)
                if state == 1:
                    edges.append((bid, succ))
                elif state is None:
                    color[succ] = 1
                    stack.append((succ, iter(self.successors[succ])))
                    advanced = True
                    break
            if not advanced:
                color[bid] = 2
                stack.pop()
        self._retreating = edges
        return edges


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
def check_branch_targets(program, severity_overrides=None):
    """``SR102``: every static branch/jump target must be in-program."""
    report = LintReport(program.name)
    n_instrs = len(program)
    for index, instr in enumerate(program.instructions):
        if instr.target is not None and not 0 <= instr.target < n_instrs:
            report.add(make_diagnostic(
                "SR102",
                f"{instr.opcode} targets instruction {instr.target}, but "
                f"the program has {n_instrs} instructions",
                severity_overrides=severity_overrides,
                index=index, pc=program.pc_address(index),
                data={"target": instr.target}))
    return report


def check_reachability(cfg, severity_overrides=None):
    """``SR101``: every block should be reachable from the entry."""
    report = LintReport(cfg.program.name)
    reachable = cfg.reachable()
    for block in cfg.blocks:
        if block.bid not in reachable:
            report.add(make_diagnostic(
                "SR101",
                f"block {block.bid} (instructions {block.start}.."
                f"{block.end - 1}) is unreachable",
                severity_overrides=severity_overrides,
                block=block.bid, index=block.start,
                pc=cfg.program.pc_address(block.start)))
    return report


def check_fallthrough_end(cfg, severity_overrides=None):
    """``SR103``: no reachable path may run off the end of the program."""
    report = LintReport(cfg.program.name)
    if not len(cfg.program):
        report.add(make_diagnostic(
            "SR103", "program has no instructions",
            severity_overrides=severity_overrides))
        return report
    reachable = cfg.reachable()
    for bid in cfg.fallthrough_end:
        if bid not in reachable:
            continue  # dead code is SR101's finding, not a live fall-off
        block = cfg.blocks[bid]
        last = block.end - 1
        report.add(make_diagnostic(
            "SR103",
            f"block {bid} ends at the last instruction "
            f"({cfg.program.instructions[last].opcode!r}) and can fall "
            "through past the end of the program",
            severity_overrides=severity_overrides,
            block=bid, index=last, pc=cfg.program.pc_address(last)))
    return report
