"""Profile-conformance verification of synthesized clones (lint layer 2).

Given a :class:`repro.core.synthesizer.CloneResult` and its source
:class:`repro.core.profile.WorkloadProfile`, these passes statically
re-derive the properties the synthesis contract (paper Section 3.2)
promises — instruction mix, dependency-distance histogram, per-branch
modulo/random machinery, stream pointer advances, and data footprint —
and report divergence beyond configurable tolerances.  No instruction is
executed: everything is recovered from the assembled program text plus
the clone's generation stats.

The passes deliberately *re-implement* the contract instead of importing
the synthesizer's internals: a verifier that shares code with the
generator it checks can only confirm that the code ran, not that it did
the right thing.  The one shared piece is
:func:`repro.core.branch_model.pattern_for`, because the mapping from
profiled rates to a realizable pattern *is* the published contract.

Rare-path exclusion: a conditional branch whose target lies more than
one instruction ahead (the tail's ``bne countdown, r0, advK`` skipping a
pointer reset) guards a path executed once per ``reset_period``
iterations, so those instructions are excluded from the steady-state mix
and dependency walks.  Generated block branches always target the very
next instruction and are unaffected.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.branch_model import BranchPattern, pattern_for
from repro.core.profile import NUM_DEP_BUCKETS, dep_bucket
from repro.core.regassign import CloneRegisterFile
from repro.isa.columns import columns_for
from repro.isa.instructions import IClass
from repro.isa.registers import ZERO_REG
from repro.lint.diagnostics import LintReport, make_diagnostic

_COUNTER = CloneRegisterFile.COUNTER
_SCRATCH = CloneRegisterFile.SCRATCH
_RNG = CloneRegisterFile.RNG
_FIRST_POINTER = CloneRegisterFile.FIRST_POINTER
_POINTERS = range(_FIRST_POINTER,
                  _FIRST_POINTER + CloneRegisterFile.MAX_CLUSTERS)

#: Mirror of the synthesizer's class→abstract-label mapping (jumps are
#: linearized into integer-ALU work so per-class counts still add up).
_SYNTH_LABELS = {
    IClass.IALU: "ialu", IClass.IMUL: "imul", IClass.IDIV: "idiv",
    IClass.FALU: "falu", IClass.FMUL: "fmul", IClass.FDIV: "fdiv",
    IClass.LOAD: "load", IClass.STORE: "store", IClass.JUMP: "ialu",
}
_CLASS_OF_LABEL = {
    "ialu": IClass.IALU, "imul": IClass.IMUL, "idiv": IClass.IDIV,
    "falu": IClass.FALU, "fmul": IClass.FMUL, "fdiv": IClass.FDIV,
    "load": IClass.LOAD, "store": IClass.STORE,
}
#: Condition-setup ALU instructions each branch mechanism inserts.
_SETUP_COST = {"modulo": 2, "random": 3}


@dataclass(frozen=True)
class ConformanceTolerances:
    """Divergence bounds; defaults mirror the corpus fidelity tests."""

    memory_fraction: float = 0.08  # |clone − profile| memory fraction
    branch_fraction: float = 0.12  # |clone − profile| branch fraction
    compute_fraction: float = 0.05  # per IMUL/IDIV/FMUL/FDIV class
    dep_tvd: float = 0.40  # total-variation distance, dep buckets
    taken_rate: float = 0.15  # aggregate branch taken-rate
    footprint_ratio_low: float = 0.2  # clone/target footprint bounds
    footprint_ratio_high: float = 8.0


# ----------------------------------------------------------------------
# Shape recovery
# ----------------------------------------------------------------------
@dataclass
class CloneShape:
    """Recovered init/loop/tail structure of a synthesized clone."""

    loop_start: int  # index of the first loop-body instruction
    backedge: int  # index of the ``blt r1, r2, loop_top`` back-edge
    tail_start: int  # first tail instruction (pointer advance / rng)
    body: list  # steady-state instruction indices (rare paths excluded)
    n_blocks: int  # number of generated ``bb<k>`` blocks


def _is_tail_start(instr):
    """First tail instruction: a pointer advance or the xorshift step."""
    if (instr.opcode == "addi" and instr.rd == instr.rs1
            and instr.rd in _POINTERS):
        return True
    return (instr.opcode == "slli" and instr.rd == _SCRATCH
            and instr.rs1 == _RNG and instr.imm == 13)


def discover_shape(program, report, severity_overrides=None):
    """Recover the clone's loop structure, or report ``CF200`` and None."""
    labels = program.labels
    loop = labels.get("loop_top")
    if loop is None:
        report.add(make_diagnostic(
            "CF200", "clone has no 'loop_top' label",
            severity_overrides=severity_overrides))
        return None
    backedge = None
    for index in range(len(program) - 1, -1, -1):
        instr = program.instructions[index]
        if instr.is_cond_branch and instr.target == loop:
            backedge = index
            break
    if backedge is None or backedge <= loop:
        report.add(make_diagnostic(
            "CF200", "clone has no conditional back-edge to 'loop_top'",
            severity_overrides=severity_overrides))
        return None

    n_blocks = 0
    while f"bb{n_blocks}" in labels:
        n_blocks += 1
    if n_blocks == 0:
        report.add(make_diagnostic(
            "CF200", "clone has no generated 'bb<k>' blocks",
            severity_overrides=severity_overrides))
        return None

    tail_start = labels.get(f"bb{n_blocks - 1}_n")
    if tail_start is None:
        tail_start = labels[f"bb{n_blocks - 1}"]
        while (tail_start <= backedge
               and not _is_tail_start(program.instructions[tail_start])):
            tail_start += 1

    body = []
    index = loop
    while index <= backedge:
        instr = program.instructions[index]
        body.append(index)
        if (instr.is_cond_branch and instr.target is not None
                and index + 1 < instr.target <= backedge):
            index = instr.target  # skip the rarely-taken reset path
        else:
            index += 1
    return CloneShape(loop_start=loop, backedge=backedge,
                      tail_start=tail_start, body=body, n_blocks=n_blocks)


# ----------------------------------------------------------------------
# CF201: instruction mix
# ----------------------------------------------------------------------
def _body_hist(program, indices):
    iclass = columns_for(program).iclass
    return np.bincount(iclass[np.asarray(indices, dtype=np.int64)],
                       minlength=IClass.COUNT).tolist()


def _expected_block_hist(profile, bid, pattern):
    """Static class histogram the synthesizer promises for one block."""
    stats = profile.blocks[bid]
    counts = {}
    for iclass, count in enumerate(stats.mix):
        label = _SYNTH_LABELS.get(iclass)
        if label is None or count == 0:
            continue
        counts[label] = counts.get(label, 0) + count
    counts.pop("load", None)
    counts.pop("store", None)
    loads = sum(1 for pc in stats.mem_pcs
                if not profile.mem_ops.get(pc)
                or not profile.mem_ops[pc].is_store)
    stores = len(stats.mem_pcs) - loads
    if loads:
        counts["load"] = loads
    if stores:
        counts["store"] = stores
    setup = _SETUP_COST.get(getattr(pattern, "kind", ""), 0)
    if setup and counts.get("ialu", 0) > 0:
        counts["ialu"] = max(0, counts["ialu"] - setup)
    hist = [0] * IClass.COUNT
    for label, count in counts.items():
        if count:
            hist[_CLASS_OF_LABEL[label]] += count
    if pattern is not None:
        hist[IClass.BRANCH] += 1
        hist[IClass.IALU] += _SETUP_COST.get(pattern.kind, 0)
    return hist


def _block_regions(program, shape):
    """(k, start, end) instruction regions of the generated blocks."""
    labels = program.labels
    regions = []
    for k in range(shape.n_blocks):
        start = labels[f"bb{k}"]
        end = (labels[f"bb{k + 1}"] if k + 1 < shape.n_blocks
               else shape.tail_start)
        regions.append((k, start, end))
    return regions


def check_mix_conformance(clone, shape, tolerances,
                          severity_overrides=None, patterns=None):
    """``CF201``: clone instruction mix must match the profile's.

    Aggregate check: steady-state body class fractions against the
    profiled global mix.  Per-block check (when the clone's stats carry
    the SFG walk ``sequence``): each generated block's static class
    histogram must equal the one the synthesizer derives from that
    block's profiled mix — an exact, zero-tolerance contract.
    """
    program = clone.program
    profile = clone.profile
    report = LintReport(program.name)
    hist = _body_hist(program, shape.body)
    total = sum(hist)
    profile_fracs = profile.mix_fractions()
    if total and sum(profile_fracs):
        fracs = [count / total for count in hist]
        checks = [
            ("memory", fracs[IClass.LOAD] + fracs[IClass.STORE],
             profile_fracs[IClass.LOAD] + profile_fracs[IClass.STORE],
             tolerances.memory_fraction),
            ("branch", fracs[IClass.BRANCH], profile_fracs[IClass.BRANCH],
             tolerances.branch_fraction),
        ]
        for iclass, label in ((IClass.IMUL, "imul"), (IClass.IDIV, "idiv"),
                              (IClass.FMUL, "fmul"), (IClass.FDIV, "fdiv")):
            checks.append((label, fracs[iclass], profile_fracs[iclass],
                           tolerances.compute_fraction))
        for label, got, want, tolerance in checks:
            if abs(got - want) > tolerance:
                report.add(make_diagnostic(
                    "CF201",
                    f"{label} fraction {got:.3f} diverges from profiled "
                    f"{want:.3f} (tolerance {tolerance:.3f})",
                    severity_overrides=severity_overrides,
                    data={"class": label, "clone": round(got, 4),
                          "profile": round(want, 4)}))

    sequence = clone.stats.get("sequence")
    if sequence and len(sequence) == shape.n_blocks:
        if patterns is None:
            patterns = expected_patterns(profile, sequence)
        expected_cache = {}  # the walk revisits source blocks
        for (k, start, end), bid, pattern in zip(
                _block_regions(program, shape), sequence, patterns):
            got = _body_hist(program, range(start, end))
            cache_key = (bid, getattr(pattern, "kind", None))
            want = expected_cache.get(cache_key)
            if want is None:
                want = _expected_block_hist(profile, bid, pattern)
                expected_cache[cache_key] = want
            if got != want:
                diffs = [f"{label}={got[iclass]} (expected {want[iclass]})"
                         for label, iclass in _CLASS_OF_LABEL.items()
                         if got[iclass] != want[iclass]]
                diffs.extend(
                    f"{name}={got[iclass]} (expected {want[iclass]})"
                    for name, iclass in (("branch", IClass.BRANCH),
                                         ("other", IClass.OTHER))
                    if got[iclass] != want[iclass])
                report.add(make_diagnostic(
                    "CF201",
                    f"block bb{k} (from profile block {bid}) mix "
                    f"diverges: {', '.join(diffs)}",
                    severity_overrides=severity_overrides,
                    index=start, data={"block": k, "source_bid": bid}))
    return report


# ----------------------------------------------------------------------
# CF202: dependency distances
# ----------------------------------------------------------------------
def check_dep_conformance(clone, shape, tolerances,
                          severity_overrides=None):
    """``CF202``: steady-state dependency histogram vs the profile.

    Records, for every register read in the loop body, the distance to
    the closest preceding write — the profiler's exact semantics,
    applied to the static steady-state path.  The last-writer map is
    seeded with each register's final write position shifted back one
    iteration, so loop-carried distances wrap correctly without walking
    a warm-up pass.
    """
    columns = columns_for(clone.program)
    report = LintReport(clone.program.name)
    profile_fracs = clone.profile.dep_fractions()
    if not sum(profile_fracs):
        return report
    hist = [0] * NUM_DEP_BUCKETS
    dest_of = columns.dest_list
    srcs_of = columns.srcs_list
    body_dest = [dest_of[index] for index in shape.body]
    body_srcs = [srcs_of[index] for index in shape.body]
    length = len(shape.body)
    last_write = {}
    for position, rd in enumerate(body_dest):
        if rd >= 0 and rd != ZERO_REG:
            last_write[rd] = position - length  # previous iteration
    for position, srcs in enumerate(body_srcs):
        for src in srcs:
            if src == ZERO_REG:
                continue
            writer = last_write.get(src)
            if writer is not None:
                hist[dep_bucket(position - writer)] += 1
        rd = body_dest[position]
        if rd >= 0 and rd != ZERO_REG:
            last_write[rd] = position
    total = sum(hist)
    if not total:
        return report
    tvd = 0.5 * sum(abs(count / total - want)
                    for count, want in zip(hist, profile_fracs))
    if tvd > tolerances.dep_tvd:
        report.add(make_diagnostic(
            "CF202",
            f"dependency-distance histogram diverges from the profile "
            f"(total-variation distance {tvd:.3f} > "
            f"{tolerances.dep_tvd:.3f})",
            severity_overrides=severity_overrides,
            data={"tvd": round(tvd, 4)}))
    return report


# ----------------------------------------------------------------------
# CF203: branch machinery
# ----------------------------------------------------------------------
def expected_patterns(profile, sequence):
    """The pattern the contract demands for each generated block.

    ``shift`` is left at 0 for random patterns — the synthesizer rotates
    it through a cursor, and the bit-window position does not affect the
    realized rates — so comparisons must ignore it.  The SFG walk
    revisits source blocks, so patterns are memoized per block id.
    """
    cache = {}
    patterns = []
    for bid in sequence:
        if bid in cache:
            patterns.append(cache[bid])
            continue
        stats = profile.blocks[bid]
        if stats.branch_pc < 0:
            pattern = None
        else:
            branch = profile.branches.get(stats.branch_pc)
            pattern = (pattern_for(1.0, 0.0) if branch is None
                       else pattern_for(branch.taken_rate,
                                        branch.transition_rate))
        cache[bid] = pattern
        patterns.append(pattern)
    return patterns


def recover_pattern(program, k):
    """Parse block ``k``'s terminating machinery back to a pattern.

    Returns a :class:`BranchPattern`, None (no machinery emitted), or
    the string ``"unrecognized"``.
    """
    labels = program.labels
    end = labels.get(f"bb{k}_n")
    if end is None:
        return None
    start = labels[f"bb{k}"]
    instructions = program.instructions
    branch = instructions[end - 1]
    if not branch.is_cond_branch or branch.target != end:
        return "unrecognized"
    if (branch.opcode == "beq" and branch.rs1 == ZERO_REG
            and branch.rs2 == ZERO_REG):
        return BranchPattern(kind="taken")
    if (branch.opcode == "bne" and branch.rs1 == ZERO_REG
            and branch.rs2 == ZERO_REG):
        return BranchPattern(kind="not_taken")
    if (branch.opcode != "bne" or branch.rs2 != ZERO_REG
            or end - 3 < start):
        return "unrecognized"
    cond = branch.rs1
    compare = instructions[end - 2]
    setup = instructions[end - 3]
    if (compare.opcode != "slti" or compare.rd != cond
            or compare.rs1 != cond):
        return "unrecognized"
    threshold = compare.imm
    if (setup.opcode == "andi" and setup.rd == cond
            and setup.rs1 == _COUNTER):
        period = setup.imm + 1
        if period < 2 or period & (period - 1):
            return "unrecognized"
        return BranchPattern(kind="modulo", period=period,
                             threshold=threshold)
    if (setup.opcode == "andi" and setup.rd == cond and setup.rs1 == cond
            and setup.imm == 7 and end - 4 >= start):
        window = instructions[end - 4]
        if (window.opcode == "srli" and window.rd == cond
                and window.rs1 == _RNG):
            return BranchPattern(kind="random", threshold=threshold,
                                 shift=window.imm)
    return "unrecognized"


def check_branch_conformance(clone, shape, tolerances,
                             severity_overrides=None, patterns=None):
    """``CF203``: branch machinery must realize the profiled rates.

    Per-block (when ``sequence`` is available): the recovered pattern's
    kind/period/threshold must exactly equal ``pattern_for`` applied to
    the source branch's profiled rates.  Aggregate (always): the mean
    expected taken rate over the recovered machinery must match the
    profile's dynamic taken rate.
    """
    program = clone.program
    profile = clone.profile
    report = LintReport(program.name)
    recovered = [recover_pattern(program, k) for k in range(shape.n_blocks)]

    sequence = clone.stats.get("sequence")
    if sequence and len(sequence) == shape.n_blocks:
        if patterns is None:
            patterns = expected_patterns(profile, sequence)
        for k, (bid, expected) in enumerate(zip(sequence, patterns)):
            got = recovered[k]
            location = {"index": program.labels[f"bb{k}"],
                        "data": {"block": k, "source_bid": bid}}
            if got == "unrecognized":
                report.add(make_diagnostic(
                    "CF203", f"block bb{k} ends in unrecognized branch "
                    "machinery", severity_overrides=severity_overrides,
                    **location))
            elif expected is None and got is not None:
                report.add(make_diagnostic(
                    "CF203", f"block bb{k} has branch machinery but "
                    f"profile block {bid} has no terminating branch",
                    severity_overrides=severity_overrides, **location))
            elif expected is not None and got is None:
                report.add(make_diagnostic(
                    "CF203", f"block bb{k} is missing the branch "
                    f"machinery for profile block {bid}",
                    severity_overrides=severity_overrides, **location))
            elif expected is not None and (
                    (got.kind, got.period, got.threshold)
                    != (expected.kind, expected.period, expected.threshold)):
                report.add(make_diagnostic(
                    "CF203",
                    f"block bb{k} realizes {got.kind}"
                    f"(period={got.period}, threshold={got.threshold}) "
                    f"but profile block {bid} demands {expected.kind}"
                    f"(period={expected.period}, "
                    f"threshold={expected.threshold})",
                    severity_overrides=severity_overrides, **location))

    realized = [pattern for pattern in recovered
                if isinstance(pattern, BranchPattern)]
    total_count = sum(stats.count for stats in profile.branches.values())
    if realized and total_count:
        clone_rate = (sum(p.expected_taken_rate() for p in realized)
                      / len(realized))
        profile_rate = sum(stats.taken_rate * stats.count
                           for stats in profile.branches.values()) \
            / total_count
        if abs(clone_rate - profile_rate) > tolerances.taken_rate:
            report.add(make_diagnostic(
                "CF203",
                f"aggregate taken rate {clone_rate:.3f} diverges from "
                f"profiled {profile_rate:.3f} "
                f"(tolerance {tolerances.taken_rate:.3f})",
                severity_overrides=severity_overrides,
                data={"clone": round(clone_rate, 4),
                      "profile": round(profile_rate, 4)}))
    return report


# ----------------------------------------------------------------------
# CF204 / CF205: streams and footprint
# ----------------------------------------------------------------------
def check_stream_conformance(clone, shape, severity_overrides=None):
    """``CF204``: tail pointer advances must match the memory plan."""
    program = clone.program
    report = LintReport(program.name)
    planned = {cluster["index"]: cluster["advance"]
               for cluster in clone.stats.get("clusters", [])
               if "index" in cluster and "advance" in cluster}
    if not planned:
        return report  # stats from an older schema: nothing to check
    recovered = {}
    for index in shape.body:
        if index < shape.tail_start:
            continue
        instr = program.instructions[index]
        if (instr.opcode == "addi" and instr.rd == instr.rs1
                and instr.rd in _POINTERS):
            recovered[instr.rd - _FIRST_POINTER] = instr.imm
    for cluster_index in sorted(set(planned) | set(recovered)):
        want = planned.get(cluster_index)
        got = recovered.get(cluster_index)
        if want is None:
            report.add(make_diagnostic(
                "CF204", f"tail advances pointer cluster {cluster_index} "
                "which the memory plan does not declare",
                severity_overrides=severity_overrides,
                data={"cluster": cluster_index, "advance": got}))
        elif got is None:
            report.add(make_diagnostic(
                "CF204", f"tail never advances pointer cluster "
                f"{cluster_index} (plan advance {want})",
                severity_overrides=severity_overrides,
                data={"cluster": cluster_index}))
        elif got != want:
            report.add(make_diagnostic(
                "CF204", f"pointer cluster {cluster_index} advances by "
                f"{got} per iteration, the plan demands {want}",
                severity_overrides=severity_overrides,
                data={"cluster": cluster_index, "advance": got,
                      "plan": want}))
    return report


def check_footprint_conformance(clone, tolerances, severity_overrides=None):
    """``CF205``: data image size vs the scaled profiled footprint."""
    program = clone.program
    report = LintReport(program.name)
    scale = getattr(clone.parameters, "footprint_scale", 1.0) or 1.0
    target = clone.profile.data_footprint_bytes * scale
    if target <= 0:
        return report
    footprint = len(program.data_image)
    ratio = footprint / target
    if not (tolerances.footprint_ratio_low <= ratio
            <= tolerances.footprint_ratio_high):
        report.add(make_diagnostic(
            "CF205",
            f"clone data footprint {footprint} bytes is {ratio:.2f}x the "
            f"scaled profiled footprint {target:.0f} bytes (accepted "
            f"{tolerances.footprint_ratio_low}x.."
            f"{tolerances.footprint_ratio_high}x)",
            severity_overrides=severity_overrides,
            data={"footprint": footprint, "target": round(target),
                  "ratio": round(ratio, 3)}))
    return report


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def check_conformance(clone, tolerances=None, severity_overrides=None):
    """Run every conformance pass over one synthesized clone."""
    tolerances = tolerances or ConformanceTolerances()
    report = LintReport(clone.program.name)
    shape = discover_shape(clone.program, report, severity_overrides)
    if shape is None:
        return report
    sequence = clone.stats.get("sequence")
    patterns = (expected_patterns(clone.profile, sequence)
                if sequence and len(sequence) == shape.n_blocks else None)
    for pass_report in (
            check_mix_conformance(clone, shape, tolerances,
                                  severity_overrides, patterns=patterns),
            check_dep_conformance(clone, shape, tolerances,
                                  severity_overrides),
            check_branch_conformance(clone, shape, tolerances,
                                     severity_overrides, patterns=patterns),
            check_stream_conformance(clone, shape, severity_overrides),
            check_footprint_conformance(clone, tolerances,
                                        severity_overrides)):
        report.extend(pass_report.diagnostics)
    return report
