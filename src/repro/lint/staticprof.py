"""Static profile prediction from the abstract-interpretation fixpoint.

Layer 2.5 of the lint stack: given a synthesized clone, *predict* the
dynamic :class:`repro.core.profile.WorkloadProfile` the functional
simulator and profiler would produce — without executing a single
instruction — and compare it against the target profile with the same
tolerance semantics as the dynamic fidelity suite (codes
``CF210``–``CF215``).

The prediction leans entirely on facts the abstract interpreter
*proved* (:mod:`repro.lint.absint`), never on the synthesizer's own
stats:

* the single natural loop's **exact** trip count ``N`` gives block visit
  counts (``N`` for steady-state blocks, ``⌊N/period⌋`` for each
  verified countdown's reset block, 1 for the init/exit chains);
* the verified countdown invariants give every static memory op's full
  address sequence ``base + offset + advance·(j mod period)``, which is
  pushed through the profiler's own stride-mining arithmetic;
* branch direction sequences come from classified machinery — constant
  (``beq/bne r0, r0``), modulo of a proven affine induction register,
  or a bit-window of the verified xorshift register — evaluated for all
  ``N`` iterations in closed form or one vectorized sweep.

When any structural obligation fails (several loops, indirect flow, an
unclassifiable branch, a memory op whose base is not a proven countdown
pointer, ...) the prediction declines with ``CF210`` instead of
guessing, mirroring the soundness contract of the safety proofs.

The payoff: the conformance gate and closed-loop candidate search can
score a clone in milliseconds, where the simulate-then-profile path
costs seconds.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.branch_model import xorshift32
from repro.core.profile import (
    DEP_BUCKETS,
    NUM_DEP_BUCKETS,
    BlockStats,
    BranchStats,
    ContextStats,
    MemOpStats,
    WorkloadProfile,
    dep_bucket,
)
from repro.core.profiler import (
    STREAM_MIN_EXECUTIONS,
    WorkloadProfiler,
    _mean_run_length,
)
from repro.isa.columns import columns_for
from repro.isa.instructions import IClass
from repro.isa.registers import ZERO_REG
from repro.lint.absint import (
    _affine_deltas,
    _delta_at,
    _is_const,
    _loop_entry_state,
    _nested_blocks,
    analyze_program,
)
from repro.lint.conformance import ConformanceTolerances
from repro.lint.diagnostics import LintReport, make_diagnostic

_SIGNED_MAX = 0x7FFFFFFF

#: The clone tail's xorshift32 step, as opcode/immediate tuples
#: (destination-relative): used to verify a register is the rng.
_XORSHIFT_SHAPE = (("slli", 13), ("xor", None), ("srli", 17),
                   ("xor", None), ("slli", 5), ("xor", None))


class StaticPredictionError(Exception):
    """Raised when the structure proofs cannot certify a prediction."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


@dataclass
class StaticPrediction:
    """A fully derived profile prediction plus the facts behind it."""

    profile: WorkloadProfile
    iterations: int
    loop_header: int
    countdowns: list
    reset_visits: dict  # reset block id -> visit count
    steady_blocks: list  # loop block ids executed every iteration
    branch_sequences: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Structure certification
# ----------------------------------------------------------------------
def _require(condition, reason):
    if not condition:
        raise StaticPredictionError(reason)


def _certify_structure(program, result):
    """Prove the clone's deterministic execution skeleton.

    Returns ``(loop, columns, init_chain, exit_chain)``; raises
    :class:`StaticPredictionError` on any unmet obligation.
    """
    columns = columns_for(program)
    _require(not result.degraded, result.degraded or "analysis degraded")
    _require(len(result.loops) == 1,
             f"expected exactly one natural loop, found {len(result.loops)}")
    loop = result.loops[0]
    _require(loop.trip_bound is not None and loop.exact,
             "loop trip count is not exactly known")
    _require(result.terminates, "termination is not proven")
    _require(len(loop.back_sources) == 1, "loop has several back edges")

    cfg = result.cfg
    reachable = cfg.reachable()
    header_start = columns.block_bounds[loop.header][0]
    countdown_branches = {info.branch_index
                          for info in loop.countdowns}
    reset_ranges = [range(info.reset_start, info.reset_end)
                    for info in loop.countdowns]

    # Every reset region must be exactly one basic block.
    for info in loop.countdowns:
        bid = int(columns.block_of[info.reset_start])
        _require(columns.block_bounds[bid]
                 == (info.reset_start, info.reset_end),
                 "countdown reset path is not a single basic block")

    # In-loop control flow must be forward-monotone: every branch either
    # returns to the header (the latch) or jumps strictly forward, so
    # instruction indices execute in increasing order within an
    # iteration and every non-reset block runs exactly once per trip.
    latch = None
    for bid in loop.body:
        start, end = columns.block_bounds[bid]
        last = end - 1
        if columns.is_jump[last]:
            raise StaticPredictionError(
                "loop body contains a jump instruction")
        if not columns.is_cond[last]:
            continue
        target = columns.target_list[last]
        if target == header_start:
            _require(latch is None, "several latch branches")
            latch = last
            continue
        if last in countdown_branches:
            continue  # verified separately by the countdown proof
        _require(target == last + 1,
                 f"in-loop branch at {last} does not target the next "
                 "instruction")
    _require(latch is not None, "no conditional latch branch")
    latch_bid = int(columns.block_of[latch])
    _require((latch_bid,) == tuple(loop.back_sources),
             "latch is not the unique back edge")

    # Outside the loop only straight-line chains may exist: the init
    # prefix (entry -> header) and the exit suffix (latch -> halt).
    init_chain = []
    bid = cfg.entry
    seen = set()
    while bid not in loop.body:
        _require(bid in reachable and bid not in seen,
                 "init chain does not reach the loop")
        seen.add(bid)
        init_chain.append(bid)
        succs = cfg.successors[bid]
        _require(len(succs) == 1, "init chain is not straight-line")
        last = columns.block_bounds[bid][1] - 1
        _require(not columns.is_cond[last] and not columns.is_jump[last],
                 "init chain contains control flow")
        bid = succs[0]
    _require(bid == loop.header, "init chain does not enter at the header")

    exit_chain = []
    exits = [succ for succ in cfg.successors[latch_bid]
             if succ not in loop.body]
    _require(len(exits) == 1, "latch has no unique exit successor")
    bid = exits[0]
    while True:
        _require(bid in reachable and bid not in loop.body
                 and bid not in seen and bid not in exit_chain,
                 "exit chain re-enters earlier code")
        exit_chain.append(bid)
        last = columns.block_bounds[bid][1] - 1
        _require(not columns.is_cond[last] and not columns.is_jump[last],
                 "exit chain contains control flow")
        succs = cfg.successors[bid]
        if not succs:
            break
        _require(len(succs) == 1, "exit chain is not straight-line")
        bid = succs[0]

    for bid in reachable:
        if bid not in loop.body and bid not in init_chain \
                and bid not in exit_chain:
            raise StaticPredictionError(
                f"reachable block {bid} is outside the certified "
                "init/loop/exit skeleton")

    # Memory ops may only live in the loop's steady-state path, with a
    # verified countdown pointer as base, read before the advance.
    pointers = {info.pointer: info for info in loop.countdowns}
    mem_indices = np.nonzero(columns.is_mem[:columns.n])[0]
    for index in (int(i) for i in mem_indices):
        bid = int(columns.block_of[index])
        if bid not in reachable:
            continue
        _require(bid in loop.body, "memory op outside the loop")
        _require(not any(index in r for r in reset_ranges),
                 "memory op inside a reset path")
        base = int(columns.src1[index])
        info = pointers.get(base)
        _require(info is not None,
                 f"memory op at {index} does not address through a "
                 "verified countdown pointer")
        _require(index < info.advance_index,
                 "memory op executes after its pointer's advance")
    return loop, columns, init_chain, exit_chain, latch


# ----------------------------------------------------------------------
# Branch direction sequences
# ----------------------------------------------------------------------
def _xorshift_register(columns, loop, result):
    """The verified per-iteration xorshift register, or None.

    Scans the loop for the canonical six-instruction step and checks the
    updated register is written nowhere else in the loop, so its value
    in iteration ``j`` is exactly ``xorshift32^j(seed)``.
    """
    opcodes = columns.opcode_list
    dests = columns.dest_list
    imms = columns.imm_list
    for bid in loop.body:
        start, end = columns.block_bounds[bid]
        for index in range(start, end - len(_XORSHIFT_SHAPE) + 1):
            ok = True
            for offset, (op, imm) in enumerate(_XORSHIFT_SHAPE):
                if opcodes[index + offset] != op or (
                        imm is not None and imms[index + offset] != imm):
                    ok = False
                    break
            if not ok:
                continue
            rng = dests[index + 1]
            if rng <= 0:
                continue
            writes = [i for body_bid in loop.body
                      for i in range(*columns.block_bounds[body_bid])
                      if dests[i] == rng]
            if sorted(writes) != [index + 1, index + 3, index + 5]:
                continue
            entry = _loop_entry_state(result.cfg, columns, loop,
                                      result.in_states)
            if entry is None or not _is_const(entry[rng]):
                continue
            return rng, entry[rng][0], index
    return None


def _rng_values(seed, iterations):
    values = np.empty(iterations, dtype=np.int64)
    state = seed
    for j in range(iterations):
        values[j] = state
        state = xorshift32(state)
    return values


def _cached_sequence(context, key, build):
    cache = context["seq_cache"]
    sequence = cache.get(key)
    if sequence is None:
        sequence = cache[key] = build()
    return sequence


def _branch_sequence(columns, loop, result, index, latch, countdowns,
                     iterations, context):
    """0/1 direction array over all iterations for one in-loop branch.

    Sequences are memoized per behaviour key — every machinery branch
    with the same (window, threshold) parameters shares one array, so
    the per-branch cost is a dictionary lookup, not a numpy sweep.
    """
    n = iterations
    if index == latch:
        def build():
            taken = np.ones(n, dtype=np.int8)
            taken[n - 1] = 0
            return taken
        return _cached_sequence(context, ("latch",), build)
    for info in countdowns:
        if info.branch_index == index:
            period = info.period
            return _cached_sequence(
                context, ("countdown", period),
                lambda: (np.arange(n, dtype=np.int64) % period
                         != period - 1).astype(np.int8))

    opcodes = columns.opcode_list
    dests = columns.dest_list
    src1s = columns.src1
    src2s = columns.src2
    imms = columns.imm_list
    op = opcodes[index]
    r1, r2 = int(src1s[index]), int(src2s[index])
    if r1 == ZERO_REG and r2 == ZERO_REG:
        if op == "beq":
            return _cached_sequence(context, ("always",),
                                    lambda: np.ones(n, dtype=np.int8))
        if op == "bne":
            return _cached_sequence(context, ("never",),
                                    lambda: np.zeros(n, dtype=np.int8))
        raise StaticPredictionError(
            f"constant branch at {index} uses {op}, not beq/bne")
    _require(op == "bne" and r2 == ZERO_REG and index >= 2,
             f"unclassifiable branch machinery at {index}")
    cond = r1
    start = columns.block_bounds[int(columns.block_of[index])][0]
    compare = index - 1
    _require(compare >= start and opcodes[compare] == "slti"
             and dests[compare] == cond and int(src1s[compare]) == cond,
             f"branch at {index} lacks the slti condition setup")
    threshold = imms[compare]
    setup = index - 2
    _require(setup >= start and opcodes[setup] == "andi"
             and dests[setup] == cond,
             f"branch at {index} lacks the andi window setup")
    mask = imms[setup]
    _require(mask >= 0, f"negative andi mask at {setup}")
    source = int(src1s[setup])

    if source == cond:
        # Random machinery: srli cond, rng, shift feeds the window.
        window = index - 3
        _require(window >= start and opcodes[window] == "srli"
                 and dests[window] == cond,
                 f"branch at {index} lacks the srli rng window")
        shift = imms[window]
        rng_reg = int(src1s[window])
        _require(context["xorshift"] is not None
                 and context["xorshift"][0] == rng_reg
                 and window < context["xorshift"][2],
                 f"branch at {index} reads an unverified rng register")
        rng = context["rng_values"]
        return _cached_sequence(
            context, ("random", shift, mask, threshold),
            lambda: (((rng >> shift) & mask) < threshold).astype(np.int8))

    # Modulo machinery over a proven affine induction register.
    affine_cache = context["affine"]
    if source in affine_cache:
        affine = affine_cache[source]
    else:
        affine = affine_cache[source] = _affine_deltas(
            result.cfg, columns, loop, source, context["nested"])
    _require(affine is not None,
             f"branch at {index} windows a non-affine register")
    delta_in, cycle_delta = affine
    at_point = _delta_at(columns, delta_in,
                         int(columns.block_of[setup]), setup, source)
    _require(at_point is not None,
             f"cannot place the affine value at instruction {setup}")
    entry = context["entry"]
    _require(entry is not None and _is_const(entry[source]),
             f"branch at {index} windows a register without a constant "
             "entry value")
    first = entry[source][0] + at_point
    last = first + cycle_delta * (n - 1)
    _require(first >= 0 and 0 <= last <= _SIGNED_MAX and cycle_delta >= 0,
             "affine counter may wrap over the run")

    def build():
        values = first + cycle_delta * np.arange(n, dtype=np.int64)
        return ((values & mask) < threshold).astype(np.int8)
    return _cached_sequence(
        context, ("modulo", first, cycle_delta, mask, threshold), build)


# ----------------------------------------------------------------------
# The prediction
# ----------------------------------------------------------------------
def _block_facts(columns):
    """Cached per-block (mix list, mem pcs, last cond-branch pc) tables.

    One vectorized pass over the program replaces the per-block numpy
    slicing the predictor used to do; cached on ``columns.derived`` so
    repeated predictions of the same program pay it once.
    """
    cached = columns.derived.get("staticprof_block_facts")
    if cached is None:
        n_blocks = len(columns.block_bounds)
        mem_pcs = [[] for _ in range(n_blocks)]
        for index in np.nonzero(columns.is_mem)[0]:
            mem_pcs[columns.block_of[index]].append(int(index))
        branch_pc = [-1] * n_blocks
        # np.nonzero ascends, so the last conditional in a block wins.
        for index in np.nonzero(columns.is_cond)[0]:
            branch_pc[columns.block_of[index]] = int(index)
        cached = (columns.mix_matrix().tolist(), mem_pcs, branch_pc)
        columns.derived["staticprof_block_facts"] = cached
    return cached


def predict_profile(program, result=None):
    """Predict the profiler's output for ``program`` without running it.

    Returns a :class:`StaticPrediction`; raises
    :class:`StaticPredictionError` when the structure cannot be
    certified (the caller maps that to ``CF210``).
    """
    if result is None:
        result = analyze_program(program)
    loop, columns, init_chain, exit_chain, latch = _certify_structure(
        program, result)
    n = loop.trip_bound
    cfg = result.cfg
    reachable = cfg.reachable()

    reset_blocks = {}
    for info in loop.countdowns:
        bid = int(columns.block_of[info.reset_start])
        reset_blocks[bid] = info
    reset_visits = {bid: n // info.period
                    for bid, info in reset_blocks.items()}

    # --- visits ---
    visits = {}
    for bid in init_chain:
        visits[bid] = 1
    for bid in sorted(loop.body):
        visits[bid] = reset_visits.get(bid, n) if bid in reset_blocks \
            else n
    for bid in exit_chain:
        visits[bid] = 1

    profile = WorkloadProfile(name=program.name, total_instructions=0,
                              total_memory_ops=0, total_branches=0)
    mix_rows = columns.mix_matrix()
    facts = _block_facts(columns)
    mix_lists, mem_pcs_by_block, branch_pc_by_block = facts
    visit_vector = np.zeros(len(columns.block_bounds), dtype=np.int64)
    for bid, count in visits.items():
        visit_vector[bid] = count
    profile.total_instructions = int(
        (columns.block_size * visit_vector).sum())
    profile.global_mix = (visit_vector @ mix_rows).tolist()
    for bid, count in visits.items():
        if count == 0:
            continue
        start, end = columns.block_bounds[bid]
        profile.blocks[bid] = BlockStats(
            bid=bid, size=end - start, visits=count,
            mix=list(mix_lists[bid]), mem_pcs=list(mem_pcs_by_block[bid]),
            branch_pc=branch_pc_by_block[bid])

    # --- transitions: deterministic chain with reset diversions ---
    chain = init_chain + sorted(loop.body, key=lambda b:
                                columns.block_bounds[b][0])
    transitions = {}

    def record(pred, succ, count):
        if count > 0:
            transitions[(pred, succ)] = (
                transitions.get((pred, succ), 0) + count)

    for pred, succ in zip(init_chain, init_chain[1:]):
        record(pred, succ, 1)
    loop_chain = [bid for bid in chain if bid in loop.body]
    if init_chain:
        record(init_chain[-1], loop_chain[0], 1)
    previous = None
    for bid in loop_chain:
        if bid in reset_blocks:
            continue  # handled as a diversion off its predecessor
        if previous is not None:
            record(previous, bid, n)
        previous = bid
    for bid, info in reset_blocks.items():
        branch_bid = int(columns.block_of[info.branch_index])
        skip_bid = int(columns.block_of[info.reset_end])
        count = reset_visits[bid]
        record(branch_bid, bid, count)
        record(bid, skip_bid, count)
        # The N direct branch->skip transitions recorded above include
        # the diverted iterations; carve them out.
        transitions[(branch_bid, skip_bid)] -= count
        if transitions[(branch_bid, skip_bid)] <= 0:
            del transitions[(branch_bid, skip_bid)]
    latch_bid = int(columns.block_of[latch])
    record(latch_bid, loop.header, n - 1)
    # The in-chain latch->header edge is the wraparound, already counted
    # above only if header followed latch in layout (it does not).
    if exit_chain:
        record(latch_bid, exit_chain[0], 1)
        for pred, succ in zip(exit_chain, exit_chain[1:]):
            record(pred, succ, 1)
    profile.transitions = dict(transitions)
    entry_block = init_chain[0] if init_chain else loop.header
    profile.contexts[(-1, entry_block)] = ContextStats(
        pred=-1, block=entry_block, visits=1,
        dep_hist=[0] * NUM_DEP_BUCKETS)
    for (pred, succ), count in transitions.items():
        profile.contexts[(pred, succ)] = ContextStats(
            pred=pred, block=succ, visits=count,
            dep_hist=[0] * NUM_DEP_BUCKETS)

    # --- branch behaviour ---
    entry = _loop_entry_state(cfg, columns, loop, result.in_states)
    xorshift = _xorshift_register(columns, loop, result)
    context = {
        "entry": entry,
        "nested": _nested_blocks(loop, result.loops),
        "xorshift": xorshift,
        "rng_values": (_rng_values(xorshift[1], n)
                       if xorshift is not None else None),
        "seq_cache": {},
        "affine": {},
    }
    sequences = {}
    rate_cache = {}
    for bid in sorted(loop.body):
        if bid in reset_blocks:
            continue
        start, end = columns.block_bounds[bid]
        for index in range(start, end):
            if not columns.is_cond[index]:
                continue
            taken = _branch_sequence(columns, loop, result, index, latch,
                                     loop.countdowns, n, context)
            sequences[index] = taken
            rates = rate_cache.get(id(taken))
            if rates is None:
                count = len(taken)
                taken_rate = float(np.count_nonzero(taken) / count)
                transition_rate = (
                    float(np.count_nonzero(np.diff(taken)) / (count - 1))
                    if count > 1 else 0.0)
                rates = rate_cache[id(taken)] = (count, taken_rate,
                                                 transition_rate)
            profile.branches[index] = BranchStats(
                pc=index, count=rates[0], taken_rate=rates[1],
                transition_rate=rates[2])
    profile.total_branches = sum(
        stats.count for stats in profile.branches.values())

    # --- memory streams: exact per-op address sequences ---
    # Op ``m`` touches ``base + offset + advance * (j % period)`` on
    # iteration ``j``, so every delta statistic the profiler mines
    # (``np.diff`` is invariant under the constant ``base + offset``)
    # depends only on ``(advance, period)``; ops sharing a cluster
    # share one closed-form computation instead of each materializing
    # an n-element address array.
    pointers = {info.pointer: info for info in loop.countdowns}
    covered_refs = 0
    total_refs = 0
    streams = 0
    address_arrays = []
    stat_cache = {}
    mem_indices = [int(i) for i in np.nonzero(columns.is_mem)[0]
                   if int(columns.block_of[i]) in loop.body]
    for index in sorted(mem_indices):
        info = pointers[int(columns.src1[index])]
        offset = columns.imm_list[index] or 0
        base = info.base + offset
        total_refs += n
        is_store = bool(columns.is_store[index])
        if n == 1:
            address_arrays.append(np.array([base], dtype=np.int64))
            profile.mem_ops[index] = MemOpStats(
                pc=index, is_store=is_store, count=1, dominant_stride=0,
                coverage=1.0, mean_stream_length=1.0, distinct_strides=0,
                footprint_bytes=4, first_address=base, last_address=base)
            covered_refs += 1
            continue
        key = (info.advance, info.period)
        cached = stat_cache.get(key)
        if cached is None:
            advance, period = key
            # Sorted distinct offsets the op attains (j % period hits
            # 0..min(period, n)-1), and the exact delta sequence:
            # ``advance`` everywhere except ``-advance * (period - 1)``
            # at each wraparound (j % period == period - 1).
            distinct = np.unique(
                advance * np.arange(min(period, n), dtype=np.int64))
            deltas = np.full(n - 1, advance, dtype=np.int64)
            deltas[period - 1::period] = -advance * (period - 1)
            values, value_counts = np.unique(deltas, return_counts=True)
            best = int(np.argmax(value_counts))
            dominant = int(values[best])
            dominant_count = int(value_counts[best])
            coverage = float((dominant_count + 1) / n)
            mean_run = float(_mean_run_length(deltas == dominant))
            local = float(np.count_nonzero(np.abs(deltas) <= 32)
                          / len(deltas))
            span = int(distinct[-1] - distinct[0]) + 4
            last_delta = advance * ((n - 1) % period)
            cached = stat_cache[key] = (
                distinct, dominant, dominant_count, coverage, mean_run,
                int(len(values)), span, local, int(last_delta))
        (distinct, dominant, dominant_count, coverage, mean_run,
         n_strides, span, local, last_delta) = cached
        address_arrays.append(base + distinct)
        profile.mem_ops[index] = MemOpStats(
            pc=index, is_store=is_store, count=n,
            dominant_stride=dominant, coverage=coverage,
            mean_stream_length=mean_run, distinct_strides=n_strides,
            footprint_bytes=span, first_address=base,
            last_address=base + last_delta, local_fraction=local)
        covered_refs += dominant_count + 1
        if n >= STREAM_MIN_EXECUTIONS:
            streams += 1
    profile.total_memory_ops = total_refs
    profile.stride_coverage = (covered_refs / total_refs
                               if total_refs else 1.0)
    profile.unique_streams = streams
    WorkloadProfiler._detect_store_aliases(profile, program)

    granularity = 4
    if address_arrays:
        granules = np.unique(np.concatenate(address_arrays) // granularity)
        profile.data_footprint_bytes = int(len(granules)) * granularity
    else:
        profile.data_footprint_bytes = 0

    # --- dependency distances: steady-state walk, scaled to the run ---
    profile.global_dep_hist = _steady_state_dep_hist(
        columns, loop, reset_blocks, n)

    # Sanity backstop: reachable blocks we never assigned visits would
    # make the prediction silently partial.
    for bid in reachable:
        if bid not in visits:
            raise StaticPredictionError(
                f"block {bid} escaped the visit computation")

    return StaticPrediction(
        profile=profile, iterations=n, loop_header=loop.header,
        countdowns=list(loop.countdowns), reset_visits=reset_visits,
        steady_blocks=[bid for bid in loop_chain
                       if bid not in reset_blocks],
        branch_sequences=sequences)


def _steady_state_dep_hist(columns, loop, reset_blocks, iterations):
    """Producer→consumer distance histogram over the common path.

    Walks the steady-state instruction sequence once with each
    register's last write seeded one iteration back (the conformance
    pass's wrap-around trick), then scales by the iteration count so
    the histogram carries run weight like the profiler's.
    """
    body = [index
            for bid in sorted(loop.body,
                              key=lambda b: columns.block_bounds[b][0])
            if bid not in reset_blocks
            for index in range(*columns.block_bounds[bid])]
    length = len(body)
    if any(len(columns.srcs_list[index]) > 2 for index in body):
        return _dep_hist_walk(columns, body, iterations)
    # Vectorized equivalent of the scalar walk: per register, the
    # producer of a read at position p is the last write before p, or
    # the wrapped-around final write (seeded one iteration back).
    seq = np.asarray(body, dtype=np.int64)
    positions = np.arange(length, dtype=np.int64)
    dest = columns.dest[seq]
    src1 = columns.src1[seq]
    src2 = columns.src2[seq]
    hist = np.zeros(NUM_DEP_BUCKETS, dtype=np.int64)
    buckets = np.asarray(DEP_BUCKETS, dtype=np.int64)
    written = np.unique(dest[dest > ZERO_REG])
    read = np.unique(np.concatenate((src1[src1 > ZERO_REG],
                                     src2[src2 > ZERO_REG])))
    for reg in np.intersect1d(written, read).tolist():
        writes = positions[dest == reg]
        reads = np.concatenate((positions[src1 == reg],
                                positions[src2 == reg]))
        nearest = np.searchsorted(writes, reads, side="left") - 1
        producer = np.where(nearest >= 0,
                            writes[np.maximum(nearest, 0)],
                            writes[-1] - length)
        distances = reads - producer
        hist += np.bincount(
            np.searchsorted(buckets, distances, side="left"),
            minlength=NUM_DEP_BUCKETS)
    return [int(count) * iterations for count in hist]


def _dep_hist_walk(columns, body, iterations):
    """Scalar fallback walk for instructions with exotic source lists."""
    hist = [0] * NUM_DEP_BUCKETS
    dest_of = columns.dest_list
    srcs_of = columns.srcs_list
    length = len(body)
    last_write = {}
    for position, index in enumerate(body):
        rd = dest_of[index]
        if rd >= 0 and rd != ZERO_REG:
            last_write[rd] = position - length
    for position, index in enumerate(body):
        for src in srcs_of[index]:
            if src == ZERO_REG:
                continue
            writer = last_write.get(src)
            if writer is not None:
                hist[dep_bucket(position - writer)] += 1
        rd = dest_of[index]
        if rd >= 0 and rd != ZERO_REG:
            last_write[rd] = position
    return [count * iterations for count in hist]


# ----------------------------------------------------------------------
# CF210-CF215: static conformance against the target profile
# ----------------------------------------------------------------------
def check_static_conformance(clone, tolerances=None,
                             severity_overrides=None, prediction=None):
    """Score a clone against its target profile with zero simulation.

    Mirrors the dynamic fidelity suite's comparisons, but feeds them the
    *predicted* profile: mix fractions (``CF211``), dependency-distance
    TVD (``CF212``), count-weighted taken rate (``CF213``), stream
    advances against the memory plan (``CF214``), and the data footprint
    ratio (``CF215``).  A failed structure certification reports
    ``CF210`` and skips the comparisons.
    """
    tolerances = tolerances or ConformanceTolerances()
    program = clone.program
    target = clone.profile
    report = LintReport(program.name)
    if prediction is None:
        try:
            prediction = predict_profile(program)
        except StaticPredictionError as error:
            report.add(make_diagnostic(
                "CF210",
                f"static profile prediction declined: {error.reason}",
                severity_overrides=severity_overrides,
                data={"reason": error.reason}))
            return report, None
    predicted = prediction.profile

    # CF211: instruction-mix fractions.
    got = predicted.mix_fractions()
    want = target.mix_fractions()
    if sum(got) and sum(want):
        checks = [
            ("memory", got[IClass.LOAD] + got[IClass.STORE],
             want[IClass.LOAD] + want[IClass.STORE],
             tolerances.memory_fraction),
            ("branch", got[IClass.BRANCH], want[IClass.BRANCH],
             tolerances.branch_fraction),
            ("imul", got[IClass.IMUL], want[IClass.IMUL],
             tolerances.compute_fraction),
            ("idiv", got[IClass.IDIV], want[IClass.IDIV],
             tolerances.compute_fraction),
            ("fmul", got[IClass.FMUL], want[IClass.FMUL],
             tolerances.compute_fraction),
            ("fdiv", got[IClass.FDIV], want[IClass.FDIV],
             tolerances.compute_fraction),
        ]
        for label, have, need, tolerance in checks:
            if abs(have - need) > tolerance:
                report.add(make_diagnostic(
                    "CF211",
                    f"predicted {label} fraction {have:.3f} diverges "
                    f"from profiled {need:.3f} (tolerance "
                    f"{tolerance:.3f})",
                    severity_overrides=severity_overrides,
                    data={"class": label, "predicted": round(have, 4),
                          "profile": round(need, 4)}))

    # CF212: dependency-distance TVD.
    predicted_deps = predicted.dep_fractions()
    target_deps = target.dep_fractions()
    if sum(predicted_deps) and sum(target_deps):
        tvd = 0.5 * sum(abs(a - b) for a, b
                        in zip(predicted_deps, target_deps))
        if tvd > tolerances.dep_tvd:
            report.add(make_diagnostic(
                "CF212",
                f"predicted dependency histogram diverges "
                f"(total-variation distance {tvd:.3f} > "
                f"{tolerances.dep_tvd:.3f})",
                severity_overrides=severity_overrides,
                data={"tvd": round(tvd, 4)}))

    # CF213: count-weighted aggregate taken rate.
    predicted_total = sum(s.count for s in predicted.branches.values())
    target_total = sum(s.count for s in target.branches.values())
    if predicted_total and target_total:
        predicted_rate = sum(s.taken_rate * s.count
                             for s in predicted.branches.values()) \
            / predicted_total
        target_rate = sum(s.taken_rate * s.count
                          for s in target.branches.values()) \
            / target_total
        if abs(predicted_rate - target_rate) > tolerances.taken_rate:
            report.add(make_diagnostic(
                "CF213",
                f"predicted aggregate taken rate {predicted_rate:.3f} "
                f"diverges from profiled {target_rate:.3f} (tolerance "
                f"{tolerances.taken_rate:.3f})",
                severity_overrides=severity_overrides,
                data={"predicted": round(predicted_rate, 4),
                      "profile": round(target_rate, 4)}))

    # CF214: proven pointer advances against the memory plan.
    planned = {cluster["index"]: cluster["advance"]
               for cluster in clone.stats.get("clusters", [])
               if "index" in cluster and "advance" in cluster}
    if planned:
        from repro.core.regassign import CloneRegisterFile
        first = CloneRegisterFile.FIRST_POINTER
        proven = {info.pointer - first: info.advance
                  for info in prediction.countdowns}
        for cluster_index in sorted(set(planned) | set(proven)):
            want_adv = planned.get(cluster_index)
            got_adv = proven.get(cluster_index)
            if got_adv != want_adv:
                report.add(make_diagnostic(
                    "CF214",
                    f"pointer cluster {cluster_index}: proven advance "
                    f"{got_adv} vs plan {want_adv}",
                    severity_overrides=severity_overrides,
                    data={"cluster": cluster_index, "proven": got_adv,
                          "plan": want_adv}))

    # CF215: the proven footprint interval span against the scaled
    # target — the static counterpart of CF205's allocation check, using
    # the SR113 proof object rather than the data image's length.  (The
    # granule-exact touched footprint lives in ``predicted.
    # data_footprint_bytes`` for the cross-check suite; the gate
    # compares reachable extent, matching CF205's order-of-magnitude
    # contract.)
    scale = getattr(clone.parameters, "footprint_scale", 1.0) or 1.0
    target_bytes = target.data_footprint_bytes * scale
    result = analyze_program(program)
    if target_bytes > 0:
        if result.footprint is None:
            report.add(make_diagnostic(
                "CF215",
                "clone data footprint cannot be statically bounded",
                severity_overrides=severity_overrides,
                data={"unbounded_memops": len(result.unbounded_memops)}))
        else:
            lo, hi = result.footprint
            span = hi - lo
            ratio = span / target_bytes
            if not (tolerances.footprint_ratio_low <= ratio
                    <= tolerances.footprint_ratio_high):
                report.add(make_diagnostic(
                    "CF215",
                    f"proven footprint span {span} bytes is {ratio:.2f}x "
                    f"the scaled profiled footprint {target_bytes:.0f} "
                    f"bytes (accepted {tolerances.footprint_ratio_low}x.."
                    f"{tolerances.footprint_ratio_high}x)",
                    severity_overrides=severity_overrides,
                    data={"span": span, "target": round(target_bytes),
                          "ratio": round(ratio, 3)}))
    return report, prediction
