"""Disclosure audit (lint layer 3, ``DL3xx``).

The paper's dissemination story only works if the clone can be proven
to *not* leak the proprietary application it was synthesized from: a
third party receiving the ``.s``/C artifact must be able to check that
no constant in it derives from a raw address or data value observed in
the profiled run.  This module is that proof.

The argument is a small taint analysis over the clone's constant pool:

* **Roots** — every literal the synthesizer emitted, annotated at
  generation time with its provenance (``CloneResult.stats
  ["provenance"]``, an ``{origin: [values]}`` mapping whose origins are
  all *derived statistics* of the profile: reset periods, stream
  advances, slot offsets, branch-pattern constants, the run-length
  counter...), plus the constants the *assembler* introduces on its own
  (data-symbol addresses and their ``lui``/``ori`` halves — layout of
  the clone's own address space, fixed by the toolchain and identical
  for any input).
* **Closure** — roots are closed under the assembler's encoding
  transforms: two's-complement 32-bit encoding and the ``li``
  hi/lo-half split.
* **Proof obligation** — every integer immediate in the assembled
  program (with adjacent ``lui``/``ori`` pairs recombined into the
  32-bit literal they materialize) must be reachable from the roots;
  anything else is ``DL300`` (unaccounted).  Independently, every
  literal — accounted or not — is screened against the *raw values* of
  the profiled application (original instruction addresses and memory
  endpoints recorded in the profile); an unjustified match is ``DL301``
  (disclosure).  A justified match is allowed: it means the value is a
  derived statistic (or the clone's own layout) that coincides with an
  original address because both sides share one assembler, not because
  information flowed.

When a program carries no provenance annotations (hand-written kernels,
clones from older synthesizers) the audit degrades soundly: it reports
``DL302`` and still runs the raw-value screen when a profile is
available.  ``DL303`` is the always-emitted summary line that the
certificate and ``repro report`` surface.

Raw values below :data:`COINCIDENCE_FLOOR` are never treated as
secrets: the SRISC text segment starts at ``0x1000`` and the data
segment at ``0x100000``, so genuine addresses clear the floor, while
small integers (loop steps, shift counts, class counts) carry no
information about the original.
"""

from repro.lint.diagnostics import LintReport, make_diagnostic

#: Raw profile values smaller than this are not screenable secrets —
#: below the text base every integer is an uninformative small constant.
COINCIDENCE_FLOOR = 0x1000

#: Cap on per-code diagnostics so a badly leaked fixture stays readable.
_MAX_FINDINGS = 8

_M32 = 0xFFFFFFFF


def _encoding_closure(values):
    """Close integer roots under the assembler's encoding transforms.

    For every root ``v`` this adds the signed immediate itself, the
    32-bit two's-complement encoding, and — for values ``li`` must
    split — the ``lui`` high half and ``ori`` low half.
    """
    closed = set()
    for value in values:
        if not isinstance(value, int) or isinstance(value, bool):
            continue  # float provenance (fp seeds) has no integer taint
        closed.add(value)
        encoded = value & _M32
        closed.add(encoded)
        if not -32768 <= value <= 32767:
            closed.add(encoded >> 16)
            closed.add(encoded & 0xFFFF)
    return closed


def _layout_roots(program):
    """Constants the assembler introduces independent of any profile."""
    roots = {0, program.data_base, program.text_base}
    roots.update(program.data_symbols.values())
    return roots


def _provenance_roots(provenance):
    values = set()
    for origin_values in provenance.values():
        for value in origin_values:
            if isinstance(value, int) and not isinstance(value, bool):
                values.add(value)
    return values


def extract_literals(program):
    """``[(index, value, via)]`` integer literals of one program.

    Adjacent ``lui rd, hi`` / ``ori rd, rd, lo`` pairs (and a lone
    ``lui`` materializing a value whose low half is zero) are reported
    as the single 32-bit literal they construct, attributed to the
    ``lui``'s index with ``via="li"``; every other integer immediate is
    reported as-is with ``via=op``.  Float immediates (``fli``) carry
    no integer taint and are skipped.
    """
    literals = []
    instructions = program.instructions
    skip = -1
    for index, instr in enumerate(instructions):
        if index == skip:
            continue
        imm = instr.imm
        if not isinstance(imm, int) or isinstance(imm, bool):
            continue
        if instr.opcode == "lui":
            combined = (imm << 16) & _M32
            if index + 1 < len(instructions):
                nxt = instructions[index + 1]
                if (nxt.opcode == "ori" and nxt.rd == instr.rd
                        and nxt.rs1 == instr.rd
                        and isinstance(nxt.imm, int)):
                    combined |= nxt.imm & 0xFFFF
                    skip = index + 1
            literals.append((index, combined, "li"))
            continue
        literals.append((index, imm, instr.opcode))
    return literals


def profile_secrets(profile):
    """Raw values of the profiled application that must not leak.

    These are the only raw (non-statistic) values a
    :class:`~repro.core.profile.WorkloadProfile` retains: original
    instruction addresses (memop/branch pcs, per-block pc lists) and
    the first/last absolute addresses each memory op touched.  Values
    under :data:`COINCIDENCE_FLOOR` are dropped as unscreenable.
    """
    secrets = set()
    for pc, stats in profile.mem_ops.items():
        secrets.add(pc)
        secrets.add(stats.first_address)
        secrets.add(stats.last_address)
    secrets.update(profile.branches)
    for block in profile.blocks.values():
        secrets.update(block.mem_pcs)
        if block.branch_pc >= 0:
            secrets.add(block.branch_pc)
    return {value for value in secrets
            if isinstance(value, int) and value >= COINCIDENCE_FLOOR}


def audit_program(program, profile=None, provenance=None,
                  severity_overrides=None):
    """Run the disclosure audit over one assembled program."""
    report = LintReport(program.name)
    literals = extract_literals(program)

    allowed = _encoding_closure(_layout_roots(program))
    degraded = provenance is None
    if degraded:
        report.add(make_diagnostic(
            "DL302",
            "no provenance annotations recorded for this program; "
            "audit degraded to raw-value screening",
            severity_overrides=severity_overrides))
    else:
        allowed |= _encoding_closure(_provenance_roots(provenance))

    unaccounted = []
    if not degraded:
        for index, value, via in literals:
            if value not in allowed:
                unaccounted.append((index, value, via))
        for index, value, via in unaccounted[:_MAX_FINDINGS]:
            report.add(make_diagnostic(
                "DL300",
                f"literal {value:#x} ({via}) has no recorded provenance",
                severity_overrides=severity_overrides,
                index=index, pc=program.pc_address(index),
                data={"value": value, "via": via}))
        if len(unaccounted) > _MAX_FINDINGS:
            report.add(make_diagnostic(
                "DL300",
                f"...and {len(unaccounted) - _MAX_FINDINGS} more "
                "unaccounted literal(s)",
                severity_overrides=severity_overrides,
                data={"count": len(unaccounted)}))

    secrets = profile_secrets(profile) if profile is not None else set()
    leaks = []
    if secrets:
        for index, value, via in literals:
            if (value & _M32) in secrets and value not in allowed:
                leaks.append((index, value, via))
        for index, value, via in leaks[:_MAX_FINDINGS]:
            report.add(make_diagnostic(
                "DL301",
                f"literal {value:#x} ({via}) matches a raw "
                "address/value of the profiled application",
                severity_overrides=severity_overrides,
                index=index, pc=program.pc_address(index),
                data={"value": value, "via": via}))
        if len(leaks) > _MAX_FINDINGS:
            report.add(make_diagnostic(
                "DL301",
                f"...and {len(leaks) - _MAX_FINDINGS} more leaked "
                "literal(s)",
                severity_overrides=severity_overrides,
                data={"count": len(leaks)}))

    verdict = ("degraded" if degraded
               else "clean" if not (unaccounted or leaks) else "LEAK")
    report.add(make_diagnostic(
        "DL303",
        f"disclosure audit {verdict}: {len(literals)} literal(s), "
        f"{len(unaccounted)} unaccounted, {len(leaks)} raw-value "
        f"match(es), {len(secrets)} screened secret(s)",
        severity_overrides=severity_overrides,
        data={"literals": len(literals), "unaccounted": len(unaccounted),
              "leaks": len(leaks), "secrets": len(secrets),
              "degraded": degraded}))
    return report


def audit_disclosure(clone, severity_overrides=None):
    """Audit one :class:`~repro.core.synthesizer.CloneResult`."""
    return audit_program(clone.program, profile=clone.profile,
                         provenance=clone.stats.get("provenance"),
                         severity_overrides=severity_overrides)
