"""Process-wide counters, gauges, and histograms.

One :data:`REGISTRY` serves the whole process; instrumented code asks it
for named instruments::

    from repro.obs.metrics import REGISTRY
    REGISTRY.counter("sim.instructions").inc(executed)
    REGISTRY.gauge("sim.mips").set(throughput / 1e6)
    REGISTRY.histogram("pipeline.block_size").observe(n)

**Disabled mode is free**: a disabled registry hands out shared null
instruments whose mutators do nothing, so call sites never branch on
enablement — and hot loops can additionally hoist ``REGISTRY.enabled``
into a local before entering.  ``snapshot()`` returns plain dicts ready
for JSON (and for the run manifest).
"""

import bisect

#: Default histogram bucket upper bounds (log-ish spacing); the final
#: implicit bucket is overflow (> last bound).
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return {"type": "counter", "value": self.value}

    def clear(self):
        self.value = 0


class Gauge:
    """Last-written value (throughput, occupancy, ratios...)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        self.value = value

    def snapshot(self):
        return {"type": "gauge", "value": self.value}

    def clear(self):
        self.value = 0.0


class Histogram:
    """Bucketed distribution with count/total/min/max.

    ``bounds`` are inclusive upper bounds; observations larger than the
    last bound land in a final overflow bucket, so ``bucket_counts`` has
    ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name, bounds=DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError(f"histogram bounds must be sorted, non-empty: "
                             f"{bounds!r}")
        self.name = name
        self.bounds = tuple(bounds)
        self.clear()

    def clear(self):
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {"type": "histogram", "count": self.count,
                "total": self.total, "mean": self.mean,
                "min": self.min, "max": self.max,
                "bounds": list(self.bounds),
                "bucket_counts": list(self.bucket_counts)}


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = "<disabled>"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def clear(self):
        pass

    def snapshot(self):
        return {"type": "null"}


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    Asking twice for the same name returns the same object; asking for
    an existing name with a different instrument kind is an error (it
    would silently fork the data).
    """

    def __init__(self, enabled=True):
        self._instruments = {}
        self._enabled = bool(enabled)

    @property
    def enabled(self):
        return self._enabled

    def enable(self):
        self._enabled = True

    def disable(self):
        self._enabled = False

    # ------------------------------------------------------------------
    def _get(self, name, factory, kind):
        if not self._enabled:
            return NULL_INSTRUMENT
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name):
        return self._get(name, lambda: Counter(name), Counter)

    def gauge(self, name):
        return self._get(name, lambda: Gauge(name), Gauge)

    def histogram(self, name, bounds=DEFAULT_BUCKETS):
        return self._get(name, lambda: Histogram(name, bounds), Histogram)

    # ------------------------------------------------------------------
    def get(self, name):
        """Look up an existing instrument (None if never registered)."""
        return self._instruments.get(name)

    def names(self):
        return sorted(self._instruments)

    def snapshot(self):
        """All instruments as a JSON-ready ``{name: {...}}`` dict."""
        return {name: instrument.snapshot()
                for name, instrument in sorted(self._instruments.items())}

    def reset(self):
        """Drop every registered instrument."""
        self._instruments.clear()


#: The process-wide registry every instrumented module uses.
REGISTRY = MetricsRegistry(enabled=True)


def counter(name):
    return REGISTRY.counter(name)


def gauge(name):
    return REGISTRY.gauge(name)


def histogram(name, bounds=DEFAULT_BUCKETS):
    return REGISTRY.histogram(name, bounds)
