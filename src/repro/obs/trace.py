"""Hierarchical distributed tracing over the event journal.

:mod:`repro.obs.timing` aggregates spans by *path* for the manifest;
this module gives each individual span entry an **identity** — a span id
``"<pid>-<n>"``, a parent id, and free-form attributes — and records the
open/close pair in the run journal (:mod:`repro.obs.journal`).  Pool
workers stitch their spans under the dispatching span through the
``REPRO_TRACE_PARENT`` environment variable, which
:func:`repro.exec.parallel` sets around pool creation, so a merged
journal yields one tree from ``cli.<command>`` down to each worker task.

Reading side: :func:`build_span_tree` reconstructs the forest from
merged events (tolerating unclosed spans from crashed runs), and the
exporters render it as a text timeline, a flame summary (self vs total
time per path), a critical path, or Chrome trace-event JSON loadable in
``chrome://tracing`` / Perfetto.

Writing is zero-cost without a journal: :func:`begin_span` returns
``None`` after one check and :func:`end_span` ignores ``None``.
"""

import contextlib
import json
import os

from repro.obs.journal import active_journal

#: Environment variable carrying the dispatching span id to pool workers.
TRACE_PARENT_ENV = "REPRO_TRACE_PARENT"

_SEQ = 0
_SEQ_PID = None
_STACK = []  # open span ids, this process


def _next_id():
    """Process-unique span id; pid prefix keeps forked children unique."""
    global _SEQ, _SEQ_PID
    pid = os.getpid()
    if pid != _SEQ_PID:  # forked child inherited the counter
        _SEQ_PID = pid
        _SEQ = 0
    _SEQ += 1
    return f"{pid}-{_SEQ}"


def current_span_id():
    """Innermost open span id; falls back to the inherited trace parent
    so a worker's first span attaches under the dispatching span."""
    if _STACK:
        return _STACK[-1]
    return os.environ.get(TRACE_PARENT_ENV)


def begin_span(name, attrs=None):
    """Open a span and journal it; returns an opaque handle for
    :func:`end_span`, or ``None`` when no journal is active."""
    journal = active_journal()
    if journal is None:
        return None
    sid = _next_id()
    parent = current_span_id()
    _STACK.append(sid)
    if attrs:
        journal.emit("span_open", span=sid, parent=parent, name=name,
                     attrs=attrs)
    else:
        journal.emit("span_open", span=sid, parent=parent, name=name)
    return (sid, parent, name)


def end_span(handle, wall_s, cpu_s=None):
    """Close a span opened by :func:`begin_span` (``None`` is a no-op)."""
    if handle is None:
        return
    sid, parent, name = handle
    if _STACK and _STACK[-1] == sid:
        _STACK.pop()
    else:  # unbalanced close (exception paths); drop if present anywhere
        with contextlib.suppress(ValueError):
            _STACK.remove(sid)
    journal = active_journal()
    if journal is None:
        return
    fields = {"span": sid, "parent": parent, "name": name,
              "wall_s": round(wall_s, 6)}
    if cpu_s is not None:
        fields["cpu_s"] = round(cpu_s, 6)
    journal.emit("span_close", **fields)


def reset_trace_state():
    """Testing hook: drop the open-span stack and id counter."""
    global _SEQ, _SEQ_PID
    _SEQ = 0
    _SEQ_PID = None
    _STACK.clear()


# ----------------------------------------------------------------------
# Reconstruction
# ----------------------------------------------------------------------
class SpanNode:
    """One reconstructed span: timing, attributes, and children."""

    __slots__ = ("sid", "parent", "name", "pid", "start", "end", "wall_s",
                 "cpu_s", "attrs", "children", "complete")

    def __init__(self, sid, parent, name, pid, start):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.pid = pid
        self.start = start
        self.end = None
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.attrs = {}
        self.children = []
        self.complete = False

    def path(self):
        return self.name

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def build_span_tree(events, now=None):
    """Reconstruct the span forest from merged journal events.

    Returns a list of root :class:`SpanNode` (spans whose parent is
    absent from the event stream — normally just ``cli.<command>``).
    Spans without a close event (in-flight or crashed runs) are kept,
    marked ``complete=False``, with ``end``/``wall_s`` estimated from
    ``now`` (default: the last event timestamp).
    """
    nodes = {}
    order = []
    last_ts = None
    for event in events:
        kind = event.get("kind")
        last_ts = event.get("ts", last_ts)
        if kind == "span_open":
            node = SpanNode(event["span"], event.get("parent"),
                            event.get("name", "?"), event["pid"],
                            event["ts"])
            node.attrs = event.get("attrs", {})
            nodes[node.sid] = node
            order.append(node)
        elif kind == "span_close":
            node = nodes.get(event["span"])
            if node is None:  # close without open (torn journal head)
                node = SpanNode(event["span"], event.get("parent"),
                                event.get("name", "?"), event["pid"],
                                event["ts"] - event.get("wall_s", 0.0))
                nodes[node.sid] = node
                order.append(node)
            node.end = event["ts"]
            node.wall_s = event.get("wall_s",
                                    max(0.0, node.end - node.start))
            node.cpu_s = event.get("cpu_s", 0.0)
            node.complete = True
    horizon = now if now is not None else (last_ts or 0.0)
    roots = []
    for node in order:
        if not node.complete:
            node.end = max(horizon, node.start)
            node.wall_s = node.end - node.start
        parent = nodes.get(node.parent) if node.parent else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def span_coverage(roots, wall_seconds):
    """Fraction of ``wall_seconds`` covered by the widest root span."""
    if not roots or not wall_seconds:
        return 0.0
    widest = max(root.wall_s for root in roots)
    return min(1.0, widest / wall_seconds)


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------
def _name_chain(node, chain):
    return f"{chain}/{node.name}" if chain else node.name


def flame_summary(roots, limit=None):
    """Aggregate self/total wall time by name chain, widest first.

    Returns rows ``{path, count, total_s, self_s, cpu_s}`` where
    ``self_s`` is total minus the time spent in child spans — the flame
    view's answer to "where does the time actually go?".
    """
    table = {}

    def visit(node, chain):
        path = _name_chain(node, chain)
        child_wall = 0.0
        for child in node.children:
            visit(child, path)
            child_wall += child.wall_s
        row = table.setdefault(path, {"path": path, "count": 0,
                                      "total_s": 0.0, "self_s": 0.0,
                                      "cpu_s": 0.0})
        row["count"] += 1
        row["total_s"] += node.wall_s
        row["self_s"] += max(0.0, node.wall_s - child_wall)
        row["cpu_s"] += node.cpu_s

    for root in roots:
        visit(root, "")
    rows = sorted(table.values(), key=lambda row: -row["self_s"])
    return rows[:limit] if limit else rows


def flame_text(roots, limit=12, width=68):
    """Plain-text flame summary (self-time bars), one line per path."""
    rows = flame_summary(roots, limit=limit)
    if not rows:
        return "flame: no spans recorded"
    total = max(sum(row["self_s"] for row in rows), 1e-9)
    name_w = min(max(len(row["path"]) for row in rows), 46)
    lines = [f"{'span path':<{name_w}}  {'self':>8}  {'total':>8}  "
             f"{'count':>5}  share"]
    bar_w = max(10, width - name_w - 34)
    for row in rows:
        share = row["self_s"] / total
        bar = "#" * max(1, round(share * bar_w)) if row["self_s"] else ""
        path = row["path"]
        if len(path) > name_w:
            path = "..." + path[-(name_w - 3):]
        lines.append(f"{path:<{name_w}}  {row['self_s']:>7.3f}s "
                     f"{row['total_s']:>7.3f}s  {row['count']:>5}  "
                     f"{share:>5.1%} {bar}")
    return "\n".join(lines)


def critical_path(roots):
    """Longest chain of spans: at each level descend into the child that
    finishes last.  Returns ``[(depth, SpanNode)]``."""
    if not roots:
        return []
    chain = []
    node = max(roots, key=lambda root: root.wall_s)
    depth = 0
    while node is not None:
        chain.append((depth, node))
        if not node.children:
            break
        node = max(node.children,
                   key=lambda child: child.end if child.end else child.start)
        depth += 1
    return chain


def critical_path_text(roots):
    chain = critical_path(roots)
    if not chain:
        return "critical path: no spans recorded"
    lines = ["critical path (longest finishing chain):"]
    for depth, node in chain:
        marker = "" if node.complete else "  [open]"
        lines.append(f"  {'  ' * depth}{node.name}  "
                     f"{node.wall_s:.3f}s  pid={node.pid}{marker}")
    return "\n".join(lines)


def timeline_text(roots, width=60):
    """Per-pid lanes with proportional start offsets and durations."""
    spans = [node for root in roots for node in root.walk()]
    if not spans:
        return "timeline: no spans recorded"
    t0 = min(node.start for node in spans)
    t1 = max(node.end if node.end else node.start for node in spans)
    extent = max(t1 - t0, 1e-9)
    lines = [f"timeline: {extent:.3f}s across {len(spans)} spans"]
    by_pid = {}
    for node in spans:
        by_pid.setdefault(node.pid, []).append(node)
    for pid in sorted(by_pid):
        lines.append(f"pid {pid}:")
        for node in sorted(by_pid[pid], key=lambda n: (n.start, n.sid)):
            lead = round((node.start - t0) / extent * width)
            span_w = max(1, round(node.wall_s / extent * width))
            span_w = min(span_w, width - min(lead, width - 1))
            bar = " " * min(lead, width - 1) + "=" * span_w
            marker = "" if node.complete else " [open]"
            lines.append(f"  |{bar:<{width}}| {node.name} "
                         f"{node.wall_s:.3f}s{marker}")
    return "\n".join(lines)


def export_chrome_trace(events, path):
    """Write merged journal events as Chrome trace-event JSON.

    Spans become complete events (``ph="X"``, microsecond timestamps
    relative to the earliest event); store/lint/progress/metrics events
    become instants so they show up as markers in the same view.
    Returns the number of trace events written.
    """
    timestamps = [event["ts"] for event in events if "ts" in event]
    base = min(timestamps) if timestamps else 0.0

    def usec(ts):
        return round((ts - base) * 1e6, 1)

    trace_events = []
    roots = build_span_tree(events)
    for root in roots:
        for node in root.walk():
            entry = {"name": node.name, "ph": "X", "cat": "span",
                     "ts": usec(node.start),
                     "dur": round(node.wall_s * 1e6, 1),
                     "pid": node.pid, "tid": node.pid,
                     "args": dict(node.attrs)}
            if node.cpu_s:
                entry["args"]["cpu_s"] = node.cpu_s
            if not node.complete:
                entry["args"]["incomplete"] = True
            trace_events.append(entry)
    instant_kinds = {"store", "lint", "progress", "metrics", "tasks",
                     "task_done", "run_begin", "run_end",
                     "profile_summary"}
    for event in events:
        kind = event.get("kind")
        if kind not in instant_kinds:
            continue
        args = {key: value for key, value in event.items()
                if key not in ("ts", "pid", "seq", "kind")}
        trace_events.append({"name": kind, "ph": "i", "cat": kind,
                             "ts": usec(event["ts"]), "pid": event["pid"],
                             "tid": event["pid"], "s": "p", "args": args})
    payload = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(trace_events)
