"""Thread-based sampling self-profiler attributing hot code to spans.

A daemon thread periodically samples the main thread's stack through
:func:`sys._current_frames` and records, for each sample, the innermost
executing ``file:function`` **together with the enclosing span path**
from :data:`repro.obs.timing.TRACER`.  That pairing is the point: a
flat profile says "``_step`` is hot"; this one says "``_step`` is hot
*inside* ``uarch.sweep/uarch.pipeline``", which makes turbo/sweep
regressions attributable to a pipeline phase.

Sampling is opt-in (the CLI's ``--profile``) and entirely absent
otherwise — no thread is created, no signal handler installed, no
per-call hooks; disabled cost is exactly zero.
"""

import os
import sys
import threading
import time

#: Default sampling interval — 5 ms keeps overhead well under 1% while
#: still collecting hundreds of samples from a seconds-long run.
DEFAULT_INTERVAL_S = 0.005

#: Only frames from these roots are attributed; stdlib/runner frames
#: collapse into their nearest repro caller.
_PKG_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _frame_label(frame):
    """Innermost repro-owned ``file:function`` on the stack, walking
    outward past stdlib frames; falls back to the raw innermost frame."""
    candidate = frame
    while candidate is not None:
        filename = candidate.f_code.co_filename
        if filename.startswith(_PKG_ROOT):
            rel = os.path.relpath(filename, _PKG_ROOT)
            return f"{rel}:{candidate.f_code.co_name}"
        candidate = candidate.f_back
    return (f"{os.path.basename(frame.f_code.co_filename)}:"
            f"{frame.f_code.co_name}")


class SamplingProfiler:
    """Samples the main thread, attributing each hit to the open span."""

    def __init__(self, interval_s=DEFAULT_INTERVAL_S):
        self.interval_s = interval_s
        self.samples = 0
        self._counts = {}  # (span_path, file:function) -> hits
        self._thread = None
        self._stop = threading.Event()
        self._target_ident = None

    def start(self):
        if self._thread is not None:
            return self
        self._target_ident = threading.main_thread().ident
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-selfprof", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=1.0)
        self._thread = None
        return self

    def _run(self):
        from repro.obs.timing import TRACER
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            span_path = TRACER.current_path() or "<no span>"
            key = (span_path, _frame_label(frame))
            self._counts[key] = self._counts.get(key, 0) + 1
            self.samples += 1

    def summary(self, top=15):
        """JSON-ready digest: top (span, function) pairs by sample share."""
        ranked = sorted(self._counts.items(), key=lambda item: -item[1])
        total = max(self.samples, 1)
        return {
            "interval_s": self.interval_s,
            "samples": self.samples,
            "top": [{"span": span, "function": function, "samples": hits,
                     "share": round(hits / total, 4)}
                    for (span, function), hits in ranked[:top]],
        }


def format_profile(summary):
    """Render a profile summary block for ``repro report`` / stderr."""
    lines = [f"profile: {summary['samples']} samples "
             f"@ {summary['interval_s'] * 1000:.1f}ms"]
    for row in summary.get("top", []):
        lines.append(f"  {row['share']:>6.1%}  {row['span']}  "
                     f"[{row['function']}]")
    return "\n".join(lines)
