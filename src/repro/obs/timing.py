"""Nestable phase timers (span tracing) with wall *and* CPU time.

Usage — spans nest, and nesting builds slash-separated paths::

    from repro.obs.timing import span

    with span("clone"):
        with span("sfg_walk"):      # aggregated as "clone/sfg_walk"
            ...
        with span("codegen"):       # aggregated as "clone/codegen"
            ...

Each distinct path accumulates ``count`` / ``wall_s`` / ``cpu_s`` in the
process-wide :data:`TRACER`; :meth:`Tracer.flat` returns the aggregate
table that feeds run manifests and ``repro report``.  A disabled tracer
makes ``span()`` a no-op context manager so instrumented code costs
nothing beyond one method call per phase.
"""

import time
from contextlib import contextmanager

from repro.obs import trace as _trace


class Tracer:
    """Aggregating span collector; one global instance serves the process."""

    def __init__(self, enabled=True):
        self._enabled = bool(enabled)
        self._stack = []
        self._spans = {}  # path -> [count, wall_s, cpu_s]

    @property
    def enabled(self):
        return self._enabled

    def enable(self):
        self._enabled = True

    def disable(self):
        self._enabled = False

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name, **attrs):
        """Time a phase; nested spans extend the current path.

        When a run journal is active (:mod:`repro.obs.journal`), each
        entry additionally emits a hierarchical ``span_open`` /
        ``span_close`` pair with identity, parent link, and ``attrs``;
        without one, the journal hook is a single ``None`` check.
        """
        if not self._enabled:
            yield
            return
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        handle = _trace.begin_span(name, attrs or None)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            _trace.end_span(handle, wall, cpu)
            self._stack.pop()
            entry = self._spans.get(path)
            if entry is None:
                self._spans[path] = [1, wall, cpu]
            else:
                entry[0] += 1
                entry[1] += wall
                entry[2] += cpu

    def current_path(self):
        """The in-progress span path, or None outside any span."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    def flat(self):
        """``{path: {"count", "wall_s", "cpu_s"}}``, paths sorted."""
        return {path: {"count": entry[0],
                       "wall_s": entry[1],
                       "cpu_s": entry[2]}
                for path, entry in sorted(self._spans.items())}

    def wall_of(self, path):
        """Accumulated wall seconds for one path (0.0 if never entered)."""
        entry = self._spans.get(path)
        return entry[1] if entry else 0.0

    def reset(self):
        self._spans.clear()
        self._stack.clear()


#: The process-wide tracer every instrumented module uses.
TRACER = Tracer(enabled=True)


def span(name, **attrs):
    """Convenience: a span on the global tracer."""
    return TRACER.span(name, **attrs)
