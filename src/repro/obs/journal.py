"""Append-only JSONL event journal, one per run directory.

Every instrumented process of a run — the CLI entry process and each
``--jobs`` pool worker — appends events to its **own** file,
``journal-<pid>.jsonl``, inside the run directory.  One file per pid
means concurrent writers can never interleave or tear each other's
lines; :func:`read_journal` merges the per-pid streams back into one
time-ordered event list.

Event records are one JSON object per line with a common envelope::

    {"ts": 1722950000.123456, "pid": 4242, "seq": 17, "kind": "...", ...}

``ts`` is :func:`time.time` (comparable across processes), ``seq`` is a
per-process monotonic counter (so a single writer's order is recoverable
even at equal timestamps).  Kinds in use: ``run_begin`` / ``run_end``,
``span_open`` / ``span_close`` (see :mod:`repro.obs.trace`), ``metrics``
(counter deltas), ``store`` (artifact-cache hit/miss/write/evict),
``lint`` (gate verdicts), ``progress`` and ``tasks`` / ``task_done``
(live ``repro tail`` fodder).

The journal is configured per run (:func:`configure_journal`), exported
to child processes through the ``REPRO_JOURNAL_DIR`` environment
variable, and **zero-cost when off**: :func:`emit_event` is a single
``None`` check when no journal is configured.
"""

import json
import os
import time
from contextlib import contextmanager, suppress

from repro.obs.logging import get_logger

_LOG = get_logger("repro.obs.journal")

#: Environment variable carrying the journal directory to pool workers.
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

#: Filename pattern of per-process journal files.
JOURNAL_PREFIX = "journal-"
JOURNAL_SUFFIX = ".jsonl"


class Journal:
    """One process's append-only event stream in a run directory.

    The backing file is opened lazily on first emit and re-opened if
    the pid changes (a forked pool worker inherits its parent's
    ``Journal`` object but must never share its file handle).
    """

    def __init__(self, run_dir):
        self.run_dir = run_dir
        self._handle = None
        self._pid = None
        self._seq = 0

    @property
    def path(self):
        """This process's journal file path."""
        return os.path.join(
            self.run_dir, f"{JOURNAL_PREFIX}{os.getpid()}{JOURNAL_SUFFIX}")

    def _ensure_open(self):
        pid = os.getpid()
        if self._handle is not None and self._pid == pid:
            return self._handle
        if self._handle is not None:
            # Forked child: abandon (don't close) the inherited handle —
            # closing could flush parent-buffered bytes twice.
            self._handle = None
        os.makedirs(self.run_dir, exist_ok=True)
        self._handle = open(self.path, "a")  # noqa: SIM115 — lives past this scope
        self._pid = pid
        self._seq = 0
        return self._handle

    def emit(self, kind, **fields):
        """Append one event; each line is written and flushed whole."""
        try:
            handle = self._ensure_open()
            self._seq += 1
            record = {"ts": round(time.time(), 6), "pid": self._pid,
                      "seq": self._seq, "kind": kind}
            record.update(fields)
            handle.write(json.dumps(record, default=str) + "\n")
            handle.flush()
        except OSError as exc:  # journaling must never fail the run
            _LOG.warning("journal.emit_failed", error=str(exc))

    def close(self):
        if self._handle is not None and self._pid == os.getpid():
            with suppress(OSError):
                self._handle.close()
        self._handle = None


# ----------------------------------------------------------------------
# Process-wide active journal
# ----------------------------------------------------------------------
_ACTIVE = None
_ENV_MISSED = False  # cached "env var not set" so emit_event stays cheap
_PREVIOUS_ENV = None


def configure_journal(run_dir, fresh=False):
    """Activate (or with ``None`` deactivate) journaling for this process.

    Sets ``REPRO_JOURNAL_DIR`` so worker processes created afterwards
    inherit the journal; deactivating restores the variable's previous
    value.  ``fresh=True`` removes existing ``journal-*.jsonl`` files so
    a re-used run directory starts a clean stream.
    """
    global _ACTIVE, _ENV_MISSED, _PREVIOUS_ENV
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None
        if _PREVIOUS_ENV is None:
            os.environ.pop(JOURNAL_DIR_ENV, None)
        else:
            os.environ[JOURNAL_DIR_ENV] = _PREVIOUS_ENV
        _PREVIOUS_ENV = None
    _ENV_MISSED = False
    reset_metric_baseline()
    if run_dir is None:
        return None
    if fresh:
        for name in _journal_files(run_dir):
            with suppress(OSError):
                os.remove(os.path.join(run_dir, name))
    _PREVIOUS_ENV = os.environ.get(JOURNAL_DIR_ENV)
    os.environ[JOURNAL_DIR_ENV] = run_dir
    _ACTIVE = Journal(run_dir)
    return _ACTIVE


def active_journal():
    """The process's journal, lazily resolved from the environment.

    Pool workers never call :func:`configure_journal`; they find the run
    directory through the inherited ``REPRO_JOURNAL_DIR`` variable.  The
    negative result is cached so uninstrumented runs pay one environment
    lookup total.
    """
    global _ACTIVE, _ENV_MISSED
    if _ACTIVE is not None:
        return _ACTIVE
    if _ENV_MISSED:
        return None
    run_dir = os.environ.get(JOURNAL_DIR_ENV)
    if not run_dir:
        _ENV_MISSED = True
        return None
    _ACTIVE = Journal(run_dir)
    return _ACTIVE


@contextmanager
def suspend_journal():
    """Disable journaling entirely for a block, then restore it.

    Unlike ``configure_journal(None)`` this also hides the inherited
    ``REPRO_JOURNAL_DIR`` variable, so code inside the block sees a true
    journal-off world even in a journaled run — used by the benchmark
    harness to measure instrumentation overhead against a clean
    baseline.
    """
    global _ACTIVE, _ENV_MISSED
    saved_active = _ACTIVE
    saved_env = os.environ.pop(JOURNAL_DIR_ENV, None)
    _ACTIVE = None
    _ENV_MISSED = True
    try:
        yield
    finally:
        if saved_env is not None:
            os.environ[JOURNAL_DIR_ENV] = saved_env
        _ACTIVE = saved_active
        _ENV_MISSED = False


def emit_event(kind, **fields):
    """Append one event to the active journal; no-op when journaling is
    off (a single ``None`` check)."""
    journal = active_journal()
    if journal is None:
        return
    journal.emit(kind, **fields)


# ----------------------------------------------------------------------
# Metric deltas
# ----------------------------------------------------------------------
_METRIC_BASELINE = {}


def reset_metric_baseline():
    _METRIC_BASELINE.clear()


def emit_metric_deltas():
    """Journal the change in every counter since the last call.

    Emitted at run end and after each pool task, so the journal carries
    each process's metric contribution (per-process registries are never
    merged back through the pool).
    """
    journal = active_journal()
    if journal is None:
        return
    from repro.obs.metrics import REGISTRY, Counter
    deltas = {}
    for name in REGISTRY.names():
        instrument = REGISTRY.get(name)
        if not isinstance(instrument, Counter):
            continue
        delta = instrument.value - _METRIC_BASELINE.get(name, 0)
        if delta:
            deltas[name] = delta
            _METRIC_BASELINE[name] = instrument.value
    if deltas:
        journal.emit("metrics", deltas=deltas)


# ----------------------------------------------------------------------
# Merged reads
# ----------------------------------------------------------------------
def _journal_files(run_dir):
    try:
        names = os.listdir(run_dir)
    except OSError:
        return []
    return sorted(name for name in names
                  if name.startswith(JOURNAL_PREFIX)
                  and name.endswith(JOURNAL_SUFFIX))


class MergedJournal:
    """All of a run directory's journal events, merged and time-ordered.

    ``events`` is sorted by ``(ts, pid, seq)`` — globally monotonic in
    time, with each single writer's own order preserved exactly.
    ``skipped`` counts unparseable lines (a torn final line from a
    killed process is expected, not an error).
    """

    def __init__(self, run_dir, events, skipped, files):
        self.run_dir = run_dir
        self.events = events
        self.skipped = skipped
        self.files = files

    def __len__(self):
        return len(self.events)

    def of_kind(self, kind):
        return [event for event in self.events if event.get("kind") == kind]

    def pids(self):
        return sorted({event["pid"] for event in self.events})

    def run_info(self):
        """(run_begin event or None, run_end event or None)."""
        begins = self.of_kind("run_begin")
        ends = self.of_kind("run_end")
        return (begins[0] if begins else None, ends[-1] if ends else None)

    def open_spans(self):
        """Per-pid stack of spans opened but never closed, in open order."""
        open_by_pid = {}
        for event in self.events:
            kind = event.get("kind")
            if kind == "span_open":
                open_by_pid.setdefault(event["pid"], {})[
                    event["span"]] = event
            elif kind == "span_close":
                open_by_pid.get(event["pid"], {}).pop(event["span"], None)
        return {pid: sorted(spans.values(),
                            key=lambda ev: (ev["ts"], ev["seq"]))
                for pid, spans in open_by_pid.items() if spans}

    def latest_progress(self):
        """Most recent ``progress`` event per (pid, unit)."""
        latest = {}
        for event in self.of_kind("progress"):
            latest[(event["pid"], event.get("unit"))] = event
        return latest

    def task_counts(self):
        """(tasks announced, tasks completed) across the whole run."""
        announced = sum(event.get("total", 0)
                        for event in self.of_kind("tasks"))
        return announced, len(self.of_kind("task_done"))


def read_journal(run_dir):
    """Merge every per-pid journal file in ``run_dir``.

    Unreadable files and unparseable (torn) lines are skipped and
    counted, never raised: the reader must work on the journal of a
    crashed or still-running run.
    """
    events = []
    skipped = 0
    files = _journal_files(run_dir)
    for name in files:
        try:
            with open(os.path.join(run_dir, name)) as handle:
                lines = handle.read().splitlines()
        except OSError:
            skipped += 1
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if (not isinstance(event, dict)
                    or not {"ts", "pid", "seq", "kind"} <= set(event)):
                skipped += 1
                continue
            events.append(event)
    events.sort(key=lambda ev: (ev["ts"], ev["pid"], ev["seq"]))
    return MergedJournal(run_dir, events, skipped, files)
