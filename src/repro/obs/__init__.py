"""Observability: telemetry, tracing, and run provenance (``repro.obs``).

The cloning pipeline is judged entirely by *comparisons* — clone vs
original across dozens of machine configurations — so every run must be
inspectable and reproducible.  This package provides the four pieces the
rest of the stack instruments itself with:

* :mod:`repro.obs.metrics` — process-wide counters, gauges, and
  histograms with a zero-cost disabled mode;
* :mod:`repro.obs.timing` — nestable phase spans measuring wall and CPU
  time (SFG build, stride mining, codegen, simulation, ...);
* :mod:`repro.obs.logging` — a structured, level-controlled logger
  (``REPRO_LOG_LEVEL``) replacing bare prints;
* :mod:`repro.obs.runinfo` — run manifests: seed, config hash, git rev,
  python version, per-phase wall times, and headline stats as JSON;
* :mod:`repro.obs.journal` — append-only per-run JSONL event journal
  written concurrently by every process of a run;
* :mod:`repro.obs.trace` — hierarchical span identities over the
  journal, with Chrome-trace / flame / critical-path exporters;
* :mod:`repro.obs.selfprof` — opt-in sampling profiler attributing hot
  code to the enclosing span.

Telemetry is ON by default (its cost is per-phase, not per-instruction);
``set_telemetry_enabled(False)`` — or the CLI's ``--quiet`` — turns the
whole subsystem into no-ops.
"""

from repro.obs.journal import (
    Journal,
    MergedJournal,
    active_journal,
    configure_journal,
    emit_event,
    emit_metric_deltas,
    read_journal,
)
from repro.obs.logging import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    configure as configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from repro.obs.runinfo import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    git_revision,
    provenance,
    validate_manifest,
)
from repro.obs.selfprof import SamplingProfiler, format_profile
from repro.obs.timing import TRACER, Tracer, span
from repro.obs.trace import (
    SpanNode,
    build_span_tree,
    critical_path,
    critical_path_text,
    export_chrome_trace,
    flame_summary,
    flame_text,
    span_coverage,
    timeline_text,
)


def set_telemetry_enabled(enabled):
    """Toggle metrics and tracing globally (logging has its own level)."""
    if enabled:
        REGISTRY.enable()
        TRACER.enable()
    else:
        REGISTRY.disable()
        TRACER.disable()


def telemetry_enabled():
    return REGISTRY.enabled or TRACER.enabled


def reset_telemetry():
    """Clear accumulated metrics and spans (start of a fresh run)."""
    REGISTRY.reset()
    TRACER.reset()


__all__ = [
    "DEBUG",
    "ERROR",
    "INFO",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "REGISTRY",
    "TRACER",
    "WARNING",
    "Counter",
    "Gauge",
    "Histogram",
    "Journal",
    "MergedJournal",
    "MetricsRegistry",
    "RunManifest",
    "SamplingProfiler",
    "SpanNode",
    "Tracer",
    "active_journal",
    "build_span_tree",
    "config_hash",
    "configure_journal",
    "configure_logging",
    "counter",
    "critical_path",
    "critical_path_text",
    "emit_event",
    "emit_metric_deltas",
    "export_chrome_trace",
    "flame_summary",
    "flame_text",
    "format_profile",
    "gauge",
    "get_logger",
    "git_revision",
    "histogram",
    "provenance",
    "read_journal",
    "reset_telemetry",
    "set_telemetry_enabled",
    "span",
    "span_coverage",
    "telemetry_enabled",
    "timeline_text",
    "validate_manifest",
]
