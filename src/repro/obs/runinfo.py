"""Run manifests: provenance + headline stats for every pipeline run.

A manifest answers "what exactly produced this result?" — seed,
microarchitecture config hash, git revision, python/platform versions,
per-phase wall/CPU times, metric values, and a small per-command
``headline`` block (IPC, miss rates, throughput...).  The CLI writes one
``manifest.json`` per run directory and ``repro report`` renders it
back; benchmark result JSONs embed the same :func:`provenance` block.

The schema is versioned (:data:`MANIFEST_SCHEMA_VERSION`) and checkable
with :func:`validate_manifest`, which the tier-1 smoke test runs against
a real ``repro compare --json`` emission so telemetry regressions fail
fast.
"""

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import sys
import time

MANIFEST_SCHEMA_VERSION = 4  # v4: optional safety-certificate block
MANIFEST_FILENAME = "manifest.json"


def config_hash(config):
    """Short stable hash of a machine (or any dataclass) configuration."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = repr(sorted(dataclasses.asdict(config).items()))
    else:
        payload = repr(config)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def git_revision(repo_dir=None):
    """The checked-out git revision, or None outside a repo / sans git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def provenance():
    """The environment block shared by manifests and benchmark JSONs."""
    return {
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": list(sys.argv),
        # Functional-simulator backend selection (``auto`` resolves
        # per-program; concrete trace provenance lives in the artifact
        # store's per-entry ``sim_backend``).
        "sim_backend": os.environ.get("REPRO_SIM_BACKEND", "auto"),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


@dataclasses.dataclass
class RunManifest:
    """Everything needed to interpret (and re-run) one pipeline run."""

    command: str
    target: str = None
    seed: int = None
    config_hash: str = None
    wall_seconds: float = 0.0
    headline: dict = dataclasses.field(default_factory=dict)
    phases: dict = dataclasses.field(default_factory=dict)
    metrics: dict = dataclasses.field(default_factory=dict)
    #: Static-analysis verdict summary (``repro.lint``): ``ok``/``errors``
    #: /``warnings``/``codes`` counts, or None when no lint ran.
    lint: dict = None
    #: Multi-config sweep reuse accounting
    #: (:func:`repro.uarch.sweep.sweep_stats_snapshot`): digest/bank
    #: cache hits, distinct hierarchies/predictors per grid, per-config
    #: wall time.  None when the run swept nothing.
    sweep: dict = None
    #: Sampling self-profiler digest (:mod:`repro.obs.selfprof`):
    #: interval, sample count, and top (span, function) pairs.  None
    #: unless the run was started with ``--profile``.
    profile: dict = None
    #: Machine-readable safety certificate for the run's clone
    #: (:func:`repro.lint.safety_certificate`): termination verdict,
    #: per-loop trip bounds, and the proven footprint interval.  None
    #: when the run synthesized nothing (or the gate was off).
    certificate: dict = None
    provenance: dict = dataclasses.field(default_factory=provenance)
    schema_version: int = MANIFEST_SCHEMA_VERSION

    @classmethod
    def collect(cls, command, target=None, seed=None, config=None,
                wall_seconds=0.0, headline=None, lint=None, profile=None,
                certificate=None):
        """Build a manifest from the global tracer/registry state."""
        from repro.obs.metrics import REGISTRY
        from repro.obs.timing import TRACER
        from repro.uarch.sweep import sweep_stats_snapshot
        sweep = sweep_stats_snapshot()
        return cls(command=command, target=target, seed=seed,
                   config_hash=config_hash(config) if config is not None
                   else None,
                   wall_seconds=wall_seconds, headline=dict(headline or {}),
                   phases=TRACER.flat(), metrics=REGISTRY.snapshot(),
                   lint=dict(lint) if lint else None,
                   sweep=sweep if sweep.get("grids") else None,
                   profile=dict(profile) if profile else None,
                   certificate=dict(certificate) if certificate else None)

    # ------------------------------------------------------------------
    def to_dict(self):
        return dataclasses.asdict(self)

    def save(self, run_dir):
        """Write ``manifest.json`` into ``run_dir``; returns the path."""
        os.makedirs(run_dir, exist_ok=True)
        path = os.path.join(run_dir, MANIFEST_FILENAME)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=str)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path):
        """Load from a manifest file or a run directory containing one."""
        if os.path.isdir(path):
            path = os.path.join(path, MANIFEST_FILENAME)
        with open(path) as handle:
            data = json.load(handle)
        errors = validate_manifest(data)
        if errors:
            raise ValueError(f"invalid manifest {path}: " + "; ".join(errors))
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})


def validate_manifest(data):
    """Check a manifest dict against the schema; returns a list of errors."""
    errors = []
    if not isinstance(data, dict):
        return ["manifest is not an object"]

    def expect(key, kinds, required=True, nullable=False):
        if key not in data:
            if required:
                errors.append(f"missing key {key!r}")
            return None
        value = data[key]
        if value is None and nullable:
            return None
        if not isinstance(value, kinds):
            errors.append(f"{key!r} has type {type(value).__name__}")
            return None
        return value

    version = expect("schema_version", int)
    if version is not None and version > MANIFEST_SCHEMA_VERSION:
        errors.append(f"schema_version {version} is newer than supported "
                      f"{MANIFEST_SCHEMA_VERSION}")
    expect("command", str)
    expect("target", str, required=False, nullable=True)
    expect("seed", int, required=False, nullable=True)
    expect("config_hash", str, required=False, nullable=True)
    wall = expect("wall_seconds", (int, float))
    if wall is not None and wall < 0:
        errors.append("wall_seconds is negative")
    expect("headline", dict)
    expect("lint", dict, required=False, nullable=True)
    expect("sweep", dict, required=False, nullable=True)
    prof = expect("profile", dict, required=False, nullable=True)
    if prof is not None and "samples" not in prof:
        errors.append("profile missing 'samples'")
    cert = expect("certificate", dict, required=False, nullable=True)
    if cert is not None and "terminates" not in cert:
        errors.append("certificate missing 'terminates'")
    prov = expect("provenance", dict)
    if prov is not None:
        for key in ("python", "platform", "created_at"):
            if key not in prov:
                errors.append(f"provenance missing {key!r}")
    phases = expect("phases", dict)
    if phases is not None:
        for path, entry in phases.items():
            if not isinstance(entry, dict) or not {
                    "count", "wall_s", "cpu_s"} <= set(entry):
                errors.append(f"phase {path!r} malformed")
    metrics = expect("metrics", dict)
    if metrics is not None:
        for name, entry in metrics.items():
            if not isinstance(entry, dict) or "type" not in entry:
                errors.append(f"metric {name!r} malformed")
    return errors
