"""Structured, level-controlled logging for the cloning pipeline.

Log records are *events with fields*, not format strings::

    log = get_logger("repro.sim")
    log.info("sim.heartbeat", instructions=5_000_000, mips=2.4)

renders on stderr as::

    INFO repro.sim sim.heartbeat instructions=5000000 mips=2.4

The level comes from the ``REPRO_LOG_LEVEL`` environment variable
(``debug``/``info``/``warning``/``error``, default ``info``) and can be
overridden programmatically with :func:`configure` (the CLI's
``--verbose``/``--quiet`` flags do exactly that).  ``json_lines=True``
switches the sink to one JSON object per line for machine consumption.

Deliberately stdlib-free-standing (no ``logging`` module): the pipeline
needs exactly leveled, structured, redirectable records — a ~100-line
implementation keeps hot-path ``isEnabledFor``-style checks to a single
integer compare with no handler machinery behind it.
"""

import json
import os
import sys
import time

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "DEBUG", INFO: "INFO",
                WARNING: "WARNING", ERROR: "ERROR"}
_NAME_LEVELS = {name.lower(): level for level, name in _LEVEL_NAMES.items()}

#: Environment variable controlling the default level.
LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"


def parse_level(value, default=INFO):
    """``"debug"``/``"20"``/20 → numeric level; unknown values → default."""
    if value is None:
        return default
    if isinstance(value, int):
        return value
    text = str(value).strip().lower()
    if text in _NAME_LEVELS:
        return _NAME_LEVELS[text]
    try:
        return int(text)
    except ValueError:
        return default


class _Config:
    """Process-wide sink configuration shared by every logger."""

    __slots__ = ("level", "stream", "json_lines")

    def __init__(self):
        self.level = parse_level(os.environ.get(LEVEL_ENV_VAR))
        self.stream = None  # None → sys.stderr resolved at emit time
        self.json_lines = False


_CONFIG = _Config()


def configure(level=None, stream=None, json_lines=None):
    """Adjust the global sink; ``None`` leaves a setting unchanged."""
    if level is not None:
        _CONFIG.level = parse_level(level)
    if stream is not None:
        _CONFIG.stream = stream
    if json_lines is not None:
        _CONFIG.json_lines = bool(json_lines)


def current_level():
    return _CONFIG.level


def _render_value(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return repr(text) if " " in text else text


class StructuredLogger:
    """One named logger; all loggers share the global configuration."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def is_enabled_for(self, level):
        return level >= _CONFIG.level

    def log(self, level, event, **fields):
        if level < _CONFIG.level:
            return
        stream = _CONFIG.stream or sys.stderr
        if _CONFIG.json_lines:
            record = {"ts": round(time.time(), 3),
                      "level": _LEVEL_NAMES.get(level, str(level)),
                      "logger": self.name, "event": event}
            record.update(fields)
            stream.write(json.dumps(record, default=str) + "\n")
        else:
            parts = [_LEVEL_NAMES.get(level, str(level)), self.name, event]
            parts.extend(f"{key}={_render_value(value)}"
                         for key, value in fields.items())
            stream.write(" ".join(parts) + "\n")

    def debug(self, event, **fields):
        self.log(DEBUG, event, **fields)

    def info(self, event, **fields):
        self.log(INFO, event, **fields)

    def warning(self, event, **fields):
        self.log(WARNING, event, **fields)

    def error(self, event, **fields):
        self.log(ERROR, event, **fields)


_LOGGERS = {}


def get_logger(name):
    """Get (or create) the logger with this dotted name."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructuredLogger(name)
    return logger
