"""One fleet worker process: claim, execute, publish, steal.

A worker owns one shard of the run's affinity-ordered cells
(:mod:`repro.fleet.scheduler`) and works it head to tail, leasing each
cell through the :class:`~repro.fleet.queue.FleetQueue` before timing
it.  Because a shard keeps all of a trace's cells contiguous, the
worker holds one :class:`~repro.uarch.incremental.IncrementalSession`
per trace: consecutive cells differ in a knob or two, so each step is a
planned incremental re-simulation over the already-digested trace and
in-memory outcome banks, not a cold sweep.

When its own shard drains the worker steals from the other shards'
tails; when nothing is claimable it reclaims abandoned leases (dead
pid / expired TTL) and retries, so a killed sibling's in-flight cell is
re-executed rather than stranded.  Each retry pass re-scans the own
shard too: a thief can die holding a lease on an own-shard cell, and
after the reclaim the shard owner may be the only worker left to run
it (thieves never steal from their own shard).  While a cell executes
its lease is refreshed from a daemon heartbeat thread, so a cell that
outlives the lease TTL (trace acquisition under a 20M-instruction
functional cap can) is never mistaken for abandoned.  Every published
result is
deterministic — exclusively :func:`cell_metrics` fields, which hold
only simulation-defined numbers — so re-execution after a crash (or a
racing duplicate publish) always writes the same bytes.

``chaos`` is the fault-injection hook used by tests and the CI smoke
job: ``(worker_index, after_cells)`` makes that worker SIGKILL itself
*mid-cell* — after claiming its next cell but before publishing — once
it has completed ``after_cells`` cells.
"""

import json
import os
import signal
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager, suppress

from repro.core.synthesizer import SynthesisParameters
from repro.exec.artifacts import pipeline_artifacts, trace_artifacts
from repro.exec.store import default_store
from repro.fleet.queue import FleetQueue, _pid_alive
from repro.fleet.recipe import recipe_from_dict
from repro.fleet.scheduler import build_shards, steal_candidates
from repro.isa.assembler import assemble
from repro.obs.journal import emit_event, emit_metric_deltas
from repro.obs.logging import get_logger
from repro.obs.timing import TRACER
from repro.sim.turbo import resolve_backend
from repro.uarch.incremental import IncrementalSession
from repro.uarch.power import shared_power_model
from repro.uarch.sweep import acquire_trace_digest, bank_store_keys
from repro.workloads import get_workload

_LOG = get_logger("repro.fleet.worker")

#: Result payload layout version.
RESULT_SCHEMA_VERSION = 1

#: In-process IncrementalSessions kept warm at once (a session pins its
#: trace and every derived bank in memory; two covers the common
#: "finish my group, steal into another" pattern without ballooning).
_MAX_SESSIONS = 2

#: Poll interval while waiting on other workers' live leases.
_POLL_SECONDS = 0.05

#: A held lease is refreshed at this fraction of the TTL while its cell
#: executes, keeping cross-host TTL reclaim honest for slow cells.
_HEARTBEAT_FRACTION = 1 / 3

RECIPE_FILENAME = "recipe.json"
CELLS_FILENAME = "cells.json"
WORKERS_DIR = "workers"


def parse_chaos(spec):
    """``"index:after"`` (or ``(index, after)``) -> chaos tuple."""
    if spec is None:
        return None
    if isinstance(spec, (tuple, list)):
        index, after = spec
        return int(index), int(after)
    text = str(spec)
    index, _, after = text.partition(":")
    if not after:
        index, after = "0", index
    return int(index), int(after)


def cell_metrics(result, power):
    """The canonical (deterministic) metric dict for one cell.

    Only simulation-defined numbers belong here: telemetry-gated
    counters (rob/lsq/fetch-queue stalls, redirect cycles) and wall
    times vary run to run and would break the byte-identical matrix
    contract, so they are deliberately excluded.
    """
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.instructions / result.cycles,
        "icache_accesses": result.icache_accesses,
        "icache_misses": result.icache_misses,
        "dcache_accesses": result.dcache_accesses,
        "dcache_misses": result.dcache_misses,
        "l2_accesses": result.l2_accesses,
        "l2_misses": result.l2_misses,
        "branch_lookups": result.branch_lookups,
        "branch_mispredictions": result.branch_mispredictions,
        "power": power,
    }


class FleetWorker:
    """Executes one worker index's share of a fleet run."""

    def __init__(self, run_dir, worker_index, n_workers,
                 lease_ttl=None, chaos=None):
        self.run_dir = run_dir
        self.index = worker_index
        self.n_workers = max(1, n_workers)
        recipe_path = os.path.join(run_dir, RECIPE_FILENAME)
        with open(recipe_path) as handle:
            self.recipe = recipe_from_dict(json.load(handle))
        self.cells = self.recipe.expand()
        self.shards = build_shards(self.cells, self.n_workers)
        kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
        self.queue = FleetQueue(run_dir, **kwargs)
        self.chaos = parse_chaos(chaos)
        self.worker_id = f"w{worker_index}-{os.getpid()}"
        self.executed = 0
        self.stolen = 0
        self.acquire_seconds = 0.0
        self.uarch_seconds = 0.0
        self._sessions = OrderedDict()
        self._pin_owner = f"fleet-{self.worker_id}"

    # ------------------------------------------------------------------
    def _trace_for(self, cell):
        source = get_workload(cell.kernel).source()
        cap = self.recipe.functional_cap
        if cell.subject == "clone":
            parameters = SynthesisParameters(seed=cell.seed)
            return pipeline_artifacts(cell.kernel, source, parameters,
                                      max_instructions=cap).clone_trace
        program = assemble(source, name=cell.kernel)
        if resolve_backend(None, program) == "native":
            # Default acquisition path: the native engine streams
            # columnar chunks straight into the sweep digest, so the
            # full trace is never materialized (and re-simulation is
            # cheaper than an .npz round-trip).  The returned TraceRef
            # carries the finished digest for the session's sweeps.
            return acquire_trace_digest(program,
                                        max_instructions=cap).trace
        return trace_artifacts(cell.kernel, source,
                               max_instructions=cap).trace

    def _session_for(self, cell):
        key = cell.trace_key
        session = self._sessions.get(key)
        if session is not None:
            self._sessions.move_to_end(key)
            return session
        acquire_started = time.perf_counter()
        with TRACER.span("fleet.acquire_trace", kernel=cell.kernel,
                         subject=cell.subject):
            trace = self._trace_for(cell)
        self.acquire_seconds += time.perf_counter() - acquire_started
        session = IncrementalSession(
            trace, max_instructions=self.recipe.pipeline_cap)
        self._sessions[key] = session
        while len(self._sessions) > _MAX_SESSIONS:
            self._sessions.popitem(last=False)
        self._pin_sessions()
        return session

    def _pin_sessions(self):
        """Pin the digest/bank store keys the live sessions read and
        write (the orchestrator can pin only trace entries up front —
        these keys need the trace content in hand).  Best-effort, like
        all pinning: it guards future prunes only, and a stale pin from
        a SIGKILL-ed worker is garbage-collected by its dead pid."""
        store = default_store()
        if not store.enabled:
            return
        keys = set()
        for trace_key, session in self._sessions.items():
            configs = [cell.config for cell in self.cells
                       if cell.trace_key == trace_key]
            with suppress(Exception):
                keys.update(bank_store_keys(session.trace, configs))
        store.pin(self._pin_owner, sorted(keys))

    def _execute(self, cell):
        session = self._session_for(cell)
        timing_started = time.perf_counter()
        result = session.run(cell.config)
        self.uarch_seconds += time.perf_counter() - timing_started
        power = shared_power_model(cell.config).evaluate(result).total
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "cell": cell.to_dict(),
            "metrics": cell_metrics(result, power),
            "meta": {
                "worker": self.worker_id,
                "wall_seconds": result.wall_seconds,
                "ts": round(time.time(), 6),
            },
        }

    # ------------------------------------------------------------------
    def _maybe_chaos_kill(self, cell):
        if self.chaos is None:
            return
        index, after = self.chaos
        if self.index == index and self.executed >= after:
            # Mid-cell on purpose: the lease for ``cell`` is held and
            # will be stranded until a sibling (or resume) reclaims it.
            _LOG.warning("fleet.chaos_kill", worker=self.worker_id,
                         cell=cell.cell_id, executed=self.executed)
            emit_event("fleet", event="chaos_kill", cell=cell.cell_id,
                       worker=self.worker_id)
            os.kill(os.getpid(), signal.SIGKILL)

    @contextmanager
    def _heartbeating(self, cell_id):
        """Refresh the held lease from a daemon thread while the cell
        executes, so a cell outliving the TTL is never TTL-reclaimed
        by a cross-host sibling mid-flight."""
        stop = threading.Event()
        interval = max(self.queue.lease_ttl * _HEARTBEAT_FRACTION,
                       _POLL_SECONDS)

        def beat():
            while not stop.wait(interval):
                self.queue.heartbeat(cell_id, self.worker_id)

        thread = threading.Thread(target=beat, daemon=True,
                                  name=f"fleet-hb-{cell_id}")
        thread.start()
        try:
            yield
        finally:
            stop.set()
            thread.join()

    def _try_cell(self, cell, stolen=False):
        if not self.queue.claim(cell.cell_id, self.worker_id,
                                stolen=stolen):
            return False
        self._maybe_chaos_kill(cell)
        with TRACER.span("fleet.cell", cell=cell.cell_id,
                         kernel=cell.kernel, config=cell.config.name,
                         stolen=stolen), \
                self._heartbeating(cell.cell_id):
            payload = self._execute(cell)
        self.queue.complete(cell.cell_id, payload, worker=self.worker_id)
        self.executed += 1
        if stolen:
            self.stolen += 1
        done = len(self.queue.completed_ids())
        emit_event("progress", done=done, total=len(self.cells),
                   unit="cells", label=cell.cell_id)
        emit_metric_deltas()
        return True

    def _pending(self):
        completed = self.queue.completed_ids()
        return [cell for cell in self.cells
                if cell.cell_id not in completed]

    def _live_lease_pending(self, pending):
        """Whether any pending cell's lease looks alive (wait, don't
        quit): held by a live same-host pid or heartbeat-fresh."""
        now = time.time()
        for cell in pending:
            info = self.queue.lease_info(cell.cell_id)
            if info is None:
                return True  # released between scans: claimable next pass
            if (info.get("host") == self.queue.host
                    and isinstance(info.get("pid"), int)):
                if _pid_alive(info["pid"]):
                    return True
                continue
            if now - float(info.get("ts") or 0.0) <= self.queue.lease_ttl:
                return True
        return False

    def run(self):
        """Work the shard, then steal, until the matrix has no pending
        claimable cells; returns a summary dict."""
        self.queue.ensure_dirs()
        started = time.perf_counter()
        own = self.shards[self.index] if self.index < len(self.shards) \
            else []
        emit_event("fleet", event="worker_begin", worker=self.worker_id,
                   shard=self.index, shard_cells=len(own),
                   total=len(self.cells))
        for cell in own:
            self._try_cell(cell)
        while True:
            progress = False
            completed = self.queue.completed_ids()
            # Re-scan the own shard before stealing: a thief may have
            # died holding one of these cells and, since thieves never
            # steal from their own shard, after the reclaim the shard
            # owner can be the only worker left able to claim it.
            for cell in own:
                if cell.cell_id in completed:
                    continue
                if self._try_cell(cell):
                    progress = True
            for cell in steal_candidates(
                    self.shards, self.index,
                    lambda cell: cell.cell_id not in completed):
                if self._try_cell(cell, stolen=True):
                    progress = True
            pending = self._pending()
            if not pending:
                break
            if progress:
                continue
            if self.queue.reclaim((cell.cell_id for cell in pending),
                                  worker=self.worker_id):
                continue
            if self._live_lease_pending(pending):
                time.sleep(_POLL_SECONDS)
                continue
            break  # nothing claimable, nothing reclaimable, owners gone
        with suppress(Exception):
            default_store().unpin(self._pin_owner)
        summary = {
            "worker": self.worker_id,
            "index": self.index,
            "executed": self.executed,
            "stolen": self.stolen,
            "wall_seconds": round(time.perf_counter() - started, 6),
            # Where the wall went: functional acquisition vs pipeline
            # timing (mirrors the sim.acquire_seconds/uarch.time_seconds
            # journal counters, but attributed per worker).
            "sim_acquire_seconds": round(self.acquire_seconds, 6),
            "uarch_time_seconds": round(self.uarch_seconds, 6),
        }
        self._write_summary(summary)
        emit_event("fleet", event="worker_end", **summary)
        emit_metric_deltas()
        return summary

    def _write_summary(self, summary):
        workers_dir = os.path.join(self.run_dir, WORKERS_DIR)
        os.makedirs(workers_dir, exist_ok=True)
        path = os.path.join(workers_dir, f"{self.worker_id}.json")
        with open(path, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")


def worker_entry(run_dir, worker_index, n_workers, lease_ttl=None,
                 chaos=None):
    """Module-level process target (picklable for multiprocessing)."""
    worker = FleetWorker(run_dir, worker_index, n_workers,
                         lease_ttl=lease_ttl, chaos=chaos)
    return worker.run()
