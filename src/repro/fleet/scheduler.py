"""Reuse-affinity scheduling: shard cells so shared work stays local.

The sweep engine's artifacts are keyed by trace and by config subsets
(:mod:`repro.uarch.incremental` documents the table): the trace digest
is per-trace, cache banks per hierarchy, predictor banks per predictor,
compiled kernels per code shape.  A scheduler that scatters a kernel's
cells across workers makes every worker acquire the trace and re-derive
(or at best re-load) each bank; one that keeps a trace's cells on a
single worker back-to-back turns all of that into in-process cache hits
and single-knob :class:`~repro.uarch.incremental.IncrementalSession`
steps.

So the fleet orders and shards on exactly those keys:

* cells are grouped by trace (kernel, subject, seed) — a group never
  splits across shards;
* inside a group, cells sort by (hierarchy key, predictor key, kernel
  shape) so neighbors differ in as few artifact keys as possible;
* groups are packed onto shards largest-first onto the currently
  lightest shard (LPT), so shard loads balance without breaking
  affinity;
* a worker that drains its own shard steals from the *tail* of the
  currently heaviest remaining shard — the victim works its shard
  head-to-tail, so tail cells are the ones it would reach last and
  stealing them collides least with the victim's warm state.

Everything here is deterministic: same cells + same shard count =>
same shards, same order.
"""

from repro.uarch.sweep import _hierarchy_key, _kernel_knobs, _predictor_key


def _shape_key(config):
    """Compiled-kernel shape key (the sweep's own knob tuple)."""
    shift = config.l1i.line.bit_length() - 1
    return _kernel_knobs(config, shift)


def affinity_key(cell):
    """Sort key placing bank/kernel-sharing cells back-to-back.

    Hierarchy first (cache banks are the most expensive artifact to
    rebuild), then predictor, then code shape, then expansion index as
    the deterministic tiebreak.
    """
    return (repr(_hierarchy_key(cell.config)),
            repr(_predictor_key(cell.config)),
            repr(_shape_key(cell.config)),
            cell.index)


def order_cells(cells):
    """Cells grouped by trace, affinity-sorted inside each group."""
    ordered = []
    for group in group_by_trace(cells):
        ordered.extend(group)
    return ordered


def group_by_trace(cells):
    """Trace-sharing cell groups, each affinity-ordered, in first-seen
    trace order (expansion order is kernel-major, so this is stable)."""
    groups = {}
    for cell in cells:
        groups.setdefault(cell.trace_key, []).append(cell)
    return [sorted(group, key=affinity_key) for group in groups.values()]


def build_shards(cells, n_shards):
    """Partition cells into ``n_shards`` affinity-preserving shards.

    Returns a list of cell lists (some possibly empty when there are
    fewer trace groups than shards).  Groups are assigned largest-first
    to the lightest shard; ties break on shard index, group order on
    first appearance — fully deterministic.
    """
    n_shards = max(1, int(n_shards))
    groups = group_by_trace(cells)
    shards = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    # Stable largest-first: sort by (-size, first-seen order).
    order = sorted(range(len(groups)),
                   key=lambda position: (-len(groups[position]), position))
    for position in order:
        group = groups[position]
        target = min(range(n_shards), key=lambda shard: (loads[shard],
                                                         shard))
        shards[target].extend(group)
        loads[target] += len(group)
    return shards


def steal_candidates(shards, own_index, remaining):
    """Cells to try stealing, best-victim-first, tail-first.

    ``remaining`` is a predicate (cell -> bool) selecting cells still
    worth claiming (no published result).  Victim shards are visited
    heaviest-remaining first; within a victim, cells come from the tail
    backwards so the thief and the victim converge from opposite ends.
    """
    victims = []
    for index, shard in enumerate(shards):
        if index == own_index:
            continue
        pending = [cell for cell in shard if remaining(cell)]
        if pending:
            victims.append((len(pending), -index, pending))
    victims.sort(reverse=True)
    for _, _, pending in victims:
        yield from reversed(pending)
