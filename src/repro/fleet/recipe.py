"""Declarative experiment recipes: kernel × config × seed matrices.

A recipe is a JSON document describing one experiment matrix — which
workload kernels to time (real trace or synthesized clone), which
machine configurations (a base override plus cartesian knob axes plus
optional explicit configs), and which synthesis seeds.  ``expand``
turns it into a flat, deterministic list of :class:`Cell` objects whose
ids are content hashes of everything that determines the cell's result,
so the same recipe always expands to the same cells in the same order —
the contract the fleet queue's resume path and the byte-identical
matrix export both stand on.

Example::

    {
      "name": "fig6-grid",
      "kernels": ["crc32", "sha", "qsort"],
      "subject": "real",
      "seeds": [0],
      "pipeline_cap": 60000,
      "base": {"rob_size": 16},
      "axes": {"width": [1, 2], "predictor": ["gap", "nottaken"]},
      "configs": [{"name": "big-l1d", "l1d": [32768, 4, 32]}]
    }

Axes expand in listed order (last axis fastest), after which explicit
``configs`` entries are appended; cells enumerate kernel-major, then
seed, then config, so all cells sharing a trace are contiguous in
expansion order.
"""

import dataclasses
import hashlib
import itertools
import json

from repro.uarch.cache import CacheConfig
from repro.uarch.config import BASE_CONFIG, MachineConfig

#: Bump when the recipe schema or cell-id material changes; embedded in
#: every cell id so old runs can never alias into new semantics.
RECIPE_SCHEMA_VERSION = 1

#: Cell subjects: time the real workload's trace or its clone's.
SUBJECTS = ("real", "clone")

_CONFIG_FIELDS = {field.name for field in dataclasses.fields(MachineConfig)}
_CACHE_FIELDS = ("l1i", "l1d", "l2")


class RecipeError(ValueError):
    """A recipe that cannot be expanded (unknown fields, bad values)."""


def _coerce_cache(field_name, value):
    """JSON cache spec -> CacheConfig: [size, assoc, line] or null."""
    if value is None:
        if field_name == "l2":
            return None
        raise RecipeError(f"{field_name} cannot be null")
    if isinstance(value, CacheConfig):
        return value
    try:
        size, assoc, line = value
    except (TypeError, ValueError):
        raise RecipeError(
            f"{field_name} must be [size, assoc, line], got {value!r}"
        ) from None
    if assoc != "full":
        assoc = int(assoc)
    return CacheConfig(int(size), assoc, int(line))


def _coerce_field(name, value):
    if name not in _CONFIG_FIELDS:
        raise RecipeError(
            f"unknown config field {name!r} "
            f"(valid: {', '.join(sorted(_CONFIG_FIELDS))})")
    if name in _CACHE_FIELDS:
        return _coerce_cache(name, value)
    if name == "predictor_kwargs":
        return dict(value)
    return value


def _config_from(base, overrides, name):
    changes = {field: _coerce_field(field, value)
               for field, value in overrides.items() if field != "name"}
    return base.renamed(name, **changes)


def _axis_label(field, value):
    if field in _CACHE_FIELDS:
        if value is None:
            return f"{field}=none"
        cache = _coerce_cache(field, value)
        return f"{field}={cache.size}x{cache.assoc}x{cache.line}"
    return f"{field}={value}"


def _cache_json(cache):
    if cache is None:
        return None
    return [cache.size, cache.assoc, cache.line]


def config_to_json(config):
    """A MachineConfig as the recipe format's plain-JSON dict."""
    payload = {}
    for field in dataclasses.fields(MachineConfig):
        value = getattr(config, field.name)
        if field.name in _CACHE_FIELDS:
            value = _cache_json(value)
        payload[field.name] = value
    return payload


@dataclasses.dataclass(frozen=True)
class Cell:
    """One (kernel, subject, seed, config) point of the matrix."""

    index: int
    cell_id: str
    kernel: str
    subject: str
    seed: int
    config: MachineConfig

    @property
    def trace_key(self):
        """Cells with equal trace keys time the exact same trace."""
        return (self.kernel, self.subject, self.seed)

    def to_dict(self):
        return {
            "index": self.index,
            "cell_id": self.cell_id,
            "kernel": self.kernel,
            "subject": self.subject,
            "seed": self.seed,
            "config": config_to_json(self.config),
        }


@dataclasses.dataclass
class Recipe:
    """A parsed experiment matrix description."""

    name: str
    kernels: list
    subject: str = "real"
    seeds: tuple = (0,)
    #: Functional-simulation *safety* cap (workloads run to natural
    #: termination; exceeding this raises, it never truncates).
    functional_cap: int = 20_000_000
    #: Timing-simulation instruction budget per cell (None = full trace).
    pipeline_cap: int = None
    base: dict = dataclasses.field(default_factory=dict)
    axes: dict = dataclasses.field(default_factory=dict)
    configs: list = dataclasses.field(default_factory=list)

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise RecipeError("recipe needs a non-empty string name")
        # Axes order is semantic (it defines expansion order), so the
        # canonical serialized form is a list of [field, values] pairs —
        # immune to key-sorting serializers.  Plain JSON objects are
        # accepted too (json.load preserves their order).
        if not isinstance(self.axes, dict):
            try:
                self.axes = dict(self.axes)
            except (TypeError, ValueError):
                raise RecipeError(
                    f"axes must be a mapping or [field, values] pairs, "
                    f"got {self.axes!r}") from None
        if not self.kernels:
            raise RecipeError("recipe needs at least one kernel")
        if self.subject not in SUBJECTS:
            raise RecipeError(
                f"subject must be one of {SUBJECTS}, got {self.subject!r}")
        self.seeds = tuple(int(seed) for seed in self.seeds)
        if not self.seeds:
            raise RecipeError("recipe needs at least one seed")
        if not self.axes and not self.configs and not self.base:
            # A matrix with no config axis still times BASE_CONFIG once.
            self.base = {}
        for field in list(self.base) + list(self.axes):
            if field == "name" or field not in _CONFIG_FIELDS:
                raise RecipeError(f"unknown config field {field!r}")

    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "schema": RECIPE_SCHEMA_VERSION,
            "name": self.name,
            "kernels": list(self.kernels),
            "subject": self.subject,
            "seeds": list(self.seeds),
            "functional_cap": self.functional_cap,
            "pipeline_cap": self.pipeline_cap,
            "base": dict(self.base),
            "axes": [[field, list(values)]
                     for field, values in self.axes.items()],
            "configs": [dict(entry) for entry in self.configs],
        }

    def digest(self):
        """Content hash of the whole recipe (resume-compatibility key)."""
        material = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    def expand_configs(self):
        """The config list, in deterministic expansion order."""
        base = _config_from(BASE_CONFIG, self.base,
                            "base" if not self.base else "base+" + ",".join(
                                _axis_label(field, value)
                                for field, value in self.base.items()))
        configs = []
        if self.axes:
            fields = list(self.axes)
            for values in itertools.product(
                    *(self.axes[field] for field in fields)):
                overrides = dict(zip(fields, values))
                label = ",".join(_axis_label(field, value)
                                 for field, value in overrides.items())
                configs.append(_config_from(base, overrides, label))
        else:
            configs.append(base)
        for entry in self.configs:
            entry = dict(entry)
            label = entry.pop("name", None)
            if label is None:
                label = ",".join(_axis_label(field, value)
                                 for field, value in entry.items()) or "base"
            configs.append(_config_from(base, entry, label))
        names = [config.name for config in configs]
        if len(set(names)) != len(names):
            raise RecipeError(f"duplicate config names in expansion: "
                              f"{sorted(set(n for n in names if names.count(n) > 1))}")
        return configs

    def expand(self):
        """The full deterministic cell list (kernel-major, stable ids)."""
        configs = self.expand_configs()
        cells = []
        for kernel in self.kernels:
            for seed in self.seeds:
                for config in configs:
                    cells.append(self._cell(len(cells), kernel, seed,
                                            config))
        return cells

    def _cell(self, index, kernel, seed, config):
        material = json.dumps({
            "schema": RECIPE_SCHEMA_VERSION,
            "kernel": kernel,
            "subject": self.subject,
            "seed": seed,
            "functional_cap": self.functional_cap,
            "pipeline_cap": self.pipeline_cap,
            "config": config_to_json(config),
        }, sort_keys=True, default=str)
        digest = hashlib.sha256(material.encode()).hexdigest()[:12]
        safe = "".join(ch if ch.isalnum() or ch in "._-" else "_"
                       for ch in f"{kernel}-s{seed}")[:40]
        return Cell(index=index, cell_id=f"{safe}-{digest}",
                    kernel=kernel, subject=self.subject, seed=seed,
                    config=config)


def recipe_from_dict(payload):
    """Parse the recipe JSON object (schema-checked)."""
    payload = dict(payload)
    schema = payload.pop("schema", RECIPE_SCHEMA_VERSION)
    if schema != RECIPE_SCHEMA_VERSION:
        raise RecipeError(f"recipe schema {schema} != "
                          f"{RECIPE_SCHEMA_VERSION}")
    known = {field.name for field in dataclasses.fields(Recipe)}
    unknown = set(payload) - known
    if unknown:
        raise RecipeError(f"unknown recipe keys: {sorted(unknown)}")
    return Recipe(**payload)


def load_recipe(path):
    """Read and parse a recipe JSON file."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise RecipeError(f"cannot read recipe {path}: {exc}") from exc
    except ValueError as exc:
        raise RecipeError(f"recipe {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise RecipeError(f"recipe {path} must be a JSON object")
    return recipe_from_dict(payload)


def save_recipe(recipe, path):
    """Write the canonical JSON form (what ``digest`` hashes)."""
    with open(path, "w") as handle:
        json.dump(recipe.to_dict(), handle, indent=2, sort_keys=True,
                  default=str)
        handle.write("\n")
