"""File-backed work-stealing cell queue (leases + results on disk).

Every fleet run directory holds two flat namespaces keyed by cell id::

    <run>/leases/<cell_id>.json    one worker's live claim
    <run>/results/<cell_id>.json   the cell's published result

Claiming is an ``O_CREAT | O_EXCL`` open — the filesystem arbitrates,
so any number of worker processes (and multiple hosts sharing the run
directory) can race on the same cell and exactly one wins.  Results are
published with the same temp-file + ``os.rename`` idiom the artifact
store uses, so a reader never sees a torn result and re-publication of
an identical result is harmless (the cells are deterministic).

A lease carries the owner's pid/host and is refreshed by
:meth:`FleetQueue.heartbeat` (workers beat from a daemon thread for as
long as a cell executes); :meth:`reclaim` releases leases whose owner
is provably dead (same host, pid gone) immediately and any other lease
after ``lease_ttl`` seconds without a heartbeat — so a SIGKILL-ed
worker strands its in-flight cell for at most one TTL, and in the
common single-host case for no time at all.  A same-host owner whose
pid is still alive is authoritative: its lease is never reclaimed on
TTL age alone, so a cell that outlives the TTL is not re-executed by a
sibling.

Every claim / steal / complete / reclaim emits a ``fleet`` journal
event, giving ``repro tail`` and post-mortem ``repro trace`` the full
scheduling history.
"""

import errno
import json
import os
import socket
import tempfile
import time
from contextlib import suppress

from repro.obs.journal import emit_event
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY

_LOG = get_logger("repro.fleet.queue")

#: Seconds without a heartbeat after which a foreign-host (or
#: unidentifiable) lease is considered abandoned.
DEFAULT_LEASE_TTL = 60.0

LEASES_DIR = "leases"
RESULTS_DIR = "results"


def _pid_alive(pid):
    """Best-effort liveness of a same-host pid (signal 0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


class FleetQueue:
    """Lease/result bookkeeping for one run directory."""

    def __init__(self, run_dir, lease_ttl=DEFAULT_LEASE_TTL):
        self.run_dir = run_dir
        self.lease_ttl = lease_ttl
        self.leases_dir = os.path.join(run_dir, LEASES_DIR)
        self.results_dir = os.path.join(run_dir, RESULTS_DIR)
        self.host = socket.gethostname()

    def ensure_dirs(self):
        os.makedirs(self.leases_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def lease_path(self, cell_id):
        return os.path.join(self.leases_dir, f"{cell_id}.json")

    def result_path(self, cell_id):
        return os.path.join(self.results_dir, f"{cell_id}.json")

    def has_result(self, cell_id):
        return os.path.exists(self.result_path(cell_id))

    def completed_ids(self):
        """Cell ids with a published result."""
        try:
            names = os.listdir(self.results_dir)
        except OSError:
            return set()
        return {name[:-5] for name in names if name.endswith(".json")}

    def leased_ids(self):
        try:
            names = os.listdir(self.leases_dir)
        except OSError:
            return set()
        return {name[:-5] for name in names if name.endswith(".json")}

    # ------------------------------------------------------------------
    def claim(self, cell_id, worker, stolen=False):
        """Try to lease one cell; True exactly once across all racers."""
        if self.has_result(cell_id):
            return False
        try:
            fd = os.open(self.lease_path(cell_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        except OSError as exc:
            if exc.errno == errno.EEXIST:
                return False
            raise
        record = self._lease_record(worker)
        with os.fdopen(fd, "w") as handle:
            json.dump(record, handle)
        REGISTRY.counter("fleet.claims").inc()
        if stolen:
            REGISTRY.counter("fleet.steals").inc()
        emit_event("fleet", event="steal" if stolen else "claim",
                   cell=cell_id, worker=worker)
        return True

    def _lease_record(self, worker):
        return {"worker": worker, "pid": os.getpid(), "host": self.host,
                "ts": round(time.time(), 6)}

    def heartbeat(self, cell_id, worker):
        """Refresh a held lease (atomic rewrite keeps readers whole)."""
        record = self._lease_record(worker)
        fd, staging = tempfile.mkstemp(prefix=f".hb-{os.getpid()}-",
                                       dir=self.leases_dir)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.rename(staging, self.lease_path(cell_id))
        except OSError:
            with suppress(OSError):
                os.remove(staging)

    def lease_info(self, cell_id):
        """The lease record, or None; torn/invalid reads degrade to an
        mtime-only record so reclaim can still age it out."""
        path = self.lease_path(cell_id)
        try:
            with open(path) as handle:
                record = json.load(handle)
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except OSError:
            return None
        except ValueError:
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                return None
            record = {"worker": None, "pid": None, "host": None,
                      "ts": mtime}
        return record

    def release(self, cell_id):
        with suppress(OSError):
            os.remove(self.lease_path(cell_id))

    # ------------------------------------------------------------------
    def complete(self, cell_id, payload, worker=None):
        """Atomically publish one cell result and drop its lease."""
        fd, staging = tempfile.mkstemp(prefix=f".res-{os.getpid()}-",
                                       dir=self.results_dir)
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.rename(staging, self.result_path(cell_id))
        except BaseException:
            with suppress(OSError):
                os.remove(staging)
            raise
        self.release(cell_id)
        REGISTRY.counter("fleet.cells_completed").inc()
        emit_event("fleet", event="complete", cell=cell_id, worker=worker)

    def read_result(self, cell_id):
        """The published result payload, or None (torn reads -> None)."""
        try:
            with open(self.result_path(cell_id)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    def reclaim(self, cell_ids=None, worker=None):
        """Release abandoned leases; returns the reclaimed cell ids.

        A lease is abandoned when its cell has no result and either its
        owner pid is dead on this host (immediate) or its last
        heartbeat is older than the TTL (cross-host fallback).  A
        same-host owner whose pid is alive keeps the lease regardless
        of TTL — matching the workers' own wait logic — so a slow cell
        is never stolen from a live process.
        """
        if cell_ids is None:
            cell_ids = self.leased_ids()
        now = time.time()
        reclaimed = []
        for cell_id in sorted(cell_ids):
            if self.has_result(cell_id):
                # Completed cells should have no lease; sweep leftovers.
                self.release(cell_id)
                continue
            info = self.lease_info(cell_id)
            if info is None:
                continue
            same_host = (info.get("host") == self.host
                         and isinstance(info.get("pid"), int))
            alive_here = same_host and _pid_alive(info["pid"])
            dead = same_host and not alive_here
            expired = now - float(info.get("ts") or 0.0) > self.lease_ttl
            if not dead and (alive_here or not expired):
                continue
            self.release(cell_id)
            reclaimed.append(cell_id)
            REGISTRY.counter("fleet.reclaims").inc()
            emit_event("fleet", event="reclaim", cell=cell_id,
                       worker=worker, previous=info.get("worker"),
                       reason="dead_pid" if dead else "expired")
            _LOG.info("fleet.reclaim", cell=cell_id,
                      previous=info.get("worker"),
                      reason="dead_pid" if dead else "expired")
        return reclaimed
