"""Fleet run orchestration: init, run, resume, status, matrix export.

A run directory is the whole state of one matrix execution::

    <run>/recipe.json    canonical recipe (digest-checked on resume)
    <run>/leases/        live cell claims (FleetQueue)
    <run>/results/       published per-cell results
    <run>/workers/       per-worker summaries
    <run>/matrix.json    canonical matrix, written when complete
    <run>/journal-*.jsonl  run journal (claims, progress, spans)

:func:`run_fleet` expands the recipe, pins every pending cell's trace
artifacts in the store, reclaims abandoned leases, and fans the shards
out to worker processes; each worker additionally pins the digest/bank
entries of its live sessions once it holds the trace content needed to
key them.  Pinning is best-effort — it guards future prunes only, so
an eviction racing the pin write just costs a re-derivation — but it
keeps a long matrix from routinely LRU-evicting its own warm inputs
mid-run.  Invoking it again on the same directory *is* the
resume path: completed cells are skipped byte-for-byte (their result
files are never rewritten), only pending cells execute.  When the last
cell lands the canonical matrix — deterministic metrics only, sorted
keys — is exported, so an interrupted-then-resumed run produces a
``matrix.json`` byte-identical to an uninterrupted one.
"""

import json
import multiprocessing
import os
import time

from repro.exec.artifacts import trace_artifact_key
from repro.exec.store import artifact_key, default_store
from repro.fleet.queue import FleetQueue
from repro.fleet.recipe import (
    Recipe,
    RecipeError,
    load_recipe,
    recipe_from_dict,
    save_recipe,
)
from repro.fleet.worker import (
    CELLS_FILENAME,
    RECIPE_FILENAME,
    WORKERS_DIR,
    FleetWorker,
    parse_chaos,
    worker_entry,
)
from repro.obs.journal import active_journal, configure_journal, emit_event
from repro.obs.logging import get_logger

_LOG = get_logger("repro.fleet.run")

#: Canonical matrix layout version.
MATRIX_SCHEMA_VERSION = 1

MATRIX_FILENAME = "matrix.json"


class FleetError(RuntimeError):
    """A run directory in a state the fleet cannot proceed from."""


# ----------------------------------------------------------------------
# Run directory state
# ----------------------------------------------------------------------
def init_run(run_dir, recipe):
    """Create (or validate) a run directory for ``recipe``.

    Re-initializing with a *different* recipe is refused — a run
    directory is bound to one matrix for its whole life, which is what
    makes resume and the byte-identical export sound.
    """
    os.makedirs(run_dir, exist_ok=True)
    recipe_path = os.path.join(run_dir, RECIPE_FILENAME)
    if os.path.exists(recipe_path):
        existing = load_recipe(recipe_path)
        if existing.digest() != recipe.digest():
            raise FleetError(
                f"run directory {run_dir} was initialized for recipe "
                f"{existing.name!r} ({existing.digest()}); refusing to "
                f"run {recipe.name!r} ({recipe.digest()}) in it")
    else:
        save_recipe(recipe, recipe_path)
        cells = recipe.expand()
        with open(os.path.join(run_dir, CELLS_FILENAME), "w") as handle:
            json.dump({"schema": MATRIX_SCHEMA_VERSION,
                       "recipe_digest": recipe.digest(),
                       "cells": [cell.to_dict() for cell in cells]},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
    FleetQueue(run_dir).ensure_dirs()


def load_run_recipe(run_dir):
    recipe_path = os.path.join(run_dir, RECIPE_FILENAME)
    if not os.path.exists(recipe_path):
        raise FleetError(f"{run_dir} is not a fleet run directory "
                         f"(no {RECIPE_FILENAME})")
    return load_recipe(recipe_path)


# ----------------------------------------------------------------------
# Pin-while-leased: a live run's inputs are not LRU fodder
# ----------------------------------------------------------------------
def _pending_artifact_keys(recipe, cells, queue):
    """Store keys the pending cells will read (trace entries only).

    The derived digest/bank entries are keyed by trace *content*, which
    the orchestrator does not have; each worker pins those itself via
    :meth:`~repro.fleet.worker.FleetWorker._pin_sessions` as its
    sessions go live.
    """
    from repro.core.synthesizer import SynthesisParameters
    from repro.sim.turbo import resolve_backend
    from repro.isa.assembler import assemble
    from repro.workloads import get_workload

    completed = queue.completed_ids()
    pending_traces = {cell.trace_key for cell in cells
                      if cell.cell_id not in completed}
    keys = set()
    for kernel, subject, seed in sorted(pending_traces):
        try:
            source = get_workload(kernel).source()
            program = assemble(source, name=kernel)
            backend = resolve_backend(None, program)
        except Exception as exc:  # pin is best-effort, never fatal
            _LOG.warning("fleet.pin_key_failed", kernel=kernel,
                         error=str(exc))
            continue
        if subject == "clone":
            keys.add(artifact_key(kernel, source,
                                  SynthesisParameters(seed=seed),
                                  recipe.functional_cap,
                                  sim_backend=backend))
        else:
            keys.add(trace_artifact_key(kernel, source,
                                        recipe.functional_cap, backend))
    return sorted(keys)


def _pin_owner(run_dir):
    return "fleet-" + "".join(
        ch if ch.isalnum() or ch in "._-" else "_"
        for ch in os.path.abspath(run_dir))[-80:]


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def run_fleet(run_dir, recipe=None, workers=1, lease_ttl=None,
              chaos=None):
    """Execute (or resume) a fleet run; returns a summary dict.

    ``recipe`` may be a :class:`Recipe`, a recipe dict, or ``None`` to
    load the run directory's own recipe (the resume path).  ``workers``
    is the process count; ``chaos`` is the fault-injection spec passed
    through to :class:`FleetWorker` (tests / CI smoke only).
    """
    if recipe is None:
        recipe = load_run_recipe(run_dir)
    elif isinstance(recipe, dict):
        recipe = recipe_from_dict(recipe)
    elif not isinstance(recipe, Recipe):
        raise RecipeError(f"not a recipe: {recipe!r}")
    init_run(run_dir, recipe)
    workers = max(1, int(workers))
    chaos = parse_chaos(chaos)
    lease_kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
    queue = FleetQueue(run_dir, **lease_kwargs)
    cells = recipe.expand()

    own_journal = active_journal() is None
    if own_journal:
        # Journal into the run directory itself (never fresh: resumed
        # runs append to the same stream) so `repro tail <run_dir>`
        # follows progress with no extra flags.
        configure_journal(run_dir)
    started = time.perf_counter()
    store = default_store()
    pin_owner = _pin_owner(run_dir)
    pinned = _pending_artifact_keys(recipe, cells, queue)
    store.pin(pin_owner, pinned)
    try:
        reclaimed = queue.reclaim(worker="orchestrator")
        completed_before = len(queue.completed_ids())
        emit_event("fleet", event="run_begin", recipe=recipe.name,
                   recipe_digest=recipe.digest(), cells=len(cells),
                   completed=completed_before, workers=workers,
                   reclaimed=len(reclaimed), resumed=completed_before > 0)
        emit_event("progress", done=completed_before, total=len(cells),
                   unit="cells", label=recipe.name)
        summaries = []
        dead_workers = 0
        if completed_before < len(cells):
            if workers == 1 and chaos is None:
                summaries.append(FleetWorker(
                    run_dir, 0, 1, lease_ttl=lease_ttl).run())
            else:
                dead_workers = _spawn_workers(run_dir, workers,
                                              lease_ttl, chaos)
        # A chaos-killed (or crashed) worker strands its in-flight
        # lease; siblings usually reclaim it live, but if *they* exited
        # first the run ends incomplete — exactly what resume is for.
        queue.reclaim(worker="orchestrator")
        completed = len(queue.completed_ids())
        complete = completed >= len(cells)
        if complete:
            export_matrix(run_dir)
        summary = {
            "run_dir": run_dir,
            "recipe": recipe.name,
            "recipe_digest": recipe.digest(),
            "cells": len(cells),
            "completed": completed,
            "skipped": completed_before,
            "executed": completed - completed_before,
            "workers": workers,
            "dead_workers": dead_workers,
            "complete": complete,
            "wall_seconds": round(time.perf_counter() - started, 6),
            "worker_summaries": summaries,
        }
        emit_event("fleet", event="run_end", **{
            key: value for key, value in summary.items()
            if key != "worker_summaries"})
        return summary
    finally:
        store.unpin(pin_owner)
        if own_journal:
            configure_journal(None)


def _spawn_workers(run_dir, workers, lease_ttl, chaos):
    """Fan out worker processes; returns how many died abnormally.

    Plain ``multiprocessing.Process`` rather than a pool: a SIGKILL-ed
    worker must not poison its siblings (a broken pool would), and the
    queue on disk *is* the work distribution — processes share nothing.
    """
    processes = []
    for index in range(workers):
        process = multiprocessing.Process(
            target=worker_entry,
            args=(run_dir, index, workers, lease_ttl, chaos),
            name=f"fleet-w{index}")
        process.start()
        processes.append(process)
    dead = 0
    for process in processes:
        process.join()
        if process.exitcode != 0:
            dead += 1
            _LOG.warning("fleet.worker_died", worker=process.name,
                         exitcode=process.exitcode)
    return dead


# ----------------------------------------------------------------------
# Status / export
# ----------------------------------------------------------------------
def fleet_status(run_dir):
    """Queue/progress snapshot of a run directory (read-only)."""
    recipe = load_run_recipe(run_dir)
    cells = recipe.expand()
    queue = FleetQueue(run_dir)
    completed = queue.completed_ids()
    leased = queue.leased_ids() - completed
    workers = []
    workers_dir = os.path.join(run_dir, WORKERS_DIR)
    if os.path.isdir(workers_dir):
        for name in sorted(os.listdir(workers_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(workers_dir, name)) as handle:
                    workers.append(json.load(handle))
            except (OSError, ValueError):
                continue
    return {
        "run_dir": run_dir,
        "recipe": recipe.name,
        "recipe_digest": recipe.digest(),
        "cells": len(cells),
        "completed": len(completed),
        "leased": len(leased),
        "pending": len(cells) - len(completed),
        "complete": len(completed) >= len(cells),
        "matrix": os.path.exists(os.path.join(run_dir, MATRIX_FILENAME)),
        "workers": workers,
    }


def collect_matrix(run_dir):
    """The canonical matrix dict (raises FleetError if incomplete).

    Strictly deterministic content: recipe identity plus each cell's
    id/coordinates and :func:`~repro.fleet.worker.cell_metrics` block,
    in expansion order.  Worker attribution, timestamps, and wall times
    stay in the per-cell result files and are excluded here.
    """
    recipe = load_run_recipe(run_dir)
    cells = recipe.expand()
    queue = FleetQueue(run_dir)
    rows = []
    missing = []
    for cell in cells:
        payload = queue.read_result(cell.cell_id)
        if payload is None:
            missing.append(cell.cell_id)
            continue
        rows.append({
            "cell_id": cell.cell_id,
            "kernel": cell.kernel,
            "subject": cell.subject,
            "seed": cell.seed,
            "config": cell.config.name,
            "metrics": payload["metrics"],
        })
    if missing:
        raise FleetError(
            f"matrix incomplete: {len(missing)} of {len(cells)} cells "
            f"missing (first: {missing[0]})")
    return {
        "schema": MATRIX_SCHEMA_VERSION,
        "recipe": recipe.name,
        "recipe_digest": recipe.digest(),
        "cells": rows,
    }


def matrix_bytes(run_dir):
    """The canonical matrix serialization (the byte-identity contract)."""
    matrix = collect_matrix(run_dir)
    return (json.dumps(matrix, indent=2, sort_keys=True) + "\n").encode()


def export_matrix(run_dir):
    """Write ``matrix.json`` atomically; returns its path."""
    payload = matrix_bytes(run_dir)
    path = os.path.join(run_dir, MATRIX_FILENAME)
    staging = path + f".tmp-{os.getpid()}"
    with open(staging, "wb") as handle:
        handle.write(payload)
    os.rename(staging, path)
    return path
