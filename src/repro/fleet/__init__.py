"""Fleet-scale experiment engine (``repro.fleet``).

Turns the one-shot ``--jobs`` grid call into an orchestrated,
resumable system for large kernel × config × seed matrices:

* :mod:`repro.fleet.recipe` — declarative experiment recipes expanding
  to deterministic cell lists with stable content-hashed cell ids;
* :mod:`repro.fleet.queue` — file-backed work-stealing job queue
  (atomic lockfile leases, heartbeats, dead-pid/TTL reclaim) shared by
  any number of worker processes or hosts;
* :mod:`repro.fleet.scheduler` — reuse-affinity sharding that keeps
  cells sharing a trace digest, outcome bank, or compiled kernel on one
  worker back-to-back;
* :mod:`repro.fleet.worker` — the worker loop routing consecutive cells
  through :class:`~repro.uarch.incremental.IncrementalSession` instead
  of cold sweeps;
* :mod:`repro.fleet.run` — run/resume/status orchestration with a
  byte-identical canonical matrix export.

CLI: ``repro fleet run/status/resume`` (live progress via
``repro tail <run-dir>``).
"""

from repro.fleet.queue import DEFAULT_LEASE_TTL, FleetQueue
from repro.fleet.recipe import (
    RECIPE_SCHEMA_VERSION,
    Cell,
    Recipe,
    RecipeError,
    load_recipe,
    recipe_from_dict,
    save_recipe,
)
from repro.fleet.run import (
    MATRIX_SCHEMA_VERSION,
    FleetError,
    collect_matrix,
    export_matrix,
    fleet_status,
    init_run,
    matrix_bytes,
    run_fleet,
)
from repro.fleet.scheduler import (
    affinity_key,
    build_shards,
    order_cells,
    steal_candidates,
)
from repro.fleet.worker import FleetWorker, cell_metrics, worker_entry

__all__ = [
    "DEFAULT_LEASE_TTL",
    "Cell",
    "FleetError",
    "FleetQueue",
    "FleetWorker",
    "MATRIX_SCHEMA_VERSION",
    "RECIPE_SCHEMA_VERSION",
    "Recipe",
    "RecipeError",
    "affinity_key",
    "build_shards",
    "cell_metrics",
    "collect_matrix",
    "export_matrix",
    "fleet_status",
    "init_run",
    "load_recipe",
    "matrix_bytes",
    "order_cells",
    "recipe_from_dict",
    "run_fleet",
    "save_recipe",
    "steal_candidates",
    "worker_entry",
]
