"""Command-line interface: ``python -m repro <command>``.

Commands mirror the vendor/architect workflow:

* ``list``      — show the workload corpus (Table 1);
* ``profile``   — profile a workload (or ``.s`` file) to a JSON profile;
* ``clone``     — synthesize a clone from a workload or a JSON profile,
  writing the ``.s`` and C-with-asm artifacts;
* ``compare``   — real vs clone IPC/power/miss rates on the base machine;
* ``sweep``     — the 28-configuration cache study for one workload;
* ``estimate``  — statistical-simulation IPC estimate from a profile.
"""

import argparse
import os
import sys

from repro.core import (
    SynthesisParameters,
    WorkloadProfile,
    emit_c_source,
    make_clone,
    profile_trace,
)
from repro.evaluation import format_table, pearson, rank_vector
from repro.isa import assemble
from repro.sim import run_program
from repro.uarch import BASE_CONFIG, CACHE_SWEEP, estimate_power, simulate_cache, simulate_pipeline
from repro.workloads import all_workloads, build_workload, workload_names


def _load_program(target):
    """A workload name, or a path to an SRISC assembly file."""
    if target in workload_names():
        return build_workload(target)
    if os.path.exists(target):
        with open(target) as handle:
            return assemble(handle.read(),
                            name=os.path.basename(target))
    raise SystemExit(f"error: {target!r} is neither a workload name nor "
                     "an assembly file (see `repro list`)")


def _load_profile(target):
    """A workload name, or a path to a saved profile JSON."""
    if target.endswith(".json") and os.path.exists(target):
        return WorkloadProfile.load(target)
    program = _load_program(target)
    return profile_trace(run_program(program))


def cmd_list(args):
    rows = [[spec.name, spec.domain, spec.suite, spec.description]
            for spec in all_workloads()]
    print(format_table(["workload", "domain", "suite", "description"],
                       rows))
    return 0


def cmd_profile(args):
    profile = _load_profile(args.target)
    output = args.output or f"{profile.name}.profile.json"
    profile.save(output)
    print(f"wrote {output}")
    print(f"  instructions: {profile.total_instructions}")
    print(f"  memory ops:   {profile.total_memory_ops}")
    print(f"  branches:     {profile.total_branches}")
    print(f"  footprint:    {profile.data_footprint_bytes} bytes")
    print(f"  stride cov.:  {profile.stride_coverage:.3f}")
    return 0


def cmd_clone(args):
    profile = _load_profile(args.target)
    parameters = SynthesisParameters(
        dynamic_instructions=args.instructions, seed=args.seed,
        footprint_scale=args.footprint_scale)
    result = make_clone(profile, parameters)
    outdir = args.output_dir
    os.makedirs(outdir, exist_ok=True)
    asm_path = os.path.join(outdir, f"{profile.name}.clone.s")
    c_path = os.path.join(outdir, f"{profile.name}.clone.c")
    with open(asm_path, "w") as handle:
        handle.write(result.asm_source)
    with open(c_path, "w") as handle:
        handle.write(emit_c_source(result.program))
    print(f"wrote {asm_path} and {c_path}")
    stats = result.stats
    print(f"  block instances: {stats['block_instances']}")
    print(f"  loop iterations: {stats['iterations']}")
    print(f"  footprint:       {stats['footprint_bytes']} bytes "
          f"(target {stats['footprint_target']})")
    return 0


def cmd_compare(args):
    program = _load_program(args.target)
    real_trace = run_program(program)
    profile = profile_trace(real_trace)
    result = make_clone(profile, SynthesisParameters(
        dynamic_instructions=args.instructions, seed=args.seed))
    clone_trace = run_program(result.program)
    real = simulate_pipeline(real_trace, BASE_CONFIG)
    clone = simulate_pipeline(clone_trace, BASE_CONFIG)
    rows = [
        ["IPC", real.ipc, clone.ipc],
        ["power", estimate_power(real), estimate_power(clone)],
        ["L1D miss rate", real.dcache_miss_rate, clone.dcache_miss_rate],
        ["bpred miss rate", real.branch_misprediction_rate,
         clone.branch_misprediction_rate],
    ]
    print(format_table(["metric", "real", "clone"], rows,
                       float_format="{:.4f}"))
    return 0


def cmd_sweep(args):
    program = _load_program(args.target)
    real_trace = run_program(program)
    profile = profile_trace(real_trace)
    result = make_clone(profile, SynthesisParameters(
        dynamic_instructions=args.instructions, seed=args.seed))
    clone_trace = run_program(result.program)
    real_addresses = real_trace.memory_addresses()
    clone_addresses = clone_trace.memory_addresses()
    real_mpi, clone_mpi, rows = [], [], []
    for config in CACHE_SWEEP:
        real_value = simulate_cache(real_addresses, config).misses \
            / len(real_trace)
        clone_value = simulate_cache(clone_addresses, config).misses \
            / len(clone_trace)
        real_mpi.append(real_value)
        clone_mpi.append(clone_value)
        rows.append([config.label(), real_value, clone_value])
    print(format_table(["config", "real MPI", "clone MPI"], rows,
                       float_format="{:.5f}"))
    correlation = pearson([v - real_mpi[0] for v in real_mpi[1:]],
                          [v - clone_mpi[0] for v in clone_mpi[1:]])
    ranks = pearson(rank_vector(real_mpi), rank_vector(clone_mpi))
    print(f"\npearson R (relative MPI): {correlation:+.3f}")
    print(f"ranking correlation:      {ranks:+.3f}")
    return 0


def cmd_estimate(args):
    from repro.statsim import statistical_ipc_estimate
    profile = _load_profile(args.target)
    ipc = statistical_ipc_estimate(profile, BASE_CONFIG,
                                   n_instructions=args.instructions)
    print(f"statistical IPC estimate (base config): {ipc:.3f}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Performance cloning (IISWC 2006 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the workload corpus")

    def common(p, with_output_dir=False):
        p.add_argument("target",
                       help="workload name, .s file, or profile .json")
        p.add_argument("--instructions", type=int, default=120_000,
                       help="clone/synthetic dynamic instruction target")
        p.add_argument("--seed", type=int, default=42)
        if with_output_dir:
            p.add_argument("-o", "--output-dir", default="clone_out")

    p = sub.add_parser("profile", help="save a JSON workload profile")
    p.add_argument("target")
    p.add_argument("-o", "--output", default=None)

    p = sub.add_parser("clone", help="synthesize a benchmark clone")
    common(p, with_output_dir=True)
    p.add_argument("--footprint-scale", type=float, default=1.0)

    common(sub.add_parser("compare",
                          help="real vs clone on the base machine"))
    common(sub.add_parser("sweep", help="28-config cache design study"))
    common(sub.add_parser("estimate",
                          help="statistical-simulation IPC estimate"))
    return parser


_HANDLERS = {
    "list": cmd_list, "profile": cmd_profile, "clone": cmd_clone,
    "compare": cmd_compare, "sweep": cmd_sweep, "estimate": cmd_estimate,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
