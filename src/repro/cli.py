"""Command-line interface: ``python -m repro <command>``.

Commands mirror the vendor/architect workflow:

* ``list``      — show the workload corpus (Table 1);
* ``profile``   — profile a workload (or ``.s`` file) to a JSON profile;
* ``clone``     — synthesize a clone from a workload or a JSON profile,
  writing the ``.s`` and C-with-asm artifacts;
* ``compare``   — real vs clone IPC/power/miss rates on the base machine;
* ``sweep``     — the 28-configuration cache study for one workload;
* ``estimate``  — statistical-simulation IPC estimate from a profile;
* ``lint``      — static verification of a workload/assembly file (or,
  with ``--clone``, profile-conformance analysis of its clone);
  ``--static-profile`` adds the abstract-interpretation layer (safety
  proofs SR11x and, for clones, simulation-free profile prediction
  scored as CF21x), ``--audit`` the disclosure audit (DL3xx), and
  ``--severity CODE=LEVEL`` reclassifies individual diagnostics;
* ``report``    — render the manifest/metrics of a prior run directory;
* ``trace``     — timeline / flame / critical-path views of a run
  directory's event journal, with Chrome trace-event export;
* ``tail``      — live status of an in-flight run (per-worker spans,
  progress, ETA) from the same journal.

Runs started with ``--run-dir`` record an append-only event journal
(``journal-<pid>.jsonl``, one file per process) next to the manifest:
hierarchical spans from ``cli.<command>`` down to individual pool
tasks, artifact-store hits/misses, lint verdicts, metric deltas, and
progress heartbeats.  ``--profile`` additionally samples the main
thread and attributes hot code to the enclosing span (off by default;
zero cost when disabled).

Global flags (valid before or after the subcommand): ``--verbose`` /
``--quiet`` control the structured log level (also settable via the
``REPRO_LOG_LEVEL`` environment variable; ``--quiet`` additionally
disables telemetry entirely), ``--json`` switches the command's output
to a single JSON object including the run manifest, and ``--run-dir``
persists that manifest to disk for later ``repro report``.

``compare`` and ``sweep`` take ``--jobs N`` (or the ``REPRO_JOBS``
environment variable) to fan independent simulations out over a process
pool, and both are backed by the persistent ``repro.exec`` artifact
cache (``REPRO_CACHE_DIR``, disable with ``REPRO_CACHE=off``): a warm
cache skips the functional simulations entirely and the run manifest
records the cache hits/misses that produced the result.

``--sim-backend {auto,turbo,interp}`` (or ``REPRO_SIM_BACKEND``) picks
the functional-simulator engine; the resolved backend is part of every
artifact cache key and appears in manifests and ``repro report``.

Exit codes: 0 success, 1 runtime failure, 2 bad target, 3 load failure,
4 lint findings (error severity, or any finding under ``lint --strict``),
5 disclosure-audit findings (DL3xx errors take precedence over exit 4 so
CI can tell a leak from a structural/conformance failure).
"""

import argparse
import json
import os
import sys
import time

from repro.core import (
    SynthesisParameters,
    WorkloadProfile,
    emit_c_source,
    make_clone,
    profile_trace,
)
from repro.evaluation import format_table, pearson, rank_vector
from repro.exec import (
    default_store,
    pipeline_artifacts,
    resolve_jobs,
    shared_state_map,
)
from repro.isa import AssemblerError, assemble
from repro.lint import (
    CODES,
    LintGateError,
    StaticPredictionError,
    lint_clone,
    lint_program,
    predict_profile,
    safety_certificate,
)
from repro.obs import (
    DEBUG,
    WARNING,
    RunManifest,
    SamplingProfiler,
    build_span_tree,
    configure_journal,
    configure_logging,
    critical_path_text,
    emit_event,
    emit_metric_deltas,
    export_chrome_trace,
    flame_summary,
    flame_text,
    format_profile,
    get_logger,
    read_journal,
    reset_telemetry,
    set_telemetry_enabled,
    timeline_text,
)
from repro.obs import trace as _trace
from repro.sim import BACKENDS, SimulationError, run_program
from repro.uarch import (
    BASE_CONFIG,
    CACHE_SWEEP,
    estimate_power,
    simulate_cache_sweep,
    simulate_pipeline_sweep,
)
from repro.uarch.sweep import reset_sweep_stats
from repro.workloads import all_workloads, build_workload, get_workload, workload_names

_LOG = get_logger("repro.cli")

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_BAD_TARGET = 2
EXIT_LOAD_FAILED = 3
EXIT_LINT_FAILED = 4
EXIT_AUDIT_FAILED = 5

#: Version of the ``repro lint --json`` payload (the ``"schema"`` key),
#: mirroring the manifest/benchmark schema versioning so downstream
#: tooling can detect format changes.  v1: reports + summary; v2 adds
#: the static-analysis layers (SR11x/CF21x/DL3xx findings, optional
#: ``static_profile`` and ``certificates`` blocks).
LINT_SCHEMA_VERSION = 2


class CliError(Exception):
    """A user-facing failure with a distinct process exit code."""

    def __init__(self, code, message):
        super().__init__(message)
        self.code = code


class RunContext:
    """Collects one command's output: human text, JSON payload, headline.

    Handlers append renderable text via :meth:`emit`; in ``--json`` mode
    the collected ``payload`` (plus the run manifest) is printed instead.
    ``headline`` feeds the manifest's summary block.
    """

    def __init__(self, args):
        self.args = args
        self.json_mode = bool(getattr(args, "json", False))
        self.payload = {}
        self.headline = {}
        self.lines = []
        self.config = None  # machine config hashed into the manifest
        self.lint = None  # lint verdict summary recorded in the manifest
        self.certificate = None  # clone safety certificate (manifest)

    def emit(self, text):
        self.lines.append(text)

    def table(self, headers, rows, float_format="{:.4f}", key=None):
        self.emit(format_table(headers, rows, float_format=float_format))
        if key is not None:
            self.payload[key] = [dict(zip(headers, row)) for row in rows]


# ----------------------------------------------------------------------
def _load_program(target):
    """A workload name, or a path to an SRISC assembly file."""
    if target in workload_names():
        return build_workload(target)
    if os.path.exists(target):
        try:
            with open(target) as handle:
                return assemble(handle.read(),
                                name=os.path.basename(target))
        except AssemblerError as exc:
            raise CliError(EXIT_LOAD_FAILED,
                           f"failed to assemble {target}: {exc}") from exc
    raise CliError(EXIT_BAD_TARGET,
                   f"{target!r} is neither a workload name nor "
                   "an assembly file (see `repro list`)")


def _load_profile(target):
    """A workload name, or a path to a saved profile JSON."""
    if target.endswith(".json") and os.path.exists(target):
        try:
            return WorkloadProfile.load(target)
        except (ValueError, KeyError, TypeError, OSError) as exc:
            raise CliError(EXIT_LOAD_FAILED,
                           f"failed to load profile {target}: {exc}") from exc
    program = _load_program(target)
    return profile_trace(run_program(program))


#: Functional-simulation cap for compare/sweep (run_program's default).
_CLI_MAX_FUNCTIONAL = 50_000_000


def _target_source(target):
    """(name, assembly source) for a workload name or a ``.s`` file."""
    if target in workload_names():
        return target, get_workload(target).source()
    if os.path.exists(target):
        with open(target) as handle:
            return os.path.basename(target), handle.read()
    raise CliError(EXIT_BAD_TARGET,
                   f"{target!r} is neither a workload name nor "
                   "an assembly file (see `repro list`)")


def _pipeline_for(args):
    """Cache-backed full cloning pipeline for the command's target."""
    name, source = _target_source(args.target)
    parameters = SynthesisParameters(
        dynamic_instructions=args.instructions, seed=args.seed)
    try:
        return pipeline_artifacts(name, source, parameters,
                                  max_instructions=_CLI_MAX_FUNCTIONAL)
    except AssemblerError as exc:
        raise CliError(EXIT_LOAD_FAILED,
                       f"failed to assemble {args.target}: {exc}") from exc


def _note_cache(ctx):
    """Record artifact-cache provenance in payload and manifest."""
    stats = default_store().stats()
    ctx.headline.update(artifact_cache_hits=stats["hits"],
                        artifact_cache_misses=stats["misses"])
    ctx.payload["artifact_cache"] = stats


def _chunks(items, n):
    """Split ``items`` into ``n`` contiguous, order-preserving slices."""
    items = list(items)
    n = max(1, min(n, len(items)))
    size, extra = divmod(len(items), n)
    out, start = [], 0
    for index in range(n):
        end = start + size + (1 if index < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def _compare_sim_worker(state, which):
    real_trace, clone_trace, config = state
    trace = real_trace if which == "real" else clone_trace
    # A one-config grid: digests, outcome banks, and compiled kernels
    # persist through the artifact store, so repeat compares skip
    # straight to scheduling — and the run manifest picks up the
    # sweep-reuse accounting.
    [result] = simulate_pipeline_sweep(trace, [config])
    return which, result


def _sweep_chunk_worker(state, configs):
    real_addresses, clone_addresses = state
    return (simulate_cache_sweep(real_addresses, configs),
            simulate_cache_sweep(clone_addresses, configs))


# ----------------------------------------------------------------------
def cmd_list(args, ctx):
    rows = [[spec.name, spec.domain, spec.suite, spec.description]
            for spec in all_workloads()]
    ctx.table(["workload", "domain", "suite", "description"], rows,
              key="workloads")
    return EXIT_OK


def cmd_profile(args, ctx):
    profile = _load_profile(args.target)
    output = args.output or f"{profile.name}.profile.json"
    profile.save(output)
    _LOG.info("cli.wrote", path=output)
    summary = {
        "instructions": profile.total_instructions,
        "memory_ops": profile.total_memory_ops,
        "branches": profile.total_branches,
        "footprint_bytes": profile.data_footprint_bytes,
        "stride_coverage": profile.stride_coverage,
    }
    ctx.payload.update(output=output, profile=summary)
    ctx.headline.update(summary)
    ctx.emit("\n".join([
        f"wrote {output}",
        f"  instructions: {profile.total_instructions}",
        f"  memory ops:   {profile.total_memory_ops}",
        f"  branches:     {profile.total_branches}",
        f"  footprint:    {profile.data_footprint_bytes} bytes",
        f"  stride cov.:  {profile.stride_coverage:.3f}",
    ]))
    return EXIT_OK


def cmd_clone(args, ctx):
    profile = _load_profile(args.target)
    parameters = SynthesisParameters(
        dynamic_instructions=args.instructions, seed=args.seed,
        footprint_scale=args.footprint_scale)
    result = make_clone(profile, parameters)
    outdir = args.output_dir
    os.makedirs(outdir, exist_ok=True)
    asm_path = os.path.join(outdir, f"{profile.name}.clone.s")
    c_path = os.path.join(outdir, f"{profile.name}.clone.c")
    with open(asm_path, "w") as handle:
        handle.write(result.asm_source)
    with open(c_path, "w") as handle:
        handle.write(emit_c_source(result.program, stats=result.stats))
    _LOG.info("cli.wrote", asm=asm_path, c=c_path)
    stats = result.stats
    ctx.payload.update(artifacts=[asm_path, c_path], stats=stats)
    ctx.headline.update(
        block_instances=stats["block_instances"],
        iterations=stats["iterations"],
        footprint_bytes=stats["footprint_bytes"])
    ctx.lint = stats.get("lint")
    ctx.certificate = stats.get("certificate")
    lines = [
        f"wrote {asm_path} and {c_path}",
        f"  block instances: {stats['block_instances']}",
        f"  loop iterations: {stats['iterations']}",
        f"  footprint:       {stats['footprint_bytes']} bytes "
        f"(target {stats['footprint_target']})",
    ]
    if ctx.lint is not None:
        lines.append(
            f"  lint:            "
            f"{'pass' if ctx.lint['ok'] else 'FAIL'} "
            f"({ctx.lint['errors']} error(s), "
            f"{ctx.lint['warnings']} warning(s))")
    ctx.emit("\n".join(lines))
    return EXIT_OK


def cmd_compare(args, ctx):
    artifacts = _pipeline_for(args)
    ctx.lint = artifacts.clone.stats.get("lint")
    ctx.certificate = artifacts.clone.stats.get("certificate")
    jobs = resolve_jobs(getattr(args, "jobs", None))
    state = (artifacts.trace, artifacts.clone_trace, BASE_CONFIG)
    results = dict(shared_state_map(_compare_sim_worker,
                                    ["real", "clone"], state, jobs))
    real, clone = results["real"], results["clone"]
    ctx.config = BASE_CONFIG
    rows = [
        ["IPC", real.ipc, clone.ipc],
        ["power", estimate_power(real), estimate_power(clone)],
        ["L1D miss rate", real.dcache_miss_rate, clone.dcache_miss_rate],
        ["bpred miss rate", real.branch_misprediction_rate,
         clone.branch_misprediction_rate],
    ]
    ctx.table(["metric", "real", "clone"], rows, key="rows")
    ctx.headline.update(
        ipc_real=real.ipc, ipc_clone=clone.ipc,
        dcache_miss_rate_real=real.dcache_miss_rate,
        dcache_miss_rate_clone=clone.dcache_miss_rate,
        sim_mips_real=real.simulated_mips,
        sim_mips_clone=clone.simulated_mips,
        rob_stalls_real=real.rob_stalls, rob_stalls_clone=clone.rob_stalls,
        sim_backend=artifacts.sim_backend)
    _note_cache(ctx)
    return EXIT_OK


def cmd_sweep(args, ctx):
    artifacts = _pipeline_for(args)
    ctx.lint = artifacts.clone.stats.get("lint")
    ctx.certificate = artifacts.clone.stats.get("certificate")
    real_trace = artifacts.trace
    clone_trace = artifacts.clone_trace
    real_addresses = real_trace.memory_addresses()
    clone_addresses = clone_trace.memory_addresses()
    ctx.config = BASE_CONFIG
    jobs = resolve_jobs(getattr(args, "jobs", None))
    if jobs > 1:
        parts = shared_state_map(_sweep_chunk_worker,
                                 _chunks(CACHE_SWEEP, jobs),
                                 (real_addresses, clone_addresses), jobs)
        real_stats = [stats for part in parts for stats in part[0]]
        clone_stats = [stats for part in parts for stats in part[1]]
    else:
        real_stats = simulate_cache_sweep(real_addresses, CACHE_SWEEP)
        clone_stats = simulate_cache_sweep(clone_addresses, CACHE_SWEEP)
    real_mpi, clone_mpi, rows = [], [], []
    for config, real_cache, clone_cache in zip(CACHE_SWEEP, real_stats,
                                               clone_stats):
        real_value = real_cache.misses / len(real_trace)
        clone_value = clone_cache.misses / len(clone_trace)
        real_mpi.append(real_value)
        clone_mpi.append(clone_value)
        rows.append([config.label(), real_value, clone_value])
    ctx.table(["config", "real MPI", "clone MPI"], rows,
              float_format="{:.5f}", key="rows")
    correlation = pearson([v - real_mpi[0] for v in real_mpi[1:]],
                          [v - clone_mpi[0] for v in clone_mpi[1:]])
    ranks = pearson(rank_vector(real_mpi), rank_vector(clone_mpi))
    ctx.headline.update(pearson_relative_mpi=correlation,
                        ranking_correlation=ranks,
                        sim_backend=artifacts.sim_backend)
    ctx.emit(f"\npearson R (relative MPI): {correlation:+.3f}\n"
             f"ranking correlation:      {ranks:+.3f}")
    _note_cache(ctx)
    return EXIT_OK


def cmd_estimate(args, ctx):
    from repro.statsim import statistical_ipc_estimate
    profile = _load_profile(args.target)
    ipc = statistical_ipc_estimate(profile, BASE_CONFIG,
                                   n_instructions=args.instructions)
    ctx.config = BASE_CONFIG
    ctx.payload["ipc_estimate"] = ipc
    ctx.headline["ipc_estimate"] = ipc
    ctx.emit(f"statistical IPC estimate (base config): {ipc:.3f}")
    return EXIT_OK


def _parse_severity_overrides(pairs):
    """``["CF202=error", ...]`` → ``{code: severity}`` (validated)."""
    if not pairs:
        return None
    overrides = {}
    for pair in pairs:
        code, sep, level = pair.partition("=")
        code = code.strip().upper()
        level = level.strip().lower()
        if not sep or code not in CODES:
            raise CliError(EXIT_ERROR,
                           f"--severity wants CODE=LEVEL with a known "
                           f"code (got {pair!r}; see the SR/CF/DL "
                           f"registry in repro.lint.diagnostics)")
        if level not in ("error", "warning", "info"):
            raise CliError(EXIT_ERROR,
                           f"--severity level must be error, warning, "
                           f"or info (got {level!r})")
        overrides[code] = level
    return overrides


def cmd_lint(args, ctx):
    """Static verification: structural passes, plus conformance for clones."""
    if args.all:
        targets = list(workload_names())
    elif args.target:
        targets = [args.target]
    else:
        raise CliError(EXIT_BAD_TARGET,
                       "give a target or --all (see `repro list`)")
    overrides = _parse_severity_overrides(args.severity)
    reports = []
    certificates = []
    predictions = []
    for target in targets:
        if args.clone:
            profile = _load_profile(target)
            parameters = SynthesisParameters(
                dynamic_instructions=args.instructions, seed=args.seed,
                lint_gate="off")  # the point here is the report, not a raise
            clone = make_clone(profile, parameters)
            report = lint_clone(clone, severity_overrides=overrides,
                                static=args.static_profile,
                                audit=args.audit)
            program = clone.program
            if args.static_profile:
                try:
                    prediction = predict_profile(program)
                except StaticPredictionError as error:
                    predictions.append({"program": program.name,
                                        "declined": error.reason})
                else:
                    predicted = prediction.profile
                    predictions.append({
                        "program": program.name,
                        "instructions": predicted.total_instructions,
                        "memory_ops": predicted.total_memory_ops,
                        "branches": predicted.total_branches,
                        "footprint_bytes": predicted.data_footprint_bytes,
                    })
        else:
            program = _load_program(target)
            report = lint_program(program, overrides,
                                  safety=args.static_profile,
                                  audit=args.audit)
        if args.static_profile:
            certificates.append(safety_certificate(program))
        reports.append(report)
        ctx.emit(report.render_text())

    failed = [report for report in reports
              if not report.ok or (args.strict and report.warnings())]
    audit_failed = any(
        diagnostic.code.startswith("DL")
        for report in failed for diagnostic in report.errors())
    codes = {}
    for report in reports:
        for code, count in report.codes().items():
            codes[code] = codes.get(code, 0) + count
    summary = {
        "ok": not failed,
        "programs": len(reports),
        "failed": len(failed),
        "errors": sum(len(report.errors()) for report in reports),
        "warnings": sum(len(report.warnings()) for report in reports),
        "codes": dict(sorted(codes.items())),
    }
    ctx.payload.update(schema=LINT_SCHEMA_VERSION,
                       reports=[report.to_dict() for report in reports],
                       summary=summary)
    if certificates:
        ctx.payload["certificates"] = certificates
    if predictions:
        ctx.payload["static_profile"] = predictions
    ctx.headline.update(programs=summary["programs"],
                        lint_errors=summary["errors"],
                        lint_warnings=summary["warnings"])
    ctx.lint = summary
    ctx.emit(f"\nlint {'FAIL' if failed else 'PASS'}: "
             f"{summary['programs']} program(s), "
             f"{summary['errors']} error(s), "
             f"{summary['warnings']} warning(s)")
    if not failed:
        return EXIT_OK
    return EXIT_AUDIT_FAILED if audit_failed else EXIT_LINT_FAILED


def _best_effort_manifest(target):
    """Whatever salvageable dict a partial/corrupt manifest holds."""
    path = target
    if os.path.isdir(path):
        path = os.path.join(path, "manifest.json")
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def _report_degraded(args, ctx, error):
    """Partial render for a run dir whose manifest is unusable.

    A killed run leaves a corrupt or missing manifest but usually a
    readable journal; render what exists instead of refusing.  Without
    any journal events there is nothing to show, so the historical
    ``EXIT_LOAD_FAILED`` contract holds.
    """
    target = args.target
    run_dir = target if os.path.isdir(target) else (
        os.path.dirname(target) or ".")
    merged = read_journal(run_dir)
    if not merged.events:
        raise CliError(EXIT_LOAD_FAILED, f"cannot read manifest: {error}")
    _LOG.warning("report.manifest_unreadable", target=target,
                 error=str(error))
    ctx.emit(f"warning: manifest unreadable ({error}); "
             "rendering journal instead")
    raw = _best_effort_manifest(target)
    if isinstance(raw.get("command"), str):
        line = f"run: {raw['command']}"
        if isinstance(raw.get("target"), str):
            line += f" {raw['target']}"
        ctx.emit(line + "  [from partial manifest]")
    begin, end = merged.run_info()
    if begin is not None:
        ctx.emit(f"run_begin: {begin.get('command')} "
                 f"{begin.get('target') or ''}".rstrip())
    if end is None:
        ctx.emit("no run_end event — run was killed or is still in flight")
    roots = build_span_tree(merged.events)
    ctx.emit("")
    ctx.emit(flame_text(roots))
    ctx.emit("")
    ctx.emit(critical_path_text(roots))
    ctx.payload.update(degraded=True, events=len(merged.events),
                       skipped=merged.skipped)
    return EXIT_OK


def cmd_report(args, ctx):
    """Render the manifest of a prior run directory (or manifest file)."""
    target = args.target
    if not os.path.exists(target):
        raise CliError(EXIT_BAD_TARGET,
                       f"no run directory or manifest at {target!r}")
    try:
        manifest = RunManifest.load(target)
    except (ValueError, OSError) as exc:
        return _report_degraded(args, ctx, exc)
    data = manifest.to_dict()
    ctx.payload = data
    prov = data.get("provenance") or {}
    ctx.emit("\n".join(filter(None, [
        f"run: {data['command']}"
        + (f" {data['target']}" if data.get("target") else ""),
        f"  schema:      v{data['schema_version']}",
        f"  seed:        {data['seed']}" if data.get("seed") is not None
        else None,
        f"  config hash: {data['config_hash']}" if data.get("config_hash")
        else None,
        f"  git rev:     {prov.get('git_rev')}" if prov.get("git_rev")
        else None,
        f"  python:      {prov.get('python')}",
        f"  sim backend: {prov.get('sim_backend')}" if prov.get("sim_backend")
        else None,
        f"  created:     {prov.get('created_at')}",
        f"  wall time:   {data['wall_seconds']:.3f} s",
    ])))
    if data.get("headline"):
        rows = [[key, value] for key, value in
                sorted(data["headline"].items())]
        ctx.emit("\nheadline:\n" + format_table(
            ["stat", "value"], rows, float_format="{:.4f}"))
    if data.get("phases"):
        rows = [[path, entry["count"], entry["wall_s"] * 1e3,
                 entry["cpu_s"] * 1e3]
                for path, entry in sorted(data["phases"].items())]
        ctx.emit("\nphases:\n" + format_table(
            ["phase", "count", "wall ms", "cpu ms"], rows,
            float_format="{:.2f}"))
    if data.get("sweep"):
        sweep = data["sweep"]
        rows = [[key, sweep[key]] for key in sorted(sweep)]
        ctx.emit("\nuarch sweep reuse:\n" + format_table(
            ["stat", "value"], rows, float_format="{:.4f}"))
    if data.get("lint"):
        lint = data["lint"]
        verdict = "PASS" if not lint.get("errors") else "FAIL"
        scope = (f"{lint['programs']} program(s), " if "programs" in lint
                 else "")
        ctx.emit(f"\nlint: {verdict} — {scope}"
                 f"{lint.get('errors', 0)} error(s), "
                 f"{lint.get('warnings', 0)} warning(s)")
        if lint.get("codes"):
            rows = [[code, count]
                    for code, count in sorted(lint["codes"].items())]
            ctx.emit(format_table(["code", "count"], rows))
    if data.get("certificate"):
        cert = data["certificate"]
        footprint = cert.get("footprint")
        bounded = (f"footprint [{footprint['lo']:#x}, {footprint['hi']:#x}) "
                   f"({footprint['bytes']} bytes)" if footprint
                   else "footprint unbounded")
        verdict = ("terminates" if cert.get("terminates")
                   else "termination unproven")
        ctx.emit(f"\nsafety certificate: {verdict}"
                 + (f" within {cert['instruction_bound']} instructions"
                    if cert.get("instruction_bound") else "")
                 + f"; {bounded}; {len(cert.get('loops', []))} loop(s) "
                   "analyzed")
    if data.get("metrics"):
        rows = []
        for name, entry in sorted(data["metrics"].items()):
            value = (f"n={entry['count']} mean={entry['mean']:.2f} "
                     f"max={entry['max']}"
                     if entry.get("type") == "histogram"
                     else entry.get("value"))
            if isinstance(value, float):
                value = f"{value:.4f}"  # seconds counters, rate gauges
            rows.append([name, entry.get("type"), value])
        ctx.emit("\nmetrics:\n" + format_table(
            ["metric", "type", "value"], rows))
    if data.get("profile"):
        ctx.emit("\n" + format_profile(data["profile"]))
    if getattr(args, "timeline", False):
        run_dir = target if os.path.isdir(target) else (
            os.path.dirname(target) or ".")
        merged = read_journal(run_dir)
        if merged.events:
            roots = build_span_tree(merged.events)
            ctx.emit("\n" + timeline_text(roots))
            ctx.emit("\n" + flame_text(roots))
        else:
            ctx.emit("\ntimeline: no journal in run dir "
                     "(re-run with --run-dir to record one)")
    return EXIT_OK


# ----------------------------------------------------------------------
def _journal_or_fail(run_dir):
    """Load a run dir's merged journal; distinct exits match report's."""
    if not os.path.isdir(run_dir):
        raise CliError(EXIT_BAD_TARGET, f"no run directory at {run_dir!r}")
    merged = read_journal(run_dir)
    if not merged.events:
        raise CliError(EXIT_LOAD_FAILED,
                       f"no journal events in {run_dir!r} — record one by "
                       "running a command with --run-dir")
    return merged


def cmd_trace(args, ctx):
    """Render a run journal: timeline, flame summary, critical path."""
    merged = _journal_or_fail(args.target)
    roots = build_span_tree(merged.events)
    begin, end = merged.run_info()
    header = [f"journal: {len(merged.events)} events from "
              f"{len(merged.files)} process(es)"]
    if merged.skipped:
        header.append(f"  skipped: {merged.skipped} torn/unreadable "
                      "line(s)")
    if begin is not None:
        header.append(f"  command: {begin.get('command')} "
                      f"{begin.get('target') or ''}".rstrip())
    if end is not None:
        header.append(f"  exit:    {end.get('exit_code')} after "
                      f"{end.get('wall_seconds', 0.0):.3f}s")
    else:
        header.append("  exit:    (no run_end — in flight or killed)")
    ctx.emit("\n".join(header))
    if args.view in ("timeline", "all"):
        ctx.emit("\n" + timeline_text(roots))
    if args.view in ("flame", "all"):
        ctx.emit("\n" + flame_text(roots, limit=args.limit))
    if args.view in ("critical", "all"):
        ctx.emit("\n" + critical_path_text(roots))
    ctx.payload.update(events=len(merged.events), pids=merged.pids(),
                       skipped=merged.skipped,
                       flame=flame_summary(roots, limit=args.limit))
    if args.chrome:
        written = export_chrome_trace(merged.events, args.chrome)
        ctx.emit(f"\nwrote {args.chrome} ({written} trace events) — "
                 "load in chrome://tracing or Perfetto")
        ctx.payload["chrome_trace"] = args.chrome
    return EXIT_OK


def _tail_snapshot(merged):
    """One live-status frame: run state, workers, progress, ETA."""
    lines = []
    begin, end = merged.run_info()
    last_ts = merged.events[-1]["ts"]
    if begin is not None:
        started = f"{begin.get('command')} {begin.get('target') or ''}"
        lines.append(f"run: {started.rstrip()}")
    if end is not None:
        lines.append(f"state: finished (exit {end.get('exit_code')}, "
                     f"{end.get('wall_seconds', 0.0):.3f}s)")
    else:
        age = last_ts - (begin["ts"] if begin else merged.events[0]["ts"])
        lines.append(f"state: running ({age:.1f}s, "
                     f"last event {time.strftime('%H:%M:%S', time.localtime(last_ts))})")
    announced, done = merged.task_counts()
    if announced:
        lines.append(f"tasks: {done}/{announced} complete")
    open_spans = merged.open_spans()
    for pid in sorted(open_spans):
        stack = open_spans[pid]
        chain = " > ".join(event["name"] for event in stack)
        busy = last_ts - stack[-1]["ts"]
        lines.append(f"pid {pid}: {chain} ({busy:.1f}s in current span)")
    for (pid, unit), event in sorted(merged.latest_progress().items(),
                                     key=lambda item: (item[0][0],
                                                       str(item[0][1]))):
        done_n = event.get("done", 0)
        total = event.get("total")
        line = f"pid {pid}: {done_n}"
        if total:
            line += f"/{total}"
        line += f" {unit or 'units'}"
        label = event.get("label")
        if label:
            line += f" [{label}]"
        start_ts = begin["ts"] if begin else merged.events[0]["ts"]
        elapsed = event["ts"] - start_ts
        if end is None and total and done_n and elapsed > 0:
            rate = done_n / elapsed
            eta = (total - done_n) / rate
            line += f" — ETA {eta:.1f}s"
        lines.append(line)
    if merged.skipped:
        lines.append(f"(skipped {merged.skipped} torn line(s))")
    return "\n".join(lines)


def _worker_time_split(worker):
    """`` (acquire 1.2s, timing 3.4s)`` from a worker summary dict, or
    empty for summaries written before those fields existed."""
    acquire = worker.get("sim_acquire_seconds")
    timing = worker.get("uarch_time_seconds")
    if acquire is None and timing is None:
        return ""
    return (f" (acquire {acquire or 0.0:.2f}s, "
            f"timing {timing or 0.0:.2f}s)")


def cmd_fleet(args, ctx):
    """Fleet-scale experiment matrices: run / resume / status / expand."""
    from repro import fleet as _fleet

    def _load_recipe_or_fail(path):
        if not os.path.exists(path):
            raise CliError(EXIT_BAD_TARGET, f"no recipe file at {path!r}")
        try:
            return _fleet.load_recipe(path)
        except _fleet.RecipeError as exc:
            raise CliError(EXIT_LOAD_FAILED,
                           f"bad recipe {path}: {exc}") from exc

    if args.action == "expand":
        recipe = _load_recipe_or_fail(args.target)
        cells = recipe.expand()
        ctx.table(["cell_id", "kernel", "subject", "seed", "config"],
                  [[cell.cell_id, cell.kernel, cell.subject, cell.seed,
                    cell.config.name] for cell in cells], key="cells")
        ctx.headline.update(recipe=recipe.name, cells=len(cells))
        ctx.payload.update(recipe=recipe.name,
                           recipe_digest=recipe.digest())
        return EXIT_OK

    if args.action == "status":
        try:
            status = _fleet.fleet_status(args.target)
        except _fleet.FleetError as exc:
            raise CliError(EXIT_BAD_TARGET, str(exc)) from exc
        ctx.payload.update(status)
        ctx.headline.update(cells=status["cells"],
                            completed=status["completed"])
        ctx.emit(f"recipe {status['recipe']} "
                 f"({status['recipe_digest']}) in {status['run_dir']}")
        ctx.emit(f"  {status['completed']}/{status['cells']} cells "
                 f"complete, {status['leased']} leased, "
                 f"{status['pending']} pending"
                 + (", matrix.json exported" if status["matrix"] else ""))
        for worker in status["workers"]:
            ctx.emit(f"  worker {worker.get('worker')}: "
                     f"{worker.get('executed')} executed "
                     f"({worker.get('stolen')} stolen) in "
                     f"{worker.get('wall_seconds')}s"
                     + _worker_time_split(worker))
        return EXIT_OK

    # run / resume
    if args.action == "run":
        recipe = _load_recipe_or_fail(args.target)
        run_dir = args.dir or f"fleet-{recipe.name}"
    else:
        recipe = None
        run_dir = args.target
        if not os.path.isdir(run_dir):
            raise CliError(EXIT_BAD_TARGET,
                           f"no fleet run directory at {run_dir!r}")
    try:
        summary = _fleet.run_fleet(run_dir, recipe, workers=args.workers,
                                   lease_ttl=args.lease_ttl,
                                   chaos=args.chaos_kill)
    except (_fleet.FleetError, _fleet.RecipeError) as exc:
        raise CliError(EXIT_ERROR, str(exc)) from exc
    ctx.payload["fleet"] = {key: value for key, value in summary.items()
                           if key != "worker_summaries"}
    ctx.headline.update(cells=summary["cells"],
                        completed=summary["completed"],
                        executed=summary["executed"],
                        workers=summary["workers"])
    ctx.emit(f"recipe {summary['recipe']} "
             f"({summary['recipe_digest']}): "
             f"{summary['completed']}/{summary['cells']} cells complete "
             f"({summary['executed']} executed, {summary['skipped']} "
             f"resumed as done) with {summary['workers']} worker(s) "
             f"in {summary['wall_seconds']:.2f}s")
    for worker in summary["worker_summaries"]:
        ctx.emit(f"  worker {worker['worker']}: {worker['executed']} "
                 f"executed ({worker['stolen']} stolen)"
                 + _worker_time_split(worker))
    if summary["complete"]:
        ctx.emit(f"matrix: {os.path.join(run_dir, 'matrix.json')}")
        return EXIT_OK
    ctx.emit(f"incomplete ({summary['dead_workers']} worker(s) died); "
             f"finish with: repro fleet resume {run_dir}")
    return EXIT_ERROR


def cmd_tail(args, ctx):
    """Live (or one-shot) status of a run from its journal."""
    if not args.follow:
        merged = _journal_or_fail(args.target)
        ctx.emit(_tail_snapshot(merged))
        ctx.payload.update(events=len(merged.events), pids=merged.pids())
        return EXIT_OK
    if not os.path.isdir(args.target):
        raise CliError(EXIT_BAD_TARGET,
                       f"no run directory at {args.target!r}")
    while True:
        merged = read_journal(args.target)
        try:
            if merged.events:
                print(_tail_snapshot(merged))
                if merged.run_info()[1] is not None:
                    return EXIT_OK
            else:
                print("waiting for journal events...")
            time.sleep(args.interval)
            print("---")
        except KeyboardInterrupt:
            return EXIT_OK
        except BrokenPipeError:
            _detach_broken_stdout()
            return EXIT_OK


# ----------------------------------------------------------------------
def _add_global_flags(parser, suppress):
    default = argparse.SUPPRESS if suppress else False
    parser.add_argument("-v", "--verbose", action="store_true",
                        default=default,
                        help="debug-level structured logs")
    parser.add_argument("-q", "--quiet", action="store_true",
                        default=default,
                        help="warnings only; disables telemetry entirely")
    parser.add_argument("--json", action="store_true", default=default,
                        help="emit one JSON object (incl. run manifest)")
    parser.add_argument("--run-dir",
                        default=argparse.SUPPRESS if suppress else None,
                        help="write manifest.json into this directory")
    parser.add_argument("--sim-backend", choices=BACKENDS,
                        default=argparse.SUPPRESS if suppress else None,
                        help="functional-simulator backend (default: "
                             "REPRO_SIM_BACKEND env var, else auto)")
    parser.add_argument("--profile", action="store_true", default=default,
                        help="sample the run and attribute hot code to "
                             "spans (manifest 'profile' block)")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Performance cloning (IISWC 2006 reproduction)")
    _add_global_flags(parser, suppress=False)
    # The same flags are accepted after the subcommand; SUPPRESS keeps an
    # omitted sub-flag from clobbering the top-level value.
    parent = argparse.ArgumentParser(add_help=False)
    _add_global_flags(parent, suppress=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", parents=[parent],
                   help="show the workload corpus")

    def common(p, with_output_dir=False, with_jobs=False):
        p.add_argument("target",
                       help="workload name, .s file, or profile .json")
        p.add_argument("--instructions", type=int, default=120_000,
                       help="clone/synthetic dynamic instruction target")
        p.add_argument("--seed", type=int, default=42)
        if with_output_dir:
            p.add_argument("-o", "--output-dir", default="clone_out")
        if with_jobs:
            p.add_argument("-j", "--jobs", type=int, default=None,
                           help="worker processes (default: REPRO_JOBS "
                                "env var, else serial)")

    p = sub.add_parser("profile", parents=[parent],
                       help="save a JSON workload profile")
    p.add_argument("target")
    p.add_argument("-o", "--output", default=None)

    p = sub.add_parser("clone", parents=[parent],
                       help="synthesize a benchmark clone")
    common(p, with_output_dir=True)
    p.add_argument("--footprint-scale", type=float, default=1.0)

    common(sub.add_parser("compare", parents=[parent],
                          help="real vs clone on the base machine"),
           with_jobs=True)
    common(sub.add_parser("sweep", parents=[parent],
                          help="28-config cache design study"),
           with_jobs=True)
    common(sub.add_parser("estimate", parents=[parent],
                          help="statistical-simulation IPC estimate"))

    p = sub.add_parser("lint", parents=[parent],
                       help="static verification / clone conformance")
    p.add_argument("target", nargs="?", default=None,
                   help="workload name, .s file, or profile .json")
    p.add_argument("--all", action="store_true",
                   help="lint every workload in the corpus")
    p.add_argument("--clone", action="store_true",
                   help="synthesize the target's clone and lint that "
                        "(adds profile-conformance passes)")
    p.add_argument("--strict", action="store_true",
                   help="warnings also fail (exit 4)")
    p.add_argument("--static-profile", action="store_true",
                   help="run the abstract-interpretation layer: safety "
                        "proofs (SR11x) and, with --clone, "
                        "simulation-free profile prediction (CF21x); "
                        "adds safety certificates to --json output")
    p.add_argument("--audit", action="store_true",
                   help="run the disclosure audit (DL3xx); exit 5 on "
                        "audit errors")
    p.add_argument("--severity", action="append", metavar="CODE=LEVEL",
                   help="override one diagnostic's severity (repeatable; "
                        "e.g. --severity CF202=error)")
    p.add_argument("--instructions", type=int, default=120_000,
                   help="clone dynamic instruction target (with --clone)")
    p.add_argument("--seed", type=int, default=42)

    p = sub.add_parser("report", parents=[parent],
                       help="render a prior run's manifest/metrics")
    p.add_argument("target", help="run directory or manifest.json path")
    p.add_argument("--timeline", action="store_true",
                   help="append journal timeline + flame views")

    p = sub.add_parser("trace", parents=[parent],
                       help="render a run's event journal "
                            "(timeline/flame/critical path)")
    p.add_argument("target", help="run directory with journal-*.jsonl")
    p.add_argument("--view", choices=("timeline", "flame", "critical",
                                      "all"), default="all")
    p.add_argument("--limit", type=int, default=12,
                   help="max flame-summary rows")
    p.add_argument("--chrome", default=None, metavar="PATH",
                   help="also export Chrome trace-event JSON here")

    p = sub.add_parser("tail", parents=[parent],
                       help="status of an in-flight run from its journal")
    p.add_argument("target", help="run directory with journal-*.jsonl")
    p.add_argument("-f", "--follow", action="store_true",
                   help="keep polling until the run ends")
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll interval in seconds (with --follow)")

    p = sub.add_parser("fleet", parents=[parent],
                       help="fleet-scale experiment matrices "
                            "(work-stealing workers, resumable)")
    p.add_argument("action", choices=("run", "resume", "status", "expand"),
                   help="run a recipe, resume/inspect a run dir, or "
                        "preview a recipe's cell expansion")
    p.add_argument("target",
                   help="recipe .json (run/expand) or run directory "
                        "(resume/status)")
    p.add_argument("--dir", default=None, metavar="RUN_DIR",
                   help="run directory for `run` "
                        "(default: fleet-<recipe name>)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker process count (default 1)")
    p.add_argument("--lease-ttl", type=float, default=None,
                   help="seconds before an unrefreshed cell lease is "
                        "considered abandoned")
    p.add_argument("--chaos-kill", default=None, metavar="W:N",
                   help="fault injection for tests/CI: worker W SIGKILLs "
                        "itself mid-cell after executing N cells")
    return parser


_HANDLERS = {
    "list": cmd_list, "profile": cmd_profile, "clone": cmd_clone,
    "compare": cmd_compare, "sweep": cmd_sweep, "estimate": cmd_estimate,
    "lint": cmd_lint, "report": cmd_report, "trace": cmd_trace,
    "tail": cmd_tail, "fleet": cmd_fleet,
}

#: Commands that *read* run dirs: they never journal, collect a
#: manifest, or overwrite what they are inspecting.
_READONLY_COMMANDS = ("report", "trace", "tail")


def main(argv=None):
    args = build_parser().parse_args(argv)
    if getattr(args, "sim_backend", None):
        # Exported (not just stored) so exec's worker processes and any
        # library code resolving the backend see the same selection.
        os.environ["REPRO_SIM_BACKEND"] = args.sim_backend
    if args.quiet:
        configure_logging(level=WARNING)
        set_telemetry_enabled(False)
    else:
        if args.verbose:
            configure_logging(level=DEBUG)
        set_telemetry_enabled(True)
    reset_telemetry()
    reset_sweep_stats()
    default_store().reset_counters()

    # Runs that persist a run dir also record an event journal there;
    # read-only commands must never clobber the journal they inspect.
    journaling = bool(args.run_dir and not args.quiet
                      and args.command not in _READONLY_COMMANDS)
    if journaling:
        configure_journal(args.run_dir, fresh=True)
        emit_event("run_begin", command=args.command,
                   target=getattr(args, "target", None),
                   jobs=getattr(args, "jobs", None),
                   argv=list(argv) if argv is not None else sys.argv[1:])
    profiler = None
    if getattr(args, "profile", False) and not args.quiet:
        profiler = SamplingProfiler().start()

    ctx = RunContext(args)
    code = None
    failed = False
    wall_start = time.perf_counter()
    root_span = _trace.begin_span(f"cli.{args.command}",
                                  {"command": args.command})
    try:
        try:
            code = _HANDLERS[args.command](args, ctx)
        except CliError as exc:
            _LOG.error("cli.error", command=args.command, message=str(exc))
            if ctx.json_mode:
                print(json.dumps({"command": args.command,
                                  "error": str(exc),
                                  "exit_code": exc.code}))
            code, failed = exc.code, True
        except SimulationError as exc:
            _LOG.error("cli.simulation_error", command=args.command,
                       message=str(exc), pc=exc.pc,
                       instructions=exc.instructions, block=exc.block)
            if ctx.json_mode:
                print(json.dumps({"command": args.command,
                                  "error": str(exc),
                                  "exit_code": EXIT_ERROR}))
            code, failed = EXIT_ERROR, True
        except LintGateError as exc:
            _LOG.error("cli.lint_gate", command=args.command,
                       codes=exc.report.codes())
            if ctx.json_mode:
                print(json.dumps({"command": args.command,
                                  "error": "post-synthesis lint gate "
                                           "failed",
                                  "lint": exc.report.to_dict(),
                                  "exit_code": EXIT_LINT_FAILED}))
            else:
                print(exc.report.render_text(), file=sys.stderr)
            code, failed = EXIT_LINT_FAILED, True
    finally:
        wall = time.perf_counter() - wall_start
        _trace.end_span(root_span, wall)
        if profiler is not None:
            profiler.stop()
        if journaling:
            emit_metric_deltas()
            emit_event("run_end",
                       exit_code=EXIT_ERROR if code is None else code,
                       wall_seconds=round(wall, 6))
            configure_journal(None)
    profile_summary = None
    if profiler is not None:
        profile_summary = profiler.summary()
        if not ctx.json_mode and not failed:
            ctx.emit("\n" + format_profile(profile_summary))
    if failed:
        return code

    manifest = None
    # Manifest collection (incl. a git-rev subprocess) only happens when
    # something will consume it, so plain/--quiet runs pay nothing.
    if (args.command not in _READONLY_COMMANDS
            and (ctx.json_mode or args.run_dir)):
        manifest = RunManifest.collect(
            command=args.command, target=getattr(args, "target", None),
            seed=getattr(args, "seed", None), config=ctx.config,
            wall_seconds=wall, headline=ctx.headline, lint=ctx.lint,
            profile=profile_summary, certificate=ctx.certificate)
        if args.run_dir:
            path = manifest.save(args.run_dir)
            _LOG.info("cli.manifest", path=path)

    try:
        if ctx.json_mode:
            output = dict(ctx.payload)
            output.setdefault("command", args.command)
            if manifest is not None:
                output["manifest"] = manifest.to_dict()
            print(json.dumps(output, indent=2, default=str))
        else:
            for text in ctx.lines:
                print(text)
    except BrokenPipeError:
        _detach_broken_stdout()
    return code


def _detach_broken_stdout():
    """Downstream pager/head closed the pipe; not our error.  Point
    stdout at /dev/null so interpreter shutdown doesn't raise again."""
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())


if __name__ == "__main__":
    sys.exit(main())
