"""Synthetic-trace statistical simulation from a WorkloadProfile.

The generator mirrors the clone synthesizer's sampling (same SFG walk,
same stride streams, same branch patterns) but emits a *trace* — numpy
arrays of (pc, address, taken) over a reconstructed pseudo-program —
instead of executable code.  The trace feeds the ordinary
:class:`repro.uarch.PipelineModel`, so a profile alone yields IPC/power
estimates in milliseconds, the statistical-simulation use case of
culling a large design space early (paper Section 2).

Approximations relative to the clone (documented, deliberate):

* register dependences come from a static round-robin assignment inside
  each reconstructed block, so the dependency-distance distribution is
  honoured only through block structure, not re-sampled per instance;
* the trace is *not* executable — there is no architected state.
"""

import random

import numpy as np

from repro.core.branch_model import RNG_SEED, pattern_for, xorshift32
from repro.core.profile import bucket_representative
from repro.core.sfg import StatisticalFlowGraph
from repro.core.synthesizer import _CLASS_LABELS, _interleave, _sample_bucket
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.sim.trace import DynamicTrace

#: Opcodes used to reconstruct instructions per class.
_OPCODE_OF_CLASS = {
    "ialu": "add", "imul": "mul", "idiv": "div",
    "falu": "fadd", "fmul": "fmul", "fdiv": "fdiv",
    "load": "lw", "store": "sw",
}

_INT_POOL = list(range(8, 24))
_FP_POOL = [32 + n for n in range(8, 24)]


class _StreamState:
    """Per-static-memop stride walker for synthetic addresses."""

    __slots__ = ("base", "stride", "length", "position")

    def __init__(self, base, stride, length):
        self.base = base
        self.stride = stride
        self.length = max(2, int(length))
        self.position = 0

    def next_address(self):
        address = self.base + self.stride * self.position
        self.position += 1
        if self.position >= self.length:
            self.position = 0
        return address


class StatisticalSimulator:
    """Builds synthetic traces from a profile and times them."""

    def __init__(self, profile, seed=42):
        self.profile = profile
        self.seed = seed
        self._program = None
        self._block_ranges = None
        self._streams = None
        self._patterns = None
        self._build_program()

    # ------------------------------------------------------------------
    def _build_program(self):
        """Reconstruct a pseudo-program: one block per SFG node."""
        rng = random.Random(self.seed)
        profile = self.profile
        instructions = []
        block_ranges = {}
        streams = {}
        patterns = {}
        int_cursor = 0
        fp_cursor = 0
        next_base = 0x100000

        for bid in sorted(profile.blocks):
            stats = profile.blocks[bid]
            hist = profile.global_dep_hist
            start = len(instructions)
            counts = {}
            for iclass, count in enumerate(stats.mix):
                label = _CLASS_LABELS.get(iclass)
                if label and count:
                    counts[label] = counts.get(label, 0) + count
            loads = [pc for pc in stats.mem_pcs
                     if not profile.mem_ops.get(pc)
                     or not profile.mem_ops[pc].is_store]
            stores = [pc for pc in stats.mem_pcs
                      if profile.mem_ops.get(pc)
                      and profile.mem_ops[pc].is_store]
            counts.pop("load", None)
            counts.pop("store", None)
            if loads:
                counts["load"] = len(loads)
            if stores:
                counts["store"] = len(stores)

            load_iter, store_iter = iter(loads), iter(stores)
            for label in _interleave(counts) if counts else []:
                fp_class = label in ("falu", "fmul", "fdiv")
                pool = _FP_POOL if fp_class else _INT_POOL
                cursor = fp_cursor if fp_class else int_cursor
                dest = pool[cursor % len(pool)]
                distance = bucket_representative(_sample_bucket(hist, rng))
                src = pool[(cursor - distance) % len(pool)]
                src2 = pool[(cursor - 1) % len(pool)]
                if label == "load":
                    pc = next(load_iter)
                    instructions.append(Instruction(
                        "lw", rd=dest, rs1=src, imm=0))
                    streams[len(instructions) - 1] = self._stream_for(
                        pc, next_base)
                    # Skewed spacing: a power-of-two step would alias
                    # every stream onto one set of typical caches.
                    next_base += 0x4000 + 0x68
                elif label == "store":
                    pc = next(store_iter)
                    instructions.append(Instruction(
                        "sw", rs2=src, rs1=src2, imm=0))
                    streams[len(instructions) - 1] = self._stream_for(
                        pc, next_base)
                    next_base += 0x4000 + 0x68
                else:
                    opcode = _OPCODE_OF_CLASS[label]
                    instructions.append(Instruction(
                        opcode, rd=dest, rs1=src, rs2=src2))
                if fp_class:
                    fp_cursor += 1
                else:
                    int_cursor += 1
            if stats.branch_pc >= 0:
                branch = profile.branches.get(stats.branch_pc)
                target = start  # any stable target; direction is sampled
                instructions.append(Instruction(
                    "bne", rs1=_INT_POOL[int_cursor % len(_INT_POOL)],
                    rs2=0, target=target))
                if branch is not None:
                    patterns[bid] = pattern_for(branch.taken_rate,
                                                branch.transition_rate,
                                                random_shift=bid)
                else:
                    patterns[bid] = pattern_for(1.0, 0.0)
            block_ranges[bid] = (start, len(instructions))

        self._program = Program(instructions,
                                name=f"{profile.name}.statsim")
        self._block_ranges = block_ranges
        self._streams = streams
        self._patterns = patterns

    def _stream_for(self, pc, base):
        stats = self.profile.mem_ops.get(pc)
        if stats is None:
            return _StreamState(base, 4, 16)
        stride = stats.dominant_stride
        if stride == 0:
            return _StreamState(base, 0, 2)
        length = max(2.0, min(stats.footprint_bytes / max(1, abs(stride)),
                              stats.mean_stream_length * 4))
        return _StreamState(base if stride > 0
                            else base + abs(stride) * int(length),
                            stride, length)

    # ------------------------------------------------------------------
    def synthesize_trace(self, n_instructions=100_000):
        """Sample a synthetic trace of ~``n_instructions``."""
        rng = random.Random(self.seed + 1)
        profile = self.profile
        sfg = StatisticalFlowGraph(profile)
        pcs, addrs, takens = [], [], []
        program = self._program
        rng_state = RNG_SEED
        executions = {}

        current = sfg.sample_start(rng)
        while len(pcs) < n_instructions and current is not None:
            start, end = self._block_ranges[current]
            for index in range(start, end):
                instr = program.instructions[index]
                pcs.append(index)
                if instr.is_mem:
                    addrs.append(self._streams[index].next_address())
                else:
                    addrs.append(-1)
                if instr.is_cond_branch:
                    pattern = self._patterns.get(current)
                    count = executions.get(current, 0)
                    executions[current] = count + 1
                    if pattern is None:
                        takens.append(1)
                    elif pattern.kind == "random":
                        takens.append(pattern.direction(
                            count, rng_state=rng_state))
                    else:
                        takens.append(pattern.direction(count))
                else:
                    takens.append(-1)
            rng_state = xorshift32(rng_state)
            nxt = sfg.sample_next(current, rng)
            current = nxt if nxt is not None else sfg.sample_start(rng)
        return DynamicTrace(program,
                            np.array(pcs, dtype=np.int32),
                            np.array(addrs, dtype=np.int64),
                            np.array(takens, dtype=np.int8))

    def estimate(self, config, n_instructions=60_000):
        """IPC (and the full PipelineResult) for one configuration."""
        from repro.uarch.pipeline import simulate_pipeline
        trace = self.synthesize_trace(n_instructions)
        return simulate_pipeline(trace, config)


def synthesize_trace(profile, n_instructions=100_000, seed=42):
    """One-shot synthetic trace from a profile."""
    return StatisticalSimulator(profile, seed=seed).synthesize_trace(
        n_instructions)


def statistical_ipc_estimate(profile, config, n_instructions=60_000,
                             seed=42):
    """One-shot IPC estimate from a profile (no program, no execution)."""
    return StatisticalSimulator(profile, seed=seed).estimate(
        config, n_instructions).ipc
