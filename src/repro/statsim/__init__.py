"""Statistical simulation (the paper's Section 2 lineage).

Before performance *cloning*, the same profiles drove statistical
simulation (Oskin et al., Eeckhout et al., Nussbaum & Smith): synthesize
a short representative *trace* directly from the statistical profile —
no executable program — and time it on a performance model.  The paper
positions cloning as the dissemination-grade successor; this package
provides the predecessor both for comparison and because it remains the
fastest way to cull a design space from a profile alone.
"""

from repro.statsim.simulator import (
    StatisticalSimulator,
    statistical_ipc_estimate,
    synthesize_trace,
)

__all__ = [
    "StatisticalSimulator",
    "statistical_ipc_estimate",
    "synthesize_trace",
]
