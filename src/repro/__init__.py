"""Performance Cloning — an IISWC 2006 reproduction.

Clone the performance behaviour of a (proprietary) application into a
synthetic benchmark built purely from microarchitecture-independent
workload attributes.

Quickstart::

    from repro import build_workload, clone_program, run_program
    from repro.uarch import BASE_CONFIG, simulate_pipeline

    app = build_workload("qsort")          # the "proprietary" program
    result = clone_program(app)            # profile + synthesize
    real_trace = run_program(app)
    clone_trace = run_program(result.program)
    print(simulate_pipeline(real_trace, BASE_CONFIG).ipc,
          simulate_pipeline(clone_trace, BASE_CONFIG).ipc)
"""

from repro.core import (
    CloneSynthesizer,
    MicroarchDependentSynthesizer,
    StatisticalFlowGraph,
    SynthesisParameters,
    WorkloadProfile,
    WorkloadProfiler,
    clone_program,
    emit_c_source,
    make_clone,
    profile_program,
    profile_trace,
)
from repro.isa import AssemblerError, Instruction, Program, assemble, disassemble
from repro.sim import DynamicTrace, FunctionalSimulator, run_program
from repro.workloads import all_workloads, build_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AssemblerError",
    "CloneSynthesizer",
    "DynamicTrace",
    "FunctionalSimulator",
    "Instruction",
    "MicroarchDependentSynthesizer",
    "Program",
    "StatisticalFlowGraph",
    "SynthesisParameters",
    "WorkloadProfile",
    "WorkloadProfiler",
    "all_workloads",
    "assemble",
    "build_workload",
    "clone_program",
    "disassemble",
    "emit_c_source",
    "make_clone",
    "profile_program",
    "profile_trace",
    "run_program",
    "workload_names",
]
