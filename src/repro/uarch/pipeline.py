"""Trace-driven superscalar timing model (the ``sim-outorder`` analog).

A dataflow-style cycle model: every dynamic instruction gets fetch,
dispatch, issue, complete, and commit times subject to

* fetch bandwidth (``width``/cycle), I-cache latency, taken-branch fetch
  breaks, and branch-misprediction redirects;
* a decoupling fetch queue and dispatch bandwidth (``width``/cycle);
* reorder-buffer and load/store-queue occupancy;
* register dataflow (producer completion times) and functional-unit
  structural hazards;
* in-order commit at ``width``/cycle; optional in-order *issue*
  (design change 5).

Absolute cycle counts are not meant to match the authors' SimpleScalar
runs; relative behaviour across configurations — which is what the paper
evaluates — is.
"""

import time
from dataclasses import dataclass, field

import numpy as np

from repro.isa.columns import columns_for
from repro.isa.instructions import IClass
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.timing import span
from repro.uarch.branch_predictors import make_predictor
from repro.uarch.cache import CacheHierarchy
from repro.uarch.config import BASE_CONFIG

_LOG = get_logger("repro.pipeline")

#: Cycles between fetch and dispatch (decode depth).
DECODE_DEPTH = 2


@dataclass
class PipelineResult:
    """Timing outcome plus the activity counts the power model consumes."""

    config: object
    instructions: int
    cycles: int
    class_counts: list = field(default_factory=list)
    icache_accesses: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    branch_lookups: int = 0
    branch_mispredictions: int = 0
    # Occupancy/stall telemetry: how often dispatch waited on a full
    # ROB/LSQ, fetch waited on the decoupling queue, and how many cycles
    # fetch sat redirected after mispredictions.  Collected only while
    # the repro.obs metrics registry is enabled; zero otherwise.
    rob_stalls: int = 0
    lsq_stalls: int = 0
    fetch_queue_stalls: int = 0
    redirect_cycles: int = 0
    #: Host wall-clock seconds spent inside the timing loop.
    wall_seconds: float = 0.0

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def simulated_mips(self):
        """Host throughput: simulated instructions per wall microsecond."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds / 1e6

    @property
    def branch_misprediction_rate(self):
        if self.branch_lookups == 0:
            return 0.0
        return self.branch_mispredictions / self.branch_lookups

    @property
    def dcache_miss_rate(self):
        if self.dcache_accesses == 0:
            return 0.0
        return self.dcache_misses / self.dcache_accesses


class _BandwidthPort:
    """Allocates at most ``width`` events per cycle to monotonic requests."""

    __slots__ = ("width", "cycle", "used")

    def __init__(self, width):
        self.width = width
        self.cycle = -1
        self.used = 0

    def allocate(self, earliest):
        if earliest > self.cycle:
            self.cycle = earliest
            self.used = 1
        elif self.used < self.width:
            self.used += 1
        else:
            self.cycle += 1
            self.used = 1
        return self.cycle


class PipelineModel:
    """One configured machine; ``run(trace)`` produces a PipelineResult."""

    def __init__(self, config=BASE_CONFIG):
        self.config = config

    # ------------------------------------------------------------------
    def run(self, trace, max_instructions=None):
        """Cycle-time the trace; the optimized production loop.

        Behaviour is defined by :meth:`run_reference` (the original
        straight-from-the-description loop, kept as the executable
        spec); this version produces identical results and is what
        every caller uses.  The differences are mechanical hot-loop
        work: the per-pc ``static`` tuples are flattened into parallel
        tuples indexed once each, `config.*` attributes and the
        ``fu_pools[pool_of_class[iclass]]`` double dict lookup are
        hoisted into locals / a per-pc pool table, both
        :class:`_BandwidthPort` allocations are inlined as integer
        locals, the single-unit functional-unit case skips the
        min-scan, and the per-class instruction histogram comes from
        one vectorized ``bincount`` instead of a per-instruction
        increment.
        """
        config = self.config
        program = trace.program
        hierarchy = CacheHierarchy(
            config.l1i, config.l1d, config.l2,
            l1_latency=config.l1_latency, l2_latency=config.l2_latency,
            memory_latency=config.memory_latency)
        predictor = make_predictor(config.predictor,
                                   **config.predictor_kwargs)

        latency_of_class = (
            config.latency_ialu, config.latency_imul, config.latency_idiv,
            config.latency_falu, config.latency_fmul, config.latency_fdiv,
            0, 1, config.latency_ialu, config.latency_ialu,
            config.latency_ialu)
        line_shift = config.l1i.line.bit_length() - 1

        fu_pools = {
            "ialu": [0] * config.n_int_alu,
            "imul": [0] * config.n_int_mul,
            "falu": [0] * config.n_fp_alu,
            "fmul": [0] * config.n_fp_mul,
            "mem": [0] * config.n_mem_ports,
        }
        # Parallel per-pc decode tables.  Static fields come straight
        # off the shared columnar program view (built once per program
        # per process); only the genuinely config-dependent tables —
        # per-class latencies, I-cache line ids, and the bindings to
        # this run's mutable FU pool lists — are derived per call, from
        # the columns, never from Instruction objects.
        columns = columns_for(program)
        st_iclass = columns.iclass_list
        st_dest = columns.dest_list
        st_srcs = columns.srcs_list
        st_latency = [latency_of_class[klass] for klass in st_iclass]
        st_line = (columns.pc_addresses >> line_shift).tolist()
        pool_lists = (fu_pools["ialu"], fu_pools["imul"], fu_pools["falu"],
                      fu_pools["fmul"], fu_pools["mem"])
        st_pool = [pool_lists[pool] for pool in columns.pool_list]
        st_multi = [len(pool) > 1 for pool in st_pool]
        st_unpip = columns.derived.get("unpipelined")
        if st_unpip is None:
            st_unpip = columns.derived["unpipelined"] = [
                klass in (int(IClass.IDIV), int(IClass.FDIV))
                for klass in st_iclass]
        st_is_load = columns.derived.get("is_load_list")
        if st_is_load is None:
            st_is_load = columns.derived["is_load_list"] = \
                columns.is_load.tolist()
        st_is_mem = columns.derived.get("is_mem_list")
        if st_is_mem is None:
            st_is_mem = columns.derived["is_mem_list"] = \
                columns.is_mem.tolist()
        st_is_jump = columns.derived.get("is_jump_list")
        if st_is_jump is None:
            st_is_jump = columns.derived["is_jump_list"] = \
                columns.is_jump.tolist()

        pcs = trace.pcs.tolist()
        addrs = trace.addrs.tolist()
        takens = trace.taken.tolist()
        total = len(pcs)
        if max_instructions is not None and total > max_instructions:
            total = max_instructions

        class_counts = [0] * IClass.COUNT
        if total:
            histogram = np.bincount(columns.iclass[trace.pcs[:total]],
                                    minlength=IClass.COUNT)
            class_counts = [int(count) for count in histogram]

        reg_ready = [0] * 64
        rob_ring = [0] * config.rob_size
        lsq_ring = [0] * config.lsq_size
        fetchq_ring = [0] * config.fetch_queue

        # Hoisted configuration / hierarchy state.
        width = config.width
        in_order = config.in_order
        rob_size = config.rob_size
        lsq_size = config.lsq_size
        fetch_queue = config.fetch_queue
        l1_latency = config.l1_latency
        mispredict_penalty = config.mispredict_penalty
        access_instruction = hierarchy.access_instruction
        access_data = hierarchy.access_data
        predictor_update = predictor.update
        predictor_predict = predictor.predict

        fetch_cycle = 0
        fetch_used = 0
        fetch_break = False
        fetch_stall_until = 0
        last_line = -1
        last_issue = 0
        last_commit = 0
        mem_index = 0
        lsq_slot = 0
        rob_stalls = 0
        lsq_stalls = 0
        fetch_queue_stalls = 0
        redirect_cycles = 0
        # Both bandwidth ports inlined as (cycle, used) integer locals;
        # semantics identical to _BandwidthPort.allocate.
        dispatch_cycle = -1
        dispatch_used = 0
        commit_cycle = -1
        commit_used = 0
        telemetry = REGISTRY.enabled
        wall_start = time.perf_counter()

        for i in range(total):
            pc = pcs[i]

            # ----- fetch ------------------------------------------------
            if fetch_stall_until > fetch_cycle:
                if telemetry:
                    redirect_cycles += fetch_stall_until - fetch_cycle
                fetch_cycle = fetch_stall_until
                fetch_used = 0
                fetch_break = False
            line = st_line[pc]
            if line != last_line:
                icache_latency = access_instruction(line << line_shift)
                last_line = line
                if icache_latency > l1_latency:
                    fetch_cycle += icache_latency - l1_latency
                    fetch_used = 0
                    fetch_break = False
            if fetch_break or fetch_used >= width:
                fetch_cycle += 1
                fetch_used = 0
                fetch_break = False
            fetch_time = fetch_cycle
            fetch_used += 1

            queue_slot = i % fetch_queue
            if fetch_time < fetchq_ring[queue_slot]:
                fetch_time = fetchq_ring[queue_slot]
                fetch_cycle = fetch_time
                fetch_used = 1
                if telemetry:
                    fetch_queue_stalls += 1

            # ----- dispatch (ROB / LSQ allocation) ----------------------
            dispatch_earliest = fetch_time + DECODE_DEPTH
            rob_slot = i % rob_size
            if rob_ring[rob_slot] > dispatch_earliest:
                dispatch_earliest = rob_ring[rob_slot]
                if telemetry:
                    rob_stalls += 1
            is_mem = st_is_mem[pc]
            if is_mem:
                lsq_slot = mem_index % lsq_size
                if lsq_ring[lsq_slot] > dispatch_earliest:
                    dispatch_earliest = lsq_ring[lsq_slot]
                    if telemetry:
                        lsq_stalls += 1
            if dispatch_earliest > dispatch_cycle:
                dispatch_cycle = dispatch_earliest
                dispatch_used = 1
            elif dispatch_used < width:
                dispatch_used += 1
            else:
                dispatch_cycle += 1
                dispatch_used = 1
            dispatch_time = dispatch_cycle
            fetchq_ring[queue_slot] = dispatch_time

            # ----- issue -------------------------------------------------
            ready = dispatch_time + 1
            for src in st_srcs[pc]:
                src_ready = reg_ready[src]
                if src_ready > ready:
                    ready = src_ready
            if in_order and ready < last_issue:
                ready = last_issue
            pool = st_pool[pc]
            unit = 0
            unit_free = pool[0]
            if st_multi[pc]:
                for index_unit in range(1, len(pool)):
                    if pool[index_unit] < unit_free:
                        unit_free = pool[index_unit]
                        unit = index_unit
            issue_time = ready if ready > unit_free else unit_free
            if in_order:
                last_issue = issue_time

            # ----- execute ----------------------------------------------
            if is_mem:
                if st_is_load[pc]:
                    complete = issue_time + access_data(addrs[i])
                else:
                    access_data(addrs[i])
                    complete = issue_time + 1
            else:
                complete = issue_time + st_latency[pc]
            pool[unit] = complete if st_unpip[pc] else issue_time + 1
            dest = st_dest[pc]
            if dest >= 0:
                reg_ready[dest] = complete

            # ----- control flow ------------------------------------------
            taken = takens[i]
            if taken >= 0:
                was_taken = taken == 1
                mispredicted = predictor_predict(pc) != was_taken
                predictor_update(pc, was_taken)
                if mispredicted:
                    redirect = complete + mispredict_penalty
                    if redirect > fetch_stall_until:
                        fetch_stall_until = redirect
                elif was_taken:
                    fetch_break = True
            elif st_is_jump[pc]:
                fetch_break = True

            # ----- commit -------------------------------------------------
            commit_earliest = complete + 1
            if commit_earliest < last_commit:
                commit_earliest = last_commit
            if commit_earliest > commit_cycle:
                commit_cycle = commit_earliest
                commit_used = 1
            elif commit_used < width:
                commit_used += 1
            else:
                commit_cycle += 1
                commit_used = 1
            commit_time = commit_cycle
            last_commit = commit_time
            rob_ring[rob_slot] = commit_time
            if is_mem:
                lsq_ring[lsq_slot] = commit_time
                mem_index += 1

        cycles = last_commit if total else 0
        wall = time.perf_counter() - wall_start
        result = PipelineResult(
            config=config,
            instructions=total,
            cycles=max(1, cycles),
            class_counts=class_counts,
            icache_accesses=hierarchy.l1i.stats.accesses,
            icache_misses=hierarchy.l1i.stats.misses,
            dcache_accesses=hierarchy.l1d.stats.accesses,
            dcache_misses=hierarchy.l1d.stats.misses,
            l2_accesses=hierarchy.l2.stats.accesses if hierarchy.l2 else 0,
            l2_misses=hierarchy.l2.stats.misses if hierarchy.l2 else 0,
            branch_lookups=predictor.stats.lookups,
            branch_mispredictions=predictor.stats.mispredictions,
            rob_stalls=rob_stalls,
            lsq_stalls=lsq_stalls,
            fetch_queue_stalls=fetch_queue_stalls,
            redirect_cycles=redirect_cycles,
            wall_seconds=wall,
        )
        if REGISTRY.enabled:
            REGISTRY.counter("pipeline.instructions").inc(total)
            REGISTRY.counter("pipeline.runs").inc()
            REGISTRY.gauge("pipeline.sim_mips").set(result.simulated_mips)
            _LOG.debug("pipeline.run", config=config.name,
                       instructions=total, cycles=result.cycles,
                       ipc=result.ipc, sim_mips=result.simulated_mips,
                       rob_stalls=rob_stalls, lsq_stalls=lsq_stalls)
        return result

    # ------------------------------------------------------------------
    def run_reference(self, trace, max_instructions=None):
        """The original per-instruction loop, kept as the executable
        specification of :meth:`run` for differential tests and
        benchmark baselines."""
        config = self.config
        program = trace.program
        hierarchy = CacheHierarchy(
            config.l1i, config.l1d, config.l2,
            l1_latency=config.l1_latency, l2_latency=config.l2_latency,
            memory_latency=config.memory_latency)
        predictor = make_predictor(config.predictor,
                                   **config.predictor_kwargs)

        # Static per-pc decode tables.
        latency_of_class = (
            config.latency_ialu, config.latency_imul, config.latency_idiv,
            config.latency_falu, config.latency_fmul, config.latency_fdiv,
            0, 1, config.latency_ialu, config.latency_ialu,
            config.latency_ialu)
        line_shift = config.l1i.line.bit_length() - 1
        static = []
        for index, instr in enumerate(program.instructions):
            static.append((
                instr.iclass,
                instr.rd if instr.rd is not None else -1,
                instr.srcs,
                latency_of_class[instr.iclass],
                program.pc_address(index) >> line_shift,
            ))

        pcs = trace.pcs.tolist()
        addrs = trace.addrs.tolist()
        takens = trace.taken.tolist()
        total = len(pcs)
        if max_instructions is not None and total > max_instructions:
            total = max_instructions

        # Functional units: next-free cycle per unit instance.
        fu_pools = {
            "ialu": [0] * config.n_int_alu,
            "imul": [0] * config.n_int_mul,
            "falu": [0] * config.n_fp_alu,
            "fmul": [0] * config.n_fp_mul,
            "mem": [0] * config.n_mem_ports,
        }
        pool_of_class = {
            IClass.IALU: "ialu", IClass.IMUL: "imul", IClass.IDIV: "imul",
            IClass.FALU: "falu", IClass.FMUL: "fmul", IClass.FDIV: "fmul",
            IClass.LOAD: "mem", IClass.STORE: "mem",
            IClass.BRANCH: "ialu", IClass.JUMP: "ialu", IClass.OTHER: "ialu",
        }
        # Divides occupy their unit for the full latency (unpipelined).
        unpipelined = {IClass.IDIV, IClass.FDIV}

        dispatch_port = _BandwidthPort(config.width)
        commit_port = _BandwidthPort(config.width)

        reg_ready = [0] * 64
        rob_ring = [0] * config.rob_size  # commit time of entry i % rob
        lsq_ring = [0] * config.lsq_size
        fetchq_ring = [0] * config.fetch_queue  # dispatch times

        fetch_cycle = 0
        fetch_used = 0
        fetch_break = False  # taken control transfer ends the fetch group
        fetch_stall_until = 0
        last_line = -1
        last_issue = 0
        last_commit = 0
        mem_index = 0
        rob_stalls = 0
        lsq_stalls = 0
        fetch_queue_stalls = 0
        redirect_cycles = 0
        # Hoisted so a disabled registry costs one local bool test per
        # stall *event* (not per instruction) in the hot loop.
        telemetry = REGISTRY.enabled
        wall_start = time.perf_counter()
        class_counts = [0] * IClass.COUNT
        width = config.width
        in_order = config.in_order
        predictor_update = predictor.update
        predictor_predict = predictor.predict

        for i in range(total):
            pc = pcs[i]
            iclass, dest, srcs, latency, line = static[pc]
            class_counts[iclass] += 1

            # ----- fetch ------------------------------------------------
            if fetch_stall_until > fetch_cycle:
                if telemetry:
                    redirect_cycles += fetch_stall_until - fetch_cycle
                fetch_cycle = fetch_stall_until
                fetch_used = 0
                fetch_break = False
            if line != last_line:
                icache_latency = hierarchy.access_instruction(
                    line << line_shift)
                last_line = line
                if icache_latency > config.l1_latency:
                    fetch_cycle += icache_latency - config.l1_latency
                    fetch_used = 0
                    fetch_break = False
            if fetch_break or fetch_used >= width:
                fetch_cycle += 1
                fetch_used = 0
                fetch_break = False
            fetch_time = fetch_cycle
            fetch_used += 1

            # Fetch-queue backpressure: cannot fetch further ahead than
            # the queue decouples.
            queue_slot = i % config.fetch_queue
            if fetch_time < fetchq_ring[queue_slot]:
                fetch_time = fetchq_ring[queue_slot]
                fetch_cycle = fetch_time
                fetch_used = 1
                if telemetry:
                    fetch_queue_stalls += 1

            # ----- dispatch (ROB / LSQ allocation) ----------------------
            dispatch_earliest = fetch_time + DECODE_DEPTH
            rob_slot = i % config.rob_size
            if rob_ring[rob_slot] > dispatch_earliest:
                dispatch_earliest = rob_ring[rob_slot]
                if telemetry:
                    rob_stalls += 1
            is_mem = iclass in (IClass.LOAD, IClass.STORE)
            if is_mem:
                lsq_slot = mem_index % config.lsq_size
                if lsq_ring[lsq_slot] > dispatch_earliest:
                    dispatch_earliest = lsq_ring[lsq_slot]
                    if telemetry:
                        lsq_stalls += 1
            dispatch_time = dispatch_port.allocate(dispatch_earliest)
            fetchq_ring[queue_slot] = dispatch_time

            # ----- issue -------------------------------------------------
            ready = dispatch_time + 1
            for src in srcs:
                src_ready = reg_ready[src]
                if src_ready > ready:
                    ready = src_ready
            if in_order and ready < last_issue:
                ready = last_issue
            pool = fu_pools[pool_of_class[iclass]]
            unit = 0
            unit_free = pool[0]
            for index_unit in range(1, len(pool)):
                if pool[index_unit] < unit_free:
                    unit_free = pool[index_unit]
                    unit = index_unit
            issue_time = ready if ready > unit_free else unit_free
            if in_order:
                last_issue = issue_time

            # ----- execute ----------------------------------------------
            if iclass == IClass.LOAD:
                latency = hierarchy.access_data(addrs[i])
            elif iclass == IClass.STORE:
                hierarchy.access_data(addrs[i])
                latency = 1
            complete = issue_time + latency
            pool[unit] = complete if iclass in unpipelined else issue_time + 1
            if dest >= 0:
                reg_ready[dest] = complete

            # ----- control flow ------------------------------------------
            taken = takens[i]
            if taken >= 0:
                was_taken = taken == 1
                mispredicted = predictor_predict(pc) != was_taken
                predictor_update(pc, was_taken)
                if mispredicted:
                    redirect = complete + config.mispredict_penalty
                    if redirect > fetch_stall_until:
                        fetch_stall_until = redirect
                elif was_taken:
                    fetch_break = True
            elif iclass == IClass.JUMP:
                fetch_break = True

            # ----- commit -------------------------------------------------
            commit_earliest = complete + 1
            if commit_earliest < last_commit:
                commit_earliest = last_commit
            commit_time = commit_port.allocate(commit_earliest)
            last_commit = commit_time
            rob_ring[rob_slot] = commit_time
            if is_mem:
                lsq_ring[mem_index % config.lsq_size] = commit_time
                mem_index += 1

        cycles = last_commit if total else 0
        wall = time.perf_counter() - wall_start
        result = PipelineResult(
            config=config,
            instructions=total,
            cycles=max(1, cycles),
            class_counts=class_counts,
            icache_accesses=hierarchy.l1i.stats.accesses,
            icache_misses=hierarchy.l1i.stats.misses,
            dcache_accesses=hierarchy.l1d.stats.accesses,
            dcache_misses=hierarchy.l1d.stats.misses,
            l2_accesses=hierarchy.l2.stats.accesses if hierarchy.l2 else 0,
            l2_misses=hierarchy.l2.stats.misses if hierarchy.l2 else 0,
            branch_lookups=predictor.stats.lookups,
            branch_mispredictions=predictor.stats.mispredictions,
            rob_stalls=rob_stalls,
            lsq_stalls=lsq_stalls,
            fetch_queue_stalls=fetch_queue_stalls,
            redirect_cycles=redirect_cycles,
            wall_seconds=wall,
        )
        if REGISTRY.enabled:
            REGISTRY.counter("pipeline.instructions").inc(total)
            REGISTRY.counter("pipeline.runs").inc()
            REGISTRY.gauge("pipeline.sim_mips").set(result.simulated_mips)
            _LOG.debug("pipeline.run", config=config.name,
                       instructions=total, cycles=result.cycles,
                       ipc=result.ipc, sim_mips=result.simulated_mips,
                       rob_stalls=rob_stalls, lsq_stalls=lsq_stalls)
        return result


def simulate_pipeline(trace, config=BASE_CONFIG, max_instructions=None):
    """Convenience wrapper: run one trace through one configuration."""
    with span("uarch.pipeline"):
        return PipelineModel(config).run(trace,
                                         max_instructions=max_instructions)
