"""Activity-based power model (the Wattch analog).

Energy per event scales with structure geometry the way CACTI-style
models do to first order: array energies grow ~sqrt(size), multi-ported
and superscalar structures grow with width, and idle structures burn a
conditional-clocking fraction of their active power (Wattch's ``cc3``
style).  Units are arbitrary "energy units per cycle"; the paper's power
results are used relatively, and so are ours.
"""

from dataclasses import dataclass

from repro.isa.instructions import IClass

#: Fraction of a structure's active energy consumed when idle
#: (conditional clocking with leakage, as in Wattch cc3).
IDLE_FRACTION = 0.10


def _array_energy(size_bytes, assoc_ways=1):
    """Per-access energy of a RAM/CAM array, CACTI-flavoured scaling."""
    return (size_bytes ** 0.5) * (1.0 + 0.15 * (assoc_ways - 1)) / 40.0


@dataclass
class PowerBreakdown:
    """Per-structure average power (energy units / cycle)."""

    fetch: float = 0.0
    dispatch_window: float = 0.0
    regfile: float = 0.0
    functional_units: float = 0.0
    dcache: float = 0.0
    icache: float = 0.0
    l2: float = 0.0
    branch_predictor: float = 0.0
    lsq: float = 0.0
    clock: float = 0.0

    @property
    def total(self):
        return (self.fetch + self.dispatch_window + self.regfile
                + self.functional_units + self.dcache + self.icache
                + self.l2 + self.branch_predictor + self.lsq + self.clock)


#: Per-operation execution energies by instruction class.
_UNIT_ENERGY = {
    IClass.IALU: 1.0, IClass.IMUL: 3.2, IClass.IDIV: 4.5,
    IClass.FALU: 2.4, IClass.FMUL: 3.6, IClass.FDIV: 5.0,
    IClass.LOAD: 0.6, IClass.STORE: 0.6,
    IClass.BRANCH: 0.8, IClass.JUMP: 0.6, IClass.OTHER: 0.2,
}

_PREDICTOR_TABLE_BYTES = {
    "gap": 2 ** 14 // 4, "gshare": 2 ** 10 // 4, "bimodal": 2048 // 4,
    "taken": 16, "nottaken": 16,
}


class PowerModel:
    """Maps a :class:`PipelineResult` to average power."""

    def __init__(self, config):
        self.config = config
        width = config.width
        self.e_fetch = 0.5 * width ** 1.1
        self.e_dispatch = (0.4 * (config.rob_size ** 0.5)
                           * (1.0 + 0.5 * (width - 1)))
        self.e_commit = self.e_dispatch * 0.6
        self.e_regfile = 0.35 * (1.0 + 0.6 * (width - 1))
        self.e_lsq = 0.3 * (config.lsq_size ** 0.5)
        self.e_icache = _array_energy(config.l1i.size, config.l1i.ways)
        self.e_dcache = _array_energy(config.l1d.size, config.l1d.ways)
        self.e_l2 = (_array_energy(config.l2.size, config.l2.ways)
                     if config.l2 else 0.0)
        predictor_bytes = _PREDICTOR_TABLE_BYTES.get(config.predictor, 256)
        self.e_bpred = _array_energy(predictor_bytes)
        # Peak (per-cycle) power per structure, used for idle charging and
        # the clock network.
        self.peak = {
            "fetch": self.e_fetch * width,
            "dispatch_window": self.e_dispatch * width * 1.6,
            "regfile": self.e_regfile * 3 * width,
            "functional_units": (config.n_int_alu * 1.0
                                 + config.n_int_mul * 3.2
                                 + config.n_fp_alu * 2.4
                                 + config.n_fp_mul * 3.6),
            "dcache": self.e_dcache * config.n_mem_ports,
            "icache": self.e_icache,
            "l2": self.e_l2,
            "branch_predictor": self.e_bpred,
            "lsq": self.e_lsq * width,
        }
        self.clock_power = 0.8 + 0.25 * sum(self.peak.values())

    # ------------------------------------------------------------------
    def evaluate(self, result):
        """Average power for one pipeline run (returns PowerBreakdown)."""
        cycles = max(1, result.cycles)
        instructions = result.instructions
        counts = result.class_counts
        mem_ops = counts[IClass.LOAD] + counts[IClass.STORE]

        energies = {
            "fetch": self.e_fetch * instructions,
            "dispatch_window": self.e_dispatch * instructions
            + self.e_commit * instructions,
            "regfile": self.e_regfile * 3 * instructions,
            "functional_units": sum(
                _UNIT_ENERGY[iclass] * counts[iclass]
                for iclass in range(IClass.COUNT)),
            "dcache": self.e_dcache * result.dcache_accesses,
            "icache": self.e_icache * result.icache_accesses,
            "l2": self.e_l2 * result.l2_accesses * 1.8,
            "branch_predictor": self.e_bpred * result.branch_lookups * 2,
            "lsq": self.e_lsq * mem_ops * 2,
        }

        breakdown = PowerBreakdown()
        for name, energy in energies.items():
            active = energy / cycles
            idle_floor = IDLE_FRACTION * self.peak[name]
            setattr(breakdown, name, max(active, idle_floor)
                    if self.peak[name] else active)
        breakdown.clock = self.clock_power
        return breakdown


# ----------------------------------------------------------------------
# Shared models: one PowerModel per distinct geometry per process
# ----------------------------------------------------------------------
def power_key(config):
    """The config subset a :class:`PowerModel`'s energies depend on.

    Geometry only — widths, queue/array sizes, FU and port counts,
    cache shapes, predictor kind.  Latency and penalty knobs never
    enter the energy tables, so configs differing only in those share
    one model (the power analog of the sweep engine's bank keys).
    """
    return (config.width, config.rob_size, config.lsq_size,
            config.n_int_alu, config.n_int_mul, config.n_fp_alu,
            config.n_fp_mul, config.n_mem_ports,
            config.l1i, config.l1d, config.l2, config.predictor)


_SHARED_MODELS = {}


def shared_power_model(config):
    """The process-wide :class:`PowerModel` for ``config``'s geometry.

    Evaluation is pure (``evaluate`` never mutates the model), so
    sharing is safe; construction cost — the CACTI-style energy
    derivations — is paid once per distinct geometry instead of once
    per (workload × config) cell.  Reuse feeds the sweep stats
    (``power_models_built`` / ``power_models_reused``) surfaced by
    ``repro report``.
    """
    key = power_key(config)
    model = _SHARED_MODELS.get(key)
    if model is None:
        model = _SHARED_MODELS[key] = PowerModel(config)
        _note_power("power_models_built")
    else:
        _note_power("power_models_reused")
    return model


def reset_shared_power_models():
    """Drop the shared-model cache (tests)."""
    _SHARED_MODELS.clear()


def _note_power(key):
    # Imported lazily: power is importable without the sweep engine.
    from repro.uarch.sweep import _note
    _note(key)


def estimate_power(result, config=None):
    """Total average power for a pipeline result (convenience).

    Routed through :func:`shared_power_model`, so repeated estimates
    across a grid reuse one model per geometry.
    """
    model = shared_power_model(
        config if config is not None else result.config)
    return model.evaluate(result).total
