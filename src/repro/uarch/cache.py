"""Set-associative LRU caches (the paper's Section 5.1 substrate).

``Cache`` is a functional hit/miss model with O(1) accesses (per-set
insertion-ordered dicts give constant-time LRU).  ``simulate_cache``
replays an address stream against one configuration and is the reference
implementation; ``simulate_cache_sweep`` replays one stream against many
configurations at once, converting the stream a single time and using
vectorized fast paths where the geometry allows.  ``CacheHierarchy``
composes L1I/L1D/L2 for the pipeline timing model.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``assoc`` may be an integer or the string ``"full"`` for a fully
    associative cache.
    """

    size: int
    assoc: object = 1
    line: int = 32

    def __post_init__(self):
        if self.size <= 0 or self.line <= 0 or self.size % self.line:
            raise ValueError(f"bad cache geometry: {self}")
        ways = self.ways
        if ways <= 0 or (self.size // self.line) % ways:
            raise ValueError(f"associativity does not divide lines: {self}")

    @property
    def lines(self):
        return self.size // self.line

    @property
    def ways(self):
        if self.assoc == "full":
            return self.lines
        return int(self.assoc)

    @property
    def sets(self):
        return self.lines // self.ways

    def label(self):
        size = (f"{self.size // 1024}KB" if self.size % 1024 == 0
                and self.size >= 1024 else f"{self.size}B")
        assoc = "full" if self.assoc == "full" else f"{self.ways}way"
        return f"{size}/{assoc}/{self.line}B"


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hits(self):
        return self.accesses - self.misses

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    def misses_per_instruction(self, instructions):
        return self.misses / instructions if instructions else 0.0

    def snapshot(self):
        """JSON-ready stats block for manifests and telemetry."""
        return {"accesses": self.accesses, "misses": self.misses,
                "evictions": self.evictions, "miss_rate": self.miss_rate}

    def clear(self):
        """Zero all counts in place (the object identity is preserved)."""
        self.accesses = 0
        self.misses = 0
        self.evictions = 0


class Cache:
    """One cache level with true-LRU replacement.

    Each set is a dict mapping tag → None; dict insertion order is the
    recency order (oldest first), so LRU update and eviction are O(1).
    """

    def __init__(self, config):
        self.config = config
        self.stats = CacheStats()
        self._sets = [dict() for _ in range(config.sets)]
        self._line_shift = config.line.bit_length() - 1
        self._set_mask = config.sets - 1
        self._set_is_pow2 = config.sets & (config.sets - 1) == 0
        self._ways = config.ways

    def access(self, address):
        """Look up one address; returns True on hit.  Misses allocate."""
        block = address >> self._line_shift
        index = (block & self._set_mask if self._set_is_pow2
                 else block % len(self._sets))
        line_set = self._sets[index]
        self.stats.accesses += 1
        if block in line_set:
            del line_set[block]  # refresh recency
            line_set[block] = None
            return True
        self.stats.misses += 1
        if len(line_set) >= self._ways:
            del line_set[next(iter(line_set))]
            self.stats.evictions += 1
        line_set[block] = None
        return False

    def contains(self, address):
        """Non-mutating lookup (for tests and invariant checks)."""
        block = address >> self._line_shift
        index = (block & self._set_mask if self._set_is_pow2
                 else block % len(self._sets))
        return block in self._sets[index]

    def resident_lines(self):
        return sum(len(line_set) for line_set in self._sets)

    def occupancy(self):
        """Fraction of the cache's lines currently resident (0.0–1.0)."""
        return self.resident_lines() / self.config.lines

    def flush(self):
        """Empty every set and reset ``stats`` **in place**.

        The :class:`CacheStats` object bound to ``self.stats`` is reused
        (cleared, not replaced), so references held by callers keep
        observing this cache after a flush.
        """
        for line_set in self._sets:
            line_set.clear()
        self.stats.clear()


def simulate_cache(addresses, config):
    """Replay an address stream; returns the final :class:`CacheStats`.

    This is the *reference* single-configuration replay.  ``addresses``
    may be any iterable of ints; a numpy array is converted exactly once
    per call (plain Python ints iterate much faster than numpy scalars)
    and the input array itself is never mutated.  When sweeping one
    stream over many configurations, use :func:`simulate_cache_sweep`,
    which hoists that conversion out of the per-config loop entirely.
    """
    cache = Cache(config)
    access = cache.access
    if hasattr(addresses, "tolist"):
        addresses = addresses.tolist()
    for address in addresses:
        access(address)
    return cache.stats


# ----------------------------------------------------------------------
# Batched sweep: one stream, many configurations
# ----------------------------------------------------------------------
def _final_residency(blocks, set_mask, ways):
    """Lines resident after an LRU replay (misses − evictions).

    The set index is a pure function of the block index, so the distinct
    (set, block) pairs are exactly the distinct blocks; a set that ever
    saw ``k`` distinct blocks ends with ``min(k, ways)`` resident.
    """
    unique_blocks = np.unique(blocks)
    per_set = np.bincount((unique_blocks & set_mask).astype(np.int64))
    return int(np.minimum(per_set, ways).sum())


def _direct_mapped_stats(blocks, sets):
    """Vectorized direct-mapped replay (power-of-two ``sets``).

    An access hits iff the previous access to the same set touched the
    same block, so grouping accesses by set (stable sort) and comparing
    neighbours yields the exact hit count with no Python loop.
    """
    n = len(blocks)
    mask = sets - 1
    set_index = blocks & mask
    order = np.argsort(set_index, kind="stable")
    grouped_blocks = blocks[order]
    grouped_sets = set_index[order]
    hits = int(np.count_nonzero(
        (grouped_sets[1:] == grouped_sets[:-1])
        & (grouped_blocks[1:] == grouped_blocks[:-1])))
    misses = n - hits
    evictions = misses - _final_residency(blocks, mask, 1)
    return CacheStats(accesses=n, misses=misses, evictions=evictions)


def _two_way_stats(blocks, sets):
    """Vectorized 2-way LRU replay (power-of-two ``sets``).

    Within one set, collapsing consecutive duplicate blocks (all hits)
    leaves a stream whose two most recent *distinct* blocks are exactly
    the previous two elements — so an element hits iff it equals the
    element two back.  That only holds for two ways (a longer window can
    contain duplicates), which is why wider associativity replays below.
    """
    n = len(blocks)
    mask = sets - 1
    set_index = blocks & mask
    order = np.argsort(set_index, kind="stable")
    grouped_blocks = blocks[order]
    grouped_sets = set_index[order]
    duplicate = np.zeros(n, dtype=bool)
    duplicate[1:] = ((grouped_sets[1:] == grouped_sets[:-1])
                     & (grouped_blocks[1:] == grouped_blocks[:-1]))
    deduped_blocks = grouped_blocks[~duplicate]
    deduped_sets = grouped_sets[~duplicate]
    lag2_hits = int(np.count_nonzero(
        (deduped_sets[2:] == deduped_sets[:-2])
        & (deduped_blocks[2:] == deduped_blocks[:-2])))
    misses = len(deduped_blocks) - lag2_hits
    evictions = misses - _final_residency(blocks, mask, 2)
    return CacheStats(accesses=n, misses=misses, evictions=evictions)


def _replay_blocks(blocks, config):
    """Exact port of the :class:`Cache` LRU loop over block indices.

    ``blocks`` must be a list of plain ints (the caller converts the
    numpy block array once and shares it across every config that needs
    this path).
    """
    n_sets = config.sets
    ways = config.ways
    line_sets = [dict() for _ in range(n_sets)]
    is_pow2 = (n_sets & (n_sets - 1)) == 0
    mask = n_sets - 1
    misses = 0
    evictions = 0
    for block in blocks:
        line_set = (line_sets[block & mask] if is_pow2
                    else line_sets[block % n_sets])
        if block in line_set:
            del line_set[block]  # refresh recency
            line_set[block] = None
            continue
        misses += 1
        if len(line_set) >= ways:
            del line_set[next(iter(line_set))]
            evictions += 1
        line_set[block] = None
    return CacheStats(accesses=len(blocks), misses=misses,
                      evictions=evictions)


def simulate_cache_sweep(addresses, configs):
    """Replay one address stream against many configurations.

    Returns a list of :class:`CacheStats`, one per config, in config
    order — each bit-identical to ``simulate_cache(addresses, config)``.
    The address stream is converted to block indices once per distinct
    line size; direct-mapped and 2-way power-of-two geometries use fully
    vectorized numpy paths, everything else shares a single
    list-converted block stream through the reference LRU replay.
    """
    configs = list(configs)
    address_array = np.asarray(addresses, dtype=np.int64)
    if len(address_array) == 0:
        return [CacheStats() for _ in configs]
    blocks_by_shift = {}
    block_lists_by_shift = {}
    results = []
    for config in configs:
        shift = config.line.bit_length() - 1
        blocks = blocks_by_shift.get(shift)
        if blocks is None:
            blocks = blocks_by_shift[shift] = address_array >> shift
        sets = config.sets
        is_pow2 = (sets & (sets - 1)) == 0
        if is_pow2 and config.ways == 1:
            results.append(_direct_mapped_stats(blocks, sets))
        elif is_pow2 and config.ways == 2:
            results.append(_two_way_stats(blocks, sets))
        else:
            block_list = block_lists_by_shift.get(shift)
            if block_list is None:
                # A block equal to its predecessor is MRU in its set and
                # hits under *any* geometry, so the replay only needs the
                # consecutive-deduplicated stream (converted once).
                keep = np.ones(len(blocks), dtype=bool)
                keep[1:] = blocks[1:] != blocks[:-1]
                block_list = block_lists_by_shift[shift] = \
                    blocks[keep].tolist()
            stats = _replay_blocks(block_list, config)
            stats.accesses = len(address_array)
            results.append(stats)
    return results


# ----------------------------------------------------------------------
# Per-access outcomes: the sweep engine's cache banks
# ----------------------------------------------------------------------
def _direct_mapped_hits(blocks, sets):
    """Per-access hit flags for a direct-mapped power-of-two cache.

    Same grouping argument as :func:`_direct_mapped_stats` — an access
    hits iff the previous access to its set touched the same block —
    but the per-set neighbour comparison is scattered back to stream
    order instead of being reduced to a count.
    """
    n = len(blocks)
    mask = sets - 1
    set_index = blocks & mask
    order = np.argsort(set_index, kind="stable")
    grouped_blocks = blocks[order]
    grouped_sets = set_index[order]
    grouped_hits = np.zeros(n, dtype=bool)
    grouped_hits[1:] = ((grouped_sets[1:] == grouped_sets[:-1])
                        & (grouped_blocks[1:] == grouped_blocks[:-1]))
    hits = np.empty(n, dtype=bool)
    hits[order] = grouped_hits
    return hits


def _two_way_hits(blocks, sets):
    """Per-access hit flags for a 2-way LRU power-of-two cache.

    As in :func:`_two_way_stats`: consecutive duplicates within a set
    are MRU hits, and on the deduplicated per-set stream an access hits
    iff it equals the distinct block two back.  Both flag families are
    scattered back through the stable sort order.
    """
    n = len(blocks)
    mask = sets - 1
    set_index = blocks & mask
    order = np.argsort(set_index, kind="stable")
    grouped_blocks = blocks[order]
    grouped_sets = set_index[order]
    duplicate = np.zeros(n, dtype=bool)
    duplicate[1:] = ((grouped_sets[1:] == grouped_sets[:-1])
                     & (grouped_blocks[1:] == grouped_blocks[:-1]))
    keep = ~duplicate
    deduped_blocks = grouped_blocks[keep]
    deduped_sets = grouped_sets[keep]
    lag2 = np.zeros(len(deduped_blocks), dtype=bool)
    lag2[2:] = ((deduped_sets[2:] == deduped_sets[:-2])
                & (deduped_blocks[2:] == deduped_blocks[:-2]))
    grouped_hits = duplicate
    grouped_hits[keep] = lag2
    hits = np.empty(n, dtype=bool)
    hits[order] = grouped_hits
    return hits


def _replay_block_hits(blocks, config):
    """Per-access hit flags through the reference dict-LRU replay."""
    n_sets = config.sets
    ways = config.ways
    line_sets = [dict() for _ in range(n_sets)]
    is_pow2 = (n_sets & (n_sets - 1)) == 0
    mask = n_sets - 1
    hits = np.empty(len(blocks), dtype=bool)
    for position, block in enumerate(blocks.tolist()):
        line_set = (line_sets[block & mask] if is_pow2
                    else line_sets[block % n_sets])
        if block in line_set:
            del line_set[block]  # refresh recency
            line_set[block] = None
            hits[position] = True
            continue
        hits[position] = False
        if len(line_set) >= ways:
            del line_set[next(iter(line_set))]
        line_set[block] = None
    return hits


def per_access_hits(blocks, config):
    """Hit/miss outcome of every access of a block-index stream.

    ``blocks`` are line/block indices (addresses already shifted by the
    configuration's line size, exactly what :class:`Cache` derives
    internally).  Returns a boolean array aligned with the stream whose
    ``False`` count equals ``simulate_cache``'s miss count; the sweep
    engine turns these flags into per-access latency banks.  Geometry
    fast paths match :func:`simulate_cache_sweep`.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    if len(blocks) == 0:
        return np.zeros(0, dtype=bool)
    sets = config.sets
    if sets & (sets - 1) == 0:
        if config.ways == 1:
            return _direct_mapped_hits(blocks, sets)
        if config.ways == 2:
            return _two_way_hits(blocks, sets)
    return _replay_block_hits(blocks, config)


class CacheHierarchy:
    """L1I + L1D + unified L2 with simple additive latencies."""

    def __init__(self, l1i, l1d, l2, l1_latency=1, l2_latency=8,
                 memory_latency=40):
        self.l1i = Cache(l1i)
        self.l1d = Cache(l1d)
        self.l2 = Cache(l2) if l2 is not None else None
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency

    def access_instruction(self, address):
        """Fetch-side access; returns latency in cycles."""
        if self.l1i.access(address):
            return self.l1_latency
        return self._level2(address)

    def access_data(self, address):
        """Load/store access; returns latency in cycles."""
        if self.l1d.access(address):
            return self.l1_latency
        return self._level2(address)

    def _level2(self, address):
        if self.l2 is None:
            return self.memory_latency
        if self.l2.access(address):
            return self.l2_latency
        return self.l2_latency + self.memory_latency
