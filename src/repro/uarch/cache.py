"""Set-associative LRU caches (the paper's Section 5.1 substrate).

``Cache`` is a functional hit/miss model with O(1) accesses (per-set
insertion-ordered dicts give constant-time LRU).  ``simulate_cache``
replays an address stream; ``CacheHierarchy`` composes L1I/L1D/L2 for the
pipeline timing model.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    ``assoc`` may be an integer or the string ``"full"`` for a fully
    associative cache.
    """

    size: int
    assoc: object = 1
    line: int = 32

    def __post_init__(self):
        if self.size <= 0 or self.line <= 0 or self.size % self.line:
            raise ValueError(f"bad cache geometry: {self}")
        ways = self.ways
        if ways <= 0 or (self.size // self.line) % ways:
            raise ValueError(f"associativity does not divide lines: {self}")

    @property
    def lines(self):
        return self.size // self.line

    @property
    def ways(self):
        if self.assoc == "full":
            return self.lines
        return int(self.assoc)

    @property
    def sets(self):
        return self.lines // self.ways

    def label(self):
        size = (f"{self.size // 1024}KB" if self.size % 1024 == 0
                and self.size >= 1024 else f"{self.size}B")
        assoc = "full" if self.assoc == "full" else f"{self.ways}way"
        return f"{size}/{assoc}/{self.line}B"


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hits(self):
        return self.accesses - self.misses

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    def misses_per_instruction(self, instructions):
        return self.misses / instructions if instructions else 0.0

    def snapshot(self):
        """JSON-ready stats block for manifests and telemetry."""
        return {"accesses": self.accesses, "misses": self.misses,
                "evictions": self.evictions, "miss_rate": self.miss_rate}


class Cache:
    """One cache level with true-LRU replacement.

    Each set is a dict mapping tag → None; dict insertion order is the
    recency order (oldest first), so LRU update and eviction are O(1).
    """

    def __init__(self, config):
        self.config = config
        self.stats = CacheStats()
        self._sets = [dict() for _ in range(config.sets)]
        self._line_shift = config.line.bit_length() - 1
        self._set_mask = config.sets - 1
        self._set_is_pow2 = config.sets & (config.sets - 1) == 0
        self._ways = config.ways

    def access(self, address):
        """Look up one address; returns True on hit.  Misses allocate."""
        block = address >> self._line_shift
        if self._set_is_pow2:
            index = block & self._set_mask
        else:
            index = block % len(self._sets)
        line_set = self._sets[index]
        self.stats.accesses += 1
        if block in line_set:
            del line_set[block]  # refresh recency
            line_set[block] = None
            return True
        self.stats.misses += 1
        if len(line_set) >= self._ways:
            del line_set[next(iter(line_set))]
            self.stats.evictions += 1
        line_set[block] = None
        return False

    def contains(self, address):
        """Non-mutating lookup (for tests and invariant checks)."""
        block = address >> self._line_shift
        if self._set_is_pow2:
            index = block & self._set_mask
        else:
            index = block % len(self._sets)
        return block in self._sets[index]

    def resident_lines(self):
        return sum(len(line_set) for line_set in self._sets)

    def occupancy(self):
        """Fraction of the cache's lines currently resident (0.0–1.0)."""
        return self.resident_lines() / self.config.lines

    def flush(self):
        for line_set in self._sets:
            line_set.clear()
        self.stats = CacheStats()


def simulate_cache(addresses, config):
    """Replay an address stream; returns the final :class:`CacheStats`.

    ``addresses`` may be any iterable of ints (numpy arrays are converted
    once for speed).
    """
    cache = Cache(config)
    access = cache.access
    if hasattr(addresses, "tolist"):
        addresses = addresses.tolist()
    for address in addresses:
        access(address)
    return cache.stats


class CacheHierarchy:
    """L1I + L1D + unified L2 with simple additive latencies."""

    def __init__(self, l1i, l1d, l2, l1_latency=1, l2_latency=8,
                 memory_latency=40):
        self.l1i = Cache(l1i)
        self.l1d = Cache(l1d)
        self.l2 = Cache(l2) if l2 is not None else None
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency

    def access_instruction(self, address):
        """Fetch-side access; returns latency in cycles."""
        if self.l1i.access(address):
            return self.l1_latency
        return self._level2(address)

    def access_data(self, address):
        """Load/store access; returns latency in cycles."""
        if self.l1d.access(address):
            return self.l1_latency
        return self._level2(address)

    def _level2(self, address):
        if self.l2 is None:
            return self.memory_latency
        if self.l2.access(address):
            return self.l2_latency
        return self.l2_latency + self.memory_latency
