"""Incremental re-simulation: reuse-aware planning for grid refinement.

A grid study rarely starts from nothing.  Refinement loops — the
MicroGrad-style clone-tuning inner loop, dense config neighborhoods
around a design point, a human nudging one knob in the CLI — re-time
traces that differ from the previous cell by a *single* parameter.
Every sweep artifact is already keyed by the subset of config/profile
state it depends on:

========================  =============================================
artifact                  depends on
========================  =============================================
trace digest              trace content + program only (no config)
cache outcome bank        ``_hierarchy_key`` — L1I/L1D/L2 geometry and
                          the three access latencies
predictor outcome bank    ``_predictor_key`` — predictor kind + kwargs
scheduling kernel         ``_kernel_knobs`` — code *shape* (width-1
                          vs superscalar, in-order, I-line shift,
                          ring power-of-two-ness, FU pool sizes)
kernel parameters         ``_kernel_params`` — ring masks, penalties,
                          per-class latencies (free to rebuild)
========================  =============================================

This module makes that reuse *inspectable and accountable*: the
planners diff two configs (or two profiles) against those key
functions and report exactly which artifacts the next cell will reuse,
before it runs.  :class:`IncrementalSession` wraps the sweep engine
with that accounting — every ``run`` emits a ``sweep.incremental_plan``
journal event and feeds the ``incremental_*`` counters that run
manifests and ``repro report`` display.

Correctness is by construction, not by trust: the session delegates
timing to :func:`repro.uarch.sweep.simulate_pipeline_sweep`, whose
per-key artifact caches realize the plan's reuse and whose results are
enforced field-for-field identical to ``PipelineModel.run`` by the
corpus-wide differential suite.  The plan never steers execution; it
predicts (and then accounts for) what the engine's keying already
guarantees.
"""

import dataclasses

from repro.obs.journal import emit_event
from repro.uarch.sweep import (
    _hierarchy_key,
    _kernel_knobs,
    _kernel_params,
    _note,
    _predictor_key,
    acquire_trace_digest,
    simulate_pipeline_sweep,
)

#: The four artifact kinds a plan accounts for, in build order.
ARTIFACTS = ("digest", "cache_bank", "pred_bank", "kernel")

#: Config field -> artifact kinds its value can invalidate.  ``name``
#: is pure labeling; the scheduling-only knobs invalidate at most the
#: compiled kernel (and only when they change the generated code's
#: shape — the planner consults the actual key functions, this map is
#: the documentation/reporting layer saying what *may* be affected).
CONFIG_FIELD_DEPS = {
    "name": (),
    "l1i": ("cache_bank", "kernel"),  # line size sets the I-shift knob
    "l1d": ("cache_bank",),
    "l2": ("cache_bank",),
    "l1_latency": ("cache_bank",),
    "l2_latency": ("cache_bank",),
    "memory_latency": ("cache_bank",),
    "predictor": ("pred_bank",),
    "predictor_kwargs": ("pred_bank",),
    "width": ("kernel",),
    "fetch_queue": ("kernel",),
    "rob_size": ("kernel",),
    "lsq_size": ("kernel",),
    "n_int_alu": ("kernel",),
    "n_int_mul": ("kernel",),
    "n_fp_alu": ("kernel",),
    "n_fp_mul": ("kernel",),
    "n_mem_ports": ("kernel",),
    "in_order": ("kernel",),
    "mispredict_penalty": (),  # kernel parameter, free to rebuild
    "latency_ialu": (),
    "latency_imul": (),
    "latency_idiv": (),
    "latency_falu": (),
    "latency_fmul": (),
    "latency_fdiv": (),
}

#: Profile fields that change only labeling, never artifact content.
_PROFILE_LABEL_FIELDS = frozenset({"name"})


@dataclasses.dataclass(frozen=True)
class IncrementalPlan:
    """What a re-run with ``new`` reuses from a run keyed by ``old``."""

    changed_fields: tuple
    reused: tuple
    rebuilt: tuple
    params_changed: bool = False

    @property
    def full_rebuild(self):
        return not self.reused

    def to_dict(self):
        return {
            "changed_fields": list(self.changed_fields),
            "reused": list(self.reused),
            "rebuilt": list(self.rebuilt),
            "params_changed": self.params_changed,
            "full_rebuild": self.full_rebuild,
        }


def _changed_fields(old, new):
    names = [field.name for field in dataclasses.fields(old)]
    return tuple(name for name in names
                 if getattr(old, name) != getattr(new, name))


def _shift(config):
    return config.l1i.line.bit_length() - 1


def plan_incremental(old_config, new_config):
    """The artifact reuse a sweep of ``new_config`` gets after
    ``old_config``, judged by the engine's own key functions.

    The digest is config-independent, so a config edit can never
    invalidate it; the banks and kernel survive exactly when their keys
    match.  Latency/penalty edits change only the kernel's runtime
    parameter tuple — reported via ``params_changed``, not as a
    rebuild, because deriving it is a dozen integer reads.
    """
    reused = ["digest"]
    rebuilt = []
    bank = (reused if _hierarchy_key(old_config) == _hierarchy_key(new_config)
            else rebuilt)
    bank.append("cache_bank")
    bank = (reused if _predictor_key(old_config) == _predictor_key(new_config)
            else rebuilt)
    bank.append("pred_bank")
    bank = (reused
            if _kernel_knobs(old_config, _shift(old_config))
            == _kernel_knobs(new_config, _shift(new_config))
            else rebuilt)
    bank.append("kernel")
    return IncrementalPlan(
        changed_fields=_changed_fields(old_config, new_config),
        reused=tuple(reused),
        rebuilt=tuple(rebuilt),
        params_changed=(_kernel_params(old_config)
                        != _kernel_params(new_config)),
    )


def plan_profile_delta(old_profile, new_profile):
    """The reuse surviving a profile edit in a clone-refinement loop.

    Profile content determines the synthesized clone's source, hence
    its trace, hence *every* trace-derived artifact: any material field
    change is a full rebuild of all four kinds.  Only pure relabeling
    (``name``) — or no change at all — preserves them.  Blunt, but
    honest: it is exactly what the content-addressed store keys enforce,
    and it is the part refinement loops must budget for (the config
    axis, by contrast, reuses almost everything; see
    :func:`plan_incremental`).
    """
    changed = _changed_fields(old_profile, new_profile)
    if all(name in _PROFILE_LABEL_FIELDS for name in changed):
        reused, rebuilt = ARTIFACTS, ()
    else:
        reused, rebuilt = (), ARTIFACTS
    return IncrementalPlan(changed_fields=changed, reused=reused,
                           rebuilt=rebuilt)


def _account(plan):
    """Feed one plan into sweep stats and the run journal."""
    _note("incremental_plans")
    _note("incremental_reused_artifacts", len(plan.reused))
    _note("incremental_rebuilt_artifacts", len(plan.rebuilt))
    if plan.full_rebuild:
        _note("incremental_full_rebuilds")
    emit_event("sweep", event="incremental_plan", **plan.to_dict())


class IncrementalSession:
    """Stateful re-simulation of one trace across config refinements.

    Successive :meth:`run` calls share the trace digest and every
    config-keyed bank through the sweep engine's per-trace caches, so
    a single-knob edit re-times in milliseconds while remaining
    bit-identical to a cold ``PipelineModel.run``.  Each call after the
    first plans the delta from the previous config, emits the
    ``sweep.incremental_plan`` journal event, and keeps the plan at
    :attr:`last_plan` for callers that want to display it.
    """

    def __init__(self, trace, max_instructions=None, store=None):
        self.trace = trace
        self.max_instructions = max_instructions
        self.store = store
        self.last_config = None
        self.last_plan = None

    @classmethod
    def from_program(cls, program, max_instructions=None,
                     functional_cap=50_000_000, store=None, backend=None):
        """Open a session straight from a program, acquiring its trace
        through the streaming path when the native engine is available:
        the simulator feeds columnar chunks into the sweep digest and
        the session holds a :class:`~repro.sim.trace.TraceRef` instead
        of a materialized trace.  ``functional_cap`` bounds the
        functional simulation; ``max_instructions`` (as in the
        constructor) bounds each timed sweep."""
        digest = acquire_trace_digest(program,
                                      max_instructions=functional_cap,
                                      store=store, backend=backend)
        return cls(digest.trace, max_instructions=max_instructions,
                   store=store)

    def plan(self, config):
        """The reuse plan :meth:`run` would realize, without running."""
        if self.last_config is None:
            return None
        return plan_incremental(self.last_config, config)

    def run(self, config):
        """Time ``config``; returns the engine's ``PipelineResult``."""
        plan = self.plan(config)
        if plan is not None:
            self.last_plan = plan
            _account(plan)
        [result] = simulate_pipeline_sweep(
            self.trace, [config], max_instructions=self.max_instructions,
            store=self.store)
        self.last_config = config
        return result

    def run_grid(self, configs):
        """Time a whole grid, planning each cell against the last."""
        return [self.run(config) for config in configs]
