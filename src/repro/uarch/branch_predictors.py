"""Branch direction predictors.

The base machine uses the paper's 2-level GAp predictor (global history
register, per-address pattern history tables); design change 4 swaps it
for always-not-taken.  Bimodal and gshare are included for wider studies.
All predictors share the ``predict(pc) -> bool`` / ``update(pc, taken)``
protocol and track their own accuracy.

:func:`predictor_outcome_bank` resolves a whole ``(pc, taken)`` branch
stream at once in numpy: the PHT index sequence is derived from the
already-known taken sequence (global history is just shifted outcome
bits) and the 2-bit counter evolution inside each index group is solved
with a segmented FSM transition-table scan — no per-branch Python loop.
:func:`simulate_predictor` rides on the bank; the original scalar loop
is kept as :func:`simulate_predictor_reference` and equality-tested.
"""

import numpy as np


class _PredictorStats:
    __slots__ = ("lookups", "mispredictions")

    def __init__(self):
        self.lookups = 0
        self.mispredictions = 0

    @property
    def misprediction_rate(self):
        if self.lookups == 0:
            return 0.0
        return self.mispredictions / self.lookups


class BranchPredictorBase:
    """Shared bookkeeping; subclasses implement _predict/_update."""

    def __init__(self):
        self.stats = _PredictorStats()

    def predict(self, pc):
        return self._predict(pc)

    def update(self, pc, taken):
        self.stats.lookups += 1
        if self._predict(pc) != taken:
            self.stats.mispredictions += 1
        self._update(pc, taken)

    def _predict(self, pc):
        raise NotImplementedError

    def _update(self, pc, taken):
        raise NotImplementedError


class AlwaysNotTaken(BranchPredictorBase):
    def _predict(self, pc):
        return False

    def _update(self, pc, taken):
        pass


class AlwaysTaken(BranchPredictorBase):
    def _predict(self, pc):
        return True

    def _update(self, pc, taken):
        pass


class Bimodal(BranchPredictorBase):
    """PC-indexed 2-bit saturating counters."""

    def __init__(self, entries=2048):
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.counters = [1] * entries  # weakly not-taken

    def _index(self, pc):
        return pc & (self.entries - 1)

    def _predict(self, pc):
        return self.counters[self._index(pc)] >= 2

    def _update(self, pc, taken):
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)


class TwoLevelGAp(BranchPredictorBase):
    """2-level GAp: one Global history register, per-Address PHTs.

    The pattern-history-table index concatenates low PC bits with the
    global history, i.e. each static branch gets its own history-indexed
    table slice.
    """

    def __init__(self, history_bits=8, pc_bits=6):
        super().__init__()
        self.history_bits = history_bits
        self.pc_bits = pc_bits
        self.history = 0
        self.counters = [1] * (1 << (history_bits + pc_bits))

    def _index(self, pc):
        return ((pc & ((1 << self.pc_bits) - 1)) << self.history_bits) \
            | self.history

    def _predict(self, pc):
        return self.counters[self._index(pc)] >= 2

    def _update(self, pc, taken):
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) \
            & ((1 << self.history_bits) - 1)


class GShare(BranchPredictorBase):
    """Global history XOR-ed into the PC index."""

    def __init__(self, history_bits=10):
        super().__init__()
        self.history_bits = history_bits
        self.history = 0
        self.counters = [1] * (1 << history_bits)

    def _index(self, pc):
        return (pc ^ self.history) & ((1 << self.history_bits) - 1)

    def _predict(self, pc):
        return self.counters[self._index(pc)] >= 2

    def _update(self, pc, taken):
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) \
            & ((1 << self.history_bits) - 1)


_PREDICTORS = {
    "nottaken": AlwaysNotTaken,
    "taken": AlwaysTaken,
    "bimodal": Bimodal,
    "gap": TwoLevelGAp,
    "gshare": GShare,
}


def make_predictor(kind, **kwargs):
    """Instantiate a predictor by name (see keys of ``_PREDICTORS``)."""
    try:
        cls = _PREDICTORS[kind]
    except KeyError:
        raise ValueError(f"unknown predictor kind {kind!r}") from None
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Vectorized outcome banks (the sweep engine's predictor side)
# ----------------------------------------------------------------------
#: 2-bit saturating counter transition table: ``next[state][taken]``.
_COUNTER_NEXT = np.array([[0, 1], [0, 2], [1, 3], [2, 3]], dtype=np.uint8)


def _global_history(taken, history_bits):
    """Global-history register value *before* each branch.

    ``history = ((history << 1) | taken) & mask`` means the register
    seen by branch ``i`` holds outcome ``i-1`` in bit 0, ``i-2`` in
    bit 1, ...: pure shifts of the known taken sequence.
    """
    n = len(taken)
    history = np.zeros(n, dtype=np.int64)
    bits = taken.astype(np.int64)
    for age in range(1, history_bits + 1):
        history[age:] |= bits[:-age] << (age - 1)
    return history


def _counter_predictions(indices, taken):
    """Predicted-taken flag per access for a bank of 2-bit counters.

    Every counter starts at 1 (weakly not-taken).  Accesses sharing a
    PHT index form one sequential FSM; a stable sort groups them and a
    segmented map-composition scan (Hillis-Steele doubling over the
    4-state transition maps, with segment-start flags stopping
    absorption at group boundaries) resolves the state each access
    observes without a Python loop.
    """
    n = len(indices)
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(indices, kind="stable")
    grouped_taken = taken[order].astype(np.int64)
    grouped_index = indices[order]
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = grouped_index[1:] != grouped_index[:-1]

    # prefix[i] maps (state before its covered run) -> (state after i).
    prefix = np.ascontiguousarray(_COUNTER_NEXT[:, grouped_taken].T)
    reached = seg_start.copy()  # prefix[i] already reaches its seg start
    span = 1
    while span < n:
        active = ~reached[span:]
        if not active.any():
            break
        composed = np.take_along_axis(prefix[span:], prefix[:-span], axis=1)
        absorbed = reached[:-span][active]
        prefix[span:][active] = composed[active]
        reached[span:][active] = absorbed
        span *= 2

    state_before = np.empty(n, dtype=np.uint8)
    state_before[seg_start] = 1
    later = np.nonzero(~seg_start)[0]
    state_before[later] = prefix[later - 1, 1]
    predictions = np.empty(n, dtype=bool)
    predictions[order] = state_before >= 2
    return predictions


def predictor_outcome_bank(pcs, taken, kind="gap", **kwargs):
    """Per-branch mispredict flags for one ``(pc, outcome)`` stream.

    Equivalent to replaying the stream through
    ``make_predictor(kind, **kwargs)`` and recording each update's
    mispredict outcome, but computed with numpy.  ``pcs`` and ``taken``
    are parallel arrays (any int / bool dtypes).
    """
    pcs = np.asarray(pcs, dtype=np.int64)
    taken = np.asarray(taken, dtype=bool)
    model = make_predictor(kind, **kwargs)
    if isinstance(model, AlwaysNotTaken):
        return taken.copy()
    if isinstance(model, AlwaysTaken):
        return ~taken
    if isinstance(model, Bimodal):
        indices = pcs & (model.entries - 1)
    elif isinstance(model, TwoLevelGAp):
        history = _global_history(taken, model.history_bits)
        indices = (((pcs & ((1 << model.pc_bits) - 1))
                    << model.history_bits) | history)
    elif isinstance(model, GShare):
        history = _global_history(taken, model.history_bits)
        indices = (pcs ^ history) & ((1 << model.history_bits) - 1)
    else:  # unknown registered predictor: fall back to the scalar spec
        flags = np.empty(len(pcs), dtype=bool)
        update = model.update
        predict = model._predict
        for position, (pc, was_taken) in enumerate(
                zip(pcs.tolist(), taken.tolist())):
            flags[position] = predict(pc) != was_taken
            update(pc, was_taken)
        return flags
    predictions = _counter_predictions(indices, taken)
    return predictions != taken


def simulate_predictor(trace, kind="gap", **kwargs):
    """Replay all conditional branches of a trace through a predictor.

    Returns the predictor (its ``stats`` hold the misprediction rate).
    Outcomes come from the vectorized :func:`predictor_outcome_bank`;
    :func:`simulate_predictor_reference` is the scalar specification
    this is equality-tested against.  The returned predictor's *stats*
    are exact; its internal table state is not replayed.
    """
    predictor = make_predictor(kind, **kwargs)
    branch_positions = trace.branch_indices()
    pcs = trace.pcs[branch_positions]
    outcomes = trace.taken[branch_positions] == 1
    mispredicts = predictor_outcome_bank(pcs, outcomes, kind, **kwargs)
    predictor.stats.lookups = len(pcs)
    predictor.stats.mispredictions = int(np.count_nonzero(mispredicts))
    return predictor


def simulate_predictor_reference(trace, kind="gap", **kwargs):
    """The original per-branch loop, kept as the executable spec for
    :func:`simulate_predictor` (differential tests compare both)."""
    predictor = make_predictor(kind, **kwargs)
    update = predictor.update
    branch_positions = trace.branch_indices()
    pcs = trace.pcs[branch_positions].tolist()
    outcomes = (trace.taken[branch_positions] == 1).tolist()
    for pc, taken in zip(pcs, outcomes):
        update(pc, taken)
    return predictor
