"""Branch direction predictors.

The base machine uses the paper's 2-level GAp predictor (global history
register, per-address pattern history tables); design change 4 swaps it
for always-not-taken.  Bimodal and gshare are included for wider studies.
All predictors share the ``predict(pc) -> bool`` / ``update(pc, taken)``
protocol and track their own accuracy.
"""


class _PredictorStats:
    __slots__ = ("lookups", "mispredictions")

    def __init__(self):
        self.lookups = 0
        self.mispredictions = 0

    @property
    def misprediction_rate(self):
        if self.lookups == 0:
            return 0.0
        return self.mispredictions / self.lookups


class BranchPredictorBase:
    """Shared bookkeeping; subclasses implement _predict/_update."""

    def __init__(self):
        self.stats = _PredictorStats()

    def predict(self, pc):
        return self._predict(pc)

    def update(self, pc, taken):
        self.stats.lookups += 1
        if self._predict(pc) != taken:
            self.stats.mispredictions += 1
        self._update(pc, taken)

    def _predict(self, pc):
        raise NotImplementedError

    def _update(self, pc, taken):
        raise NotImplementedError


class AlwaysNotTaken(BranchPredictorBase):
    def _predict(self, pc):
        return False

    def _update(self, pc, taken):
        pass


class AlwaysTaken(BranchPredictorBase):
    def _predict(self, pc):
        return True

    def _update(self, pc, taken):
        pass


class Bimodal(BranchPredictorBase):
    """PC-indexed 2-bit saturating counters."""

    def __init__(self, entries=2048):
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.counters = [1] * entries  # weakly not-taken

    def _index(self, pc):
        return pc & (self.entries - 1)

    def _predict(self, pc):
        return self.counters[self._index(pc)] >= 2

    def _update(self, pc, taken):
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)


class TwoLevelGAp(BranchPredictorBase):
    """2-level GAp: one Global history register, per-Address PHTs.

    The pattern-history-table index concatenates low PC bits with the
    global history, i.e. each static branch gets its own history-indexed
    table slice.
    """

    def __init__(self, history_bits=8, pc_bits=6):
        super().__init__()
        self.history_bits = history_bits
        self.pc_bits = pc_bits
        self.history = 0
        self.counters = [1] * (1 << (history_bits + pc_bits))

    def _index(self, pc):
        return ((pc & ((1 << self.pc_bits) - 1)) << self.history_bits) \
            | self.history

    def _predict(self, pc):
        return self.counters[self._index(pc)] >= 2

    def _update(self, pc, taken):
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) \
            & ((1 << self.history_bits) - 1)


class GShare(BranchPredictorBase):
    """Global history XOR-ed into the PC index."""

    def __init__(self, history_bits=10):
        super().__init__()
        self.history_bits = history_bits
        self.history = 0
        self.counters = [1] * (1 << history_bits)

    def _index(self, pc):
        return (pc ^ self.history) & ((1 << self.history_bits) - 1)

    def _predict(self, pc):
        return self.counters[self._index(pc)] >= 2

    def _update(self, pc, taken):
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) \
            & ((1 << self.history_bits) - 1)


_PREDICTORS = {
    "nottaken": AlwaysNotTaken,
    "taken": AlwaysTaken,
    "bimodal": Bimodal,
    "gap": TwoLevelGAp,
    "gshare": GShare,
}


def make_predictor(kind, **kwargs):
    """Instantiate a predictor by name (see keys of ``_PREDICTORS``)."""
    try:
        cls = _PREDICTORS[kind]
    except KeyError:
        raise ValueError(f"unknown predictor kind {kind!r}") from None
    return cls(**kwargs)


def simulate_predictor(trace, kind="gap", **kwargs):
    """Replay all conditional branches of a trace through a predictor.

    Returns the predictor (its ``stats`` hold the misprediction rate).
    """
    predictor = make_predictor(kind, **kwargs)
    update = predictor.update
    branch_positions = trace.branch_indices()
    pcs = trace.pcs[branch_positions].tolist()
    outcomes = (trace.taken[branch_positions] == 1).tolist()
    for pc, taken in zip(pcs, outcomes):
        update(pc, taken)
    return predictor
