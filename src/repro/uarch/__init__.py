"""Microarchitecture timing and power models (SimpleScalar/Wattch analog).

These are the *evaluation* substrates: the clone itself is generated from
microarchitecture-independent attributes only, and these models exist to
verify that real application and clone track each other when cache
geometry, branch predictors, and pipeline parameters change.
"""

from repro.uarch.cache import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    simulate_cache,
    simulate_cache_sweep,
)
from repro.uarch.branch_predictors import (
    AlwaysNotTaken,
    AlwaysTaken,
    Bimodal,
    GShare,
    TwoLevelGAp,
    make_predictor,
    simulate_predictor,
)
from repro.uarch.config import (
    BASE_CONFIG,
    CACHE_SWEEP,
    DESIGN_CHANGES,
    MachineConfig,
    cache_sweep_configs,
)
from repro.uarch.pipeline import PipelineModel, PipelineResult, simulate_pipeline
from repro.uarch.power import (
    PowerModel,
    estimate_power,
    power_key,
    reset_shared_power_models,
    shared_power_model,
)
from repro.uarch.sweep import (
    simulate_pipeline_sweep,
    simulate_predictor_sweep,
    sweep_stats_snapshot,
    trace_digest,
)
from repro.uarch.incremental import (
    IncrementalPlan,
    IncrementalSession,
    plan_incremental,
    plan_profile_delta,
)

__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BASE_CONFIG",
    "Bimodal",
    "CACHE_SWEEP",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "DESIGN_CHANGES",
    "GShare",
    "IncrementalPlan",
    "IncrementalSession",
    "MachineConfig",
    "PipelineModel",
    "PipelineResult",
    "PowerModel",
    "TwoLevelGAp",
    "cache_sweep_configs",
    "estimate_power",
    "make_predictor",
    "plan_incremental",
    "plan_profile_delta",
    "power_key",
    "reset_shared_power_models",
    "shared_power_model",
    "simulate_cache",
    "simulate_cache_sweep",
    "simulate_predictor",
    "simulate_predictor_sweep",
    "simulate_pipeline",
    "simulate_pipeline_sweep",
    "sweep_stats_snapshot",
    "trace_digest",
]
