"""Native scheduling loop: the sweep's timing inner loop in C.

The per-config cost of a grid study is dominated by executing run()'s
integer scheduling recurrence ~60k times per config in Python.  Every
input to that recurrence is already columnar — the digest's event
streams, the banks' per-access latencies, the program's decode columns
— so the loop ports directly to a ~100-line C function over int64
arrays with *no* per-instruction Python anywhere.

This module embeds that C source (an exact port of
``sweep._interpreted_range``, reviewed side by side and asserted
equivalent by the corpus differential suite), compiles it once per
machine through the shared :mod:`repro.native` toolchain into a
content-addressed shared library under the repro cache dir, and
exposes it through ctypes.  No third-party packages, no CPython API:
plain arrays in, mutated state out, so the same packed state can flow
between the Python kernels, the interpreted tail, and the native loop
mid-trace.

Everything degrades gracefully: no C compiler, a failed compile, or
``REPRO_NATIVE=off`` simply means :func:`available` is False and the
sweep keeps using the compiled-Python kernels and steady-state
fast-forward.  The semantics are identical either way; only the wall
time differs.
"""

import ctypes

import numpy as np

from repro.isa.instructions import IClass
from repro.native import toolchain

#: The class codes are baked into the C source; fail loudly at import
#: if the ISA enumeration ever drifts.
assert (int(IClass.IDIV), int(IClass.FDIV), int(IClass.LOAD),
        int(IClass.JUMP)) == (2, 5, 6, 9)

_C_SOURCE = r"""
#include <stdint.h>

/* Exact port of repro.uarch.sweep._interpreted_range: run()'s
 * scheduling recurrence over dynamic positions [low, high), consuming
 * precomputed cache/predictor event streams by cursor.  The packed
 * state mirrors _initial_state: 19 scalars, 64 register-ready times,
 * the ROB/LSQ/fetch-queue rings, and the flattened FU pools. */
int64_t repro_run_range(
    int64_t low, int64_t high,
    const int64_t *pcs,
    const int32_t *st_iclass, const int32_t *st_dest,
    const int32_t *st_src1, const int32_t *st_src2,
    const int32_t *st_pool,
    const int64_t *latency_of_class,
    const int64_t *iacc_pos, const int64_t *iacc_extra, int64_t n_iacc,
    const int64_t *m_pos, const int64_t *dacc_lat, int64_t n_mem,
    const int64_t *b_pos, const uint8_t *b_taken, const uint8_t *b_miss,
    int64_t n_branch,
    int64_t width, int64_t in_order, int64_t rob_size, int64_t lsq_size,
    int64_t fetch_queue, int64_t mispredict_penalty, int64_t decode_depth,
    const int64_t *pool_base, const int64_t *pool_sizes,
    int64_t *sc, int64_t *reg_ready, int64_t *rob_ring,
    int64_t *lsq_ring, int64_t *fetchq_ring, int64_t *fus)
{
    int64_t i = sc[0], fetch_cycle = sc[1], fetch_used = sc[2];
    int64_t fetch_break = sc[3], fetch_stall_until = sc[4];
    int64_t last_issue = sc[5], last_commit = sc[6], mem_index = sc[7];
    int64_t dispatch_cycle = sc[8], dispatch_used = sc[9];
    int64_t commit_cycle = sc[10], commit_used = sc[11];
    int64_t rob_stalls = sc[12], lsq_stalls = sc[13];
    int64_t fetch_queue_stalls = sc[14], redirect_cycles = sc[15];
    int64_t ii = sc[16], di = sc[17], bi = sc[18];

    for (int64_t position = low; position < high; position++) {
        int64_t pc = pcs[position];
        int32_t iclass = st_iclass[pc];

        /* fetch */
        if (fetch_stall_until > fetch_cycle) {
            redirect_cycles += fetch_stall_until - fetch_cycle;
            fetch_cycle = fetch_stall_until;
            fetch_used = 0;
            fetch_break = 0;
        }
        if (ii < n_iacc && iacc_pos[ii] == position) {
            int64_t extra = iacc_extra[ii];
            ii++;
            if (extra) {
                fetch_cycle += extra;
                fetch_used = 0;
                fetch_break = 0;
            }
        }
        if (fetch_break || fetch_used >= width) {
            fetch_cycle += 1;
            fetch_used = 0;
            fetch_break = 0;
        }
        int64_t fetch_time = fetch_cycle;
        fetch_used += 1;

        int64_t queue_slot = i % fetch_queue;
        if (fetch_time < fetchq_ring[queue_slot]) {
            fetch_time = fetchq_ring[queue_slot];
            fetch_cycle = fetch_time;
            fetch_used = 1;
            fetch_queue_stalls += 1;
        }

        /* dispatch */
        int64_t dispatch_earliest = fetch_time + decode_depth;
        int64_t rob_slot = i % rob_size;
        if (rob_ring[rob_slot] > dispatch_earliest) {
            dispatch_earliest = rob_ring[rob_slot];
            rob_stalls += 1;
        }
        int is_mem = (di < n_mem && m_pos[di] == position);
        int64_t lsq_slot = 0;
        if (is_mem) {
            lsq_slot = mem_index % lsq_size;
            if (lsq_ring[lsq_slot] > dispatch_earliest) {
                dispatch_earliest = lsq_ring[lsq_slot];
                lsq_stalls += 1;
            }
        }
        if (dispatch_earliest > dispatch_cycle) {
            dispatch_cycle = dispatch_earliest;
            dispatch_used = 1;
        } else if (dispatch_used < width) {
            dispatch_used += 1;
        } else {
            dispatch_cycle += 1;
            dispatch_used = 1;
        }
        fetchq_ring[queue_slot] = dispatch_cycle;

        /* issue */
        int64_t ready = dispatch_cycle + 1;
        int32_t src = st_src1[pc];
        if (src >= 0) {
            if (reg_ready[src] > ready) ready = reg_ready[src];
            src = st_src2[pc];
            if (src >= 0 && reg_ready[src] > ready) ready = reg_ready[src];
        }
        if (in_order && ready < last_issue) ready = last_issue;

        int32_t pool = st_pool[pc];
        int64_t base = pool_base[pool];
        int64_t end = base + pool_sizes[pool];
        int64_t unit = base;
        int64_t unit_free = fus[base];
        for (int64_t u = base + 1; u < end; u++) {
            if (fus[u] < unit_free) {
                unit_free = fus[u];
                unit = u;
            }
        }
        int64_t issue_time = ready > unit_free ? ready : unit_free;
        if (in_order) last_issue = issue_time;

        /* execute */
        int64_t complete;
        if (is_mem) {
            complete = issue_time + (iclass == 6 ? dacc_lat[di] : 1);
            di++;
        } else {
            complete = issue_time + latency_of_class[iclass];
        }
        fus[unit] = (iclass == 2 || iclass == 5) ? complete
                                                 : issue_time + 1;
        int32_t dest = st_dest[pc];
        if (dest >= 0) reg_ready[dest] = complete;

        /* control flow */
        if (bi < n_branch && b_pos[bi] == position) {
            if (b_miss[bi]) {
                int64_t redirect = complete + mispredict_penalty;
                if (redirect > fetch_stall_until)
                    fetch_stall_until = redirect;
            } else if (b_taken[bi]) {
                fetch_break = 1;
            }
            bi++;
        } else if (iclass == 9) {
            fetch_break = 1;
        }

        /* commit */
        int64_t commit_earliest = complete + 1;
        if (commit_earliest < last_commit) commit_earliest = last_commit;
        if (commit_earliest > commit_cycle) {
            commit_cycle = commit_earliest;
            commit_used = 1;
        } else if (commit_used < width) {
            commit_used += 1;
        } else {
            commit_cycle += 1;
            commit_used = 1;
        }
        last_commit = commit_cycle;
        rob_ring[rob_slot] = commit_cycle;
        if (is_mem) {
            lsq_ring[lsq_slot] = commit_cycle;
            mem_index += 1;
        }
        i += 1;
    }

    sc[0] = i; sc[1] = fetch_cycle; sc[2] = fetch_used;
    sc[3] = fetch_break; sc[4] = fetch_stall_until;
    sc[5] = last_issue; sc[6] = last_commit; sc[7] = mem_index;
    sc[8] = dispatch_cycle; sc[9] = dispatch_used;
    sc[10] = commit_cycle; sc[11] = commit_used;
    sc[12] = rob_stalls; sc[13] = lsq_stalls;
    sc[14] = fetch_queue_stalls; sc[15] = redirect_cycles;
    sc[16] = ii; sc[17] = di; sc[18] = bi;
    return 0;
}
"""

_I64 = ctypes.POINTER(ctypes.c_int64)
_I32 = ctypes.POINTER(ctypes.c_int32)
_U8 = ctypes.POINTER(ctypes.c_uint8)

#: None = not yet probed, False = unavailable, else the ctypes function.
_RUN_RANGE = None


def _load():
    """The ctypes entry point, probing/compiling on first use."""
    global _RUN_RANGE
    if _RUN_RANGE is not None:
        return _RUN_RANGE or None
    library = toolchain.load_library(_C_SOURCE, "sweeploop")
    if library is None:
        _RUN_RANGE = False
        return None
    run_range = library.repro_run_range
    run_range.restype = ctypes.c_int64
    run_range.argtypes = [
        ctypes.c_int64, ctypes.c_int64,                    # low, high
        _I64,                                              # pcs
        _I32, _I32, _I32, _I32, _I32,                      # static
        _I64,                                              # latencies
        _I64, _I64, ctypes.c_int64,                        # iacc
        _I64, _I64, ctypes.c_int64,                        # dacc
        _I64, _U8, _U8, ctypes.c_int64,                    # branches
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_int64,                                    # config
        _I64, _I64,                                        # pools
        _I64, _I64, _I64, _I64, _I64, _I64,                # state
    ]
    _RUN_RANGE = run_range
    return _RUN_RANGE


def available():
    """Whether the native loop can be used (compiles lazily)."""
    return _load() is not None


def reset():
    """Forget the probe result (tests toggling REPRO_NATIVE)."""
    global _RUN_RANGE
    _RUN_RANGE = None
    toolchain.reset()


def _static_columns(columns):
    """C-facing int32 copies of the decode columns, built once."""
    cached = columns.derived.get("native_static")
    if cached is None:
        cached = (
            columns.iclass.astype(np.int32),
            columns.dest.astype(np.int32),
            columns.src1.astype(np.int32),
            columns.src2.astype(np.int32),
            np.asarray(columns.pool_list, dtype=np.int32),
        )
        columns.derived["native_static"] = cached
    return cached


def _ptr64(array):
    return array.ctypes.data_as(_I64)


def run_range(low, high, digest, config, cache_bank, pred_bank, state):
    """Drop-in replacement for ``_interpreted_range`` via the C loop.

    Packs the scheduling state into int64 scratch arrays, runs the
    native loop, and unpacks — so callers can mix native and Python
    execution of the same trace at any boundary.
    """
    run = _load()
    iclass, dest, src1, src2, pool = _static_columns(
        digest.static.columns)
    latencies = np.array(
        (config.latency_ialu, config.latency_imul, config.latency_idiv,
         config.latency_falu, config.latency_fmul, config.latency_fdiv,
         0, 1, config.latency_ialu, config.latency_ialu,
         config.latency_ialu), dtype=np.int64)
    iacc_pos, _ = digest.iacc(cache_bank.shift)
    sizes = np.array(
        (config.n_int_alu, config.n_int_mul, config.n_fp_alu,
         config.n_fp_mul, config.n_mem_ports), dtype=np.int64)
    base = np.concatenate(([0], np.cumsum(sizes)[:-1]))

    scalars = np.array([int(value) for value in state[0]], dtype=np.int64)
    reg_ready = np.array(state[1], dtype=np.int64)
    rob_ring = np.array(state[2], dtype=np.int64)
    lsq_ring = np.array(state[3], dtype=np.int64)
    fetchq_ring = np.array(state[4], dtype=np.int64)
    fus = np.array(state[5], dtype=np.int64)

    run(low, high, _ptr64(digest.pcs),
        iclass.ctypes.data_as(_I32), dest.ctypes.data_as(_I32),
        src1.ctypes.data_as(_I32), src2.ctypes.data_as(_I32),
        pool.ctypes.data_as(_I32), _ptr64(latencies),
        _ptr64(iacc_pos), _ptr64(cache_bank.iacc_extra), len(iacc_pos),
        _ptr64(digest.m_pos), _ptr64(cache_bank.dacc_lat),
        len(digest.m_pos), _ptr64(digest.b_pos),
        digest.b_taken.ctypes.data_as(_U8),
        pred_bank.miss.ctypes.data_as(_U8), len(digest.b_pos),
        config.width, int(config.in_order), config.rob_size,
        config.lsq_size, config.fetch_queue, config.mispredict_penalty,
        _decode_depth(), _ptr64(base), _ptr64(sizes),
        _ptr64(scalars), _ptr64(reg_ready), _ptr64(rob_ring),
        _ptr64(lsq_ring), _ptr64(fetchq_ring), _ptr64(fus))

    state[0] = tuple(int(value) for value in scalars)
    state[1] = reg_ready.tolist()
    state[2] = rob_ring.tolist()
    state[3] = lsq_ring.tolist()
    state[4] = fetchq_ring.tolist()
    state[5] = tuple(fus.tolist())


def _decode_depth():
    from repro.uarch.pipeline import DECODE_DEPTH
    return DECODE_DEPTH
