"""Steady-state detection and exact fast-forward for the sweep engine.

A capped trace of a loopy program spends almost all of its instructions
in a periodic steady state: the block-visit sequence repeats, the
cache/predictor event streams repeat, and — once the period is extended
so every ring buffer returns to the same slot alignment — the packed
scheduling state advances by a *constant* delta per period (every live
cycle-valued component shifts by the same number of cycles, counters
and event cursors advance by fixed strides).  From that point on,
executing another period is a no-op re-derivation: the remaining k
periods can be applied in O(1) as ``state += k * delta``.

The catch is exactness — the sweep contract is bit-identity with
``PipelineModel.run`` — so every step is either *verified on the trace*
or *proved dead*:

* **Segment detection** (:func:`find_segment`) finds the longest visit
  range where the block sequence is periodic at some lag ``p`` AND all
  four event streams (I-access extra latencies, data-access latencies,
  branch mispredicts, branch taken flags) repeat in both position and
  value.  This is vectorized numpy over the whole trace, so the
  extrapolated periods are known — not assumed — to see the same
  inputs as the verified ones.
* **Alignment** (:func:`plan`) extends the period so the ROB, LSQ and
  fetch-queue rings index the same slots every period (a multiple of
  each ring's slot-cycle length), which is what lets the per-slot state
  deltas be constant at all.
* **Classification** (:func:`classify`) takes three state snapshots one
  extended period apart and accepts only when both transitions have
  identical elementwise deltas, every live cycle component shifts by
  one common ``c``, bandwidth/mode scalars are exactly equal, and every
  *non*-shifting (frozen) component is provably dead: its value is at
  or below a floor that every future scheduling comparison exceeds
  (fetch/dispatch cycles only grow), so it can never win a comparison
  it did not already win in the verified periods.  Anything else —
  a predictor still warming up, a frozen FU in a live pool that a
  growing free time could overtake, a drifting stall counter — is
  rejected and the config simply keeps executing.

Rejection costs two period executions; acceptance replaces the bulk of
the timing loop.  ``tests/test_uarch_sweep.py`` and
``tests/test_steady.py`` assert the fast-forwarded results stay
bit-identical across the corpus and the design-change grid.
"""

import math

import numpy as np

from repro.isa.columns import POOL_OF_CLASS

#: Don't hunt for periodicity in traces with fewer complete visits.
MIN_SEGMENT_VISITS = 256
#: Longest block-visit period considered.
MAX_PERIOD_VISITS = 64
#: Fast-forward must cover at least this many extended periods beyond
#: the two verification windows to be worth the snapshots.
MIN_FF_PERIODS = 4
#: Extra verification slides allowed while the pipeline drains its
#: warmup transient before classification gives up.
MAX_CLASSIFY_TRIES = 4

#: Scalar-state indices (see the kernel prologue/_initial_state):
#: cycle-valued components that must all shift by the common ``c``.
_SHIFT_SCALARS = (1, 6, 8, 10)   # fetch, last_commit, dispatch, commit
#: Bandwidth/mode scalars that must be exactly equal across snapshots.
_MODE_SCALARS = (2, 3, 9, 11)    # fetch_used/break, dispatch/commit_used


class Segment:
    """A verified periodic visit range: for every visit ``v`` in
    ``[start + period, end)``, block ``v`` equals block ``v - period``
    and the event streams repeat with the matching instruction lag."""

    __slots__ = ("period", "start", "end")

    def __init__(self, period, start, end):
        self.period = period
        self.start = start
        self.end = end


class Plan:
    """One config's alignment of a segment: ``ext_visits`` is the
    ring-aligned extended period, ``limit`` the last visit extrapolation
    may reach (segment end capped by the kernel prefix)."""

    __slots__ = ("anchor", "ext_visits", "ext_instr", "limit")

    def __init__(self, anchor, ext_visits, ext_instr, limit):
        self.anchor = anchor
        self.ext_visits = ext_visits
        self.ext_instr = ext_instr
        self.limit = limit


# ----------------------------------------------------------------------
# Segment detection
# ----------------------------------------------------------------------
def _longest_run(mask):
    """(start, end) of the longest run of True, (0, 0) when none."""
    if not mask.any():
        return 0, 0
    padded = np.empty(len(mask) + 2, dtype=np.int8)
    padded[0] = padded[-1] = 0
    padded[1:-1] = mask
    edges = np.diff(padded)
    starts = np.nonzero(edges == 1)[0]
    ends = np.nonzero(edges == -1)[0]
    best = int(np.argmax(ends - starts))
    return int(starts[best]), int(ends[best])


def _candidate_periods(visits):
    """Likely visit periods: the gap structure of the hottest block.

    A loop's most-visited block recurs once per iteration, so the
    dominant gaps between its occurrences (and small sums/multiples of
    them, for unrolled or alternating iterations) are the only lags
    worth scoring — a full autocorrelation over every lag would cost
    more than the fast-forward saves.
    """
    candidates = {1, 2, 3, 4}
    occurrences = np.nonzero(visits == np.argmax(np.bincount(visits)))[0]
    if len(occurrences) >= 8:
        gaps = np.diff(occurrences)
        values, counts = np.unique(gaps, return_counts=True)
        top = values[np.argsort(-counts)][:3]
        for gap in top:
            gap = int(gap)
            if 1 <= gap <= MAX_PERIOD_VISITS:
                candidates.add(gap)
                if gap * 2 <= MAX_PERIOD_VISITS:
                    candidates.add(gap * 2)
        if len(top) >= 2 and int(top[0] + top[1]) <= MAX_PERIOD_VISITS:
            candidates.add(int(top[0] + top[1]))
    return sorted(candidates)


def _visit_run(digest, shift):
    """Longest lag-``p`` self-match of (visit blocks, visit-first-I-access)
    over the complete-visit region; cached per digest and line size.

    Returns ``(p, lo, hi)`` — matches hold for visits in ``[lo, hi)`` —
    or None.  Config-independent apart from the I-line size, so every
    hierarchy/predictor combination shares it.
    """
    cached = digest.steady_runs.get(shift)
    if cached is not None:
        return cached or None
    result = None
    visits = digest.visit_blocks[:digest.complete_visits]
    if len(visits) >= MIN_SEGMENT_VISITS:
        flags = np.zeros(digest.n, dtype=bool)
        flags[digest.iacc(shift)[0]] = True
        vfi = flags[digest.visit_starts[:len(visits)]]
        best = None
        for period in _candidate_periods(visits):
            if period * 4 >= len(visits):
                continue
            ok = visits[period:] == visits[:-period]
            ok &= vfi[period:] == vfi[:-period]
            start, end = _longest_run(ok)
            if best is None or end - start > best[2] - best[1]:
                best = (period, start, end)
        if best is not None:
            period, start, end = best
            lo, hi = start + period, end + period
            if hi - lo >= max(MIN_SEGMENT_VISITS, 4 * period):
                result = (period, lo, hi)
    digest.steady_runs[shift] = result if result is not None else False
    return result


def _event_violations(positions, values, pos_lo, pos_hi, lag):
    """Instruction positions where a (position, value) event stream
    breaks lag-``lag`` periodicity inside ``[pos_lo, pos_hi)``.

    Forward check: every event in the window must have a partner event
    exactly one period earlier with the same value (catches inserted
    events and changed outcomes).  Reverse check: every event one
    period earlier must recur (catches deleted events).
    """
    lo = int(np.searchsorted(positions, pos_lo, side="left"))
    hi = int(np.searchsorted(positions, pos_hi, side="left"))
    current = positions[lo:hi]
    if len(current) == 0:
        # No events in the window: any event one period back would have
        # had to recur, so report those positions as violations.
        prev_lo = int(np.searchsorted(positions, pos_lo - lag, "left"))
        prev_hi = int(np.searchsorted(positions, pos_hi - lag, "left"))
        return positions[prev_lo:prev_hi] + lag
    wanted = current - lag
    partner = np.clip(np.searchsorted(positions, wanted, side="left"),
                      0, len(positions) - 1)
    ok = (positions[partner] == wanted) & (values[partner] == values[lo:hi])
    bad_forward = current[~ok]
    prev_lo = int(np.searchsorted(positions, pos_lo - lag, side="left"))
    prev_hi = int(np.searchsorted(positions, pos_hi - lag, side="left"))
    previous = positions[prev_lo:prev_hi]
    expected = previous + lag
    successor = np.clip(np.searchsorted(positions, expected, side="left"),
                        0, len(positions) - 1)
    bad_reverse = expected[positions[successor] != expected]
    if len(bad_forward) == 0 and len(bad_reverse) == 0:
        return bad_forward
    return np.concatenate((bad_forward, bad_reverse))


def _visit_pos(digest, visit):
    if visit < len(digest.visit_starts):
        return int(digest.visit_starts[visit])
    return digest.n


def find_segment(digest, shift, cache_bank, pred_bank):
    """The longest fully verified periodic segment, or None.

    Verifies block-visit periodicity (shared across configs) and then
    the four event streams this hierarchy/predictor pair will actually
    consume; violations shrink the segment to the largest clean gap.
    """
    run = _visit_run(digest, shift)
    if run is None:
        return None
    period, lo, hi = run
    starts = digest.visit_starts
    pos_lo = int(starts[lo])
    pos_hi = _visit_pos(digest, hi)
    lag = pos_lo - int(starts[lo - period])
    if lag <= 0:
        return None
    iacc_pos, _ = digest.iacc(shift)
    violations = [
        _event_violations(iacc_pos, cache_bank.iacc_extra,
                          pos_lo, pos_hi, lag),
        _event_violations(digest.m_pos, cache_bank.dacc_lat,
                          pos_lo, pos_hi, lag),
        _event_violations(digest.b_pos, pred_bank.miss,
                          pos_lo, pos_hi, lag),
        _event_violations(digest.b_pos, digest.b_taken,
                          pos_lo, pos_hi, lag),
    ]
    bad_positions = np.concatenate(violations)
    if len(bad_positions):
        # Largest violation-free visit interval within [lo, hi).
        bad_visits = np.searchsorted(starts, np.unique(bad_positions),
                                     side="right") - 1
        bad_visits = np.unique(np.clip(bad_visits, lo, hi - 1))
        points = np.concatenate(([lo - 1], bad_visits, [hi]))
        gaps = np.diff(points)
        best = int(np.argmax(gaps))
        lo, hi = int(points[best]) + 1, int(points[best + 1])
        if hi - lo < max(MIN_SEGMENT_VISITS, 4 * period):
            return None
    return Segment(period, lo - period, hi)


# ----------------------------------------------------------------------
# Per-config alignment
# ----------------------------------------------------------------------
def plan(segment, config, digest, v_stop):
    """Ring-align the segment for one config; None when not worth it.

    The extended period is the base visit period times the least common
    slot-cycle of the three rings: after ``ext_visits`` visits the ROB
    and fetch queue (indexed by instruction count) and the LSQ (indexed
    by memory-op count) address exactly the same slots again, which is
    a precondition for the per-slot deltas to be constant.
    """
    starts = digest.visit_starts
    period = segment.period
    anchor = segment.start
    instr = int(starts[anchor + period]) - int(starts[anchor])
    if instr <= 0:
        return None
    mem = int(np.searchsorted(digest.m_pos, starts[anchor + period])
              - np.searchsorted(digest.m_pos, starts[anchor]))
    multiplier = 1
    for size, stride in ((config.rob_size, instr),
                         (config.fetch_queue, instr),
                         (config.lsq_size, mem)):
        multiplier = math.lcm(multiplier, size // math.gcd(stride, size))
    ext_visits = period * multiplier
    limit = min(segment.end, v_stop)
    if ext_visits <= 0 or (limit - anchor) // ext_visits < 2 + MIN_FF_PERIODS:
        return None
    return Plan(anchor, ext_visits, instr * multiplier, limit)


def pools_used(segment, digest):
    """Which FU pools issue at least once per period (static block mix)."""
    blocks = digest.visit_blocks[segment.start:segment.start
                                 + segment.period]
    mix = digest.static.columns.mix_matrix()[blocks].sum(axis=0)
    used = [False] * 5
    for klass, count in enumerate(mix):
        if count:
            used[POOL_OF_CLASS[klass]] = True
    return tuple(used)


# ----------------------------------------------------------------------
# Snapshot / classify / extrapolate
# ----------------------------------------------------------------------
def snapshot(state):
    """Immutable copy of the packed scheduling state."""
    return (state[0], tuple(state[1]), tuple(state[2]), tuple(state[3]),
            tuple(state[4]), state[5])


def _array_deltas(first, second, third, c_shift, floor):
    """Per-slot deltas for one state array, or None.

    Each slot must either shift by the common ``c`` both times (live) or
    stay exactly constant at a value at or below ``floor`` (dead: every
    comparison it participates in is against a quantity that never
    drops below the floor again, so it keeps losing forever).
    """
    deltas = []
    for a, b, c in zip(first, second, third):
        delta = b - a
        if c - b != delta:
            return None
        if delta == 0:
            if a > floor:
                return None
        elif delta != c_shift:
            return None
        deltas.append(delta)
    return deltas


def classify(s_a, s_b, s_c, config, used_pools):
    """The per-period state delta, or None when not provably steady.

    ``s_a``/``s_b``/``s_c`` are snapshots exactly one extended period
    apart.  Acceptance requires both transitions to agree elementwise
    and every component to fall into a proven-exact category (see the
    module docstring); the returned delta then holds for *every*
    further period inside the verified segment.
    """
    a0, b0, c0 = s_a[0], s_b[0], s_c[0]
    scalar_deltas = tuple(b - a for a, b in zip(a0, b0))
    if tuple(c - b for b, c in zip(b0, c0)) != scalar_deltas:
        return None
    c_shift = scalar_deltas[1]
    if c_shift <= 0:
        return None
    for index in _MODE_SCALARS:
        if scalar_deltas[index] != 0:
            return None
    for index in _SHIFT_SCALARS:
        if scalar_deltas[index] != c_shift:
            return None
    # fetch_stall_until: shifts with the redirect stream, or is a stale
    # value at/below the fetch cycle (only ever compared via
    # `> fetch_cycle`, which monotonically grows past it).
    if scalar_deltas[4] != c_shift \
            and not (scalar_deltas[4] == 0 and a0[4] <= a0[1]):
        return None
    # last_issue: written per instruction when in-order (must shift);
    # never read otherwise (any frozen value is dead).
    if scalar_deltas[5] != c_shift \
            and (config.in_order or scalar_deltas[5] != 0):
        return None
    floor_ring = a0[1]      # fetch_cycle at the first snapshot
    floor_reg = a0[8] + 1   # dispatch_cycle + 1 lower-bounds `ready`
    reg_deltas = _array_deltas(s_a[1], s_b[1], s_c[1], c_shift, floor_reg)
    rob_deltas = _array_deltas(s_a[2], s_b[2], s_c[2], c_shift, floor_ring)
    lsq_deltas = _array_deltas(s_a[3], s_b[3], s_c[3], c_shift, floor_ring)
    fq_deltas = _array_deltas(s_a[4], s_b[4], s_c[4], c_shift, floor_ring)
    if None in (reg_deltas, rob_deltas, lsq_deltas, fq_deltas):
        return None
    # FU pools: a pool that issues during the period must have *every*
    # unit shifting — a frozen unit only loses the min-scan while the
    # live units' free times are below it, and those grow without
    # bound, so it would eventually be picked and change the schedule.
    # Unused pools are never scanned; any frozen values are dead.
    sizes = (config.n_int_alu, config.n_int_mul, config.n_fp_alu,
             config.n_fp_mul, config.n_mem_ports)
    fu_deltas = []
    offset = 0
    for pool, count in enumerate(sizes):
        for unit in range(offset, offset + count):
            delta = s_b[5][unit] - s_a[5][unit]
            if s_c[5][unit] - s_b[5][unit] != delta:
                return None
            if used_pools[pool]:
                if delta != c_shift:
                    return None
            elif delta != 0:
                return None
            fu_deltas.append(delta)
        offset += count
    return (scalar_deltas, reg_deltas, rob_deltas, lsq_deltas, fq_deltas,
            fu_deltas)


def apply_delta(state, delta, periods):
    """Advance the packed state by ``periods`` steady periods, exactly
    as executing them would."""
    (scalar_deltas, reg_deltas, rob_deltas, lsq_deltas, fq_deltas,
     fu_deltas) = delta
    state[0] = tuple(value + periods * step
                     for value, step in zip(state[0], scalar_deltas))
    state[1] = [value + periods * step
                for value, step in zip(state[1], reg_deltas)]
    state[2] = [value + periods * step
                for value, step in zip(state[2], rob_deltas)]
    state[3] = [value + periods * step
                for value, step in zip(state[3], lsq_deltas)]
    state[4] = [value + periods * step
                for value, step in zip(state[4], fq_deltas)]
    state[5] = tuple(value + periods * step
                     for value, step in zip(state[5], fu_deltas))
