"""Machine configurations: the paper's Table 2 base machine, the 28-point
L1 data-cache sweep (Section 5.1), and the five design changes of
Section 5.2 / Table 3."""

from dataclasses import dataclass, field, replace

from repro.uarch.cache import CacheConfig


@dataclass(frozen=True)
class MachineConfig:
    """Everything the pipeline timing and power models consume.

    Defaults reproduce the paper's Table 2 base configuration: 1-wide
    out-of-order, 16-entry reorder buffer, 8-entry load/store queue,
    2 integer ALUs + 1 FP multiplier + 1 FP ALU, 16KB/2-way L1 caches,
    64KB/4-way unified L2, 40-cycle memory, 2-level GAp predictor.
    """

    name: str = "base"
    width: int = 1  # fetch = decode = issue = commit width
    fetch_queue: int = 8
    rob_size: int = 16
    lsq_size: int = 8
    n_int_alu: int = 2
    n_int_mul: int = 1
    n_fp_alu: int = 1
    n_fp_mul: int = 1
    n_mem_ports: int = 1
    in_order: bool = False
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024, 2, 32))
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024, 2, 32))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 4, 64))
    l1_latency: int = 1
    l2_latency: int = 8
    memory_latency: int = 40
    predictor: str = "gap"
    predictor_kwargs: dict = field(default_factory=dict)
    mispredict_penalty: int = 5
    # Operation latencies per instruction class (loads come from caches).
    latency_ialu: int = 1
    latency_imul: int = 3
    latency_idiv: int = 12
    latency_falu: int = 2
    latency_fmul: int = 4
    latency_fdiv: int = 12

    def renamed(self, name, **changes):
        """A copy with a new name and the given field overrides."""
        return replace(self, name=name, **changes)


#: The paper's Table 2 machine.
BASE_CONFIG = MachineConfig()


def cache_sweep_configs(line=32):
    """The 28 L1 D-cache geometries of Section 5.1.

    Sizes 256B..16KB by powers of two, each direct-mapped, 2-way, 4-way,
    and fully associative; 32-byte lines; LRU.  The first entry (256B
    direct-mapped) is the reference point for relative miss-rate deltas.
    """
    configs = []
    for size_kb in (0.25, 0.5, 1, 2, 4, 8, 16):
        size = int(size_kb * 1024)
        for assoc in (1, 2, 4, "full"):
            configs.append(CacheConfig(size, assoc, line))
    return configs


#: Precomputed sweep used by the Figure 4/5 experiments.
CACHE_SWEEP = cache_sweep_configs()


def design_changes(base=BASE_CONFIG):
    """The five Section 5.2 design changes, applied to ``base``.

    1. double ROB and LSQ entries;
    2. halve the L1 D-cache;
    3. double fetch/decode/issue width;
    4. replace the 2-level predictor with always-not-taken;
    5. switch issue to in-order.
    """
    return [
        base.renamed("2x-rob-lsq", rob_size=base.rob_size * 2,
                     lsq_size=base.lsq_size * 2),
        base.renamed("half-l1d",
                     l1d=CacheConfig(base.l1d.size // 2, base.l1d.assoc,
                                     base.l1d.line)),
        base.renamed("2x-width", width=base.width * 2),
        base.renamed("nottaken-bpred", predictor="nottaken"),
        base.renamed("in-order", in_order=True),
    ]


#: Precomputed design-change list used by Table 3 / Figures 8-9.
DESIGN_CHANGES = design_changes()
