"""One-pass multi-configuration microarchitecture sweep.

``simulate_pipeline_sweep(trace, configs)`` reproduces
``PipelineModel.run`` field for field over a whole configuration grid
while digesting the trace only once:

* **Trace digest** (:func:`trace_digest`) — config-independent tables:
  the block-visit sequence, branch and memory event streams, and
  per-line-size I-access event positions.  Computed once per trace,
  cached on it, and (for corpus-sized traces) persisted through the
  exec artifact store keyed by trace content + program fingerprint.
* **Cache outcome banks** — per-access L1I/L1D hit flags, the merged
  L2 miss-stream replay, and the per-event latency arrays the timing
  loop consumes, one bank per *distinct hierarchy* (configs sharing
  cache geometry and latencies share one bank).  Built on
  :func:`repro.uarch.cache.per_access_hits`; prefix sums make any
  ``max_instructions`` cut exact.
* **Predictor outcome banks** — per-branch mispredict flags per
  distinct predictor, from
  :func:`repro.uarch.branch_predictors.predictor_outcome_bank`.
* **Compiled scheduling kernels** — the remaining per-config work (the
  fetch/dispatch/issue/commit scheduling loop) is compiled once per
  (program, scheduling-knob) pair into a specialized function with one
  unrolled body per basic block (operands, latencies, FU pools and
  bandwidth ports folded to constants), dispatched over the block-visit
  sequence.  A generic interpreted loop finishes partially executed
  final blocks and serves as the full fallback whenever a trace breaks
  the block-structure assumptions.

The decomposition leans on trace invariants that are *validated*, not
assumed: traces enter at a block leader, visits walk their block
sequentially, and control transfers only appear block-last — any
violation flips ``blocks_ok`` and the config falls back to the
interpreted loop, which is an exact port of ``run``.

Everything observable (PipelineResult fields, cache stats, predictor
stats, the telemetry-gated stall counters) matches ``PipelineModel.run``
bit for bit; ``tests/test_uarch_sweep.py`` asserts equality across the
corpus and every design change.
"""

import hashlib
import marshal
import os
import sys
import time

import numpy as np

from repro.isa.columns import columns_for
from repro.isa.instructions import IClass
from repro.sim.trace import (TraceRef, _column_bytes,
                             combine_column_digests, write_npz)
from repro.obs.journal import emit_event
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.timing import span
from repro.uarch import native, steady
from repro.uarch.branch_predictors import (make_predictor,
                                           predictor_outcome_bank)
from repro.uarch.cache import per_access_hits
from repro.uarch.pipeline import DECODE_DEPTH, PipelineResult

_LOG = get_logger("repro.uarch.sweep")

#: Bump when digest/bank array layout or semantics change; combined
#: with the store's ARTIFACT_SCHEMA_VERSION in every persisted key.
BANK_SCHEMA_VERSION = 1

#: Traces shorter than this are not worth a store round-trip.
_PERSIST_MIN_INSTRUCTIONS = 10_000

#: Below this cut the timing loop is cheaper than steady-state
#: detection + verification snapshots, so fast-forward is skipped.
_STEADY_MIN_INSTRUCTIONS = 20_000

_LOAD = int(IClass.LOAD)
_STORE = int(IClass.STORE)
_BRANCH = int(IClass.BRANCH)
_JUMP = int(IClass.JUMP)
_IDIV = int(IClass.IDIV)
_FDIV = int(IClass.FDIV)

#: Functional-unit pools in state order; the class->pool mapping lives
#: with the shared columnar tables (repro.isa.columns.POOL_OF_CLASS).
_POOL_NAMES = ("ialu", "imul", "falu", "fmul", "mem")


# ----------------------------------------------------------------------
# Sweep statistics (feeds uarch.sweep.* telemetry and `repro report`)
# ----------------------------------------------------------------------
_INT_STATS = (
    "grids", "configs", "instructions",
    "digests_built", "digests_reused", "digests_loaded", "digests_saved",
    "digests_streamed",
    "cache_banks_built", "cache_banks_reused", "cache_banks_loaded",
    "cache_banks_saved",
    "pred_banks_built", "pred_banks_reused", "pred_banks_loaded",
    "pred_banks_saved",
    "kernels_compiled", "kernels_reused", "kernels_loaded",
    "kernels_saved", "fallback_configs", "native_configs",
    "distinct_hierarchies", "distinct_predictors",
    "steady_segments", "steady_ff_configs", "steady_ff_instructions",
    "steady_rejects",
    "incremental_plans", "incremental_full_rebuilds",
    "incremental_reused_artifacts", "incremental_rebuilt_artifacts",
    "predictor_sweeps", "predictor_sweep_kinds",
    "power_models_built", "power_models_reused",
)
_FLOAT_STATS = ("codegen_seconds", "config_seconds", "grid_seconds",
                "steady_seconds")

_SWEEP_STATS = {key: 0 for key in _INT_STATS}
_SWEEP_STATS.update({key: 0.0 for key in _FLOAT_STATS})


def _note(key, amount=1):
    _SWEEP_STATS[key] += amount
    if REGISTRY.enabled:
        REGISTRY.counter(f"uarch.sweep.{key}").inc(amount)


def _note_seconds(key, seconds):
    _SWEEP_STATS[key] += seconds
    if REGISTRY.enabled:
        REGISTRY.gauge(f"uarch.sweep.{key}").set(_SWEEP_STATS[key])


def sweep_stats_snapshot():
    """Process-cumulative sweep accounting (manifests, `repro report`)."""
    snapshot = dict(_SWEEP_STATS)
    configs = snapshot["configs"]
    snapshot["mean_config_seconds"] = (
        snapshot["config_seconds"] / configs if configs else 0.0)
    return snapshot


def reset_sweep_stats():
    """Zero the cumulative counters (tests and per-command accounting)."""
    for key in _INT_STATS:
        _SWEEP_STATS[key] = 0
    for key in _FLOAT_STATS:
        _SWEEP_STATS[key] = 0.0


# ----------------------------------------------------------------------
# Static per-program tables
# ----------------------------------------------------------------------
class _StaticTables:
    """Sweep-facing view of the shared :class:`ProgramColumns`.

    A pure field-renaming adapter — no per-instruction work happens
    here; every array is the columns' own (iclass widened to int64 for
    the bincount/codegen paths that always used that dtype).  The
    kernels assume blocks tile the program in bid order with control
    transfers only in the block-last slot (``structure_ok``); anything
    else routes through the interpreted fallback.
    """

    __slots__ = (
        "n", "pc_addresses", "iclass", "iclass_list", "dest_list",
        "srcs_list", "pool_list", "is_mem", "is_cond", "block_start",
        "block_id", "block_bounds", "block_size", "structure_ok",
        "columns",
    )

    def __init__(self, columns):
        self.columns = columns
        self.n = columns.n
        self.pc_addresses = columns.pc_addresses
        self.iclass = columns.iclass.astype(np.int64)
        self.iclass_list = columns.iclass_list
        self.dest_list = columns.dest_list
        self.srcs_list = columns.srcs_list
        self.pool_list = columns.pool_list
        self.is_mem = columns.is_mem
        self.is_cond = columns.is_cond
        self.block_start = columns.is_block_start
        self.block_id = columns.block_of
        self.block_bounds = columns.block_bounds
        self.block_size = columns.block_size
        self.structure_ok = columns.structure_ok

    def fingerprint(self):
        """Content hash of everything the kernels/banks depend on."""
        return self.columns.fingerprint()


def _static_tables(program):
    cached = getattr(program, "_sweep_static", None)
    if cached is not None:
        return cached
    static = _StaticTables(columns_for(program))
    program._sweep_static = static
    return static


# ----------------------------------------------------------------------
# Trace digest
# ----------------------------------------------------------------------
class TraceDigest:
    """Config-independent tables for one trace (built or restored once).

    Also acts as the per-trace home for outcome banks and derived lists,
    so repeated sweeps over the same trace share everything.
    """

    def __init__(self, trace, _restored=None, _prebuilt=None):
        self.trace = trace
        self.static = _static_tables(trace.program)
        self.n = len(trace)
        self.pcs = np.asarray(trace.pcs, dtype=np.int64)
        self._iacc = {}        # shift -> (event positions, line indices)
        self._iacc_lists = {}  # shift -> positions as a plain list
        self._vfi = {}         # shift -> visit-first-I-access flags
        self._visits_list = None
        self._pcs_list = None
        self._m_pos_list = None
        self._b_pos_list = None
        self._b_taken_list = None
        self.cache_banks = {}  # hierarchy key -> _CacheBank
        self.pred_banks = {}   # predictor key -> _PredictorBank
        self.steady_runs = {}  # shift -> visit-periodicity run | False
        self.steady = {}       # (shift, hier, pred) -> Segment | False
        self._prefix = {}      # total -> (v_stop, covered)
        self._class_counts = {}
        self._persisted = False
        if _restored is not None:
            self._restore(*_restored)
        elif _prebuilt is not None:
            # Event streams accumulated chunk-by-chunk by the streaming
            # acquisition path; only the visit derivation (cheap, over
            # the retained pcs column) remains.
            for name in ("b_pos", "b_pcs", "b_taken", "m_pos", "m_addrs",
                         "masks_agree"):
                setattr(self, name, _prebuilt[name])
            self._derive_visits()
        else:
            self._build()

    # -- construction ---------------------------------------------------
    def _build(self):
        trace, static, n = self.trace, self.static, self.n
        branch_mask = trace.taken >= 0
        self.b_pos = np.nonzero(branch_mask)[0]
        self.b_pcs = self.pcs[self.b_pos]
        self.b_taken = trace.taken[self.b_pos] == 1
        memory_mask = (static.is_mem[self.pcs] if n
                       else np.zeros(0, dtype=bool))
        self.m_pos = np.nonzero(memory_mask)[0]
        self.m_addrs = trace.addrs[self.m_pos].astype(np.int64)
        # The kernels key branch handling off *static* cond-branch
        # positions; the banks and run() key it off dynamic taken>=0.
        # They must coincide for the compiled path to be exact.
        self.masks_agree = bool(
            np.array_equal(branch_mask, static.is_cond[self.pcs])
            if n else True)
        self._derive_visits()

    def _derive_visits(self):
        static, n = self.static, self.n
        empty = np.zeros(0, dtype=np.int64)
        self.visit_starts = empty
        self.visit_blocks = empty
        self.visit_ends = empty
        self.complete_visits = 0
        self.blocks_ok = False
        if (n == 0 or not static.structure_ok
                or not bool(static.block_start[self.pcs[0]])):
            return
        starts_mask = static.block_start[self.pcs]
        self.visit_starts = np.nonzero(starts_mask)[0]
        self.visit_blocks = static.block_id[self.pcs[self.visit_starts]]
        self.visit_ends = np.append(self.visit_starts[1:], n)
        sizes = static.block_size[self.visit_blocks]
        lengths = self.visit_ends - self.visit_starts
        full = lengths == sizes
        if full.all():
            self.complete_visits = len(full)
        elif bool(full[:-1].all()) and lengths[-1] < sizes[-1]:
            # Only the final visit may be cut short (trace cap).
            self.complete_visits = len(full) - 1
        else:
            return
        # Every visit must be a sequential walk of its block.
        visit_of = np.cumsum(starts_mask) - 1
        offsets = np.arange(n, dtype=np.int64) \
            - self.visit_starts[visit_of]
        block_first = np.array(
            [start for start, _ in static.block_bounds], dtype=np.int64)
        expected = block_first[self.visit_blocks[visit_of]] + offsets
        self.blocks_ok = (bool(np.array_equal(expected, self.pcs))
                          and self.masks_agree)

    def _restore(self, meta, arrays):
        self.b_pos = arrays["b_pos"]
        self.b_pcs = arrays["b_pcs"]
        self.b_taken = arrays["b_taken"].astype(bool)
        self.m_pos = arrays["m_pos"]
        self.m_addrs = arrays["m_addrs"]
        self.visit_starts = arrays["visit_starts"]
        self.visit_blocks = arrays["visit_blocks"]
        if len(self.visit_starts):
            self.visit_ends = np.append(self.visit_starts[1:], self.n)
        else:
            self.visit_ends = np.zeros(0, dtype=np.int64)
        self.blocks_ok = bool(meta["blocks_ok"])
        self.masks_agree = bool(meta["masks_agree"])
        self.complete_visits = int(meta["complete_visits"])
        for shift in meta.get("shifts", []):
            shift = int(shift)
            self._iacc[shift] = (arrays[f"iacc_pos_{shift}"],
                                 arrays[f"iacc_lines_{shift}"])
        self._persisted = True

    # -- derived tables -------------------------------------------------
    def iacc(self, shift):
        """I-access event (positions, line indices) for one line size.

        The event stream is the consecutive-deduplication of the dynamic
        line-index stream — exactly the accesses run()'s ``last_line``
        check performs, and prefix-stable under truncation.
        """
        cached = self._iacc.get(shift)
        if cached is None:
            lines = self.static.pc_addresses[self.pcs] >> shift
            change = np.empty(self.n, dtype=bool)
            if self.n:
                change[0] = True
                change[1:] = lines[1:] != lines[:-1]
            positions = np.nonzero(change)[0]
            cached = self._iacc[shift] = (positions, lines[positions])
        return cached

    def iacc_pos_list(self, shift):
        cached = self._iacc_lists.get(shift)
        if cached is None:
            cached = self._iacc_lists[shift] = self.iacc(shift)[0].tolist()
        return cached

    def vfi_list(self, shift):
        """Per-visit flag: does the visit's first instruction I-access?"""
        cached = self._vfi.get(shift)
        if cached is None:
            flags = np.zeros(self.n, dtype=bool)
            flags[self.iacc(shift)[0]] = True
            cached = self._vfi[shift] = flags[self.visit_starts].tolist()
        return cached

    def visits_list(self):
        if self._visits_list is None:
            self._visits_list = self.visit_blocks.tolist()
        return self._visits_list

    def pcs_list(self):
        if self._pcs_list is None:
            self._pcs_list = self.pcs.tolist()
        return self._pcs_list

    def m_pos_list(self):
        if self._m_pos_list is None:
            self._m_pos_list = self.m_pos.tolist()
        return self._m_pos_list

    def b_pos_list(self):
        if self._b_pos_list is None:
            self._b_pos_list = self.b_pos.tolist()
        return self._b_pos_list

    def b_taken_list(self):
        if self._b_taken_list is None:
            self._b_taken_list = self.b_taken.tolist()
        return self._b_taken_list

    def kernel_prefix(self, total):
        """(visit count, instructions covered) the kernel may run for a
        ``total``-instruction cut; the interpreted loop finishes the
        rest (a partial final visit, or a visit cut by the cap)."""
        cached = self._prefix.get(total)
        if cached is None:
            v_stop = int(np.searchsorted(self.visit_ends, total,
                                         side="right"))
            if v_stop > self.complete_visits:
                v_stop = self.complete_visits
            covered = int(self.visit_ends[v_stop - 1]) if v_stop else 0
            cached = self._prefix[total] = (v_stop, covered)
        return cached

    def class_counts(self, total):
        """Instruction-class histogram of the first ``total`` entries,
        exactly as run() computes it (callers copy before mutating)."""
        cached = self._class_counts.get(total)
        if cached is None:
            cached = [0] * IClass.COUNT
            if total:
                histogram = np.bincount(self.static.iclass[self.pcs[:total]],
                                        minlength=IClass.COUNT)
                cached = [int(count) for count in histogram]
            self._class_counts[total] = cached
        return cached


# ----------------------------------------------------------------------
# Outcome banks
# ----------------------------------------------------------------------
class _CacheBank:
    """Per-access cache outcomes for one hierarchy over one trace."""

    __slots__ = ("shift", "i_hit", "d_hit", "l2_pos", "l2_hit", "has_l2",
                 "iacc_extra", "dacc_lat", "iacc_extra_list",
                 "dacc_lat_list", "i_hit_cum", "d_hit_cum", "l2_hit_cum")


def _hierarchy_key(config):
    return (config.l1i, config.l1d, config.l2, config.l1_latency,
            config.l2_latency, config.memory_latency)


def _predictor_key(config):
    return (config.predictor,
            tuple(sorted(config.predictor_kwargs.items())))


def _finalize_cache_bank(bank):
    """Derive the loop-facing lists and prefix sums from the arrays."""
    bank.iacc_extra_list = bank.iacc_extra.tolist()
    bank.dacc_lat_list = bank.dacc_lat.tolist()
    bank.i_hit_cum = np.concatenate(
        ([0], np.cumsum(bank.i_hit, dtype=np.int64)))
    bank.d_hit_cum = np.concatenate(
        ([0], np.cumsum(bank.d_hit, dtype=np.int64)))
    bank.l2_hit_cum = np.concatenate(
        ([0], np.cumsum(bank.l2_hit, dtype=np.int64)))
    return bank


def _build_cache_bank(digest, config):
    """Replay I/D/L2 once for one hierarchy; all outcomes per access.

    The unified L2 sees exactly run()'s access stream: each L1 miss, in
    instruction order, with an instruction's I-side miss (line-aligned
    address) ahead of its D-side miss (raw address).  A stable sort of
    ``2*pos + side`` keys realizes that interleaving, and the inverse
    permutation routes the replayed outcomes back to each L1 stream.
    """
    bank = _CacheBank()
    shift = bank.shift = config.l1i.line.bit_length() - 1
    iacc_pos, iacc_lines = digest.iacc(shift)
    bank.i_hit = per_access_hits(iacc_lines, config.l1i)
    data_shift = config.l1d.line.bit_length() - 1
    bank.d_hit = per_access_hits(digest.m_addrs >> data_shift, config.l1d)

    i_miss = ~bank.i_hit
    d_miss = ~bank.d_hit
    keys = np.concatenate((iacc_pos[i_miss] * 2,
                           digest.m_pos[d_miss] * 2 + 1))
    miss_addresses = np.concatenate((iacc_lines[i_miss] << shift,
                                     digest.m_addrs[d_miss]))
    order = np.argsort(keys, kind="stable")
    bank.l2_pos = keys[order] >> 1
    n_l2 = len(order)
    bank.has_l2 = config.l2 is not None
    if bank.has_l2 and n_l2:
        l2_shift = config.l2.line.bit_length() - 1
        bank.l2_hit = per_access_hits(miss_addresses[order] >> l2_shift,
                                      config.l2)
        miss_latency = np.where(bank.l2_hit, config.l2_latency,
                                config.l2_latency + config.memory_latency)
    else:
        bank.l2_hit = np.zeros(n_l2, dtype=bool)
        miss_latency = np.full(n_l2, config.memory_latency, dtype=np.int64)
    inverse = np.empty(n_l2, dtype=np.int64)
    inverse[order] = np.arange(n_l2, dtype=np.int64)
    n_i_miss = int(np.count_nonzero(i_miss))
    # run() stalls fetch only by the latency *beyond* the L1 hit time.
    bank.iacc_extra = np.zeros(len(bank.i_hit), dtype=np.int64)
    bank.iacc_extra[i_miss] = np.maximum(
        miss_latency[inverse[:n_i_miss]] - config.l1_latency, 0)
    bank.dacc_lat = np.full(len(bank.d_hit), config.l1_latency,
                            dtype=np.int64)
    bank.dacc_lat[d_miss] = miss_latency[inverse[n_i_miss:]]
    return _finalize_cache_bank(bank)


class _PredictorBank:
    """Per-branch mispredict flags for one predictor over one trace."""

    __slots__ = ("miss", "miss_list", "miss_cum")


def _build_pred_bank(digest, config):
    bank = _PredictorBank()
    bank.miss = predictor_outcome_bank(digest.b_pcs, digest.b_taken,
                                       config.predictor,
                                       **config.predictor_kwargs)
    bank.miss_list = bank.miss.tolist()
    bank.miss_cum = np.concatenate(
        ([0], np.cumsum(bank.miss, dtype=np.int64)))
    return bank


# ----------------------------------------------------------------------
# Artifact-store persistence for digests and banks
# ----------------------------------------------------------------------
def _store_key(kind, digest, component=""):
    from repro.exec.store import ARTIFACT_SCHEMA_VERSION
    material = "\x1f".join([
        f"schema={ARTIFACT_SCHEMA_VERSION}",
        f"bank_schema={BANK_SCHEMA_VERSION}",
        f"kind={kind}",
        f"trace={digest.trace.content_digest()}",
        f"program={digest.static.fingerprint()}",
        f"component={component}",
    ])
    content = hashlib.sha256(material.encode()).hexdigest()[:24]
    return f"sweep-{kind}-{content}"


def _npz_writer(arrays):
    # Uncompressed on purpose: bank/digest saves sit on the cold-sweep
    # critical path and zlib costs more than the disk it saves here.
    def write(path):
        write_npz(path, arrays, compress=False)
    return write


def _load_npz_entry(store, key, filename="bank.npz"):
    """(meta, materialized arrays) from the store, or None."""
    loaded = store.load(key)
    if loaded is None:
        return None
    meta, entry_dir = loaded
    if meta.get("bank_schema") != BANK_SCHEMA_VERSION:
        return None
    try:
        with np.load(os.path.join(entry_dir, filename)) as blob:
            arrays = {name: blob[name] for name in blob.files}
    except (OSError, ValueError, KeyError) as exc:
        _LOG.warning("sweep.bank_corrupt", key=key, error=str(exc))
        return None
    return meta, arrays


def _resolve_store(trace, store):
    """The store banks should persist through, or None to skip."""
    if store is None:
        if len(trace) < _PERSIST_MIN_INSTRUCTIONS:
            return None
        from repro.exec.store import default_store
        store = default_store()
    return store if store.enabled else None


def bank_store_keys(trace, configs):
    """Store keys the sweep reads or writes for ``trace`` under
    ``configs``: the trace digest entry plus each distinct cache and
    predictor outcome bank.

    Computable without building any of the artifacts (the trace content
    digest and program fingerprint are memoized), which is what lets
    the fleet's pin-while-leased layer shield a live run's warm
    digest/bank entries from LRU pruning.  Compiled-kernel entries are
    deliberately excluded: their keys need the emit order, and they are
    the cheapest artifact to rebuild.
    """
    probe = TraceDigest.__new__(TraceDigest)
    probe.trace = trace
    probe.static = _static_tables(trace.program)
    keys = {_store_key("digest", probe)}
    for config in configs:
        keys.add(_store_key("cbank", probe, repr(_hierarchy_key(config))))
        keys.add(_store_key("pbank", probe, repr(_predictor_key(config))))
    return sorted(keys)


def trace_digest(trace, store=None):
    """The (cached) config-independent digest of one trace.

    With a ``store``, a previously persisted digest for the same trace
    content and program is restored instead of being re-derived, and
    fresh digests are persisted by :func:`simulate_pipeline_sweep` once
    their per-line-size tables have materialized.
    """
    digest = getattr(trace, "_sweep_digest", None)
    if digest is not None:
        _note("digests_reused")
        return digest
    if store is not None:
        probe = TraceDigest.__new__(TraceDigest)
        probe.trace = trace
        probe.static = _static_tables(trace.program)
        restored = _load_npz_entry(store, _store_key("digest", probe),
                                   "digest.npz")
        if restored is not None:
            digest = TraceDigest(trace, _restored=restored)
            _note("digests_loaded")
    if digest is None:
        digest = TraceDigest(trace)
        _note("digests_built")
    trace._sweep_digest = digest
    return digest


def _persist_digest(digest, store):
    if digest._persisted:
        return
    digest._persisted = True
    key = _store_key("digest", digest)
    if store.has(key):
        return
    arrays = {
        "b_pos": digest.b_pos, "b_pcs": digest.b_pcs,
        "b_taken": digest.b_taken, "m_pos": digest.m_pos,
        "m_addrs": digest.m_addrs, "visit_starts": digest.visit_starts,
        "visit_blocks": digest.visit_blocks,
    }
    for shift, (positions, lines) in digest._iacc.items():
        arrays[f"iacc_pos_{shift}"] = positions
        arrays[f"iacc_lines_{shift}"] = lines
    meta = {
        "kind": "sweep-digest",
        "bank_schema": BANK_SCHEMA_VERSION,
        "instructions": digest.n,
        "blocks_ok": digest.blocks_ok,
        "masks_agree": digest.masks_agree,
        "complete_visits": digest.complete_visits,
        "shifts": sorted(digest._iacc),
    }
    store.save(key, meta, {"digest.npz": _npz_writer(arrays)})
    _note("digests_saved")


class StreamingDigestBuilder:
    """Accumulates a :class:`TraceDigest` from columnar trace chunks.

    A sink for :func:`repro.sim.native.stream_trace`: each ``feed``
    folds one chunk into the digest's event streams (branch positions
    and outcomes, memory positions and addresses) and the per-column
    content hashes, keeping only the ``pcs`` column whole.  ``finish``
    yields a digest bound to a :class:`~repro.sim.trace.TraceRef` whose
    content digest — and therefore every store key — matches the
    materialized trace's exactly, without a ``DynamicTrace`` ever
    existing.
    """

    def __init__(self, program):
        self.program = program
        self.static = _static_tables(program)
        self._pcs_parts = []
        self._b_pos, self._b_taken = [], []
        self._m_pos, self._m_addrs = [], []
        self._offset = 0
        self._masks_agree = True
        self._hashers = [hashlib.sha256() for _ in range(3)]

    def feed(self, pcs, addrs, taken):
        for hasher, column in zip(self._hashers, (pcs, addrs, taken)):
            hasher.update(_column_bytes(column))
        pcs64 = pcs.astype(np.int64)
        branch_mask = taken >= 0
        b_local = np.nonzero(branch_mask)[0]
        self._b_pos.append(b_local + self._offset)
        self._b_taken.append(taken[b_local] == 1)
        m_local = np.nonzero(self.static.is_mem[pcs64])[0]
        self._m_pos.append(m_local + self._offset)
        self._m_addrs.append(addrs[m_local].astype(np.int64))
        if self._masks_agree:
            self._masks_agree = bool(np.array_equal(
                branch_mask, self.static.is_cond[pcs64]))
        self._pcs_parts.append(pcs64)
        self._offset += len(pcs)

    def _concat(self, parts, dtype):
        if parts:
            return np.concatenate(parts)
        return np.zeros(0, dtype=dtype)

    def finish(self):
        """The completed (TraceRef-bound) digest, cached on the ref."""
        pcs = self._concat(self._pcs_parts, np.int64)
        content = combine_column_digests(
            *(hasher.hexdigest() for hasher in self._hashers))
        ref = TraceRef(self.program, pcs, content)
        b_pos = self._concat(self._b_pos, np.int64)
        prebuilt = {
            "b_pos": b_pos,
            "b_pcs": pcs[b_pos],
            "b_taken": self._concat(self._b_taken, bool),
            "m_pos": self._concat(self._m_pos, np.int64),
            "m_addrs": self._concat(self._m_addrs, np.int64),
            "masks_agree": self._masks_agree,
        }
        digest = TraceDigest(ref, _prebuilt=prebuilt)
        _note("digests_streamed")
        ref._sweep_digest = digest
        return digest


def acquire_trace_digest(program, max_instructions=50_000_000,
                         store=None, backend=None):
    """Acquire a sweep-ready trace digest for ``program``.

    The default acquisition path for fleet workers and incremental
    sessions: when the native engine can take the program, execution
    streams columnar chunks straight into a
    :class:`StreamingDigestBuilder` and the full trace never exists;
    otherwise the trace is materialized through the resolved backend
    and digested conventionally.  Either way the result is
    interchangeable — identical content digest, store keys, and tables.
    """
    from repro.sim import native as sim_native
    from repro.sim.functional import FunctionalSimulator, run_program
    from repro.sim.turbo import resolve_backend
    resolved = resolve_backend(backend, program)
    if resolved == "native" and sim_native.engine_for(program) is not None:
        with span("sim.run", program=program.name, backend="native"):
            builder = StreamingDigestBuilder(program)
            simulator = FunctionalSimulator(program, backend="native")
            sim_native.stream_trace(simulator, max_instructions,
                                    builder.feed)
        return builder.finish()
    trace = run_program(program, max_instructions=max_instructions,
                        trace=True, backend=resolved)
    return trace_digest(trace, store)


def _cache_bank_for(digest, config, store):
    key = _hierarchy_key(config)
    bank = digest.cache_banks.get(key)
    if bank is not None:
        _note("cache_banks_reused")
        return bank
    if store is not None:
        restored = _load_npz_entry(
            store, _store_key("cbank", digest, repr(key)))
        if restored is not None:
            meta, arrays = restored
            bank = _CacheBank()
            bank.shift = int(meta["shift"])
            bank.has_l2 = bool(meta["has_l2"])
            bank.i_hit = arrays["i_hit"].astype(bool)
            bank.d_hit = arrays["d_hit"].astype(bool)
            bank.l2_pos = arrays["l2_pos"]
            bank.l2_hit = arrays["l2_hit"].astype(bool)
            bank.iacc_extra = arrays["iacc_extra"]
            bank.dacc_lat = arrays["dacc_lat"]
            digest.cache_banks[key] = _finalize_cache_bank(bank)
            _note("cache_banks_loaded")
            return bank
    bank = digest.cache_banks[key] = _build_cache_bank(digest, config)
    _note("cache_banks_built")
    if store is not None:
        arrays = {"i_hit": bank.i_hit, "d_hit": bank.d_hit,
                  "l2_pos": bank.l2_pos, "l2_hit": bank.l2_hit,
                  "iacc_extra": bank.iacc_extra,
                  "dacc_lat": bank.dacc_lat}
        meta = {"kind": "sweep-cache-bank",
                "bank_schema": BANK_SCHEMA_VERSION,
                "component": repr(key), "shift": bank.shift,
                "has_l2": bank.has_l2, "instructions": digest.n}
        store.save(key=_store_key("cbank", digest, repr(key)), meta=meta,
                   files={"bank.npz": _npz_writer(arrays)})
        _note("cache_banks_saved")
    return bank


def _pred_bank_for(digest, config, store):
    key = _predictor_key(config)
    bank = digest.pred_banks.get(key)
    if bank is not None:
        _note("pred_banks_reused")
        return bank
    if store is not None:
        restored = _load_npz_entry(
            store, _store_key("pbank", digest, repr(key)))
        if restored is not None:
            _, arrays = restored
            bank = _PredictorBank()
            bank.miss = arrays["miss"].astype(bool)
            bank.miss_list = bank.miss.tolist()
            bank.miss_cum = np.concatenate(
                ([0], np.cumsum(bank.miss, dtype=np.int64)))
            digest.pred_banks[key] = bank
            _note("pred_banks_loaded")
            return bank
    bank = digest.pred_banks[key] = _build_pred_bank(digest, config)
    _note("pred_banks_built")
    if store is not None:
        meta = {"kind": "sweep-predictor-bank",
                "bank_schema": BANK_SCHEMA_VERSION,
                "component": repr(key), "instructions": digest.n}
        store.save(key=_store_key("pbank", digest, repr(key)), meta=meta,
                   files={"bank.npz": _npz_writer({"miss": bank.miss})})
        _note("pred_banks_saved")
    return bank


class _PredictorSpec:
    """Just enough config surface for ``_predictor_key`` /
    ``_pred_bank_for`` when there is no full MachineConfig."""

    __slots__ = ("predictor", "predictor_kwargs")

    def __init__(self, predictor, predictor_kwargs):
        self.predictor = predictor
        self.predictor_kwargs = predictor_kwargs


def simulate_predictor_sweep(trace, specs, store=None):
    """Misprediction stats for many predictors from one branch stream.

    ``specs`` is an iterable of predictor kinds (``"gap"``) or
    ``(kind, kwargs)`` pairs.  Returns one predictor object per spec,
    in order, with ``stats`` populated exactly as
    :func:`repro.uarch.branch_predictors.simulate_predictor` would —
    but the per-branch outcome flags come from the sweep engine's
    predictor outcome banks, so they are derived once per (trace,
    predictor) across the whole process *and* persisted through the
    artifact store: every later sweep, fleet cell, or experiment that
    touches the same pair reuses them instead of re-walking the
    branch stream.
    """
    specs = [(spec, {}) if isinstance(spec, str) else (spec[0],
                                                      dict(spec[1]))
             for spec in specs]
    store = _resolve_store(trace, store)
    digest = trace_digest(trace, store)
    lookups = len(digest.b_pos)
    results = []
    for kind, kwargs in specs:
        spec = _PredictorSpec(kind, kwargs)
        bank = _pred_bank_for(digest, spec, store)
        predictor = make_predictor(kind, **kwargs)
        predictor.stats.lookups = lookups
        predictor.stats.mispredictions = int(bank.miss_cum[-1])
        results.append(predictor)
    _note("predictor_sweeps")
    _note("predictor_sweep_kinds", len(specs))
    return results


# ----------------------------------------------------------------------
# Compiled scheduling kernels
# ----------------------------------------------------------------------
def _is_pow2(value):
    return value & (value - 1) == 0


def _kernel_knobs(config, shift):
    """The *structural* shape of the generated source.

    Everything else — ring sizes, mispredict penalty, per-class
    latencies, the width value itself for superscalar configs — is
    passed at call time through the ``params`` tuple, so e.g. the whole
    table-3 design-change grid shares kernels wherever the code shape
    coincides (only width-1 vs superscalar, in-order issue, the I-line
    size, ring power-of-two-ness and FU pool sizes change the shape).
    The L1 hit latency is folded into the banks and is not a knob
    either.
    """
    return (1 if config.width == 1 else 0, bool(config.in_order), shift,
            _is_pow2(config.rob_size), _is_pow2(config.lsq_size),
            _is_pow2(config.fetch_queue),
            (config.n_int_alu, config.n_int_mul, config.n_fp_alu,
             config.n_fp_mul, config.n_mem_ports))


def _kernel_params(config):
    """Runtime values consumed by a generated kernel's prologue."""

    def ring(size):
        return size - 1 if _is_pow2(size) else size

    return (config.width, ring(config.rob_size), ring(config.lsq_size),
            ring(config.fetch_queue), config.mispredict_penalty,
            config.latency_ialu, config.latency_imul, config.latency_idiv,
            config.latency_falu, config.latency_fmul, config.latency_fdiv)


#: Latency local consumed per instruction class (LOAD/STORE are special
#: cased against the data bank in the emitter).
_LATENCY_NAME = {
    int(IClass.IALU): "lat_ialu", int(IClass.IMUL): "lat_imul",
    int(IClass.IDIV): "lat_idiv", int(IClass.FALU): "lat_falu",
    int(IClass.FMUL): "lat_fmul", int(IClass.FDIV): "lat_fdiv",
    int(IClass.BRANCH): "lat_ialu", int(IClass.JUMP): "lat_ialu",
    int(IClass.OTHER): "lat_ialu",
}


def _generate_kernel_source(static, config, shift, emit_order):
    """Specialized scheduling loop: one unrolled body per hot block.

    Cache/predictor outcomes arrive as precomputed event arrays
    (``iacc_extra``/``dacc_lat``/``bmiss``) consumed by cursor, so the
    only remaining per-instruction work is run()'s integer scheduling —
    emitted with the structural config folded in and the numeric knobs
    read from ``params``.  Two block-local static facts shrink the body
    further: past a block's entry instruction ``fetch_break`` is
    provably False and (width 1) ``fetch_used`` is provably 1, so the
    fetch bookkeeping collapses; and the ``i``/``mem_index``/``di``
    cursors advance by a compile-time-known amount per block, so they
    are folded into literal offsets with one increment per visit.
    Only ``emit_order`` blocks are unrolled; on a visit to any other
    block the kernel repacks its state and returns the visit index so
    the caller can interpret that visit and re-enter.
    """
    width1 = int(config.width) == 1
    in_order = bool(config.in_order)
    rob_mod = "&" if _is_pow2(config.rob_size) else "%"
    lsq_mod = "&" if _is_pow2(config.lsq_size) else "%"
    fq_mod = "&" if _is_pow2(config.fetch_queue) else "%"
    counts = (int(config.n_int_alu), int(config.n_int_mul),
              int(config.n_fp_alu), int(config.n_fp_mul),
              int(config.n_mem_ports))

    lines = []

    def w(depth, text):
        lines.append("    " * depth + text)

    def offset(base, delta):
        return base if delta == 0 else f"({base} + {delta})"

    def emit_instruction(d, pc, entry, k, m_k):
        iclass = static.iclass_list[pc]
        is_load = iclass == _LOAD
        is_mem = is_load or iclass == _STORE
        is_cond = bool(static.is_cond[pc])
        unpipelined = iclass in (_IDIV, _FDIV)
        line_break = (not entry and
                      (static.pc_addresses[pc] >> shift)
                      != (static.pc_addresses[pc - 1] >> shift))
        # fetch: the entry instruction sees the full redirect / I-access
        # / break machinery; mid-block fetch_break is statically False.
        if entry:
            w(d, "if fetch_stall_until > fetch_cycle:")
            w(d + 1, "redirect_cycles += fetch_stall_until - fetch_cycle")
            w(d + 1, "fetch_cycle = fetch_stall_until")
            w(d + 1, "fetch_used = 0")
            w(d + 1, "fetch_break = False")
            w(d, "if vfi[v]:")
            w(d + 1, "_x = iacc_extra[ii]")
            w(d + 1, "ii += 1")
            w(d + 1, "if _x:")
            w(d + 2, "fetch_cycle += _x")
            w(d + 2, "fetch_used = 0")
            w(d + 2, "fetch_break = False")
            if width1:
                w(d, "if fetch_break:")
                w(d + 1, "fetch_cycle += 1")
                w(d + 1, "fetch_break = False")
                w(d, "elif fetch_used:")
                w(d + 1, "fetch_cycle += 1")
                w(d, "fetch_time = fetch_cycle")
            else:
                w(d, "if fetch_break or fetch_used >= width:")
                w(d + 1, "fetch_cycle += 1")
                w(d + 1, "fetch_used = 0")
                w(d + 1, "fetch_break = False")
                w(d, "fetch_time = fetch_cycle")
                w(d, "fetch_used += 1")
        elif width1:
            if line_break:
                w(d, "_x = iacc_extra[ii]")
                w(d, "ii += 1")
                w(d, "if _x:")
                w(d + 1, "fetch_cycle += _x")
                w(d, "else:")
                w(d + 1, "fetch_cycle += 1")
            else:
                w(d, "fetch_cycle += 1")
            w(d, "fetch_time = fetch_cycle")
        else:
            if line_break:
                w(d, "_x = iacc_extra[ii]")
                w(d, "ii += 1")
                w(d, "if _x:")
                w(d + 1, "fetch_cycle += _x")
                w(d + 1, "fetch_used = 0")
            w(d, "if fetch_used >= width:")
            w(d + 1, "fetch_cycle += 1")
            w(d + 1, "fetch_used = 0")
            w(d, "fetch_time = fetch_cycle")
            w(d, "fetch_used += 1")
        w(d, f"_qs = {offset('i', k)} {fq_mod} fq_m")
        w(d, "_t = fetchq_ring[_qs]")
        w(d, "if fetch_time < _t:")
        w(d + 1, "fetch_time = _t")
        w(d + 1, "fetch_cycle = _t")
        if not width1:
            w(d + 1, "fetch_used = 1")
        w(d + 1, "fetch_queue_stalls += 1")
        # dispatch: ROB/LSQ rings + bandwidth port
        w(d, f"_de = fetch_time + {DECODE_DEPTH}")
        w(d, f"_rs = {offset('i', k)} {rob_mod} rob_m")
        w(d, "_t = rob_ring[_rs]")
        w(d, "if _t > _de:")
        w(d + 1, "_de = _t")
        w(d + 1, "rob_stalls += 1")
        if is_mem:
            w(d, f"_ls = {offset('mem_index', m_k)} {lsq_mod} lsq_m")
            w(d, "_t = lsq_ring[_ls]")
            w(d, "if _t > _de:")
            w(d + 1, "_de = _t")
            w(d + 1, "lsq_stalls += 1")
        if width1:
            w(d, "if _de > dispatch_cycle:")
            w(d + 1, "dispatch_cycle = _de")
            w(d, "else:")
            w(d + 1, "dispatch_cycle += 1")
        else:
            w(d, "if _de > dispatch_cycle:")
            w(d + 1, "dispatch_cycle = _de")
            w(d + 1, "dispatch_used = 1")
            w(d, "elif dispatch_used < width:")
            w(d + 1, "dispatch_used += 1")
            w(d, "else:")
            w(d + 1, "dispatch_cycle += 1")
            w(d + 1, "dispatch_used = 1")
        w(d, "fetchq_ring[_qs] = dispatch_cycle")
        # issue: operand readiness + FU structural hazard
        w(d, "ready = dispatch_cycle + 1")
        for source in static.srcs_list[pc]:
            w(d, f"_t = reg_ready[{source}]")
            w(d, "if _t > ready:")
            w(d + 1, "ready = _t")
        if in_order:
            w(d, "if ready < last_issue:")
            w(d + 1, "ready = last_issue")
        if is_load:
            complete_stmt = ("complete = issue_time + dacc_lat["
                             + offset("di", m_k) + "]")
        elif is_mem:
            complete_stmt = "complete = issue_time + 1"
        else:
            complete_stmt = f"complete = issue_time + {_LATENCY_NAME[iclass]}"
        access = pool_access[static.pool_list[pc]]
        if access[0] == "one":
            name = access[1]
            w(d, f"issue_time = ready if ready > {name} else {name}")
            if unpipelined:
                w(d, complete_stmt)
                w(d, f"{name} = complete")
            else:
                w(d, f"{name} = issue_time + 1")
                w(d, complete_stmt)
        elif access[0] == "two":
            lo, hi = access[1], access[2]
            w(d, f"if {hi} < {lo}:")
            if unpipelined:
                w(d + 1, f"issue_time = ready if ready > {hi} else {hi}")
                w(d + 1, complete_stmt)
                w(d + 1, f"{hi} = complete")
                w(d, "else:")
                w(d + 1, f"issue_time = ready if ready > {lo} else {lo}")
                w(d + 1, complete_stmt)
                w(d + 1, f"{lo} = complete")
            else:
                w(d + 1, f"issue_time = ready if ready > {hi} else {hi}")
                w(d + 1, f"{hi} = issue_time + 1")
                w(d, "else:")
                w(d + 1, f"issue_time = ready if ready > {lo} else {lo}")
                w(d + 1, f"{lo} = issue_time + 1")
                w(d, complete_stmt)
        else:
            name = access[1]
            w(d, "_u = 0")
            w(d, f"_t = {name}[0]")
            for unit in range(1, access[2]):
                w(d, f"if {name}[{unit}] < _t:")
                w(d + 1, f"_t = {name}[{unit}]")
                w(d + 1, f"_u = {unit}")
            w(d, "issue_time = ready if ready > _t else _t")
            if unpipelined:
                w(d, complete_stmt)
                w(d, f"{name}[_u] = complete")
            else:
                w(d, f"{name}[_u] = issue_time + 1")
                w(d, complete_stmt)
        if in_order:
            w(d, "last_issue = issue_time")
        dest = static.dest_list[pc]
        if dest >= 0:
            w(d, f"reg_ready[{dest}] = complete")
        # control flow (fetch_break is statically False before this)
        if is_cond:
            w(d, "if bmiss[bi]:")
            w(d + 1, "_r = complete + mp_pen")
            w(d + 1, "if _r > fetch_stall_until:")
            w(d + 2, "fetch_stall_until = _r")
            w(d, "elif btaken[bi]:")
            w(d + 1, "fetch_break = True")
            w(d, "bi += 1")
        elif iclass == _JUMP:
            w(d, "fetch_break = True")
        # commit
        w(d, "_ce = complete + 1")
        w(d, "if _ce < last_commit:")
        w(d + 1, "_ce = last_commit")
        if width1:
            w(d, "if _ce > commit_cycle:")
            w(d + 1, "commit_cycle = _ce")
            w(d, "else:")
            w(d + 1, "commit_cycle += 1")
        else:
            w(d, "if _ce > commit_cycle:")
            w(d + 1, "commit_cycle = _ce")
            w(d + 1, "commit_used = 1")
            w(d, "elif commit_used < width:")
            w(d + 1, "commit_used += 1")
            w(d, "else:")
            w(d + 1, "commit_cycle += 1")
            w(d + 1, "commit_used = 1")
        w(d, "last_commit = commit_cycle")
        w(d, "rob_ring[_rs] = commit_cycle")
        if is_mem:
            w(d, "lsq_ring[_ls] = commit_cycle")

    def emit_epilogue(d, return_expr):
        if width1:
            # The collapsed width-1 ports leave any allocation with
            # used == 1; restore the invariant the generic port code
            # (interpreted tail) relies on, unless nothing ran.
            w(d, "if i != _i0:")
            w(d + 1, "dispatch_used = 1")
            w(d + 1, "commit_used = 1")
        w(d, "state[0] = (i, fetch_cycle, fetch_used, fetch_break,")
        w(d, "            fetch_stall_until, last_issue, last_commit,")
        w(d, "            mem_index, dispatch_cycle, dispatch_used,")
        w(d, "            commit_cycle, commit_used, rob_stalls,")
        w(d, "            lsq_stalls, fetch_queue_stalls,")
        w(d, "            redirect_cycles, ii, di, bi)")
        w(d, f"state[5] = ({', '.join(repack)},)")
        w(d, f"return {return_expr}")

    w(0, "def _kernel(visits, vfi, iacc_extra, dacc_lat, bmiss, btaken,")
    w(0, "            v_lo, v_hi, state, params):")
    w(1, "(width, rob_m, lsq_m, fq_m, mp_pen, lat_ialu, lat_imul,")
    w(1, " lat_idiv, lat_falu, lat_fmul, lat_fdiv) = params")
    w(1, "(i, fetch_cycle, fetch_used, fetch_break, fetch_stall_until,")
    w(1, " last_issue, last_commit, mem_index, dispatch_cycle,")
    w(1, " dispatch_used, commit_cycle, commit_used, rob_stalls,")
    w(1, " lsq_stalls, fetch_queue_stalls, redirect_cycles,")
    w(1, " ii, di, bi) = state[0]")
    if width1:
        w(1, "_i0 = i")
    w(1, "reg_ready = state[1]")
    w(1, "rob_ring = state[2]")
    w(1, "lsq_ring = state[3]")
    w(1, "fetchq_ring = state[4]")
    w(1, "fus = state[5]")
    pool_access = []
    repack = []
    fu_offset = 0
    for pool_index, count in enumerate(counts):
        base = _POOL_NAMES[pool_index]
        if count == 1:
            name = f"{base}0"
            w(1, f"{name} = fus[{fu_offset}]")
            pool_access.append(("one", name))
            repack.append(name)
        elif count == 2:
            names = (f"{base}0", f"{base}1")
            w(1, f"{names[0]} = fus[{fu_offset}]")
            w(1, f"{names[1]} = fus[{fu_offset + 1}]")
            pool_access.append(("two", names[0], names[1]))
            repack.extend(names)
        else:
            name = f"{base}_pool"
            w(1, f"{name} = list(fus[{fu_offset}:{fu_offset + count}])")
            pool_access.append(("list", name, count))
            repack.append(f"*{name}")
        fu_offset += count
    w(1, "for v in range(v_lo, v_hi):")
    w(2, "b = visits[v]")
    branch_keyword = "if"
    for bid in emit_order:
        start, end = static.block_bounds[bid]
        w(2, f"{branch_keyword} b == {bid}:")
        branch_keyword = "elif"
        n_mem = 0
        for pc in range(start, end):
            emit_instruction(3, pc, pc == start, pc - start, n_mem)
            if static.is_mem[pc]:
                n_mem += 1
        w(3, f"i += {end - start}")
        if n_mem:
            w(3, f"mem_index += {n_mem}")
            w(3, f"di += {n_mem}")
        if width1:
            w(3, "fetch_used = 1")
        lines.append("")
    w(2, "else:")
    emit_epilogue(3, "v")
    emit_epilogue(1, "v_hi")
    return "\n".join(lines) + "\n"


#: Blocks below this share of a trace's visits are left to the
#: interpreter (exit/re-enter) instead of being unrolled — compile time
#: scales with emitted code while they contribute almost no visits.
_EMIT_VISIT_SHARE = 0.001


def _emit_order(digest):
    """Hot block ids, most visited first, covering ~all visits."""
    n_blocks = len(digest.static.block_bounds)
    visit_counts = np.bincount(digest.visit_blocks, minlength=n_blocks)
    threshold = max(1, int(len(digest.visit_blocks) * _EMIT_VISIT_SHARE))
    hot = [bid for bid in range(n_blocks) if visit_counts[bid] >= threshold]
    hot.sort(key=lambda bid: (-int(visit_counts[bid]), bid))
    return hot


def _kernel_store_key(digest, knobs, emit_order):
    """Store key for a marshalled kernel code object.

    Kernels depend on the program (operands, blocks), the structural
    knobs, which blocks were unrolled, and — because ``marshal`` is not
    stable across interpreters — the exact Python bytecode version.
    """
    from repro.exec.store import ARTIFACT_SCHEMA_VERSION
    material = "\x1f".join([
        f"schema={ARTIFACT_SCHEMA_VERSION}",
        f"bank_schema={BANK_SCHEMA_VERSION}",
        f"program={digest.static.fingerprint()}",
        f"knobs={knobs!r}",
        f"blocks={emit_order!r}",
        f"python={sys.version_info[:3]}" f"+{sys.implementation.name}",
    ])
    content = hashlib.sha256(material.encode()).hexdigest()[:24]
    return f"sweep-kernel-{content}"


def _kernel_for(digest, config, shift, store=None):
    """(kernel, params) for one config, compiled or cached per program.

    Compiled code objects are additionally persisted through the store
    (marshalled, keyed by program + knobs + bytecode version) so fresh
    processes skip the ``compile()`` cost, which otherwise dominates a
    cold sweep of a small grid.
    """
    program = digest.trace.program
    kernels = getattr(program, "_sweep_kernels", None)
    if kernels is None:
        kernels = program._sweep_kernels = {}
    knobs = _kernel_knobs(config, shift)
    kernel = kernels.get(knobs)
    if kernel is not None:
        _note("kernels_reused")
        return kernel, _kernel_params(config)
    started = time.perf_counter()
    emit_order = _emit_order(digest)
    store_key = None
    code = None
    if store is not None:
        store_key = _kernel_store_key(digest, knobs, emit_order)
        loaded = store.load(store_key)
        if loaded is not None:
            _, entry_dir = loaded
            try:
                with open(os.path.join(entry_dir, "kernel.marshal"),
                          "rb") as handle:
                    code = marshal.loads(handle.read())
            except (OSError, ValueError, EOFError, TypeError) as exc:
                _LOG.warning("sweep.kernel_corrupt", key=store_key,
                             error=str(exc))
                code = None
    if code is not None:
        _note("kernels_loaded")
    else:
        source = _generate_kernel_source(digest.static, config, shift,
                                         emit_order)
        code = compile(source, "<uarch-sweep-kernel>", "exec")
        _note("kernels_compiled")
        if store_key is not None and not store.has(store_key):
            payload = marshal.dumps(code)

            def write(path, payload=payload):
                with open(path, "wb") as handle:
                    handle.write(payload)

            store.save(store_key,
                       {"kind": "sweep-kernel",
                        "bank_schema": BANK_SCHEMA_VERSION,
                        "knobs": repr(knobs)},
                       {"kernel.marshal": write})
            _note("kernels_saved")
    namespace = {}
    exec(code, namespace)
    kernel = kernels[knobs] = namespace["_kernel"]
    _note_seconds("codegen_seconds", time.perf_counter() - started)
    return kernel, _kernel_params(config)


# ----------------------------------------------------------------------
# Interpreted tail / fallback loop
# ----------------------------------------------------------------------
def _initial_state(config):
    """The packed scheduling state shared by kernel and tail.

    ``state`` is ``[scalars, reg_ready, rob_ring, lsq_ring, fetchq_ring,
    fus]`` with the scalar order documented by the kernel prologue; the
    initial values mirror run()'s locals (inlined bandwidth ports start
    at cycle -1).
    """
    units = (config.n_int_alu + config.n_int_mul + config.n_fp_alu
             + config.n_fp_mul + config.n_mem_ports)
    return [
        (0, 0, 0, False, 0, 0, 0, 0, -1, 0, -1, 0, 0, 0, 0, 0, 0, 0, 0),
        [0] * 64,
        [0] * config.rob_size,
        [0] * config.lsq_size,
        [0] * config.fetch_queue,
        (0,) * int(units),
    ]


def _interpreted_range(low, high, digest, config, cache_bank, pred_bank,
                       state):
    """Exact port of run()'s loop over dynamic positions [low, high).

    Cache and predictor outcomes come from the banks (consumed by event
    position), so this handles *any* trace — including ones that fail
    the block-structure validation — and finishes partial final blocks
    for the compiled kernels.
    """
    if low >= high:
        return
    static = digest.static
    pcs = digest.pcs_list()
    iacc_pos = digest.iacc_pos_list(cache_bank.shift)
    iacc_extra = cache_bank.iacc_extra_list
    dacc_lat = cache_bank.dacc_lat_list
    m_pos = digest.m_pos_list()
    b_pos = digest.b_pos_list()
    b_taken = digest.b_taken_list()
    b_miss = pred_bank.miss_list
    n_iacc = len(iacc_pos)
    n_mem = len(m_pos)
    n_branch = len(b_pos)

    latency_of_class = (
        config.latency_ialu, config.latency_imul, config.latency_idiv,
        config.latency_falu, config.latency_fmul, config.latency_fdiv,
        0, 1, config.latency_ialu, config.latency_ialu,
        config.latency_ialu)
    st_iclass = static.iclass_list
    st_dest = static.dest_list
    st_srcs = static.srcs_list
    st_pool = static.pool_list

    width = config.width
    in_order = config.in_order
    rob_size = config.rob_size
    lsq_size = config.lsq_size
    fetch_queue = config.fetch_queue
    mispredict_penalty = config.mispredict_penalty

    (i, fetch_cycle, fetch_used, fetch_break, fetch_stall_until,
     last_issue, last_commit, mem_index, dispatch_cycle, dispatch_used,
     commit_cycle, commit_used, rob_stalls, lsq_stalls,
     fetch_queue_stalls, redirect_cycles, ii, di, bi) = state[0]
    reg_ready = state[1]
    rob_ring = state[2]
    lsq_ring = state[3]
    fetchq_ring = state[4]
    pools = []
    flat = state[5]
    offset = 0
    for count in (config.n_int_alu, config.n_int_mul, config.n_fp_alu,
                  config.n_fp_mul, config.n_mem_ports):
        pools.append(list(flat[offset:offset + count]))
        offset += count

    for position in range(low, high):
        pc = pcs[position]
        iclass = st_iclass[pc]

        # ----- fetch ---------------------------------------------------
        if fetch_stall_until > fetch_cycle:
            redirect_cycles += fetch_stall_until - fetch_cycle
            fetch_cycle = fetch_stall_until
            fetch_used = 0
            fetch_break = False
        if ii < n_iacc and iacc_pos[ii] == position:
            extra = iacc_extra[ii]
            ii += 1
            if extra:
                fetch_cycle += extra
                fetch_used = 0
                fetch_break = False
        if fetch_break or fetch_used >= width:
            fetch_cycle += 1
            fetch_used = 0
            fetch_break = False
        fetch_time = fetch_cycle
        fetch_used += 1

        queue_slot = i % fetch_queue
        if fetch_time < fetchq_ring[queue_slot]:
            fetch_time = fetchq_ring[queue_slot]
            fetch_cycle = fetch_time
            fetch_used = 1
            fetch_queue_stalls += 1

        # ----- dispatch ------------------------------------------------
        dispatch_earliest = fetch_time + DECODE_DEPTH
        rob_slot = i % rob_size
        if rob_ring[rob_slot] > dispatch_earliest:
            dispatch_earliest = rob_ring[rob_slot]
            rob_stalls += 1
        is_mem = di < n_mem and m_pos[di] == position
        if is_mem:
            lsq_slot = mem_index % lsq_size
            if lsq_ring[lsq_slot] > dispatch_earliest:
                dispatch_earliest = lsq_ring[lsq_slot]
                lsq_stalls += 1
        if dispatch_earliest > dispatch_cycle:
            dispatch_cycle = dispatch_earliest
            dispatch_used = 1
        elif dispatch_used < width:
            dispatch_used += 1
        else:
            dispatch_cycle += 1
            dispatch_used = 1
        fetchq_ring[queue_slot] = dispatch_cycle

        # ----- issue ---------------------------------------------------
        ready = dispatch_cycle + 1
        for source in st_srcs[pc]:
            source_ready = reg_ready[source]
            if source_ready > ready:
                ready = source_ready
        if in_order and ready < last_issue:
            ready = last_issue
        pool = pools[st_pool[pc]]
        unit = 0
        unit_free = pool[0]
        for index_unit in range(1, len(pool)):
            if pool[index_unit] < unit_free:
                unit_free = pool[index_unit]
                unit = index_unit
        issue_time = ready if ready > unit_free else unit_free
        if in_order:
            last_issue = issue_time

        # ----- execute -------------------------------------------------
        if is_mem:
            complete = (issue_time + dacc_lat[di] if iclass == _LOAD
                        else issue_time + 1)
            di += 1
        else:
            complete = issue_time + latency_of_class[iclass]
        pool[unit] = (complete if iclass in (_IDIV, _FDIV)
                      else issue_time + 1)
        dest = st_dest[pc]
        if dest >= 0:
            reg_ready[dest] = complete

        # ----- control flow --------------------------------------------
        if bi < n_branch and b_pos[bi] == position:
            if b_miss[bi]:
                redirect = complete + mispredict_penalty
                if redirect > fetch_stall_until:
                    fetch_stall_until = redirect
            elif b_taken[bi]:
                fetch_break = True
            bi += 1
        elif iclass == _JUMP:
            fetch_break = True

        # ----- commit --------------------------------------------------
        commit_earliest = complete + 1
        if commit_earliest < last_commit:
            commit_earliest = last_commit
        if commit_earliest > commit_cycle:
            commit_cycle = commit_earliest
            commit_used = 1
        elif commit_used < width:
            commit_used += 1
        else:
            commit_cycle += 1
            commit_used = 1
        last_commit = commit_cycle
        rob_ring[rob_slot] = commit_cycle
        if is_mem:
            lsq_ring[lsq_slot] = commit_cycle
            mem_index += 1
        i += 1

    state[0] = (i, fetch_cycle, fetch_used, fetch_break,
                fetch_stall_until, last_issue, last_commit, mem_index,
                dispatch_cycle, dispatch_used, commit_cycle, commit_used,
                rob_stalls, lsq_stalls, fetch_queue_stalls,
                redirect_cycles, ii, di, bi)
    state[5] = tuple(value for pool in pools for value in pool)


# ----------------------------------------------------------------------
# Per-config execution and the public sweep entry point
# ----------------------------------------------------------------------
def _run_visits(digest, config, cache_bank, pred_bank, state, v_from,
                v_to, kernel, params):
    """Execute visits [v_from, v_to) via the kernel, interpreting any
    cold (un-emitted) block visits it bounces off."""
    if v_from >= v_to:
        return
    visits = digest.visits_list()
    vfi = digest.vfi_list(cache_bank.shift)
    visit_starts = digest.visit_starts
    visit_ends = digest.visit_ends
    v_done = v_from
    while v_done < v_to:
        v_next = kernel(visits, vfi, cache_bank.iacc_extra_list,
                        cache_bank.dacc_lat_list, pred_bank.miss_list,
                        digest.b_taken_list(), v_done, v_to, state, params)
        if v_next >= v_to:
            break
        _interpreted_range(int(visit_starts[v_next]),
                           int(visit_ends[v_next]), digest, config,
                           cache_bank, pred_bank, state)
        v_done = v_next + 1


def _fast_forward(digest, config, cache_bank, pred_bank, hier_key,
                  pred_key, v_stop, state, kernel, params):
    """Execute-and-extrapolate the steady portion of [0, v_stop).

    Returns the number of visits already accounted for (warmup and
    verification executed normally, steady periods applied as exact
    state deltas); the caller executes the rest.  Falls back to 0 (no
    progress) whenever no verified segment or provable delta exists.
    """
    key = (cache_bank.shift, hier_key, pred_key)
    segment = digest.steady.get(key)
    if segment is None:
        started = time.perf_counter()
        segment = steady.find_segment(digest, cache_bank.shift,
                                      cache_bank, pred_bank)
        digest.steady[key] = segment if segment is not None else False
        _note_seconds("steady_seconds", time.perf_counter() - started)
        if segment is not None:
            _note("steady_segments")
    if not segment:
        return 0
    ff = steady.plan(segment, config, digest, v_stop)
    if ff is None:
        return 0
    used_pools = steady.pools_used(segment, digest)
    _run_visits(digest, config, cache_bank, pred_bank, state, 0,
                ff.anchor, kernel, params)
    s_a = steady.snapshot(state)
    _run_visits(digest, config, cache_bank, pred_bank, state, ff.anchor,
                ff.anchor + ff.ext_visits, kernel, params)
    s_b = steady.snapshot(state)
    _run_visits(digest, config, cache_bank, pred_bank, state,
                ff.anchor + ff.ext_visits, ff.anchor + 2 * ff.ext_visits,
                kernel, params)
    s_c = steady.snapshot(state)
    v_done = ff.anchor + 2 * ff.ext_visits
    delta = steady.classify(s_a, s_b, s_c, config, used_pools)
    tries = 0
    # The pipeline may still be draining a transient at the anchor;
    # slide the three-snapshot window forward a few periods.
    while (delta is None and tries < steady.MAX_CLASSIFY_TRIES
           and v_done + ff.ext_visits <= ff.limit):
        s_a, s_b = s_b, s_c
        _run_visits(digest, config, cache_bank, pred_bank, state, v_done,
                    v_done + ff.ext_visits, kernel, params)
        v_done += ff.ext_visits
        s_c = steady.snapshot(state)
        delta = steady.classify(s_a, s_b, s_c, config, used_pools)
        tries += 1
    if delta is None:
        _note("steady_rejects")
        return v_done
    periods = (ff.limit - v_done) // ff.ext_visits
    if periods > 0:
        steady.apply_delta(state, delta, periods)
        v_done += periods * ff.ext_visits
        _note("steady_ff_configs")
        _note("steady_ff_instructions", periods * ff.ext_instr)
    return v_done


def _run_config(digest, config, cache_bank, pred_bank, total,
                class_counts, store=None, hier_key=None, pred_key=None):
    started = time.perf_counter()
    state = _initial_state(config)
    covered = 0
    if total and native.available():
        # The C loop covers the whole range — no kernels, no steady
        # detection — and shares the banks' event arrays in place.
        native.run_range(0, total, digest, config, cache_bank,
                         pred_bank, state)
        covered = total
        _note("native_configs")
    elif total and digest.blocks_ok:
        kernel, params = _kernel_for(digest, config, cache_bank.shift,
                                     store)
        v_stop, covered = digest.kernel_prefix(total)
        if v_stop:
            v_done = 0
            if total >= _STEADY_MIN_INSTRUCTIONS:
                v_done = _fast_forward(digest, config, cache_bank,
                                       pred_bank, hier_key, pred_key,
                                       v_stop, state, kernel, params)
            _run_visits(digest, config, cache_bank, pred_bank, state,
                        v_done, v_stop, kernel, params)
    elif total:
        _note("fallback_configs")
    if covered < total:
        _interpreted_range(covered, total, digest, config, cache_bank,
                           pred_bank, state)

    scalars = state[0]
    last_commit = scalars[6]
    n_iacc = int(np.searchsorted(digest.iacc(cache_bank.shift)[0], total,
                                 side="left"))
    n_data = int(np.searchsorted(digest.m_pos, total, side="left"))
    n_branch = int(np.searchsorted(digest.b_pos, total, side="left"))
    if cache_bank.has_l2:
        n_l2 = int(np.searchsorted(cache_bank.l2_pos, total, side="left"))
        l2_accesses = n_l2
        l2_misses = n_l2 - int(cache_bank.l2_hit_cum[n_l2])
    else:
        l2_accesses = 0
        l2_misses = 0
    telemetry = REGISTRY.enabled
    result = PipelineResult(
        config=config,
        instructions=total,
        cycles=max(1, last_commit if total else 0),
        class_counts=list(class_counts),
        icache_accesses=n_iacc,
        icache_misses=n_iacc - int(cache_bank.i_hit_cum[n_iacc]),
        dcache_accesses=n_data,
        dcache_misses=n_data - int(cache_bank.d_hit_cum[n_data]),
        l2_accesses=l2_accesses,
        l2_misses=l2_misses,
        branch_lookups=n_branch,
        branch_mispredictions=int(pred_bank.miss_cum[n_branch]),
        rob_stalls=scalars[12] if telemetry else 0,
        lsq_stalls=scalars[13] if telemetry else 0,
        fetch_queue_stalls=scalars[14] if telemetry else 0,
        redirect_cycles=scalars[15] if telemetry else 0,
    )
    result.wall_seconds = time.perf_counter() - started
    _note_seconds("config_seconds", result.wall_seconds)
    if telemetry:
        # Same accounting PipelineModel.run emits, so grids keep
        # feeding the pipeline.* dashboards whichever engine times them.
        REGISTRY.counter("pipeline.instructions").inc(total)
        REGISTRY.counter("pipeline.runs").inc()
        REGISTRY.counter("uarch.time_seconds").inc(result.wall_seconds)
        REGISTRY.gauge("pipeline.sim_mips").set(result.simulated_mips)
    return result


def simulate_pipeline_sweep(trace, configs, max_instructions=None,
                            store=None):
    """Time one trace against many configs; one digestion, shared banks.

    Returns one :class:`PipelineResult` per config, in config order,
    each field-for-field identical to
    ``PipelineModel(config).run(trace, max_instructions)``.  ``store``
    overrides the artifact store used for digest/bank persistence
    (``None`` means the default store for corpus-sized traces).
    """
    configs = list(configs)
    if not configs:
        return []
    grid_started = time.perf_counter()
    with span("uarch.sweep", configs=len(configs)):
        store = _resolve_store(trace, store)
        digest = trace_digest(trace, store)
        total = len(trace)
        if max_instructions is not None and total > max_instructions:
            total = max_instructions
        class_counts = digest.class_counts(total)
        hierarchy_banks = {}
        predictor_banks = {}
        for config in configs:
            key = _hierarchy_key(config)
            if key not in hierarchy_banks:
                hierarchy_banks[key] = _cache_bank_for(digest, config,
                                                       store)
            key = _predictor_key(config)
            if key not in predictor_banks:
                predictor_banks[key] = _pred_bank_for(digest, config,
                                                      store)
        if store is not None:
            _persist_digest(digest, store)
        results = []
        for index, config in enumerate(configs):
            # Per-config scheduling keeps run()'s span name, so grid
            # manifests still break out pipeline-timing wall time
            # (as ``uarch.sweep/uarch.pipeline``).
            hier_key = _hierarchy_key(config)
            pred_key = _predictor_key(config)
            with span("uarch.pipeline", config=config.name):
                results.append(_run_config(
                    digest, config, hierarchy_banks[hier_key],
                    predictor_banks[pred_key], total, class_counts,
                    store, hier_key, pred_key))
            emit_event("progress", done=index + 1, total=len(configs),
                       unit="configs", label=config.name)
    _note("grids")
    _note("configs", len(configs))
    _note("instructions", total * len(configs))
    _note("distinct_hierarchies", len(hierarchy_banks))
    _note("distinct_predictors", len(predictor_banks))
    _note_seconds("grid_seconds", time.perf_counter() - grid_started)
    if REGISTRY.enabled:
        _LOG.debug("uarch.sweep", configs=len(configs),
                   instructions=total, blocks_ok=digest.blocks_ok,
                   hierarchies=len(hierarchy_banks),
                   predictors=len(predictor_banks))
    return results
