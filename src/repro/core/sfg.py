"""Statistical flow graph (paper Section 3.1.1, after Eeckhout et al.).

Nodes are the profiled program's basic blocks annotated with dynamic
execution frequencies; edges carry transition probabilities to successor
blocks.  The synthesizer walks this graph: start nodes are drawn from the
occurrence distribution, successors from the edge distribution, and each
instantiation decrements the node's remaining occurrence budget (steps 1,
6 and 8 of the generation algorithm).
"""

import bisect


class _Cdf:
    """Cumulative distribution over (item, weight) pairs for fast sampling."""

    def __init__(self, items, weights):
        self.items = list(items)
        self.cumulative = []
        total = 0.0
        for weight in weights:
            total += weight
            self.cumulative.append(total)
        self.total = total

    def sample(self, rng):
        if not self.items or self.total <= 0:
            return None
        point = rng.random() * self.total
        index = bisect.bisect_right(self.cumulative, point)
        if index >= len(self.items):
            index = len(self.items) - 1
        return self.items[index]


class StatisticalFlowGraph:
    """Walkable SFG with occurrence budgets.

    ``scale`` rescales profiled visit counts to the number of basic-block
    instances the synthesizer intends to emit, preserving relative
    frequencies (paper step 1's cumulative distribution).
    """

    def __init__(self, profile, target_instances=None):
        self.profile = profile
        visits = {bid: stats.visits for bid, stats in profile.blocks.items()
                  if stats.visits > 0}
        total_visits = sum(visits.values())
        if target_instances is None or total_visits == 0:
            scale = 1.0
        else:
            scale = target_instances / total_visits
        self.occurrences = {bid: max(1, round(count * scale))
                            for bid, count in visits.items()}
        self._initial = dict(self.occurrences)

        self.successors = {}
        for (pred, succ), count in profile.transitions.items():
            self.successors.setdefault(pred, []).append((succ, count))
        self._succ_cdfs = {
            pred: _Cdf([succ for succ, _ in pairs],
                       [count for _, count in pairs])
            for pred, pairs in self.successors.items()
        }

    # ------------------------------------------------------------------
    def sample_start(self, rng):
        """Step 1: draw a node from remaining occurrence frequencies."""
        alive = [(bid, count) for bid, count in self.occurrences.items()
                 if count > 0]
        if not alive:
            alive = list(self._initial.items())
        cdf = _Cdf([bid for bid, _ in alive], [count for _, count in alive])
        return cdf.sample(rng)

    def sample_next(self, bid, rng):
        """Step 8: draw a successor by edge probability; None if terminal."""
        cdf = self._succ_cdfs.get(bid)
        if cdf is None:
            return None
        return cdf.sample(rng)

    def instantiate(self, bid):
        """Step 6: decrement the node's occurrence budget (floor 0)."""
        remaining = self.occurrences.get(bid, 0)
        if remaining > 0:
            self.occurrences[bid] = remaining - 1

    def exhausted(self):
        return all(count <= 0 for count in self.occurrences.values())

    def transition_probability(self, pred, succ):
        """Edge probability P(succ | pred), 0.0 if the edge was never seen."""
        pairs = self.successors.get(pred)
        if not pairs:
            return 0.0
        total = sum(count for _, count in pairs)
        for node, count in pairs:
            if node == succ:
                return count / total
        return 0.0

    def walk(self, target_instances, rng):
        """Generate the block-instance sequence (steps 1, 6-9).

        Walks edges until ``target_instances`` blocks have been emitted,
        restarting from the occurrence distribution whenever a node has no
        outgoing edges.
        """
        sequence = []
        current = self.sample_start(rng)
        while current is not None and len(sequence) < target_instances:
            sequence.append(current)
            self.instantiate(current)
            nxt = self.sample_next(current, rng)
            if nxt is None or self.occurrences.get(nxt, 0) <= 0:
                # Terminal node, or the successor's budget is spent: go
                # back to step 1 so the walk's coverage stays
                # proportional to the occurrence distribution.  Without
                # this, a short walk can spend its entire budget inside
                # one hot loop nest (loop exit probabilities like 1/380
                # are effectively never drawn) and starve every other
                # program region.
                nxt = self.sample_start(rng)
            current = nxt
        return sequence
