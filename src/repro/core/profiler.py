"""Microarchitecture-independent workload characterization (Section 3.1).

The profiler makes a single pass over the compact dynamic trace, almost
entirely with vectorized numpy, and produces a
:class:`repro.core.profile.WorkloadProfile`.

Measured attributes:

* statistical flow graph — basic-block visit counts and transition counts
  (Section 3.1.1), with dependency distances kept per (predecessor,
  successor) context;
* instruction mix per class (Section 3.1.2);
* register dependency-distance distribution in the paper's buckets
  (Section 3.1.3);
* per-static-load/store dominant stride, coverage, and stream length
  (Section 3.1.4) plus the global Figure 3 coverage metric;
* per-static-branch taken rate and transition rate (Section 3.1.5).
"""

import numpy as np

from repro.core.profile import (
    DEP_BUCKETS,
    NUM_DEP_BUCKETS,
    BlockStats,
    BranchStats,
    ContextStats,
    MemOpStats,
    WorkloadProfile,
)
from repro.isa.columns import columns_for
from repro.isa.instructions import IClass
from repro.isa.registers import ZERO_REG
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.timing import span
from repro.sim.functional import run_program

_LOG = get_logger("repro.profiler")

#: Minimum dynamic executions for a static memop to count as a "stream"
#: in the unique-stream statistic (the paper's susan discussion).
STREAM_MIN_EXECUTIONS = 8


class WorkloadProfiler:
    """Configurable profiler; ``profile`` is the main entry point."""

    def __init__(self, footprint_granularity=4):
        self.footprint_granularity = footprint_granularity

    # ------------------------------------------------------------------
    def profile(self, trace):
        """Characterize one dynamic trace into a WorkloadProfile."""
        program = trace.program
        pcs = trace.pcs
        profile = WorkloadProfile(
            name=program.name,
            total_instructions=len(pcs),
            total_memory_ops=int(np.count_nonzero(trace.addrs >= 0)),
            total_branches=int(np.count_nonzero(trace.taken >= 0)),
        )

        with span("profile"):
            tables = columns_for(program)
            dyn_class = tables.iclass[pcs]
            profile.global_mix = np.bincount(
                dyn_class, minlength=IClass.COUNT).tolist()

            with span("sfg_build"):
                ctx_of_instr, visit_blocks, ctx_keys, n_blocks = \
                    self._flow_graph(profile, tables, pcs, program)
            with span("dependencies"):
                self._dependencies(profile, tables, pcs, ctx_of_instr,
                                   ctx_keys, n_blocks)
            with span("stride_mining"):
                self._memory_streams(profile, trace)
            with span("branches"):
                self._branch_behaviour(profile, trace)
            profile.data_footprint_bytes = (
                trace.data_footprint(self.footprint_granularity)
                * self.footprint_granularity)
        REGISTRY.counter("profile.instructions").inc(len(pcs))
        REGISTRY.counter("profile.runs").inc()
        _LOG.debug("profile.done", program=program.name,
                   instructions=len(pcs), blocks=len(profile.blocks),
                   mem_ops=len(profile.mem_ops),
                   stride_coverage=profile.stride_coverage)
        return profile

    # ------------------------------------------------------------------
    def _flow_graph(self, profile, tables, pcs, program):
        """Build SFG nodes/edges; returns per-instr context ids and visits."""
        starts_mask = tables.is_block_start[pcs]
        visit_blocks = tables.block_of[pcs[starts_mask]]
        visit_of_instr = np.cumsum(starts_mask) - 1
        n_blocks = len(program.basic_blocks())

        visit_counts = np.bincount(visit_blocks, minlength=n_blocks)
        block_facts = tables.derived.get("profile_block_facts")
        if block_facts is None:
            # Static per-block facts (class mix, memop pcs, conditional
            # branch pc) derived from the shared columns once per
            # program: the mix rows come from one bincount over the
            # whole program, the pc lists from nonzero masks.
            mix_rows = tables.mix_matrix()
            block_facts = []
            for start, end in tables.block_bounds:
                mem = (np.nonzero(tables.is_mem[start:end])[0]
                       + start).tolist()
                conds = np.nonzero(tables.is_cond[start:end])[0]
                branch_pc = int(conds[-1]) + start if len(conds) else -1
                bid = len(block_facts)
                block_facts.append((mix_rows[bid].tolist(), mem, branch_pc))
            tables.derived["profile_block_facts"] = block_facts
        for block in program.basic_blocks():
            visits = int(visit_counts[block.bid])
            if visits == 0:
                continue
            mix, mem_pcs, branch_pc = block_facts[block.bid]
            profile.blocks[block.bid] = BlockStats(
                bid=block.bid, size=block.size, visits=visits,
                mix=list(mix), mem_pcs=list(mem_pcs), branch_pc=branch_pc)

        # Edges and contexts.  The first visit's predecessor is -1.
        preds = np.empty_like(visit_blocks)
        preds[0] = -1
        preds[1:] = visit_blocks[:-1]
        keys = (preds.astype(np.int64) + 1) * n_blocks + visit_blocks
        unique_keys, dense_ctx, key_counts = np.unique(
            keys, return_inverse=True, return_counts=True)
        for key, count in zip(unique_keys, key_counts):
            pred = int(key // n_blocks) - 1
            succ = int(key % n_blocks)
            if pred >= 0:
                profile.transitions[(pred, succ)] = int(count)
            profile.contexts[(pred, succ)] = ContextStats(
                pred=pred, block=succ, visits=int(count),
                dep_hist=[0] * NUM_DEP_BUCKETS)
        # Context tables travel by value to _dependencies (not through
        # instance attributes) so one profiler can serve interleaved or
        # concurrent profiles.
        return dense_ctx[visit_of_instr], visit_blocks, \
            unique_keys, n_blocks

    # ------------------------------------------------------------------
    def _dependencies(self, profile, tables, pcs, ctx_of_instr,
                      ctx_keys, n_blocks):
        """Register producer→consumer distances, bucketed per context.

        For every architected register we collect its dynamic write
        positions and, for each read, searchsorted-find the closest
        preceding write.  Reads of the hardwired zero register are not
        dependences and are skipped.
        """
        dyn_dst = tables.dest[pcs]
        source_columns = (tables.src1[pcs], tables.src2[pcs])
        n_ctx = len(ctx_keys)
        ctx_hist = np.zeros(n_ctx * NUM_DEP_BUCKETS, dtype=np.int64)
        bucket_bounds = np.asarray(DEP_BUCKETS)

        registers = np.unique(np.concatenate(
            [column[column > ZERO_REG] for column in source_columns]
            + [dyn_dst[dyn_dst > ZERO_REG]]))
        for register in registers:
            write_positions = np.nonzero(dyn_dst == register)[0]
            if len(write_positions) == 0:
                continue
            for column in source_columns:
                read_positions = np.nonzero(column == register)[0]
                if len(read_positions) == 0:
                    continue
                slots = np.searchsorted(write_positions, read_positions) - 1
                valid = slots >= 0
                reads = read_positions[valid]
                distances = reads - write_positions[slots[valid]]
                buckets = np.searchsorted(bucket_bounds, distances,
                                          side="left")
                np.add.at(ctx_hist,
                          ctx_of_instr[reads] * NUM_DEP_BUCKETS + buckets, 1)

        ctx_hist = ctx_hist.reshape(n_ctx, NUM_DEP_BUCKETS)
        profile.global_dep_hist = ctx_hist.sum(axis=0).tolist()
        for ctx_index, key in enumerate(ctx_keys):
            pred = int(key // n_blocks) - 1
            succ = int(key % n_blocks)
            profile.contexts[(pred, succ)].dep_hist = (
                ctx_hist[ctx_index].tolist())

    # ------------------------------------------------------------------
    def _memory_streams(self, profile, trace):
        """Per-static-memop stride model (Section 3.1.4 / Figure 3)."""
        mem_mask = trace.addrs >= 0
        mem_pcs = trace.pcs[mem_mask]
        mem_addrs = trace.addrs[mem_mask]
        if len(mem_pcs) == 0:
            profile.stride_coverage = 1.0
            return
        order = np.argsort(mem_pcs, kind="stable")
        sorted_pcs = mem_pcs[order]
        sorted_addrs = mem_addrs[order]
        boundaries = np.nonzero(np.diff(sorted_pcs))[0] + 1
        group_starts = np.concatenate([[0], boundaries])
        group_ends = np.concatenate([boundaries, [len(sorted_pcs)]])

        covered_refs = 0
        streams = 0
        is_store_of = columns_for(trace.program).is_store
        for start, end in zip(group_starts, group_ends):
            pc = int(sorted_pcs[start])
            addresses = sorted_addrs[start:end]
            count = end - start
            is_store = bool(is_store_of[pc])
            if count == 1:
                only = int(addresses[0])
                profile.mem_ops[pc] = MemOpStats(
                    pc=pc, is_store=is_store, count=1,
                    dominant_stride=0, coverage=1.0, mean_stream_length=1.0,
                    distinct_strides=0, footprint_bytes=4,
                    first_address=only, last_address=only)
                covered_refs += 1
                continue
            deltas = np.diff(addresses)
            values, value_counts = np.unique(deltas, return_counts=True)
            best = int(np.argmax(value_counts))
            dominant = int(values[best])
            dominant_count = int(value_counts[best])
            coverage = (dominant_count + 1) / count
            mean_run = _mean_run_length(deltas == dominant)
            footprint = int(addresses.max() - addresses.min()) + 4
            local = float(np.count_nonzero(np.abs(deltas) <= 32)
                          / len(deltas))
            profile.mem_ops[pc] = MemOpStats(
                pc=pc, is_store=is_store,
                count=int(count), dominant_stride=dominant,
                coverage=float(coverage), mean_stream_length=float(mean_run),
                distinct_strides=int(len(values)), footprint_bytes=footprint,
                first_address=int(addresses[0]),
                last_address=int(addresses[-1]), local_fraction=local)
            covered_refs += dominant_count + 1
            if count >= STREAM_MIN_EXECUTIONS:
                streams += 1
        profile.stride_coverage = covered_refs / len(mem_pcs)
        profile.unique_streams = streams
        self._detect_store_aliases(profile, trace.program)

    @staticmethod
    def _detect_store_aliases(profile, program):
        """Mark stores that retrace a load's address sequence.

        Read-modify-write pairs (``lw``/``sw`` of the same location) are
        ubiquitous in real code and matter to the cache: the store always
        hits the line its load just touched.  A store whose (count,
        stride, first, last) fingerprint matches a load's is tagged so
        the synthesizer reuses the load's stream instead of inventing an
        independent one.  Matching is program-wide because the modifying
        code between load and store routinely spans basic blocks.
        """
        loads = {}
        for pc in sorted(profile.mem_ops):
            stats = profile.mem_ops[pc]
            if not stats.is_store:
                fingerprint = (stats.count, stats.dominant_stride,
                               stats.first_address, stats.last_address)
                loads.setdefault(fingerprint, pc)
        for stats in profile.mem_ops.values():
            if not stats.is_store:
                continue
            fingerprint = (stats.count, stats.dominant_stride,
                           stats.first_address, stats.last_address)
            partner = loads.get(fingerprint)
            if partner is not None:
                stats.alias_of = partner

    # ------------------------------------------------------------------
    def _branch_behaviour(self, profile, trace):
        """Taken rate and transition rate per static branch."""
        branch_mask = trace.taken >= 0
        branch_pcs = trace.pcs[branch_mask]
        outcomes = trace.taken[branch_mask]
        if len(branch_pcs) == 0:
            return
        order = np.argsort(branch_pcs, kind="stable")
        sorted_pcs = branch_pcs[order]
        sorted_outcomes = outcomes[order]
        boundaries = np.nonzero(np.diff(sorted_pcs))[0] + 1
        group_starts = np.concatenate([[0], boundaries])
        group_ends = np.concatenate([boundaries, [len(sorted_pcs)]])
        for start, end in zip(group_starts, group_ends):
            pc = int(sorted_pcs[start])
            group = sorted_outcomes[start:end]
            count = end - start
            taken_rate = float(np.count_nonzero(group) / count)
            transition_rate = (
                float(np.count_nonzero(np.diff(group)) / (count - 1))
                if count > 1 else 0.0)
            profile.branches[pc] = BranchStats(
                pc=pc, count=int(count), taken_rate=taken_rate,
                transition_rate=transition_rate)


def _mean_run_length(mask):
    """Average length of maximal runs of True in a boolean array."""
    if len(mask) == 0 or not mask.any():
        return 1.0
    padded = np.concatenate([[False], mask, [False]])
    edges = np.diff(padded.astype(np.int8))
    run_starts = np.nonzero(edges == 1)[0]
    run_ends = np.nonzero(edges == -1)[0]
    return float(np.mean(run_ends - run_starts))


def profile_trace(trace, **kwargs):
    """Profile an existing :class:`DynamicTrace`."""
    return WorkloadProfiler(**kwargs).profile(trace)


def profile_program(program, max_instructions=50_000_000, **kwargs):
    """Execute ``program`` functionally, then profile its trace."""
    trace = run_program(program, max_instructions=max_instructions)
    return WorkloadProfiler(**kwargs).profile(trace)
