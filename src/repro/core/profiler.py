"""Microarchitecture-independent workload characterization (Section 3.1).

The profiler makes a single pass over the compact dynamic trace, almost
entirely with vectorized numpy, and produces a
:class:`repro.core.profile.WorkloadProfile`.

Measured attributes:

* statistical flow graph — basic-block visit counts and transition counts
  (Section 3.1.1), with dependency distances kept per (predecessor,
  successor) context;
* instruction mix per class (Section 3.1.2);
* register dependency-distance distribution in the paper's buckets
  (Section 3.1.3);
* per-static-load/store dominant stride, coverage, and stream length
  (Section 3.1.4) plus the global Figure 3 coverage metric;
* per-static-branch taken rate and transition rate (Section 3.1.5).
"""

import numpy as np

from repro.core.profile import (
    DEP_BUCKETS,
    NUM_DEP_BUCKETS,
    BlockStats,
    BranchStats,
    ContextStats,
    MemOpStats,
    WorkloadProfile,
)
from repro.isa.columns import columns_for
from repro.isa.instructions import IClass
from repro.isa.registers import ZERO_REG
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.timing import span
from repro.sim.functional import run_program

_LOG = get_logger("repro.profiler")

#: Minimum dynamic executions for a static memop to count as a "stream"
#: in the unique-stream statistic (the paper's susan discussion).
STREAM_MIN_EXECUTIONS = 8


def _block_facts(tables):
    """Static per-block facts (class mix, memop pcs, conditional branch
    pc) derived from the shared columns once per program: the mix rows
    come from one bincount over the whole program, the pc lists from
    nonzero masks."""
    block_facts = tables.derived.get("profile_block_facts")
    if block_facts is None:
        mix_rows = tables.mix_matrix()
        block_facts = []
        for start, end in tables.block_bounds:
            mem = (np.nonzero(tables.is_mem[start:end])[0]
                   + start).tolist()
            conds = np.nonzero(tables.is_cond[start:end])[0]
            branch_pc = int(conds[-1]) + start if len(conds) else -1
            bid = len(block_facts)
            block_facts.append((mix_rows[bid].tolist(), mem, branch_pc))
        tables.derived["profile_block_facts"] = block_facts
    return block_facts


class WorkloadProfiler:
    """Configurable profiler; ``profile`` is the main entry point."""

    def __init__(self, footprint_granularity=4):
        self.footprint_granularity = footprint_granularity

    # ------------------------------------------------------------------
    def profile(self, trace):
        """Characterize one dynamic trace into a WorkloadProfile."""
        program = trace.program
        pcs = trace.pcs
        profile = WorkloadProfile(
            name=program.name,
            total_instructions=len(pcs),
            total_memory_ops=int(np.count_nonzero(trace.addrs >= 0)),
            total_branches=int(np.count_nonzero(trace.taken >= 0)),
        )

        with span("profile"):
            tables = columns_for(program)
            dyn_class = tables.iclass[pcs]
            profile.global_mix = np.bincount(
                dyn_class, minlength=IClass.COUNT).tolist()

            with span("sfg_build"):
                ctx_of_instr, visit_blocks, ctx_keys, n_blocks = \
                    self._flow_graph(profile, tables, pcs, program)
            with span("dependencies"):
                self._dependencies(profile, tables, pcs, ctx_of_instr,
                                   ctx_keys, n_blocks)
            with span("stride_mining"):
                self._memory_streams(profile, trace)
            with span("branches"):
                self._branch_behaviour(profile, trace)
            profile.data_footprint_bytes = (
                trace.data_footprint(self.footprint_granularity)
                * self.footprint_granularity)
        REGISTRY.counter("profile.instructions").inc(len(pcs))
        REGISTRY.counter("profile.runs").inc()
        _LOG.debug("profile.done", program=program.name,
                   instructions=len(pcs), blocks=len(profile.blocks),
                   mem_ops=len(profile.mem_ops),
                   stride_coverage=profile.stride_coverage)
        return profile

    # ------------------------------------------------------------------
    def _flow_graph(self, profile, tables, pcs, program):
        """Build SFG nodes/edges; returns per-instr context ids and visits."""
        starts_mask = tables.is_block_start[pcs]
        visit_blocks = tables.block_of[pcs[starts_mask]]
        visit_of_instr = np.cumsum(starts_mask) - 1
        n_blocks = len(program.basic_blocks())

        visit_counts = np.bincount(visit_blocks, minlength=n_blocks)
        block_facts = _block_facts(tables)
        for block in program.basic_blocks():
            visits = int(visit_counts[block.bid])
            if visits == 0:
                continue
            mix, mem_pcs, branch_pc = block_facts[block.bid]
            profile.blocks[block.bid] = BlockStats(
                bid=block.bid, size=block.size, visits=visits,
                mix=list(mix), mem_pcs=list(mem_pcs), branch_pc=branch_pc)

        # Edges and contexts.  The first visit's predecessor is -1.
        preds = np.empty_like(visit_blocks)
        preds[0] = -1
        preds[1:] = visit_blocks[:-1]
        keys = (preds.astype(np.int64) + 1) * n_blocks + visit_blocks
        unique_keys, dense_ctx, key_counts = np.unique(
            keys, return_inverse=True, return_counts=True)
        for key, count in zip(unique_keys, key_counts):
            pred = int(key // n_blocks) - 1
            succ = int(key % n_blocks)
            if pred >= 0:
                profile.transitions[(pred, succ)] = int(count)
            profile.contexts[(pred, succ)] = ContextStats(
                pred=pred, block=succ, visits=int(count),
                dep_hist=[0] * NUM_DEP_BUCKETS)
        # Context tables travel by value to _dependencies (not through
        # instance attributes) so one profiler can serve interleaved or
        # concurrent profiles.
        return dense_ctx[visit_of_instr], visit_blocks, \
            unique_keys, n_blocks

    # ------------------------------------------------------------------
    def _dependencies(self, profile, tables, pcs, ctx_of_instr,
                      ctx_keys, n_blocks):
        """Register producer→consumer distances, bucketed per context.

        For every architected register we collect its dynamic write
        positions and, for each read, searchsorted-find the closest
        preceding write.  Reads of the hardwired zero register are not
        dependences and are skipped.
        """
        dyn_dst = tables.dest[pcs]
        source_columns = (tables.src1[pcs], tables.src2[pcs])
        n_ctx = len(ctx_keys)
        ctx_hist = np.zeros(n_ctx * NUM_DEP_BUCKETS, dtype=np.int64)
        bucket_bounds = np.asarray(DEP_BUCKETS)

        registers = np.unique(np.concatenate(
            [column[column > ZERO_REG] for column in source_columns]
            + [dyn_dst[dyn_dst > ZERO_REG]]))
        for register in registers:
            write_positions = np.nonzero(dyn_dst == register)[0]
            if len(write_positions) == 0:
                continue
            for column in source_columns:
                read_positions = np.nonzero(column == register)[0]
                if len(read_positions) == 0:
                    continue
                slots = np.searchsorted(write_positions, read_positions) - 1
                valid = slots >= 0
                reads = read_positions[valid]
                distances = reads - write_positions[slots[valid]]
                buckets = np.searchsorted(bucket_bounds, distances,
                                          side="left")
                np.add.at(ctx_hist,
                          ctx_of_instr[reads] * NUM_DEP_BUCKETS + buckets, 1)

        ctx_hist = ctx_hist.reshape(n_ctx, NUM_DEP_BUCKETS)
        profile.global_dep_hist = ctx_hist.sum(axis=0).tolist()
        for ctx_index, key in enumerate(ctx_keys):
            pred = int(key // n_blocks) - 1
            succ = int(key % n_blocks)
            profile.contexts[(pred, succ)].dep_hist = (
                ctx_hist[ctx_index].tolist())

    # ------------------------------------------------------------------
    def _memory_streams(self, profile, trace):
        """Per-static-memop stride model (Section 3.1.4 / Figure 3)."""
        mem_mask = trace.addrs >= 0
        mem_pcs = trace.pcs[mem_mask]
        mem_addrs = trace.addrs[mem_mask]
        if len(mem_pcs) == 0:
            profile.stride_coverage = 1.0
            return
        order = np.argsort(mem_pcs, kind="stable")
        sorted_pcs = mem_pcs[order]
        sorted_addrs = mem_addrs[order]
        boundaries = np.nonzero(np.diff(sorted_pcs))[0] + 1
        group_starts = np.concatenate([[0], boundaries])
        group_ends = np.concatenate([boundaries, [len(sorted_pcs)]])

        covered_refs = 0
        streams = 0
        is_store_of = columns_for(trace.program).is_store
        for start, end in zip(group_starts, group_ends):
            pc = int(sorted_pcs[start])
            addresses = sorted_addrs[start:end]
            count = end - start
            is_store = bool(is_store_of[pc])
            if count == 1:
                only = int(addresses[0])
                profile.mem_ops[pc] = MemOpStats(
                    pc=pc, is_store=is_store, count=1,
                    dominant_stride=0, coverage=1.0, mean_stream_length=1.0,
                    distinct_strides=0, footprint_bytes=4,
                    first_address=only, last_address=only)
                covered_refs += 1
                continue
            deltas = np.diff(addresses)
            values, value_counts = np.unique(deltas, return_counts=True)
            best = int(np.argmax(value_counts))
            dominant = int(values[best])
            dominant_count = int(value_counts[best])
            coverage = (dominant_count + 1) / count
            mean_run = _mean_run_length(deltas == dominant)
            footprint = int(addresses.max() - addresses.min()) + 4
            local = float(np.count_nonzero(np.abs(deltas) <= 32)
                          / len(deltas))
            profile.mem_ops[pc] = MemOpStats(
                pc=pc, is_store=is_store,
                count=int(count), dominant_stride=dominant,
                coverage=float(coverage), mean_stream_length=float(mean_run),
                distinct_strides=int(len(values)), footprint_bytes=footprint,
                first_address=int(addresses[0]),
                last_address=int(addresses[-1]), local_fraction=local)
            covered_refs += dominant_count + 1
            if count >= STREAM_MIN_EXECUTIONS:
                streams += 1
        profile.stride_coverage = covered_refs / len(mem_pcs)
        profile.unique_streams = streams
        self._detect_store_aliases(profile, trace.program)

    @staticmethod
    def _detect_store_aliases(profile, program):
        """Mark stores that retrace a load's address sequence.

        Read-modify-write pairs (``lw``/``sw`` of the same location) are
        ubiquitous in real code and matter to the cache: the store always
        hits the line its load just touched.  A store whose (count,
        stride, first, last) fingerprint matches a load's is tagged so
        the synthesizer reuses the load's stream instead of inventing an
        independent one.  Matching is program-wide because the modifying
        code between load and store routinely spans basic blocks.
        """
        loads = {}
        for pc in sorted(profile.mem_ops):
            stats = profile.mem_ops[pc]
            if not stats.is_store:
                fingerprint = (stats.count, stats.dominant_stride,
                               stats.first_address, stats.last_address)
                loads.setdefault(fingerprint, pc)
        for stats in profile.mem_ops.values():
            if not stats.is_store:
                continue
            fingerprint = (stats.count, stats.dominant_stride,
                           stats.first_address, stats.last_address)
            partner = loads.get(fingerprint)
            if partner is not None:
                stats.alias_of = partner

    # ------------------------------------------------------------------
    def _branch_behaviour(self, profile, trace):
        """Taken rate and transition rate per static branch."""
        branch_mask = trace.taken >= 0
        branch_pcs = trace.pcs[branch_mask]
        outcomes = trace.taken[branch_mask]
        if len(branch_pcs) == 0:
            return
        order = np.argsort(branch_pcs, kind="stable")
        sorted_pcs = branch_pcs[order]
        sorted_outcomes = outcomes[order]
        boundaries = np.nonzero(np.diff(sorted_pcs))[0] + 1
        group_starts = np.concatenate([[0], boundaries])
        group_ends = np.concatenate([boundaries, [len(sorted_pcs)]])
        for start, end in zip(group_starts, group_ends):
            pc = int(sorted_pcs[start])
            group = sorted_outcomes[start:end]
            count = end - start
            taken_rate = float(np.count_nonzero(group) / count)
            transition_rate = (
                float(np.count_nonzero(np.diff(group)) / (count - 1))
                if count > 1 else 0.0)
            profile.branches[pc] = BranchStats(
                pc=pc, count=int(count), taken_rate=taken_rate,
                transition_rate=transition_rate)


def _mean_run_length(mask):
    """Average length of maximal runs of True in a boolean array."""
    if len(mask) == 0 or not mask.any():
        return 1.0
    padded = np.concatenate([[False], mask, [False]])
    edges = np.diff(padded.astype(np.int8))
    run_starts = np.nonzero(edges == 1)[0]
    run_ends = np.nonzero(edges == -1)[0]
    return float(np.mean(run_ends - run_starts))


class ChunkedWorkloadProfiler:
    """Streaming profiler: feed columnar trace chunks, finish a profile.

    A sink for :func:`repro.sim.native.stream_trace` producing a
    :class:`WorkloadProfile` **bit-identical** to
    ``WorkloadProfiler.profile`` on the materialized trace, without the
    trace ever existing.  Every global computation of the one-pass
    profiler is refactored into a per-chunk update plus carried state:

    * SFG visits/transitions/contexts — carried last block + open
      context key; context histograms keyed by the raw
      ``(pred+1)*n_blocks+succ`` key (dense ids are a presentation
      detail);
    * dependency distances — carried last *global* write position per
      register; the closest preceding write for a read is either in
      the same chunk or that carry, so a per-chunk ``searchsorted``
      with the carry prepended reproduces the global answer exactly;
    * per-memop strides — per-pc running (count, first/last/min/max,
      previous delta, per-delta count and run count, local count);
      cross-chunk deltas come from the carried last address;
    * per-branch behaviour — per-pc running (count, taken count,
      transition count, last outcome);
    * data footprint — the set of touched granules.

    Requires the stream to begin at a basic-block leader, which every
    simulator-produced trace does (execution starts at the program
    entry).
    """

    def __init__(self, program, footprint_granularity=4):
        self.program = program
        self.footprint_granularity = footprint_granularity
        self.tables = columns_for(program)
        self.n_blocks = len(program.basic_blocks())
        self._n = 0
        self._mem_total = 0
        self._branch_total = 0
        self._mix = np.zeros(IClass.COUNT, dtype=np.int64)
        self._visit_counts = np.zeros(self.n_blocks, dtype=np.int64)
        self._key_counts = {}   # ctx key -> visit count
        self._ctx_hist = {}     # ctx key -> int64[NUM_DEP_BUCKETS]
        self._last_block = -1   # predecessor for the next visit
        self._current_key = None  # context key of the open visit
        self._last_write = {}   # register -> last global write position
        self._mem = {}          # pc -> stride accumulator (see _feed_mem)
        self._branches = {}     # pc -> [count, taken, transitions, last]
        self._granules = set()
        self._bucket_bounds = np.asarray(DEP_BUCKETS)

    # ------------------------------------------------------------------
    def feed(self, pcs, addrs, taken):
        """Fold one columnar chunk into the running profile state."""
        if not len(pcs):
            return
        pcs = pcs.astype(np.int64)
        tables = self.tables
        self._mix += np.bincount(tables.iclass[pcs],
                                 minlength=IClass.COUNT)
        key_of_instr = self._feed_flow(tables, pcs)
        self._feed_dependencies(tables, pcs, key_of_instr)
        mem_mask = addrs >= 0
        self._feed_mem(pcs[mem_mask], addrs[mem_mask])
        branch_mask = taken >= 0
        self._feed_branches(pcs[branch_mask], taken[branch_mask])
        self._n += len(pcs)

    def _feed_flow(self, tables, pcs):
        """SFG update; returns the context key per chunk instruction."""
        starts_mask = tables.is_block_start[pcs]
        if self._n == 0 and not bool(starts_mask[0]):
            raise ValueError(
                "streamed trace must start at a basic-block leader")
        start_positions = np.nonzero(starts_mask)[0]
        if len(start_positions) == 0:
            return np.full(len(pcs), self._current_key, dtype=np.int64)
        visit_blocks = tables.block_of[pcs[start_positions]]
        np.add.at(self._visit_counts, visit_blocks, 1)
        preds = np.empty_like(visit_blocks)
        preds[0] = self._last_block
        preds[1:] = visit_blocks[:-1]
        keys = (preds.astype(np.int64) + 1) * self.n_blocks + visit_blocks
        for key, count in zip(*np.unique(keys, return_counts=True)):
            key = int(key)
            self._key_counts[key] = (self._key_counts.get(key, 0)
                                     + int(count))
        self._last_block = int(visit_blocks[-1])
        visit_of = np.cumsum(starts_mask) - 1
        key_of_instr = keys[np.maximum(visit_of, 0)]
        if visit_of[0] < 0:  # instructions continuing the open visit
            key_of_instr = np.where(visit_of >= 0, key_of_instr,
                                    self._current_key)
        self._current_key = int(keys[-1])
        return key_of_instr

    def _feed_dependencies(self, tables, pcs, key_of_instr):
        dyn_dst = tables.dest[pcs]
        source_columns = (tables.src1[pcs], tables.src2[pcs])
        offset = self._n
        registers = np.unique(np.concatenate(
            [column[column > ZERO_REG] for column in source_columns]
            + [dyn_dst[dyn_dst > ZERO_REG]]))
        for register in registers:
            writes = np.nonzero(dyn_dst == register)[0] + offset
            carry = self._last_write.get(int(register))
            if carry is not None:
                merged = np.concatenate([[carry], writes])
            else:
                merged = writes
            if len(merged):
                for column in source_columns:
                    read_positions = (np.nonzero(column == register)[0]
                                      + offset)
                    if len(read_positions) == 0:
                        continue
                    slots = np.searchsorted(merged, read_positions) - 1
                    valid = slots >= 0
                    reads = read_positions[valid]
                    if len(reads) == 0:
                        continue
                    distances = reads - merged[slots[valid]]
                    buckets = np.searchsorted(self._bucket_bounds,
                                              distances, side="left")
                    read_keys = key_of_instr[reads - offset]
                    unique_keys, dense = np.unique(read_keys,
                                                   return_inverse=True)
                    hist = np.zeros((len(unique_keys), NUM_DEP_BUCKETS),
                                    dtype=np.int64)
                    np.add.at(hist, (dense, buckets), 1)
                    for index, key in enumerate(unique_keys):
                        key = int(key)
                        row = self._ctx_hist.get(key)
                        if row is None:
                            row = self._ctx_hist[key] = np.zeros(
                                NUM_DEP_BUCKETS, dtype=np.int64)
                        row += hist[index]
            if len(writes):
                self._last_write[int(register)] = int(writes[-1])

    def _feed_mem(self, mem_pcs, mem_addrs):
        if len(mem_pcs) == 0:
            return
        self._mem_total += len(mem_pcs)
        self._granules.update(
            np.unique(mem_addrs // self.footprint_granularity).tolist())
        order = np.argsort(mem_pcs, kind="stable")
        sorted_pcs = mem_pcs[order]
        sorted_addrs = mem_addrs[order]
        boundaries = np.nonzero(np.diff(sorted_pcs))[0] + 1
        group_starts = np.concatenate([[0], boundaries])
        group_ends = np.concatenate([boundaries, [len(sorted_pcs)]])
        for start, end in zip(group_starts, group_ends):
            pc = int(sorted_pcs[start])
            addresses = sorted_addrs[start:end]
            acc = self._mem.get(pc)
            if acc is None:
                acc = self._mem[pc] = {
                    "count": 0, "first": int(addresses[0]),
                    "last": None, "min": int(addresses.min()),
                    "max": int(addresses.max()), "prev": None,
                    "deltas": {}, "local": 0, "delta_count": 0,
                }
                deltas = np.diff(addresses)
            else:
                acc["min"] = min(acc["min"], int(addresses.min()))
                acc["max"] = max(acc["max"], int(addresses.max()))
                deltas = np.diff(np.concatenate([[acc["last"]],
                                                 addresses]))
            acc["count"] += len(addresses)
            acc["last"] = int(addresses[-1])
            if len(deltas) == 0:
                continue
            acc["delta_count"] += len(deltas)
            acc["local"] += int(np.count_nonzero(np.abs(deltas) <= 32))
            # Per-delta dynamic counts and run counts: a run of delta d
            # starts wherever d differs from the preceding delta (the
            # carried one across the chunk seam).
            prev = np.empty_like(deltas)
            prev[0] = (acc["prev"] if acc["prev"] is not None
                       else deltas[0] + 1)  # sentinel: always a start
            prev[1:] = deltas[:-1]
            run_start = deltas != prev
            values, value_counts = np.unique(deltas, return_counts=True)
            table = acc["deltas"]
            for value, count in zip(values, value_counts):
                entry = table.get(int(value))
                if entry is None:
                    entry = table[int(value)] = [0, 0]
                entry[0] += int(count)
            start_values, start_counts = np.unique(deltas[run_start],
                                                   return_counts=True)
            for value, count in zip(start_values, start_counts):
                table[int(value)][1] += int(count)
            acc["prev"] = int(deltas[-1])

    def _feed_branches(self, branch_pcs, outcomes):
        if len(branch_pcs) == 0:
            return
        self._branch_total += len(branch_pcs)
        order = np.argsort(branch_pcs, kind="stable")
        sorted_pcs = branch_pcs[order]
        sorted_outcomes = outcomes[order]
        boundaries = np.nonzero(np.diff(sorted_pcs))[0] + 1
        group_starts = np.concatenate([[0], boundaries])
        group_ends = np.concatenate([boundaries, [len(sorted_pcs)]])
        for start, end in zip(group_starts, group_ends):
            pc = int(sorted_pcs[start])
            group = sorted_outcomes[start:end]
            acc = self._branches.get(pc)
            if acc is None:
                acc = self._branches[pc] = [0, 0, 0, None]
            transitions = int(np.count_nonzero(np.diff(group)))
            if acc[3] is not None and int(group[0]) != acc[3]:
                transitions += 1  # the chunk-seam transition
            acc[0] += len(group)
            acc[1] += int(np.count_nonzero(group))
            acc[2] += transitions
            acc[3] = int(group[-1])

    # ------------------------------------------------------------------
    def finish(self):
        """The completed profile (identical to the one-pass result)."""
        program = self.program
        profile = WorkloadProfile(
            name=program.name,
            total_instructions=self._n,
            total_memory_ops=self._mem_total,
            total_branches=self._branch_total,
        )
        profile.global_mix = self._mix.tolist()
        block_facts = _block_facts(self.tables)
        for block in program.basic_blocks():
            visits = int(self._visit_counts[block.bid])
            if visits == 0:
                continue
            mix, mem_pcs, branch_pc = block_facts[block.bid]
            profile.blocks[block.bid] = BlockStats(
                bid=block.bid, size=block.size, visits=visits,
                mix=list(mix), mem_pcs=list(mem_pcs),
                branch_pc=branch_pc)
        zero_hist = [0] * NUM_DEP_BUCKETS
        global_hist = np.zeros(NUM_DEP_BUCKETS, dtype=np.int64)
        for key in sorted(self._key_counts):
            pred = key // self.n_blocks - 1
            succ = key % self.n_blocks
            count = self._key_counts[key]
            if pred >= 0:
                profile.transitions[(pred, succ)] = count
            hist = self._ctx_hist.get(key)
            if hist is not None:
                global_hist += hist
            profile.contexts[(pred, succ)] = ContextStats(
                pred=pred, block=succ, visits=count,
                dep_hist=hist.tolist() if hist is not None
                else list(zero_hist))
        profile.global_dep_hist = global_hist.tolist()
        self._finish_mem(profile)
        self._finish_branches(profile)
        profile.data_footprint_bytes = (len(self._granules)
                                        * self.footprint_granularity)
        REGISTRY.counter("profile.instructions").inc(self._n)
        REGISTRY.counter("profile.runs").inc()
        _LOG.debug("profile.done", program=program.name,
                   instructions=self._n, blocks=len(profile.blocks),
                   mem_ops=len(profile.mem_ops),
                   stride_coverage=profile.stride_coverage)
        return profile

    def _finish_mem(self, profile):
        if self._mem_total == 0:
            profile.stride_coverage = 1.0
            return
        is_store_of = self.tables.is_store
        covered_refs = 0
        streams = 0
        for pc in sorted(self._mem):  # one-pass grouping order
            acc = self._mem[pc]
            count = acc["count"]
            is_store = bool(is_store_of[pc])
            if count == 1:
                only = acc["first"]
                profile.mem_ops[pc] = MemOpStats(
                    pc=pc, is_store=is_store, count=1,
                    dominant_stride=0, coverage=1.0,
                    mean_stream_length=1.0, distinct_strides=0,
                    footprint_bytes=4, first_address=only,
                    last_address=only)
                covered_refs += 1
                continue
            # Dominant delta: highest dynamic count, smallest value on
            # ties (np.unique sorts ascending, argmax takes the first).
            table = acc["deltas"]
            dominant, (dominant_count, dominant_runs) = min(
                table.items(), key=lambda item: (-item[1][0], item[0]))
            coverage = (dominant_count + 1) / count
            mean_run = dominant_count / dominant_runs
            profile.mem_ops[pc] = MemOpStats(
                pc=pc, is_store=is_store, count=count,
                dominant_stride=dominant, coverage=float(coverage),
                mean_stream_length=float(mean_run),
                distinct_strides=len(table),
                footprint_bytes=acc["max"] - acc["min"] + 4,
                first_address=acc["first"], last_address=acc["last"],
                local_fraction=acc["local"] / acc["delta_count"])
            covered_refs += dominant_count + 1
            if count >= STREAM_MIN_EXECUTIONS:
                streams += 1
        profile.stride_coverage = covered_refs / self._mem_total
        profile.unique_streams = streams
        WorkloadProfiler._detect_store_aliases(profile, self.program)

    def _finish_branches(self, profile):
        for pc in sorted(self._branches):
            count, taken, transitions, _last = self._branches[pc]
            profile.branches[pc] = BranchStats(
                pc=pc, count=count, taken_rate=taken / count,
                transition_rate=(transitions / (count - 1)
                                 if count > 1 else 0.0))


def profile_trace(trace, **kwargs):
    """Profile an existing :class:`DynamicTrace`."""
    return WorkloadProfiler(**kwargs).profile(trace)


def profile_program(program, max_instructions=50_000_000, **kwargs):
    """Execute ``program`` functionally, then profile its trace.

    When the native engine can take the program, execution streams
    columnar chunks straight into a :class:`ChunkedWorkloadProfiler`
    and the full trace is never materialized; the resulting profile is
    bit-identical either way.
    """
    from repro.sim import native
    from repro.sim.functional import FunctionalSimulator
    if native.engine_for(program) is not None:
        with span("sim.run", program=program.name, backend="native"):
            profiler = ChunkedWorkloadProfiler(program, **kwargs)
            simulator = FunctionalSimulator(program, backend="native")
            native.stream_trace(simulator, max_instructions,
                                profiler.feed)
        with span("profile"):
            return profiler.finish()
    trace = run_program(program, max_instructions=max_instructions)
    return WorkloadProfiler(**kwargs).profile(trace)
