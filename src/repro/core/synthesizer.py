"""Synthetic benchmark clone generation (paper Section 3.2, steps 1-12).

The synthesizer consumes only a :class:`WorkloadProfile` — never the
original program — and emits an assembly-text clone which is then run
through the regular assembler.  Structure of the generated program::

    .data   one region per stream cluster
    .text
    init:   counters, cluster pointers/countdowns, fp anchors
    loop:   <target_block_instances generated basic blocks>
    tail:   advance/reset cluster pointers, counter++, back-edge
    halt

Every generated block reproduces its SFG node's instruction mix, sampled
dependency distances (context-sensitive), per-memop stride streams, and
the terminating branch's transition/taken rates.
"""

import random
import re
from dataclasses import dataclass, field

from repro.core.branch_model import RNG_SEED, emit_branch, pattern_for
from repro.core.memory_model import StreamPlan
from repro.core.profile import NUM_DEP_BUCKETS, bucket_representative
from repro.core.regassign import CloneRegisterFile
from repro.core.sfg import StatisticalFlowGraph
from repro.isa.assembler import assemble, _li_sequence
from repro.isa.instructions import IClass
from repro.isa.registers import reg_name
from repro.obs.journal import emit_event
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.timing import span

_LOG = get_logger("repro.synthesizer")


@dataclass
class SynthesisParameters:
    """Knobs for clone generation.

    ``dynamic_instructions`` controls the clone's run length (paper step
    11: "controlling the number of iterations of the loop effectively
    controls the number of dynamic instructions").  ``footprint_scale``
    is the what-if knob for growing/shrinking the cloned data footprint.

    ``lint_gate`` controls the post-synthesis static-verification gate:
    ``"error"`` (default) raises :class:`repro.lint.LintGateError` on
    error-severity findings, ``"warn"`` only records the verdict in
    ``CloneResult.stats["lint"]``, and ``"off"`` skips the gate.
    ``severity_overrides`` (``{code: severity}``) is threaded through
    every lint pass the gate runs — structural, conformance, safety,
    static-profile, and disclosure alike (see
    :mod:`repro.lint.diagnostics` for the precedence rules).
    """

    dynamic_instructions: int = 100_000
    target_block_instances: int = 0  # 0 => derived from the profile
    seed: int = 42
    max_pointer_clusters: int = 8
    footprint_scale: float = 1.0
    min_block_instances: int = 48
    max_block_instances: int = 640
    min_memory_instances: int = 120
    lint_gate: str = "error"  # "error" | "warn" | "off"
    severity_overrides: dict = None  # {diagnostic code: severity}


@dataclass
class CloneResult:
    """A synthesized clone plus its provenance and generation stats."""

    program: object
    asm_source: str
    profile: object
    parameters: SynthesisParameters
    stats: dict = field(default_factory=dict)


# Opcode rotations per instruction class: (mnemonic, source-count, suffix).
_INT_OPS = (("add", 2, ""), ("addi", 1, ", 3"), ("xor", 2, ""),
            ("sub", 2, ""), ("andi", 1, ", 255"), ("or", 2, ""))
_FALU_OPS = (("fadd", 2, ""), ("fsub", 2, ""))

_CLASS_LABELS = {
    IClass.IALU: "ialu", IClass.IMUL: "imul", IClass.IDIV: "idiv",
    IClass.FALU: "falu", IClass.FMUL: "fmul", IClass.FDIV: "fdiv",
    IClass.LOAD: "load", IClass.STORE: "store",
    # Jumps are linearized away; their issue slots become plain int ALU
    # work so the per-class instruction counts still add up.
    IClass.JUMP: "ialu",
}


def _interleave(counts):
    """Spread class labels evenly across a block (largest-remainder)."""
    total = sum(counts.values())
    credits = {label: 0.0 for label in counts}
    remaining = dict(counts)
    sequence = []
    for _ in range(total):
        for label in credits:
            credits[label] += remaining[label] and counts[label] / total
        label = max(credits, key=lambda key: (credits[key], counts[key]))
        sequence.append(label)
        credits[label] -= 1.0
        remaining[label] -= 1
        if remaining[label] == 0:
            credits[label] = float("-inf")
    return sequence


#: Integer operand tokens in emitted assembly text: standalone signed
#: decimals, not digits embedded in register names/labels/floats.
_INT_OPERAND = re.compile(r"(?<![\w.])-?\d+(?![\w.])")


def _emitted_ints(lines):
    """Every integer literal appearing in generated assembly lines.

    Used to record provenance for constants emitted by helper code
    (branch-pattern realizations) without threading an annotation
    through every emitter.
    """
    values = []
    for line in lines:
        text = line.split("#", 1)[0].strip()
        if not text or text.endswith(":") or text.startswith("."):
            continue
        _, _, operands = text.partition(" ")
        values.extend(int(token) for token in _INT_OPERAND.findall(operands))
    return values


def _sample_bucket(hist, rng):
    total = sum(hist)
    if total == 0:
        return 1  # a short, common dependence
    point = rng.random() * total
    cumulative = 0.0
    for bucket, count in enumerate(hist):
        cumulative += count
        if point < cumulative:
            return bucket
    return NUM_DEP_BUCKETS - 1


class CloneSynthesizer:
    """Generates a synthetic benchmark clone from a workload profile."""

    #: Reuse a paired load's stream for read-modify-write stores.  The
    #: microarchitecture-dependent baseline turns this off (prior-art
    #: generators modelled every memop independently).
    use_alias_pairing = True

    #: Run the profile-conformance lint layer in the post-synthesis
    #: gate.  Baseline synthesizers that *intentionally* violate the
    #: synthesis contract turn this off; the structural layer still runs.
    lint_conformance = True

    def __init__(self, profile, parameters=None):
        self.profile = profile
        self.parameters = parameters or SynthesisParameters()
        if self.parameters.max_pointer_clusters > CloneRegisterFile.MAX_CLUSTERS:
            raise ValueError("at most 8 pointer clusters are supported")
        if self.parameters.lint_gate not in ("error", "warn", "off"):
            raise ValueError(
                f"lint_gate must be 'error', 'warn', or 'off', "
                f"not {self.parameters.lint_gate!r}")

    # ------------------------------------------------------------------
    def synthesize(self):
        with span("synthesize"):
            result = self._synthesize()
            self._lint_gate(result)
        REGISTRY.counter("synthesize.runs").inc()
        REGISTRY.counter("synthesize.block_instances").inc(
            result.stats["block_instances"])
        _LOG.debug("synthesize.done", profile=self.profile.name,
                   block_instances=result.stats["block_instances"],
                   iterations=result.stats["iterations"],
                   footprint_bytes=result.stats["footprint_bytes"])
        return result

    def _synthesize(self):
        profile = self.profile
        params = self.parameters
        rng = random.Random(params.seed)
        regs = CloneRegisterFile()
        self._random_cursor = 0
        self._provenance = {}

        target = params.target_block_instances
        if target <= 0:
            active = max(1, len(profile.blocks))
            target = max(params.min_block_instances, 3 * active)
            # Ensure the clone's loop body carries enough static memory
            # instructions that its instantaneous working set resembles
            # the original's (small-block kernels like SHA need more
            # block instances than 3x their block count provides).
            visits = sum(stats.visits for stats in profile.blocks.values())
            if visits and profile.total_memory_ops:
                mem_per_visit = profile.total_memory_ops / visits
                target = max(target,
                             round(params.min_memory_instances
                                   / max(mem_per_visit, 1e-6)))
            target = min(params.max_block_instances, target)

        with span("sfg_walk"):
            sfg = StatisticalFlowGraph(profile, target_instances=target)
            sequence = sfg.walk(target, rng)
            plan = self._make_stream_plan()

        with span("plan_blocks"):
            abstract_blocks = self._plan_blocks(sequence, plan, rng)
            body_estimate = (sum(profile.blocks[bid].size
                                 for bid in sequence) + 32)
            alpha = plan.finalize(
                estimated_iterations=max(
                    2, params.dynamic_instructions // max(1, body_estimate)))

        with span("codegen"):
            body_lines, body_instructions = self._emit_body(
                abstract_blocks, plan, regs)
            tail_lines, tail_common = self._emit_tail(plan, regs)

            per_iteration = body_instructions + tail_common
            iterations = max(
                2, params.dynamic_instructions // max(1, per_iteration))
            init_lines = self._emit_init(plan, regs, iterations)

            source_lines = ["    .data"]
            source_lines.extend(plan.data_directives())
            source_lines.append("    .text")
            source_lines.extend(init_lines)
            source_lines.append("loop_top:")
            source_lines.extend(body_lines)
            source_lines.extend(tail_lines)
            source_lines.append("    halt")
            asm_source = "\n".join(source_lines) + "\n"

        with span("assemble"):
            program = assemble(asm_source, name=f"{profile.name}.clone")
        stats = {
            "block_instances": len(sequence),
            "sequence": list(sequence),
            "per_iteration_instructions": per_iteration,
            "iterations": iterations,
            "clusters": [
                {"index": cluster.index,
                 "stride": cluster.stride,
                 "advance": cluster.advance,
                 "streams": len(cluster.slots),
                 "instances": cluster.total_instances,
                 "reset_period": cluster.reset_period,
                 "region_bytes": cluster.region_bytes()}
                for cluster in plan.active_clusters()],
            "footprint_bytes": plan.total_footprint(),
            "footprint_target": profile.data_footprint_bytes,
            "reset_scale_alpha": alpha,
            # Literal provenance ({origin: sorted values}): every
            # constant the emitters wrote, annotated at generation time
            # so the disclosure audit (repro.lint.disclosure) can prove
            # none derives from a raw address/value of the original.
            "provenance": {origin: sorted(values) for origin, values
                           in sorted(self._provenance.items())},
        }
        return CloneResult(program=program, asm_source=asm_source,
                           profile=profile, parameters=params, stats=stats)

    # ------------------------------------------------------------------
    def _note(self, value, origin):
        """Record one emitted literal's provenance (disclosure audit)."""
        self._provenance.setdefault(origin, set()).add(value)

    def _note_lines(self, lines, origin):
        for value in _emitted_ints(lines):
            self._note(value, origin)

    # ------------------------------------------------------------------
    def _lint_gate(self, result):
        """Statically verify the freshly synthesized clone (the gate).

        Runs every static layer — structural (``SR1xx``), contract
        conformance (``CF20x``), safety proofs (``SR11x``), static
        profile prediction (``CF21x``), and the disclosure audit
        (``DL3xx``) — and attaches the machine-readable safety
        certificate to ``stats["certificate"]``.  No simulation runs.

        Imported lazily: ``repro.lint`` depends on :mod:`repro.core`
        modules, so a module-level import here would be circular.
        """
        mode = self.parameters.lint_gate
        if mode == "off":
            return
        from repro.lint import LintGateError, lint_clone, safety_certificate
        overrides = self.parameters.severity_overrides
        with span("lint_gate"):
            report = lint_clone(result, severity_overrides=overrides,
                                conformance=self.lint_conformance,
                                static=self.lint_conformance)
            # The absint fixpoint is already cached on the program's
            # columns, so certifying here costs nothing extra.
            result.stats["certificate"] = safety_certificate(result.program)
        result.stats["lint"] = report.summary()
        emit_event("lint", gate=mode, **report.summary())
        REGISTRY.counter("lint.gate_runs").inc()
        if not report.ok:
            REGISTRY.counter("lint.gate_failures").inc()
            _LOG.debug("lint_gate.failed", profile=self.profile.name,
                       codes=report.codes())
            if mode == "error":
                raise LintGateError(report)

    # ------------------------------------------------------------------
    def _make_stream_plan(self):
        """Build the memory model; overridable by baseline synthesizers."""
        return StreamPlan(self.profile,
                          max_clusters=self.parameters.max_pointer_clusters,
                          footprint_scale=self.parameters.footprint_scale)

    def _branch_pattern(self, branch_stats, rng):
        """Pattern for one block-terminating branch; overridable."""
        if branch_stats is None:
            return pattern_for(1.0, 0.0)
        pattern = pattern_for(branch_stats.taken_rate,
                              branch_stats.transition_rate,
                              random_shift=self._random_cursor)
        if pattern.kind == "random":
            self._random_cursor += 1
        return pattern

    # ------------------------------------------------------------------
    def _plan_blocks(self, sequence, plan, rng):
        """First pass: sample per-instance operations and claim slots."""
        profile = self.profile
        abstract_blocks = []
        previous = -1
        last_handle = {}  # original load pc -> most recent clone handle
        for bid in sequence:
            stats = profile.blocks[bid]
            hist = self._context_hist(previous, bid)
            pattern = None
            if stats.branch_pc >= 0:
                pattern = self._branch_pattern(
                    profile.branches.get(stats.branch_pc), rng)
            counts = {}
            for iclass, count in enumerate(stats.mix):
                label = _CLASS_LABELS.get(iclass)
                if label is None or count == 0:
                    continue
                counts[label] = counts.get(label, 0) + count
            counts.pop("load", None)
            counts.pop("store", None)
            loads = [pc for pc in stats.mem_pcs
                     if not profile.mem_ops.get(pc)
                     or not profile.mem_ops[pc].is_store]
            stores = [pc for pc in stats.mem_pcs
                      if profile.mem_ops.get(pc)
                      and profile.mem_ops[pc].is_store]
            if loads:
                counts["load"] = len(loads)
            if stores:
                counts["store"] = len(stores)
            # The modulo/random branch mechanisms add condition-setup ALU
            # ops; charge them against the block's integer-ALU budget so
            # the clone's instruction mix stays faithful.
            setup_cost = {"modulo": 2, "random": 3}.get(
                getattr(pattern, "kind", ""), 0)
            if setup_cost and counts.get("ialu", 0) > 0:
                counts["ialu"] = max(0, counts["ialu"] - setup_cost)
                if counts["ialu"] == 0:
                    del counts["ialu"]

            entries = []
            load_iter, store_iter = iter(loads), iter(stores)
            for label in _interleave(counts) if counts else []:
                if label == "load":
                    pc = next(load_iter)
                    handle = plan.allocate(pc, rng)
                    last_handle[pc] = handle
                    entries.append(("load", handle, ()))
                elif label == "store":
                    pc = next(store_iter)
                    mem_stats = profile.mem_ops.get(pc)
                    alias = (mem_stats.alias_of
                             if mem_stats and self.use_alias_pairing else -1)
                    # Read-modify-write pairing: the store retraces its
                    # partner load's stream (same slot, same instance as
                    # the load's most recent clone occurrence).
                    handle = last_handle.get(alias) if alias >= 0 else None
                    if handle is None:
                        handle = plan.allocate(pc, rng)
                    entries.append(("store", handle,
                                    (_sample_bucket(hist, rng),)))
                else:
                    entries.append((label, None, None))

            abstract_blocks.append((bid, hist, entries, pattern))
            previous = bid
        return abstract_blocks

    def _context_hist(self, pred, bid):
        """Dependency histogram for this (predecessor, block) context."""
        contexts = self.profile.contexts
        stats = contexts.get((pred, bid)) or contexts.get((-1, bid))
        if stats is None:
            for (_, block), candidate in contexts.items():
                if block == bid:
                    stats = candidate
                    break
        if stats is not None and sum(stats.dep_hist) > 0:
            return stats.dep_hist
        return self.profile.global_dep_hist

    # ------------------------------------------------------------------
    def _emit_body(self, abstract_blocks, plan, regs):
        """Second pass: assign registers, realize distances, emit text."""
        rng = random.Random(self.parameters.seed + 1)
        lines = []
        position = 0
        cycles = {"ialu": 0, "falu": 0}
        label_counter = 0

        def int_sources(n_srcs, hist):
            sources = []
            for _ in range(n_srcs):
                bucket = _sample_bucket(hist, rng)
                distance = bucket_representative(bucket)
                sources.append(regs.int_file.source_for(position, distance))
            return sources

        def fp_sources(n_srcs, hist):
            sources = []
            for _ in range(n_srcs):
                bucket = _sample_bucket(hist, rng)
                distance = bucket_representative(bucket)
                sources.append(regs.fp_file.source_for(position, distance))
            return sources

        for _bid, hist, entries, pattern in abstract_blocks:
            lines.append(f"bb{label_counter}:")
            for label, handle, extra in entries:
                if label == "load":
                    cluster_index, offset = plan.locate(handle)
                    dest = regs.int_file.allocate_dest(position)
                    self._note(offset, "slot-offset")
                    lines.append(f"    lw {reg_name(dest)}, {offset}"
                                 f"({regs.pointer_name(cluster_index)})")
                elif label == "store":
                    cluster_index, offset = plan.locate(handle)
                    distance = bucket_representative(extra[0])
                    source = regs.int_file.source_for(position, distance)
                    self._note(offset, "slot-offset")
                    lines.append(f"    sw {reg_name(source)}, {offset}"
                                 f"({regs.pointer_name(cluster_index)})")
                elif label == "ialu":
                    mnemonic, n_srcs, suffix = _INT_OPS[
                        cycles["ialu"] % len(_INT_OPS)]
                    if suffix:
                        self._note(int(suffix.lstrip(", ")), "mix-rotation")
                    cycles["ialu"] += 1
                    sources = int_sources(n_srcs, hist)
                    dest = regs.int_file.allocate_dest(position)
                    operands = ", ".join(reg_name(s) for s in sources)
                    lines.append(f"    {mnemonic} {reg_name(dest)}, "
                                 f"{operands}{suffix}")
                elif label == "imul":
                    sources = int_sources(2, hist)
                    dest = regs.int_file.allocate_dest(position)
                    lines.append(f"    mul {reg_name(dest)}, "
                                 f"{reg_name(sources[0])}, {reg_name(sources[1])}")
                elif label == "idiv":
                    sources = int_sources(2, hist)
                    dest = regs.int_file.allocate_dest(position)
                    lines.append(f"    div {reg_name(dest)}, "
                                 f"{reg_name(sources[0])}, {reg_name(sources[1])}")
                elif label == "falu":
                    mnemonic, n_srcs, _ = _FALU_OPS[
                        cycles["falu"] % len(_FALU_OPS)]
                    cycles["falu"] += 1
                    sources = fp_sources(n_srcs, hist)
                    dest = regs.fp_file.allocate_dest(position)
                    operands = ", ".join(reg_name(s) for s in sources)
                    lines.append(f"    {mnemonic} {reg_name(dest)}, {operands}")
                elif label == "fmul":
                    sources = fp_sources(2, hist)
                    dest = regs.fp_file.allocate_dest(position)
                    lines.append(f"    fmul {reg_name(dest)}, "
                                 f"{reg_name(sources[0])}, {reg_name(sources[1])}")
                elif label == "fdiv":
                    sources = fp_sources(2, hist)
                    dest = regs.fp_file.allocate_dest(position)
                    lines.append(f"    fdiv {reg_name(dest)}, "
                                 f"{reg_name(sources[0])}, {reg_name(sources[1])}")
                else:
                    raise ValueError(f"unknown abstract op {label!r}")
                position += 1
            if pattern is not None:
                next_label = f"bb{label_counter}_n"
                branch_lines = (pattern.emit(next_label)
                                if hasattr(pattern, "emit")
                                else emit_branch(pattern, next_label))
                self._note_lines(branch_lines, "branch-pattern")
                lines.extend(branch_lines)
                position += len(branch_lines)
                lines.append(f"{next_label}:")
            label_counter += 1
        return lines, position

    # ------------------------------------------------------------------
    def _emit_tail(self, plan, regs):
        """Advance and (rarely) reset each cluster pointer, then loop."""
        lines = []
        common_path = 0
        for cluster in plan.active_clusters():
            pointer = regs.pointer_name(cluster.index)
            countdown = regs.countdown_name(cluster.index)
            skip = f"adv{cluster.index}"
            self._note(cluster.advance, "stream-advance")
            self._note(-1, "loop-counter")
            lines.append(f"    addi {pointer}, {pointer}, {cluster.advance}")
            lines.append(f"    addi {countdown}, {countdown}, -1")
            lines.append(f"    bne {countdown}, r0, {skip}")
            lines.extend(self._pointer_reset(cluster, pointer, countdown))
            lines.append(f"{skip}:")
            common_path += 3
        # Step the shared xorshift32 register feeding "random" branches.
        for shift in (13, 17, 5):
            self._note(shift, "rng-step")
        self._note(1, "loop-counter")
        lines.append("    slli r3, r31, 13")
        lines.append("    xor r31, r31, r3")
        lines.append("    srli r3, r31, 17")
        lines.append("    xor r31, r31, r3")
        lines.append("    slli r3, r31, 5")
        lines.append("    xor r31, r31, r3")
        lines.append("    addi r1, r1, 1")
        lines.append("    blt r1, r2, loop_top")
        common_path += 8
        return lines, common_path

    def _pointer_reset(self, cluster, pointer, countdown):
        lines = [f"    la {pointer}, {cluster.symbol}"]
        if cluster.initial_offset:
            self._note(cluster.initial_offset, "stream-phase")
            lines.append(f"    addi {pointer}, {pointer}, "
                         f"{cluster.initial_offset}")
        self._note(cluster.reset_period, "reset-period")
        lines.append(f"    li {countdown}, {cluster.reset_period}")
        return lines

    # ------------------------------------------------------------------
    def _emit_init(self, plan, regs, iterations):
        self._note(0, "loop-counter")
        self._note(iterations, "run-length")
        self._note(RNG_SEED, "rng-seed")
        lines = ["main:", "    li r1, 0", f"    li r2, {iterations}",
                 f"    li r31, {RNG_SEED}"]
        for cluster in plan.active_clusters():
            pointer = regs.pointer_name(cluster.index)
            countdown = regs.countdown_name(cluster.index)
            lines.append(f"    la {pointer}, {cluster.symbol}")
            if cluster.initial_offset:
                self._note(cluster.initial_offset, "stream-phase")
                lines.append(f"    addi {pointer}, {pointer}, "
                             f"{cluster.initial_offset}")
            self._note(cluster.reset_period, "reset-period")
            lines.append(f"    li {countdown}, {cluster.reset_period}")
        for index, value in enumerate((1.0001, 0.9998, 1.5, 0.75)):
            self._note(value, "fp-seed")
            lines.append(f"    fli f{index}, {value}")
        return lines


def estimate_instruction_lines(lines):
    """Count machine instructions in assembly lines (la/li may expand)."""
    count = 0
    for line in lines:
        stripped = line.split("#", 1)[0].strip()
        if not stripped or stripped.endswith(":") or stripped.startswith("."):
            continue
        mnemonic, _, rest = stripped.partition(" ")
        if mnemonic == "la":
            count += 2
        elif mnemonic == "li":
            value = int(rest.split(",")[1].strip(), 0)
            count += len(_li_sequence(1, value))
        else:
            count += 1
    return count
