"""One-call performance-cloning API (paper Figure 1, end to end)."""

from repro.core.profiler import profile_program, profile_trace
from repro.core.synthesizer import CloneSynthesizer


def make_clone(profile, parameters=None):
    """Synthesize a clone from an existing workload profile."""
    return CloneSynthesizer(profile, parameters).synthesize()


def clone_program(program, parameters=None, max_instructions=50_000_000):
    """Profile ``program`` and synthesize its clone in one step.

    This is the whole pipeline of Figure 1: functional execution →
    microarchitecture-independent profile → synthetic benchmark clone.
    Returns a :class:`repro.core.synthesizer.CloneResult`; the executable
    clone is ``result.program`` and the shareable source is
    ``result.asm_source``.
    """
    profile = profile_program(program, max_instructions=max_instructions)
    return make_clone(profile, parameters)


def clone_trace(trace, parameters=None):
    """Clone directly from a captured dynamic trace."""
    return make_clone(profile_trace(trace), parameters)
