"""The microarchitecture-independent workload profile (paper Section 3.1).

Every attribute here is a property of the program's *functional* execution
only — nothing depends on caches, predictors, or pipeline geometry.  The
profile is JSON-serializable so a vendor can ship it (or the clone built
from it) instead of the proprietary binary.
"""

import json
from dataclasses import asdict, dataclass, field

from repro.isa.instructions import IClass

#: Dependency-distance bucket upper bounds, matching the paper's Section
#: 3.1.3 categories: 1, <=2, <=4, <=6, <=8, <=16, <=32, >32.
DEP_BUCKETS = (1, 2, 4, 6, 8, 16, 32)
NUM_DEP_BUCKETS = len(DEP_BUCKETS) + 1


def dep_bucket(distance):
    """Map a producer→consumer distance (in instructions) to its bucket."""
    for index, bound in enumerate(DEP_BUCKETS):
        if distance <= bound:
            return index
    return len(DEP_BUCKETS)


def bucket_representative(bucket):
    """A concrete distance to realize when synthesizing from a bucket."""
    representatives = (1, 2, 3, 5, 7, 12, 24, 48)
    return representatives[bucket]


@dataclass
class MemOpStats:
    """Stride-stream statistics for one static load or store.

    ``dominant_stride`` is the most frequent address delta between
    consecutive executions of this static instruction; ``coverage`` is the
    fraction of its dynamic references the single-stride model explains
    (the paper's Figure 3 metric); ``mean_stream_length`` is the average
    run of consecutive dominant-stride accesses.
    """

    pc: int
    is_store: bool
    count: int
    dominant_stride: int
    coverage: float
    mean_stream_length: float
    distinct_strides: int
    footprint_bytes: int
    first_address: int = 0
    last_address: int = 0
    #: Fraction of successive-access deltas within one cache line (32B);
    #: distinguishes locally-wandering ops from true scatter lookups.
    local_fraction: float = 1.0
    #: pc of a load in the same basic block whose address sequence this
    #: store reproduces (read-modify-write pairing), or -1.
    alias_of: int = -1


@dataclass
class BranchStats:
    """Per-static-branch behaviour (paper Section 3.1.5)."""

    pc: int
    count: int
    taken_rate: float
    transition_rate: float


@dataclass
class BlockStats:
    """One statistical-flow-graph node: a basic block plus dynamic counts."""

    bid: int
    size: int
    visits: int
    mix: list  # instruction-class counts, length IClass.COUNT
    mem_pcs: list  # static pcs of loads/stores inside the block
    branch_pc: int  # pc of terminating conditional branch, or -1


@dataclass
class ContextStats:
    """Per (predecessor, successor) statistics (paper Section 3.1.1).

    Workload characteristics are kept per unique *pair* of blocks because
    a block's dynamic behaviour depends on the context it was entered
    from.  The dependency-distance histogram is the context-sensitive
    attribute that benefits most.
    """

    pred: int
    block: int
    visits: int
    dep_hist: list  # counts per DEP bucket, length NUM_DEP_BUCKETS


@dataclass
class WorkloadProfile:
    """Everything the synthesizer needs, and nothing the vendor must hide."""

    name: str
    total_instructions: int
    total_memory_ops: int
    total_branches: int
    global_mix: list = field(default_factory=lambda: [0] * IClass.COUNT)
    global_dep_hist: list = field(
        default_factory=lambda: [0] * NUM_DEP_BUCKETS)
    blocks: dict = field(default_factory=dict)  # bid -> BlockStats
    transitions: dict = field(default_factory=dict)  # (pred,succ) -> count
    contexts: dict = field(default_factory=dict)  # (pred,succ) -> ContextStats
    mem_ops: dict = field(default_factory=dict)  # pc -> MemOpStats
    branches: dict = field(default_factory=dict)  # pc -> BranchStats
    data_footprint_bytes: int = 0
    stride_coverage: float = 1.0  # Figure 3 metric, reference-weighted
    unique_streams: int = 0

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def mix_fractions(self):
        """Global instruction-class mix as fractions summing to 1."""
        total = sum(self.global_mix)
        if total == 0:
            return [0.0] * IClass.COUNT
        return [count / total for count in self.global_mix]

    def mean_basic_block_size(self):
        """Dynamic average basic-block size (instructions per block visit)."""
        visits = sum(stats.visits for stats in self.blocks.values())
        if visits == 0:
            return 0.0
        return self.total_instructions / visits

    def dep_fractions(self):
        total = sum(self.global_dep_hist)
        if total == 0:
            return [0.0] * NUM_DEP_BUCKETS
        return [count / total for count in self.global_dep_hist]

    def hot_blocks(self, limit=None):
        """Block ids sorted by dynamic execution weight, hottest first."""
        ranked = sorted(self.blocks.values(),
                        key=lambda stats: stats.visits * stats.size,
                        reverse=True)
        if limit is not None:
            ranked = ranked[:limit]
        return [stats.bid for stats in ranked]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "name": self.name,
            "total_instructions": self.total_instructions,
            "total_memory_ops": self.total_memory_ops,
            "total_branches": self.total_branches,
            "global_mix": list(self.global_mix),
            "global_dep_hist": list(self.global_dep_hist),
            "blocks": {str(bid): asdict(stats)
                       for bid, stats in self.blocks.items()},
            "transitions": {f"{pred}:{succ}": count
                            for (pred, succ), count in self.transitions.items()},
            "contexts": {f"{pred}:{succ}": asdict(stats)
                         for (pred, succ), stats in self.contexts.items()},
            "mem_ops": {str(pc): asdict(stats)
                        for pc, stats in self.mem_ops.items()},
            "branches": {str(pc): asdict(stats)
                         for pc, stats in self.branches.items()},
            "data_footprint_bytes": self.data_footprint_bytes,
            "stride_coverage": self.stride_coverage,
            "unique_streams": self.unique_streams,
        }

    @classmethod
    def from_dict(cls, payload):
        def pair(key):
            pred, succ = key.split(":")
            return int(pred), int(succ)

        return cls(
            name=payload["name"],
            total_instructions=payload["total_instructions"],
            total_memory_ops=payload["total_memory_ops"],
            total_branches=payload["total_branches"],
            global_mix=list(payload["global_mix"]),
            global_dep_hist=list(payload["global_dep_hist"]),
            blocks={int(bid): BlockStats(**stats)
                    for bid, stats in payload["blocks"].items()},
            transitions={pair(key): count
                         for key, count in payload["transitions"].items()},
            contexts={pair(key): ContextStats(**stats)
                      for key, stats in payload["contexts"].items()},
            mem_ops={int(pc): MemOpStats(**stats)
                     for pc, stats in payload["mem_ops"].items()},
            branches={int(pc): BranchStats(**stats)
                      for pc, stats in payload["branches"].items()},
            data_footprint_bytes=payload["data_footprint_bytes"],
            stride_coverage=payload["stride_coverage"],
            unique_streams=payload["unique_streams"],
        )

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read())
