"""Microarchitecture-independent control-flow-predictability model
(paper Sections 3.1.5 and 3.2 step 5).

Each generated basic block ends in a conditional branch whose direction
sequence reproduces the profiled static branch's *transition rate* (and,
secondarily, its taken rate).  The mechanism is the paper's: a modulo of
the loop-iteration counter steers the branch.  We use a power-of-two
modulo so it costs one ``andi`` plus one ``slti``:

    tmp   = counter & (M - 1)
    cond  = tmp < K            # 1 => taken
    bne cond, r0, <next line>

which yields a periodic pattern of K taken followed by M-K not-taken —
transition rate ≈ 2/M and taken rate ≈ K/M.
"""

from dataclasses import dataclass

#: Transition rates below this are "always one direction".
CONSTANT_THRESHOLD = 0.02

#: Largest modulo period (=> smallest non-zero transition rate ≈ 2/256).
MAX_PERIOD = 256


#: Seed of the clone's shared xorshift32 register (r31), updated once per
#: loop iteration in the tail.
RNG_SEED = 0x2545F491


def xorshift32(state):
    """One xorshift32 step, exactly as the clone's tail computes it."""
    state ^= (state << 13) & 0xFFFFFFFF
    state ^= state >> 17
    state ^= (state << 5) & 0xFFFFFFFF
    return state & 0xFFFFFFFF


@dataclass(frozen=True)
class BranchPattern:
    """Realizable direction pattern for one synthetic branch.

    ``modulo`` yields a periodic run pattern; ``random`` tests a 3-bit
    window of the clone's shared per-iteration xorshift register, giving
    genuinely hard-to-predict directions with P(taken) = threshold / 8.
    """

    kind: str  # "taken", "not_taken", "modulo", or "random"
    period: int = 0  # M (power of two) for "modulo"
    threshold: int = 0  # K for "modulo"; eighths for "random"
    shift: int = 0  # bit window position for "random"

    def direction(self, iteration, rng_state=None):
        """Ground-truth direction for a loop iteration (used in tests).

        For "random" patterns pass the xorshift state as seen by that
        iteration (``RNG_SEED`` stepped ``iteration`` times), or let the
        helper recompute it (O(iteration)).
        """
        if self.kind == "taken":
            return 1
        if self.kind == "not_taken":
            return 0
        if self.kind == "random":
            if rng_state is None:
                rng_state = RNG_SEED
                for _ in range(iteration):
                    rng_state = xorshift32(rng_state)
            return 1 if ((rng_state >> self.shift) & 7) < self.threshold \
                else 0
        return 1 if (iteration & (self.period - 1)) < self.threshold else 0

    def expected_transition_rate(self):
        if self.kind == "modulo":
            return 2.0 / self.period
        if self.kind == "random":
            probability = self.threshold / 8.0
            return 2.0 * probability * (1.0 - probability)
        return 0.0

    def expected_taken_rate(self):
        if self.kind == "taken":
            return 1.0
        if self.kind == "not_taken":
            return 0.0
        if self.kind == "random":
            return self.threshold / 8.0
        return self.threshold / self.period


def _round_power_of_two(value, minimum=2, maximum=MAX_PERIOD):
    value = max(minimum, min(maximum, value))
    lower = 1 << (int(value).bit_length() - 1)
    upper = lower * 2
    chosen = lower if value - lower <= upper - value else upper
    return max(minimum, min(maximum, chosen))


def pattern_for(taken_rate, transition_rate, random_shift=0):
    """Choose the pattern realizing the profiled rates (paper step 5).

    Very low transition rates become constant-direction branches.  A
    transition rate consistent with *independent* outcomes (t ≈ 2p(1-p))
    means the branch's direction sequence carries no structure, so it is
    realized from the clone's per-iteration random register — a periodic
    pattern there would be artificially easy to predict.  Everything else
    becomes the modulo pattern with period ≈ 2/t and threshold ≈ p·M.
    """
    if transition_rate <= CONSTANT_THRESHOLD:
        if taken_rate >= 0.5:
            return BranchPattern(kind="taken")
        return BranchPattern(kind="not_taken")

    independent_rate = 2.0 * taken_rate * (1.0 - taken_rate)
    if (independent_rate > 0.05 and 0.15 <= taken_rate <= 0.85
            and 0.5 <= transition_rate / independent_rate <= 1.6):
        threshold = max(1, min(7, round(8.0 * taken_rate)))
        shift = (random_shift * 5) % 29
        return BranchPattern(kind="random", threshold=threshold, shift=shift)

    period = _round_power_of_two(
        round(2.0 / max(transition_rate, 2.0 / MAX_PERIOD)))
    threshold = round(period * taken_rate)
    threshold = max(1, min(period - 1, threshold))
    return BranchPattern(kind="modulo", period=period, threshold=threshold)


def emit_branch(pattern, label, counter_reg="r1", scratch_reg="r3",
                rng_reg="r31"):
    """Assembly lines for one synthetic block-terminating branch.

    The branch target is the immediately following line (``label``), so
    control flow is identical either way — only the *direction* sequence
    seen by branch predictors varies, which is exactly what the model has
    to reproduce.
    """
    if pattern.kind == "taken":
        return [f"    beq r0, r0, {label}"]
    if pattern.kind == "not_taken":
        return [f"    bne r0, r0, {label}"]
    if pattern.kind == "random":
        return [
            f"    srli {scratch_reg}, {rng_reg}, {pattern.shift}",
            f"    andi {scratch_reg}, {scratch_reg}, 7",
            f"    slti {scratch_reg}, {scratch_reg}, {pattern.threshold}",
            f"    bne {scratch_reg}, r0, {label}",
        ]
    return [
        f"    andi {scratch_reg}, {counter_reg}, {pattern.period - 1}",
        f"    slti {scratch_reg}, {scratch_reg}, {pattern.threshold}",
        f"    bne {scratch_reg}, r0, {label}",
    ]
