"""Microarchitecture-independent memory access model (Sections 3.1.4, 3.2).

The paper models every static load/store as one fixed-stride stream that
resets after a number of iterations chosen so the clone's data footprint
matches the original.  Realizing that with ~30 architected registers,
no per-access multiplies, and a *looped* synthetic body takes four ideas:

* **Clusters** — memops are grouped by modelled stride; each cluster owns
  one pointer register that advances once per clone loop iteration and
  resets to its base every ``reset_period`` iterations.

* **Shared sliding streams** — all generated instances of the same
  original static memop share one stream; instance ``j`` uses static
  offset ``j·stride``, so consecutive instances inside one iteration are
  adjacent addresses and the window slides each iteration, preserving
  both the intra-loop spatial locality and the stream walk.

* **Region sharing** — distinct static memops whose profiled address
  ranges overlap (five neighbourhood loads over one image; the loads and
  stores of one table) share a single region with their original
  relative offsets, so the clone's working set is the *union* of their
  footprints as in the original, not the disjoint sum.

* **Sweep-once advance** — ops whose profiled stream runs essentially
  once over their footprint (stream length ≈ execution count) generate
  *compulsory* misses at any cache size.  Their cluster pointer advances
  by a whole window per iteration so the clone keeps touching fresh
  lines at the original's rate, instead of amortizing them away by
  looping in place.

Reset periods of looping clusters are scaled by one factor solved so the
total clone footprint matches the profiled footprint (the knob paper
step 11 leaves free).
"""

from dataclasses import dataclass, field

#: Pointer-register strides are clamped into this range so one stream
#: region cannot dwarf the whole footprint.
MAX_ABS_STRIDE = 4096

#: Bounds on the reset period (iterations between stream re-walks).
MIN_RESET, MAX_RESET = 4, 65536

#: Two same-stride ops share a region only when their range *starts* are
#: within this many bytes — close enough that the offset between them is
#: a structural one (neighbourhood taps, struct fields, paired arrays),
#: not two different data structures that happen to be adjacent.
REGION_GAP = 128


@dataclass
class StreamSlot:
    """One shared region's stream inside a cluster."""

    key: object
    op_offsets: dict = field(default_factory=dict)  # pc -> relative offset
    op_instances: dict = field(default_factory=dict)  # pc -> count
    mean_stream_length: float = 8.0
    footprint: int = 64
    extent: int = 0  # relative-offset spread of the member ops
    base_offset: int = 0
    anchor: int = 0
    span: int = 0

    @property
    def max_instances(self):
        return max(self.op_instances.values(), default=0)


@dataclass
class StreamCluster:
    """One pointer register's worth of streams."""

    index: int
    stride: int
    sweep_once: bool
    mean_stream_length: float
    weight: int  # total dynamic references merged into this cluster
    advance: int = 0  # pointer increment per loop iteration
    reset_period: int = 0
    symbol: str = ""
    slots: dict = field(default_factory=dict)  # key -> StreamSlot
    region: int = 0

    @property
    def total_instances(self):
        return sum(sum(slot.op_instances.values())
                   for slot in self.slots.values())

    @property
    def initial_offset(self):
        return 0

    def region_bytes(self):
        return self.region


class StreamPlan:
    """Assigns clone memops to shared streams and sizes the data regions."""

    #: Coverage below which the single-stride model is deemed wrong and
    #: the op is modelled as a sweep over its observed footprint instead
    #: (table lookups, hash probes — crc32-style access patterns).
    SCATTER_COVERAGE = 0.6

    #: Synthetic stride for non-local scatter ops: a bit over a cache
    #: line, so a sweep touches every line of the region without dwelling.
    SCATTER_STRIDE = 36

    def __init__(self, profile, max_clusters=8, footprint_scale=1.0):
        self.profile = profile
        self.max_clusters = max_clusters
        self.footprint_scale = footprint_scale
        self.clusters = []
        self._cluster_of_pc = {}
        self._region_of_pc = {}
        self._build()

    # ------------------------------------------------------------------
    # Modelling decisions per op
    # ------------------------------------------------------------------
    def _model_for(self, stats):
        """(stride, stream length, sweep_once) synthesized for one memop."""
        stride = max(-MAX_ABS_STRIDE,
                     min(MAX_ABS_STRIDE, stats.dominant_stride))
        if (stats.coverage < self.SCATTER_COVERAGE
                and stats.footprint_bytes > 64 and stats.count >= 8):
            if stats.local_fraction >= 0.3:
                # Wandering but spatially local (image windows): a dense
                # sweep preserves line reuse a coarse sweep would destroy.
                return 4, max(8.0, stats.footprint_bytes / 4), False
            return (self.SCATTER_STRIDE,
                    max(8.0, stats.footprint_bytes / self.SCATTER_STRIDE),
                    False)
        # Stream-once: the op's addresses essentially never repeat (its
        # footprint is as large as the whole walk), so every line it
        # touches is a compulsory miss in the original.
        sweep_once = (stride != 0 and stats.count >= 16
                      and stats.footprint_bytes
                      >= 0.5 * abs(stride) * stats.count)
        return stride, stats.mean_stream_length, sweep_once

    # ------------------------------------------------------------------
    def _build(self):
        ops = list(self.profile.mem_ops.values())
        models = {stats.pc: self._model_for(stats) for stats in ops}

        # --- regions: same-(stride, mode) ops with overlapping ranges ---
        groups = {}
        for stats in ops:
            stride, _, once = models[stats.pc]
            groups.setdefault((stride, once), []).append(stats)
        regions = []  # (stride, once, [stats...])
        for (stride, once), members in groups.items():
            members.sort(key=self._range_start)
            current = [members[0]]
            group_start = self._range_start(members[0])
            for stats in members[1:]:
                if self._range_start(stats) - group_start <= REGION_GAP:
                    current.append(stats)
                else:
                    regions.append((stride, once, current))
                    current = [stats]
                    group_start = self._range_start(stats)
            regions.append((stride, once, current))

        # --- clusters: regions grouped by (stride, mode), by weight -----
        by_key = {}
        for stride, once, members in regions:
            entry = by_key.setdefault((stride, once), [0, 0.0, []])
            weight = sum(stats.count for stats in members)
            entry[0] += weight
            entry[1] += sum(models[stats.pc][1] * stats.count
                            for stats in members)
            entry[2].append((members, weight))
        if not by_key:
            by_key[(4, False)] = [1, 8.0, [([], 1)]]

        ranked = sorted(by_key.items(), key=lambda item: item[1][0],
                        reverse=True)
        kept = ranked[:self.max_clusters]
        for index, ((stride, once), (weight, wlen, _)) in enumerate(kept):
            self.clusters.append(StreamCluster(
                index=index, stride=stride, sweep_once=once,
                mean_stream_length=(wlen / weight if weight else 8.0),
                weight=weight, symbol=f"stream_{index}"))

        # Route each region to its cluster (leftover stride groups go to
        # the nearest kept stride).
        kept_keys = [(cluster.stride, cluster.sweep_once)
                     for cluster in self.clusters]
        region_id = 0
        for (stride, once), (_, _, region_list) in by_key.items():
            cluster_index = (
                kept_keys.index((stride, once))
                if (stride, once) in kept_keys
                else min(range(len(kept_keys)),
                         key=lambda i, s=stride: abs(kept_keys[i][0] - s)))
            cluster = self.clusters[cluster_index]
            for members, _ in region_list:
                slot = StreamSlot(key=region_id)
                base = (min(self._range_start(s) for s in members)
                        if members else 0)
                extent = 0
                total_len = 0.0
                footprint = 64
                for stats in members:
                    rel = self._range_start(stats) - base
                    slot.op_offsets[stats.pc] = rel
                    slot.op_instances[stats.pc] = 0
                    extent = max(extent, rel + 8)
                    total_len += models[stats.pc][1]
                    footprint = max(footprint, stats.footprint_bytes)
                    self._cluster_of_pc[stats.pc] = cluster_index
                    self._region_of_pc[stats.pc] = region_id
                slot.extent = extent
                slot.footprint = footprint
                slot.mean_stream_length = (total_len / len(members)
                                           if members else 8.0)
                cluster.slots[region_id] = slot
                region_id += 1

    @staticmethod
    def _range_start(stats):
        return min(stats.first_address, stats.last_address)

    @staticmethod
    def _range_end(stats):
        return max(stats.first_address, stats.last_address)

    # ------------------------------------------------------------------
    def allocate(self, pc, rng=None):
        """Claim the next instance of original memop ``pc``.

        Returns an opaque handle consumed by :meth:`locate` once the plan
        is finalized.  ``rng`` is unused here; baseline plans assign
        probabilistically.
        """
        cluster_index = self._cluster_of_pc.get(pc)
        if cluster_index is None:
            # An op the profile never saw (defensive default).
            cluster_index = 0
            cluster = self.clusters[0]
            slot = cluster.slots.setdefault(-1, StreamSlot(
                key=-1, op_offsets={pc: 0}, op_instances={pc: 0}))
            slot.op_offsets.setdefault(pc, 0)
            slot.op_instances.setdefault(pc, 0)
            region = -1
        else:
            region = self._region_of_pc[pc]
            slot = self.clusters[cluster_index].slots[region]
        instance = slot.op_instances[pc]
        slot.op_instances[pc] = instance + 1
        return (cluster_index, region, pc, instance)

    # ------------------------------------------------------------------
    def finalize(self, estimated_iterations=None):
        """Fix advances, reset periods, and region layout.

        Sweep-once clusters advance a whole instance-window per iteration
        and size their slots to the ops' original footprints (compulsory
        misses at the original rate); when ``estimated_iterations`` is
        given their regions are stretched (up to 8x the footprint) so the
        walk does not wrap — and stop generating compulsory misses —
        before the clone finishes.  Looping clusters advance one stride
        and share a reset-period scale ``alpha`` solved so the total
        footprint matches the profile.
        """
        target = max(64, int(self.profile.data_footprint_bytes
                             * self.footprint_scale))

        fixed_cost = 0.0
        scaled_cost = 0.0
        for cluster in self.clusters:
            stride = abs(cluster.stride)
            if cluster.sweep_once:
                continue
            for slot in cluster.slots.values():
                fixed_cost += stride * slot.max_instances + slot.extent + 16
                scaled_cost += stride * max(2.0, slot.mean_stream_length)
        once_cost = 0.0
        for cluster in self.clusters:
            if not cluster.sweep_once:
                continue
            for slot in cluster.slots.values():
                once_cost += slot.footprint + slot.extent + 16
        alpha = (max(0.02, min(
            512.0, (target - fixed_cost - once_cost) / scaled_cost))
            if scaled_cost > 0 else 1.0)

        for cluster in self.clusters:
            stride = cluster.stride
            if cluster.sweep_once:
                instances = [slot.max_instances
                             for slot in cluster.slots.values()
                             if slot.max_instances]
                window = max(1, round(sum(instances) / len(instances))) \
                    if instances else 1
                cluster.advance = stride * window
                footprints = [slot.footprint
                              for slot in cluster.slots.values()] or [64]
                mean_footprint = sum(footprints) / len(footprints)
                period = mean_footprint / max(1, abs(cluster.advance))
                if estimated_iterations:
                    period = min(max(period, estimated_iterations),
                                 8 * period)
                cluster.reset_period = int(min(MAX_RESET,
                                               max(MIN_RESET, round(period))))
            else:
                cluster.advance = stride
                base_period = max(2.0, cluster.mean_stream_length) * alpha
                cluster.reset_period = int(min(
                    MAX_RESET, max(MIN_RESET, round(base_period))))

            offset = 0
            for order, slot in enumerate(cluster.slots.values()):
                if cluster.sweep_once:
                    # Instances are spread across one advance window.
                    walk = abs(cluster.advance) * (cluster.reset_period + 1)
                else:
                    wrap = max(1, int(slot.footprint * self.footprint_scale)
                               // max(1, abs(stride)))
                    walk = (abs(cluster.advance) * cluster.reset_period
                            + abs(stride) * min(slot.max_instances, wrap))
                slot.anchor = walk + 8 if (stride < 0) else 0
                slot.span = ((walk + slot.extent + 16 + 7) & ~7)
                slot.base_offset = offset
                # Line-granule skew between consecutive regions so slot
                # bases do not systematically alias the same set in small
                # direct-mapped caches.
                offset += slot.span + 32 * (1 + order % 7)
            cluster.region = offset
        return alpha

    def locate(self, handle):
        """(cluster_index, static offset) for an allocated instance.

        Must be called after :meth:`finalize`.  Descending streams anchor
        at the top of their slot so the whole walk stays in-region.
        """
        cluster_index, region, pc, instance = handle
        cluster = self.clusters[cluster_index]
        slot = cluster.slots[region]
        if cluster.sweep_once:
            # Spread the op's instances evenly over one iteration's
            # advance so consecutive iterations tile the region seamlessly
            # (no per-iteration overlap that would re-touch lines).
            count = max(1, slot.op_instances.get(pc, 1))
            step = cluster.advance * instance // count
        else:
            # Keep the instance window inside the op's (scaled) original
            # footprint: more clone instances than the original has
            # distinct locations must revisit, not widen the region.
            wrap = max(1, int(slot.footprint * self.footprint_scale)
                       // max(1, abs(cluster.stride)))
            step = cluster.stride * (instance % wrap)
        return cluster_index, (slot.base_offset + slot.anchor
                               + slot.op_offsets.get(pc, 0) + step)

    def data_directives(self):
        """Assembly `.data` lines reserving every cluster region."""
        lines = []
        for cluster in self.clusters:
            if cluster.region:
                # Inter-cluster skew, same rationale as the per-slot skew.
                lines.append(f"    .space {32 * (1 + cluster.index % 5)}")
                lines.append("    .align 8")
                lines.append(f"{cluster.symbol}:    .space {cluster.region}")
        return lines

    def active_clusters(self):
        return [cluster for cluster in self.clusters if cluster.slots]

    def total_footprint(self):
        return sum(cluster.region for cluster in self.clusters)
