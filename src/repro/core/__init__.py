"""Performance cloning — the paper's primary contribution.

Two halves, matching Figure 1 of the paper:

* **Profiling** (:class:`WorkloadProfiler`): measure microarchitecture-
  independent attributes of a program's dynamic trace — statistical flow
  graph, instruction mix, dependency-distance distribution, per-static-
  memop stride streams, and per-static-branch taken/transition rates.
* **Synthesis** (:class:`CloneSynthesizer` / :func:`clone_program`): emit a
  synthetic benchmark whose code is entirely different but whose measured
  attributes match, so it performs like the original across
  microarchitectures.
"""

from repro.core.profile import (
    BlockStats,
    BranchStats,
    ContextStats,
    DEP_BUCKETS,
    MemOpStats,
    WorkloadProfile,
)
from repro.core.profiler import WorkloadProfiler, profile_program, profile_trace
from repro.core.sfg import StatisticalFlowGraph
from repro.core.synthesizer import CloneSynthesizer, SynthesisParameters
from repro.core.cloning import clone_program, make_clone
from repro.core.codegen import emit_c_source
from repro.core.baseline import MicroarchDependentSynthesizer

__all__ = [
    "BlockStats",
    "BranchStats",
    "CloneSynthesizer",
    "ContextStats",
    "DEP_BUCKETS",
    "MemOpStats",
    "MicroarchDependentSynthesizer",
    "StatisticalFlowGraph",
    "SynthesisParameters",
    "WorkloadProfile",
    "WorkloadProfiler",
    "clone_program",
    "emit_c_source",
    "make_clone",
    "profile_program",
    "profile_trace",
]
