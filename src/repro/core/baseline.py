"""Microarchitecture-*dependent* workload synthesis — the prior art.

This is the comparison point the paper argues against (Sections 1-3,
citing Bell & John [24]): instead of modelling inherent locality and
predictability, synthesize memory accesses to hit a *target cache miss
rate* and branches to hit a *target misprediction rate*, both measured on
one specific ("profiled") configuration.

Memory: a fraction ``miss_rate`` of all references walk a streaming
region far larger than the profiled cache (always missing), while the
rest walk a resident buffer sized to half the profiled cache (always
hitting).  This matches the target miss rate on the profiled
configuration and, exactly as the paper observes, yields large errors
the moment cache geometry changes.

Branches: a fraction ``2 × mispredict_rate`` of static branches get a
hash-of-counter pseudo-random direction (≈50% mispredicted on any
predictor) and the rest are constant-direction (≈0%), matching the
target on the profiled predictor only.
"""

from dataclasses import dataclass

from repro.core.memory_model import StreamCluster
from repro.core.synthesizer import CloneSynthesizer


@dataclass(frozen=True)
class HashBranchPattern:
    """Pseudo-random direction via a multiplicative hash of the counter."""

    multiplier: int
    shift: int

    kind = "hash"

    def direction(self, iteration):
        hashed = (iteration * self.multiplier) & 0xFFFFFFFF
        return (hashed >> self.shift) & 1

    def emit(self, label, counter_reg="r1", scratch_reg="r3"):
        return [
            f"    li {scratch_reg}, {self.multiplier}",
            f"    mul {scratch_reg}, {counter_reg}, {scratch_reg}",
            f"    srli {scratch_reg}, {scratch_reg}, {self.shift}",
            f"    andi {scratch_reg}, {scratch_reg}, 1",
            f"    bne {scratch_reg}, r0, {label}",
        ]


class _TargetMissPlan:
    """Two-cluster plan: a resident (hit) and a streaming (miss) region.

    Unlike :class:`repro.core.memory_model.StreamPlan`, every generated
    memop instance gets its own private slot — the goal is matching a
    miss *rate*, not modelling inherent streams.
    """

    HIT, MISS = 0, 1
    MISS_RESET = 256
    MAX_MISS_SLOTS = 120  # bound the streaming region to ~2 MB

    def __init__(self, miss_rate, cache_bytes, line_bytes):
        self.miss_rate = miss_rate
        self.cache_bytes = cache_bytes
        self.line_bytes = line_bytes
        self.clusters = [
            StreamCluster(index=0, stride=4, sweep_once=False,
                          mean_stream_length=8.0, weight=1, advance=4,
                          symbol="resident"),
            StreamCluster(index=1, stride=2 * line_bytes, sweep_once=False,
                          mean_stream_length=8.0, weight=1,
                          advance=2 * line_bytes, symbol="streaming"),
        ]
        self._counts = [0, 0]
        self._accumulator = 0.0

    def allocate(self, pc, rng=None):
        # Largest-remainder assignment hits the target fraction exactly
        # (binomial sampling would miss it on small clones).
        self._accumulator += self.miss_rate
        if self._accumulator >= 1.0:
            self._accumulator -= 1.0
            index = self.MISS
        else:
            index = self.HIT
        instance = self._counts[index]
        self._counts[index] += 1
        return (index, instance)

    def finalize(self, estimated_iterations=None):
        """Size regions against the *profiled* cache — the whole point."""
        hit = self.clusters[self.HIT]
        if self._counts[self.HIT]:
            budget = max(64, self.cache_bytes // 2)
            hit.reset_period = max(2, (budget // 4) // abs(hit.stride))
            self._hit_usable = max(32, budget
                                   - abs(hit.stride) * hit.reset_period - 16)
            hit.region = (budget + 15) & ~7
        miss = self.clusters[self.MISS]
        if self._counts[self.MISS]:
            miss.reset_period = self.MISS_RESET
            span = abs(miss.stride) * miss.reset_period + 16
            self._miss_span = (span + 7) & ~7
            slots = min(self._counts[self.MISS], self.MAX_MISS_SLOTS)
            miss.region = slots * self._miss_span
        return 1.0

    def locate(self, handle):
        index, instance = handle
        if index == self.HIT:
            return index, (instance * 8) % self._hit_usable
        return index, (instance % self.MAX_MISS_SLOTS) * self._miss_span

    def active_clusters(self):
        return [cluster for index, cluster in enumerate(self.clusters)
                if self._counts[index]]

    def data_directives(self):
        lines = []
        for cluster in self.active_clusters():
            lines.append("    .align 8")
            lines.append(f"{cluster.symbol}:    .space "
                         f"{cluster.region_bytes()}")
        return lines

    def total_footprint(self):
        return sum(cluster.region for cluster in self.active_clusters())


class MicroarchDependentSynthesizer(CloneSynthesizer):
    """Bell & John-style synthesis against one profiled configuration.

    ``target_miss_rate`` and ``target_mispredict_rate`` are the rates the
    original workload exhibits on the profiled cache/predictor (measure
    them with :mod:`repro.uarch`); ``profiled_cache_bytes`` and
    ``profiled_line_bytes`` pin the configuration the synthetic workload
    is tuned to.
    """

    use_alias_pairing = False

    #: This synthesizer deliberately diverges from the profile (that is
    #: the point of the comparison), so only the structural lint layer
    #: runs in the post-synthesis gate.
    lint_conformance = False

    def __init__(self, profile, target_miss_rate, target_mispredict_rate,
                 profiled_cache_bytes=16 * 1024, profiled_line_bytes=32,
                 parameters=None):
        super().__init__(profile, parameters)
        self.target_miss_rate = min(1.0, max(0.0, target_miss_rate))
        self.target_mispredict_rate = min(
            0.5, max(0.0, target_mispredict_rate))
        self.profiled_cache_bytes = profiled_cache_bytes
        self.profiled_line_bytes = profiled_line_bytes
        self._hash_seed = 0

    def _make_stream_plan(self):
        return _TargetMissPlan(self.target_miss_rate,
                               self.profiled_cache_bytes,
                               self.profiled_line_bytes)

    def _branch_pattern(self, branch_stats, rng):
        """Random-direction for 2·mispredict of branches, constant else.

        A random branch mispredicts ~50% on any history predictor and a
        constant one ~0%, so a ``2 m`` random fraction matches an overall
        rate ``m`` — on the profiled predictor.
        """
        if rng.random() < 2.0 * self.target_mispredict_rate:
            self._hash_seed += 1
            multiplier = (2654435761 + 2 * self._hash_seed) & 0x7FFF
            shift = 7 + (self._hash_seed % 11)
            return HashBranchPattern(multiplier=multiplier | 1, shift=shift)
        taken = branch_stats.taken_rate >= 0.5 if branch_stats else True
        from repro.core.branch_model import BranchPattern
        return BranchPattern(kind="taken" if taken else "not_taken")
