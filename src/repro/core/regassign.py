"""Register assignment for synthetic clones (paper step 10).

Destination registers are handed out round-robin from a pool, separately
for the integer and floating-point streams.  A sampled dependency
distance ``d`` for a source operand is realized by reading the register
written by the generated instruction closest to ``d`` instructions
earlier — valid only while round-robin reuse has not overwritten it.
Distances the pool cannot reach are realized against long-lived *anchor*
registers written once per loop (the loop counter/limit for integers,
``fli``-initialized constants for floats), which is the natural encoding
of the paper's ">32" bucket.
"""

import bisect

from repro.isa.registers import reg_name


class RoundRobinFile:
    """One register pool plus the bookkeeping to realize distances."""

    def __init__(self, pool, anchors):
        if not pool:
            raise ValueError("register pool must not be empty")
        self.pool = list(pool)
        self.anchors = list(anchors)
        self.positions = []  # global positions of pool-writing instructions
        self._anchor_cursor = 0

    @property
    def writes(self):
        return len(self.positions)

    def allocate_dest(self, global_position):
        """Claim the next pool register for an instruction's destination."""
        register = self.pool[self.writes % len(self.pool)]
        self.positions.append(global_position)
        return register

    def source_for(self, global_position, distance):
        """Pick the source register realizing ``distance`` best.

        Returns the pool register of the latest producer at or before
        ``global_position - distance`` if that register is still live,
        otherwise the next anchor register.
        """
        desired = global_position - distance
        index = bisect.bisect_right(self.positions, desired) - 1
        if index < 0 or (self.writes - index) > len(self.pool):
            return self._next_anchor()
        return self.pool[index % len(self.pool)]

    def _next_anchor(self):
        register = self.anchors[self._anchor_cursor % len(self.anchors)]
        self._anchor_cursor += 1
        return register


class CloneRegisterFile:
    """The full clone register convention.

    Integer file:

    ====== ==========================================
    r0     hardwired zero
    r1     loop iteration counter
    r2     loop limit (integer anchor)
    r3     branch-condition scratch
    r4-11  stream-cluster pointers
    r12-19 stream-cluster reset countdowns
    r20-30 round-robin dependence pool
    r31    shared xorshift32 random-branch state
    ====== ==========================================

    Floating-point file: f0-f3 are ``fli``-initialized anchors, f4-f31
    the round-robin pool.
    """

    COUNTER = 1
    LIMIT = 2
    SCRATCH = 3
    RNG = 31
    FIRST_POINTER = 4
    FIRST_COUNTDOWN = 12
    MAX_CLUSTERS = 8

    def __init__(self):
        self.int_file = RoundRobinFile(pool=list(range(20, 31)),
                                       anchors=[self.LIMIT, self.COUNTER])
        self.fp_file = RoundRobinFile(pool=[32 + n for n in range(4, 32)],
                                      anchors=[32 + n for n in range(0, 4)])

    def pointer(self, cluster_index):
        if cluster_index >= self.MAX_CLUSTERS:
            raise ValueError("too many stream clusters for the register file")
        return self.FIRST_POINTER + cluster_index

    def countdown(self, cluster_index):
        if cluster_index >= self.MAX_CLUSTERS:
            raise ValueError("too many stream clusters for the register file")
        return self.FIRST_COUNTDOWN + cluster_index

    def pointer_name(self, cluster_index):
        return reg_name(self.pointer(cluster_index))

    def countdown_name(self, cluster_index):
        return reg_name(self.countdown(cluster_index))
