"""Block-compiling simulator backend (``repro.sim.turbo``).

The interpreter in :mod:`repro.sim.functional` pays a ~60-way dispatch
chain, a decode-tuple unpack, and three trace appends for every dynamic
instruction.  This backend removes all of it: for each *entry pc* it
generates specialized straight-line Python source — opcodes, register
indices, immediates, branch targets, link addresses, and memory-bounds
constants folded in as literals — ``compile()``s it once into a
closure, and thereafter runs translation-unit-to-unit instead of
instruction-to-instruction.  The technique is the classic template-JIT
/ threaded-code interpreter optimization (SimpleScalar's pre-decoded
dispatch taken one step further).

Translation units start at an entry pc (the program entry, a
branch/jump target, a fall-through after a conditional branch, or any
pc an indirect jump lands on) and extend across *unconditional*
control flow — fall-through at block boundaries, ``j``, and ``jal`` —
up to :data:`UNIT_LIMIT` instructions, so every instruction in a unit
executes exactly once per invocation and a loop body costs one dict
lookup and one call per iteration.  Conditional branches, indirect
jumps (``jr``/``jalr``), and ``halt`` always terminate a unit.  Units
are compiled lazily on first dispatch, so codegen cost is proportional
to the *executed* static footprint, and cached on the program object
(keyed by memory size, which is folded into the generated bounds
checks).

Bit-identity with the interpreter is a hard contract, enforced by the
differential suite (``tests/test_sim_turbo.py``):

* identical :class:`~repro.sim.trace.DynamicTrace` arrays, final
  registers, memory image, and retired-instruction counts;
* identical :class:`~repro.sim.functional.SimulationError` semantics —
  instruction-cap accounting mid-unit, heartbeat telemetry, memory
  range errors, and pc-out-of-range context.

The cap/heartbeat contract is kept cheap with a two-variant scheme:
the *fast* variant of a unit carries no per-instruction accounting (the
runner bumps ``executed`` by the unit's instruction count and batches
one trace-extend sequence per unit), while a *checked* variant with the
interpreter's per-instruction ``executed > check_limit`` test is
compiled on demand and swapped in only for invocations that could cross
the cap or the next heartbeat boundary.
"""

import os
import time

import numpy as np

from repro.isa.assembler import TEXT_BASE
from repro.isa.columns import columns_for
from repro.obs.journal import active_journal, emit_event
from repro.obs.logging import INFO, get_logger
from repro.obs.metrics import REGISTRY
from repro.sim import functional as _functional
from repro.sim.trace import DynamicTrace

_LOG = get_logger("repro.sim")

#: Maximum instructions folded into one translation unit.
UNIT_LIMIT = 64

#: Maximum units folded into one region (loop-nest) state machine; the
#: in-region dispatch is a linear ``elif`` chain, so this bounds its
#: depth while still covering every loop nest in the corpus.
REGION_LIMIT = 32

#: ``auto`` falls back to the interpreter below this static size: the
#: per-unit codegen cost only amortizes once a program does real work,
#: and everything smaller is a test scaffold or a throwaway snippet.
AUTO_MIN_STATIC = 16

#: Environment variable overriding :data:`AUTO_MIN_STATIC` (static
#: instruction count below which ``auto`` stays on the interpreter).
ENV_AUTO_THRESHOLD = "REPRO_SIM_AUTO_THRESHOLD"

#: Environment variable selecting the default backend.
ENV_BACKEND = "REPRO_SIM_BACKEND"

#: Recognized backend selectors, fastest resolved tier first.
BACKENDS = ("auto", "native", "turbo", "interp")

_M32 = 0xFFFFFFFF


def _auto_min_static(environ):
    """The effective ``auto`` interpreter threshold (env-tunable)."""
    raw = environ.get(ENV_AUTO_THRESHOLD, "").strip()
    if not raw:
        return AUTO_MIN_STATIC
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {ENV_AUTO_THRESHOLD}={raw!r}; expected an integer "
            "static-instruction threshold") from None


def resolve_backend(backend, program=None, environ=None):
    """Resolve a backend selector to a concrete backend name.

    ``backend`` may be ``None`` (consult the ``REPRO_SIM_BACKEND``
    environment variable, default ``auto``), ``auto``, ``native``,
    ``turbo``, or ``interp``.  ``auto`` resolves fastest-first: programs
    smaller than the threshold (:data:`AUTO_MIN_STATIC`, tunable via
    ``REPRO_SIM_AUTO_THRESHOLD``) stay on the interpreter where codegen
    warm-up would dominate; otherwise ``native`` when the C engine can
    take the program (``REPRO_NATIVE`` on, compiler present,
    translatable), else ``turbo``.  An explicit ``native`` request on a
    host without the toolchain still resolves to ``native`` — the run
    itself falls back to turbo, keeping semantics identical.
    """
    environ = os.environ if environ is None else environ
    if backend is None:
        backend = environ.get(ENV_BACKEND, "").strip().lower() or "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown simulator backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)} (see REPRO_SIM_BACKEND)")
    if backend != "auto":
        return backend
    if (program is not None
            and len(program.instructions) < _auto_min_static(environ)):
        return "interp"
    if program is not None:
        from repro.sim import native
        if native.usable(program):
            return "native"
    return "turbo"


# ----------------------------------------------------------------------
# Per-instruction code generation
# ----------------------------------------------------------------------
#: Conditional-branch condition expressions; ``True`` marks the signed
#: comparisons that need the two's-complement conversion prologue.
_BRANCH_CONDS = {
    4: ("r[{s1}] == r[{s2}]", False),   # beq
    5: ("r[{s1}] != r[{s2}]", False),   # bne
    6: ("x < y", True),                 # blt
    7: ("x >= y", True),                # bge
    38: ("r[{s1}] < r[{s2}]", False),   # bltu
    39: ("r[{s1}] >= r[{s2}]", False),  # bgeu
}

#: Simple integer register-register ops: op_id -> expression template.
_R3_TEMPLATES = {
    1: "(r[{s1}] + r[{s2}]) & 4294967295",    # add
    8: "(r[{s1}] - r[{s2}]) & 4294967295",    # sub
    9: "r[{s1}] & r[{s2}]",                   # and
    10: "r[{s1}] | r[{s2}]",                  # or
    11: "r[{s1}] ^ r[{s2}]",                  # xor
    12: "(r[{s1}] << (r[{s2}] & 31)) & 4294967295",  # sll
    13: "r[{s1}] >> (r[{s2}] & 31)",          # srl
    16: "1 if r[{s1}] < r[{s2}] else 0",      # sltu
    26: "(~(r[{s1}] | r[{s2}])) & 4294967295",  # nor
}

#: FP ops with an unguarded destination write (fp register file).
_FP_TEMPLATES = {
    44: "r[{s1}] + r[{s2}]",        # fadd
    45: "r[{s1}] - r[{s2}]",        # fsub
    46: "r[{s1}] * r[{s2}]",        # fmul
    49: "-r[{s1}]",                 # fneg
    50: "abs(r[{s1}])",             # fabs
    51: "r[{s1}]",                  # fmv
    52: "min(r[{s1}], r[{s2}])",    # fmin
    53: "max(r[{s1}], r[{s2}])",    # fmax
    58: "float(sg(r[{s1}]))",       # fcvtsw
}

#: FP compares (guarded: they write the integer file).
_FCMP_TEMPLATES = {
    54: "1 if r[{s1}] == r[{s2}] else 0",  # feq
    55: "1 if r[{s1}] < r[{s2}] else 0",   # flt
    56: "1 if r[{s1}] <= r[{s2}] else 0",  # fle
}

_SIGN_X = ("x = r[{s1}]",
           "x = x - 4294967296 if x & 2147483648 else x")
_SIGN_Y = ("y = r[{s2}]",
           "y = y - 4294967296 if y & 2147483648 else y")


def _fmt(template, **kw):
    return template.format(**kw)


def _emit_instruction(dec, pc, aname, mem_size):
    """Source lines for one decoded instruction.

    Returns ``(lines, addr_expr, terminal)`` where ``addr_expr`` is the
    trace effective-address expression (``"-1"`` for non-memory ops)
    and ``terminal`` is ``None`` for straight-line instructions or one
    of ``("cond", target)``, ``("jump", target)``, ``("ijump", expr)``,
    ``("halt",)``.  Generated semantics mirror the interpreter's
    dispatch arms expression for expression — bit-identity depends on
    it — with everything static folded to literals.
    """
    op, rd, rs1, rs2, imm, target = dec
    lines = []
    addr = "-1"
    terminal = None

    if op == 0:  # addi
        if rd:
            lines.append(f"r[{rd}] = (r[{rs1}] + {imm!r}) & 4294967295")
    elif op in _R3_TEMPLATES:
        if rd:
            lines.append(f"r[{rd}] = " + _fmt(_R3_TEMPLATES[op],
                                              s1=rs1, s2=rs2))
    elif op == 2:  # lw
        lines.append(f"{aname} = (r[{rs1}] + {imm!r}) & 4294967295")
        lines.append(f"if {aname} + 4 > {mem_size}:")
        lines.append(f'    raise SE(f"lw out of range: {{{aname}:#x}}")')
        if rd:
            lines.append(f"r[{rd}] = up('<I', m, {aname})[0]")
        addr = aname
    elif op == 3:  # sw
        lines.append(f"{aname} = (r[{rs1}] + {imm!r}) & 4294967295")
        lines.append(f"if {aname} + 4 > {mem_size}:")
        lines.append(f'    raise SE(f"sw out of range: {{{aname}:#x}}")')
        lines.append(f"pk('<I', m, {aname}, r[{rs2}])")
        addr = aname
    elif op in _BRANCH_CONDS:
        cond, is_signed = _BRANCH_CONDS[op]
        if is_signed:
            lines += [_fmt(t, s1=rs1) for t in _SIGN_X]
            lines += [_fmt(t, s2=rs2) for t in _SIGN_Y]
        lines.append(f"t = 1 if {_fmt(cond, s1=rs1, s2=rs2)} else 0")
        terminal = ("cond", target)
    elif op == 14:  # sra
        if rd:
            lines += [_fmt(t, s1=rs1) for t in _SIGN_X]
            lines.append(f"r[{rd}] = (x >> (r[{rs2}] & 31)) & 4294967295")
    elif op == 15:  # slt
        if rd:
            lines += [_fmt(t, s1=rs1) for t in _SIGN_X]
            lines += [_fmt(t, s2=rs2) for t in _SIGN_Y]
            lines.append(f"r[{rd}] = 1 if x < y else 0")
    elif op == 17:  # andi
        if rd:
            lines.append(f"r[{rd}] = r[{rs1}] & {imm & _M32}")
    elif op == 18:  # ori
        if rd:
            lines.append(f"r[{rd}] = r[{rs1}] | {imm & _M32}")
    elif op == 19:  # xori
        if rd:
            lines.append(f"r[{rd}] = r[{rs1}] ^ {imm & _M32}")
    elif op == 20:  # slli
        if rd:
            lines.append(
                f"r[{rd}] = (r[{rs1}] << {imm & 31}) & 4294967295")
    elif op == 21:  # srli
        if rd:
            lines.append(f"r[{rd}] = r[{rs1}] >> {imm & 31}")
    elif op == 22:  # srai
        if rd:
            lines += [_fmt(t, s1=rs1) for t in _SIGN_X]
            lines.append(f"r[{rd}] = (x >> {imm & 31}) & 4294967295")
    elif op == 23:  # slti
        if rd:
            lines += [_fmt(t, s1=rs1) for t in _SIGN_X]
            lines.append(f"r[{rd}] = 1 if x < {imm!r} else 0")
    elif op == 24:  # sltiu
        if rd:
            lines.append(f"r[{rd}] = 1 if r[{rs1}] < {imm & _M32} else 0")
    elif op == 25:  # lui
        if rd:
            lines.append(f"r[{rd}] = {(imm << 16) & _M32}")
    elif op == 27:  # mul
        if rd:
            lines += [_fmt(t, s1=rs1) for t in _SIGN_X]
            lines += [_fmt(t, s2=rs2) for t in _SIGN_Y]
            lines.append(f"r[{rd}] = (x * y) & 4294967295")
    elif op == 28:  # mulh
        if rd:
            lines += [_fmt(t, s1=rs1) for t in _SIGN_X]
            lines += [_fmt(t, s2=rs2) for t in _SIGN_Y]
            lines.append(f"r[{rd}] = ((x * y) >> 32) & 4294967295")
    elif op == 29:  # div
        if rd:
            lines.append(
                f"r[{rd}] = dv(sg(r[{rs1}]), sg(r[{rs2}])) & 4294967295")
    elif op == 30:  # divu
        if rd:
            lines.append(f"y = r[{rs2}]")
            lines.append(f"r[{rd}] = (r[{rs1}] // y) if y else 0")
    elif op == 31:  # rem
        if rd:
            lines.append(
                f"r[{rd}] = rm(sg(r[{rs1}]), sg(r[{rs2}])) & 4294967295")
    elif op == 32:  # remu
        if rd:
            lines.append(f"y = r[{rs2}]")
            lines.append(f"r[{rd}] = (r[{rs1}] % y) if y else 0")
    elif op == 33:  # lb
        lines.append(f"{aname} = (r[{rs1}] + {imm!r}) & 4294967295")
        lines.append(f"if {aname} >= {mem_size}:")
        lines.append(f'    raise SE(f"lb out of range: {{{aname}:#x}}")')
        if rd:
            lines.append(f"v = m[{aname}]")
            lines.append(
                f"r[{rd}] = (v - 256 if v & 128 else v) & 4294967295")
        addr = aname
    elif op == 34:  # lbu
        lines.append(f"{aname} = (r[{rs1}] + {imm!r}) & 4294967295")
        lines.append(f"if {aname} >= {mem_size}:")
        lines.append(f'    raise SE(f"lbu out of range: {{{aname}:#x}}")')
        if rd:
            lines.append(f"r[{rd}] = m[{aname}]")
        addr = aname
    elif op == 35:  # sb
        lines.append(f"{aname} = (r[{rs1}] + {imm!r}) & 4294967295")
        lines.append(f"if {aname} >= {mem_size}:")
        lines.append(f'    raise SE(f"sb out of range: {{{aname}:#x}}")')
        lines.append(f"m[{aname}] = r[{rs2}] & 255")
        addr = aname
    elif op == 36:  # flw
        lines.append(f"{aname} = (r[{rs1}] + {imm!r}) & 4294967295")
        lines.append(f"if {aname} + 8 > {mem_size}:")
        lines.append(f'    raise SE(f"flw out of range: {{{aname}:#x}}")')
        lines.append(f"r[{rd}] = up('<d', m, {aname})[0]")
        addr = aname
    elif op == 37:  # fsw
        lines.append(f"{aname} = (r[{rs1}] + {imm!r}) & 4294967295")
        lines.append(f"if {aname} + 8 > {mem_size}:")
        lines.append(f'    raise SE(f"fsw out of range: {{{aname}:#x}}")')
        lines.append(f"pk('<d', m, {aname}, r[{rs2}])")
        addr = aname
    elif op == 40:  # j
        terminal = ("jump", target)
    elif op == 41:  # jal
        if rd:
            lines.append(f"r[{rd}] = {TEXT_BASE + 4 * (pc + 1)}")
        terminal = ("jump", target)
    elif op == 42:  # jr
        terminal = ("ijump", f"(r[{rs1}] - {TEXT_BASE}) >> 2")
    elif op == 43:  # jalr
        # The return target is read before the link write so
        # ``jalr rX, rX`` keeps the interpreter's read-before-write
        # ordering.
        lines.append(f"w = r[{rs1}]")
        if rd:
            lines.append(f"r[{rd}] = {TEXT_BASE + 4 * (pc + 1)}")
        terminal = ("ijump", f"(w - {TEXT_BASE}) >> 2")
    elif op == 47:  # fdiv
        lines.append(f"y = r[{rs2}]")
        lines.append(f"r[{rd}] = r[{rs1}] / y if y else 0.0")
    elif op == 48:  # fsqrt
        lines.append(f"v = r[{rs1}]")
        lines.append(f"r[{rd}] = sq(v) if v > 0.0 else 0.0")
    elif op in _FP_TEMPLATES:
        lines.append(f"r[{rd}] = " + _fmt(_FP_TEMPLATES[op], s1=rs1, s2=rs2))
    elif op in _FCMP_TEMPLATES:
        if rd:
            lines.append(
                f"r[{rd}] = " + _fmt(_FCMP_TEMPLATES[op], s1=rs1, s2=rs2))
    elif op == 57:  # fcvtws
        if rd:
            lines.append(f"r[{rd}] = int(r[{rs1}]) & 4294967295")
    elif op == 59:  # fli
        lines.append(f"r[{rd}] = {imm!r}")
    elif op == 60:  # halt
        terminal = ("halt",)
    else:  # pragma: no cover - decode already rejected unknown opcodes
        raise _functional.SimulationError(f"bad op id {op}")
    return lines, addr, terminal


# ----------------------------------------------------------------------
# Translation units
# ----------------------------------------------------------------------
class _Unit:
    """One translation unit: straight-line semantics plus a terminal."""

    __slots__ = ("entry", "pcs", "groups", "terminal")

    def __init__(self, entry, pcs, groups, terminal):
        self.entry = entry
        self.pcs = pcs
        self.groups = groups  # [(pc, lines, addr_expr)] per instruction
        self.terminal = terminal

    @property
    def count(self):
        return len(self.pcs)


def _build_unit(decoded, n_instrs, entry, mem_size):
    """Walk the static code from ``entry``, folding a straight-line run.

    Chains across fall-through and direct jumps (``j``/``jal``) while
    every chained instruction still executes exactly once per
    invocation; stops at conditional branches, indirect jumps,
    ``halt``, a revisited pc (a self-loop would otherwise unroll
    forever), the :data:`UNIT_LIMIT`, or the end of the text section.
    """
    pcs = []
    groups = []
    visited = set()
    pc = entry
    terminal = None
    while True:
        if pc in visited or len(pcs) >= UNIT_LIMIT:
            terminal = ("jump", pc)
            break
        visited.add(pc)
        lines, addr, term = _emit_instruction(
            decoded[pc], pc, f"a{len(pcs)}", mem_size)
        pcs.append(pc)
        groups.append((pc, lines, addr))
        if term is None:
            next_pc = pc + 1
            if next_pc >= n_instrs:
                # Fall-through off the end: dispatch raises the
                # interpreter's pc-out-of-range error.
                terminal = ("jump", next_pc)
                break
            pc = next_pc
            continue
        kind = term[0]
        if kind == "jump":
            target = term[1]
            if 0 <= target < n_instrs and target not in visited \
                    and len(pcs) < UNIT_LIMIT:
                pc = target
                continue
            terminal = term
            break
        if kind == "cond":
            terminal = ("cond", term[1], pc + 1)
            break
        terminal = term  # ijump / halt
        break
    return _Unit(entry, pcs, groups, terminal)


def _scc_of(root, successors):
    """The strongly connected component of ``root``.

    ``successors`` is the full forward closure from ``root``, so the
    component is exactly the subset that can reach ``root`` back: one
    reverse-reachability sweep instead of a general SCC pass.
    """
    predecessors = {node: [] for node in successors}
    for node, targets in successors.items():
        for target in targets:
            predecessors[target].append(node)
    component = {root}
    stack = [root]
    while stack:
        for pred in predecessors[stack.pop()]:
            if pred not in component:
                component.add(pred)
                stack.append(pred)
    return component


def _unit_targets(unit, n_instrs):
    """In-text static successors of a unit (dispatch-graph edges)."""
    terminal = unit.terminal
    kind = terminal[0]
    if kind == "cond":
        candidates = (terminal[1], terminal[2])
    elif kind == "jump":
        candidates = (terminal[1],)
    else:  # ijump / halt: no static successor
        candidates = ()
    return [t for t in candidates if 0 <= t < n_instrs]


def _tuple_literal(items):
    items = list(items)
    return "(" + ", ".join(items) + ("," if len(items) == 1 else "") + ")"


def _terminal_expr(terminal):
    kind = terminal[0]
    if kind == "cond":
        return f"{terminal[1]} if t else {terminal[2]}"
    if kind in ("jump", "ijump"):
        return f"{terminal[1]}"
    return "None"  # halt


def _trace_lines(unit, alloc):
    """The per-invocation trace writes.

    Tracing records only what the generated code cannot know statically:
    one *path id* per unit invocation (``U`` — the unit plus, for
    conditional branches, the outcome) and the dynamic effective
    addresses of its memory ops (``AA`` append / ``AX`` extend).  The
    full per-instruction ``pcs``/``addrs``/``taken`` arrays are
    reconstructed vectorized from the path-id log after the run
    (:func:`_reconstruct`), taking trace capture off the per-unit
    critical path entirely.
    """
    lines = ([f"U({alloc(unit, 1)} if t else {alloc(unit, 0)})"]
             if unit.terminal[0] == "cond"
             else [f"U({alloc(unit, None)})"])
    mem_exprs = [addr for _pc, _lines, addr in unit.groups if addr != "-1"]
    if len(mem_exprs) == 1:
        lines.append(f"AA({mem_exprs[0]})")
    elif mem_exprs:
        lines.append("AX(" + _tuple_literal(mem_exprs) + ")")
    return lines


def _render_fast(unit, trace, alloc):
    """Source for the fast variant: batched accounting and trace writes.

    The runner has already proven the invocation cannot cross the
    cap/heartbeat boundary, so no per-instruction bookkeeping is
    emitted; with ``trace`` the unit logs its path id and dynamic
    addresses (see :func:`_trace_lines`).
    """
    body = []
    for _pc, lines, _addr in unit.groups:
        body += lines
    if trace:
        body += _trace_lines(unit, alloc)
    body.append(f"return {_terminal_expr(unit.terminal)}")
    return ("def _unit(r, m, U, AA, AX):\n    "
            + "\n    ".join(body) + "\n")


def _render_region(members, units, trace, alloc):
    """Source for a region: a loop nest compiled as one state machine.

    ``members`` is the (capped, DFS-ordered) strongly connected
    component of the unit graph the region covers.  States are entry
    pcs; each unit's body runs straight-line, then control transfers to
    the next state without leaving the function, so an entire loop nest
    iterates inside one closure and the per-unit dict dispatch and call
    overhead is paid only on region *exit*.  Before entering the next
    in-region unit the generated code proves its instruction count
    still fits the ``budget`` (instructions left before the next
    cap/heartbeat boundary) and otherwise returns ``(next pc,
    consumed)`` so the runner can swap in a checked variant — identical
    accounting to single-unit dispatch.
    """
    member_set = set(members)
    counts = {pc: units[pc].count for pc in members}

    def transfer(target, indent):
        if target in member_set:
            return [indent + f"if n + {counts[target]} > budget:",
                    indent + f"    return {target}, n",
                    indent + f"s = {target}"]
        return [indent + f"return {target}, n"]

    lines = ["def _unit(r, m, U, AA, AX, s, budget):",
             "    n = 0",
             "    while True:"]
    keyword = "if"
    for pc in members:
        unit = units[pc]
        lines.append(f"        {keyword} s == {pc}:")
        keyword = "elif"
        body = []
        for _pc, group_lines, _addr in unit.groups:
            body += group_lines
        if trace:
            body += _trace_lines(unit, alloc)
        body.append(f"n += {unit.count}")
        lines += ["            " + line for line in body]
        terminal = unit.terminal
        kind = terminal[0]
        if kind == "cond":
            lines.append("            if t:")
            lines += transfer(terminal[1], "                ")
            lines.append("            else:")
            lines += transfer(terminal[2], "                ")
            lines.append("            continue")
        elif kind == "jump":
            lines += transfer(terminal[1], "            ")
            lines.append("            continue")
        elif kind == "ijump":
            lines.append(f"            return ({terminal[1]}), n")
        else:  # halt
            lines.append("            return None, n")
    # A state outside the member set cannot be reached from inside (all
    # such transfers return), but keep dispatch total anyway.
    lines.append("        else:")
    lines.append("            return s, n")
    return "\n".join(lines) + "\n"


def _render_checked(unit, trace, alloc):
    """Source for the checked variant: the interpreter's per-instruction
    cap/heartbeat test, for invocations near a boundary.

    The trace log is still written once at unit end: a unit that raises
    mid-way never returns its trace (the arrays are discarded with the
    exception), so per-instruction capture would be unobservable.
    """
    body = []
    for pc, lines, _addr in unit.groups:
        body.append("executed += 1")
        body.append("if executed > check_limit:")
        body.append(f"    check_limit = hook({pc}, executed)")
        body += lines
    if trace:
        body += _trace_lines(unit, alloc)
    body.append(f"return ({_terminal_expr(unit.terminal)}), "
                "executed, check_limit")
    return ("def _unit(r, m, executed, check_limit, hook, U, AA, AX):\n    "
            + "\n    ".join(body) + "\n")


# ----------------------------------------------------------------------
# Program-level compilation cache
# ----------------------------------------------------------------------
class TurboProgram:
    """Lazily compiled translation units for one program image.

    Instances are cached on the :class:`~repro.isa.program.Program`
    (keyed by memory size — bounds checks are folded into the generated
    source), so repeated simulations of the same program pay codegen
    once.  ``codegen_seconds``/``units_compiled`` expose the warm-up
    cost to benchmarks and telemetry.
    """

    def __init__(self, program, decoded, mem_size):
        self.program = program
        self.decoded = decoded
        self.mem_size = mem_size
        self.n_instrs = len(decoded)
        #: trace-mode flag -> {entry pc -> (fn, instruction count)}
        self.fast = {True: {}, False: {}}
        self.checked = {True: {}, False: {}}
        self._units = {}
        #: entry pc -> ordered member tuple (region) or None (straight
        #: line / DAG code); populated lazily by :meth:`_region_of`.
        self._regions = {}
        #: (entry pc, branch outcome) -> path id, with per-id static
        #: templates backing the post-run trace reconstruction.
        self._path_ids = {}
        self._templates = []
        self._flats = None
        self.units_compiled = 0
        self.codegen_seconds = 0.0
        self._globals = {
            "up": _functional.struct.unpack_from,
            "pk": _functional.struct.pack_into,
            "SE": _functional.SimulationError,
            "sg": _functional._signed,
            "dv": _functional._sdiv,
            "rm": _functional._srem,
            "sq": _functional.math.sqrt,
            "min": min, "max": max, "abs": abs,
            "int": int, "float": float,
        }

    def _unit_for(self, pc):
        unit = self._units.get(pc)
        if unit is None:
            unit = self._units[pc] = _build_unit(
                self.decoded, self.n_instrs, pc, self.mem_size)
        return unit

    def _region_of(self, pc):
        """Members of the region (loop nest) around ``pc``, or ``None``.

        The region is the strongly connected component of the unit
        dispatch graph containing ``pc`` — a trivial component with no
        self edge means straight-line/DAG code and no region.  Members
        are ordered by DFS preorder from ``pc`` (so the requested entry
        sits first in the ``elif`` chain) and capped at
        :data:`REGION_LIMIT`; edges to trimmed units simply exit the
        region, which stays correct and lets the trimmed units form
        their own regions on their own dispatch.
        """
        if pc in self._regions:
            return self._regions[pc]
        n_instrs = self.n_instrs
        # Forward closure from pc: contains its full SCC by definition
        # (everything on a cycle through pc is reachable from pc).
        successors = {}
        stack = [pc]
        while stack:
            node = stack.pop()
            if node in successors:
                continue
            successors[node] = targets = _unit_targets(
                self._unit_for(node), n_instrs)
            stack.extend(targets)
        component = _scc_of(pc, successors)
        if len(component) == 1 and pc not in successors[pc]:
            self._regions[pc] = None
            return None
        # DFS preorder from pc restricted to the component, capped.
        members = []
        seen = set()
        stack = [pc]
        while stack and len(members) < REGION_LIMIT:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            members.append(node)
            stack.extend(t for t in reversed(successors[node])
                         if t in component and t not in seen)
        members = tuple(members)
        for member in members:
            self._regions[member] = members
        return members

    def _path_id(self, unit, outcome):
        """Allocate (or reuse) the trace path id for one unit outcome.

        ``outcome`` is ``1``/``0`` for a conditional terminal's
        taken/not-taken paths and ``None`` otherwise.  The id indexes
        the static templates (pc sequence, memory-slot mask, taken
        pattern) that :func:`_reconstruct` expands after the run.
        """
        key = (unit.entry, outcome)
        pid = self._path_ids.get(key)
        if pid is None:
            pid = len(self._templates)
            self._path_ids[key] = pid
            taken = [-1] * unit.count
            if outcome is not None:
                taken[-1] = outcome
            is_mem = [addr != "-1" for _pc, _lines, addr in unit.groups]
            self._templates.append((unit.pcs, is_mem, taken))
            self._flats = None
        return pid

    def _flat_templates(self):
        """Concatenated per-id templates as arrays, rebuilt on growth."""
        flats = self._flats
        if flats is None:
            starts = []
            counts = []
            pcs = []
            is_mem = []
            taken = []
            position = 0
            for t_pcs, t_mem, t_taken in self._templates:
                starts.append(position)
                counts.append(len(t_pcs))
                position += len(t_pcs)
                pcs += t_pcs
                is_mem += t_mem
                taken += t_taken
            flats = self._flats = (
                np.asarray(starts, dtype=np.int64),
                np.asarray(counts, dtype=np.int64),
                np.asarray(pcs, dtype=np.int32),
                np.asarray(is_mem, dtype=bool),
                np.asarray(taken, dtype=np.int8))
        return flats

    def _compile(self, source, tag):
        start = time.perf_counter()
        namespace = {}
        code = compile(source, f"<turbo:{self.program.name}:{tag}>", "exec")
        exec(code, self._globals, namespace)
        self.units_compiled += 1
        self.codegen_seconds += time.perf_counter() - start
        REGISTRY.counter("sim.turbo.units").inc()
        return namespace["_unit"]

    def compile_fast(self, pc, trace):
        """Compile (and cache) the fast path for dispatching to ``pc``.

        Returns ``(fn, count, region)``: for straight-line code
        (``region`` false) ``fn`` runs one unit of ``count``
        instructions and returns the next pc; for loop nests
        (``region`` true) ``fn`` is a state machine entered at state
        ``pc`` under an instruction budget, returning ``(next pc,
        consumed)``.  A region registers every member pc at once, so
        any entry into the nest lands in the same closure.
        """
        members = self._region_of(pc)
        if members is None:
            unit = self._unit_for(pc)
            entry = (self._compile(
                _render_fast(unit, trace, self._path_id), f"{pc}:fast"),
                unit.count, False)
            self.fast[trace][pc] = entry
            return entry
        units = {member: self._unit_for(member) for member in members}
        fn = self._compile(_render_region(members, units, trace,
                                          self._path_id),
                           f"{members[0]}:region")
        cache = self.fast[trace]
        for member in members:
            cache[member] = (fn, units[member].count, True)
        return cache[pc]

    def compile_checked(self, pc, trace):
        """The checked (cap/heartbeat-accurate) variant for ``pc``."""
        fn = self.checked[trace].get(pc)
        if fn is None:
            unit = self._unit_for(pc)
            fn = self._compile(_render_checked(unit, trace, self._path_id),
                               f"{pc}:checked")
            self.checked[trace][pc] = fn
        return fn


def turbo_program(simulator):
    """The (cached) :class:`TurboProgram` for a simulator's program.

    Lives in the shared columnar tables' derived cache so the compiled
    regions have the same build-once-per-program lifetime as every
    other static table (and survive ``DynamicTrace``-level cache
    drops).
    """
    program = simulator.program
    derived = columns_for(program).derived
    cache = derived.get("turbo_cache")
    if cache is None:
        cache = derived["turbo_cache"] = {}
    mem_size = simulator.memory.size
    compiled = cache.get(mem_size)
    if compiled is None:
        compiled = cache[mem_size] = TurboProgram(
            program, simulator._decoded, mem_size)
    return compiled


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_turbo(simulator, max_instructions, trace):
    """Execute ``simulator``'s program unit-to-unit.

    Drop-in replacement for the interpreter loop inside
    :meth:`FunctionalSimulator.run` — same return values, same error
    and telemetry semantics, same final architected state.
    """
    program = simulator.program
    compiled = turbo_program(simulator)
    regs = simulator.regs
    mem = simulator.memory.data
    n_instrs = compiled.n_instrs
    name = program.name

    unit_log = []
    addr_log = []
    if trace:
        log_unit = unit_log.append
        log_addr = addr_log.append
        log_addrs = addr_log.extend
    else:
        log_unit = log_addr = log_addrs = None

    # Identical heartbeat/cap scheduling to the interpreter: the next
    # stop is the nearer of the cap and the next heartbeat, and the
    # boundary test itself runs per *unit* on the fast path (per
    # instruction only inside checked variants).
    wall_start = time.perf_counter()
    interval = _functional.HEARTBEAT_INTERVAL
    if REGISTRY.enabled and (_LOG.is_enabled_for(INFO)
                             or active_journal() is not None):
        next_heartbeat = interval
    else:
        next_heartbeat = max_instructions + 1
    check_limit = min(max_instructions, next_heartbeat - 1)
    heartbeat = [next_heartbeat]

    def limit_hook(at_pc, at_executed):
        """Slow path of the per-instruction limit test (checked units)."""
        if at_executed > max_instructions:
            raise simulator._cap_error(at_pc, at_executed, max_instructions)
        heartbeat[0] += interval
        new_limit = min(max_instructions, heartbeat[0] - 1)
        elapsed = time.perf_counter() - wall_start
        mips = at_executed / elapsed / 1e6 if elapsed else 0.0
        _LOG.info("sim.heartbeat", program=name,
                  instructions=at_executed, pc=at_pc, mips=mips)
        emit_event("progress", done=at_executed, total=max_instructions,
                   unit="instructions", label=name, mips=round(mips, 2))
        return new_limit

    fast_get = compiled.fast[trace].get
    compile_fast = compiled.compile_fast
    compile_checked = compiled.compile_checked
    pc = program.entry
    executed = 0

    while True:
        entry = fast_get(pc)
        if entry is None:
            if pc < 0 or pc >= n_instrs:
                raise _functional.SimulationError(
                    f"pc out of range: {pc} in {name}",
                    pc=pc, instructions=executed)
            entry = compile_fast(pc, trace)
        fn, count, region = entry
        if executed + count > check_limit:
            pc, executed, check_limit = compile_checked(pc, trace)(
                regs, mem, executed, check_limit, limit_hook,
                log_unit, log_addr, log_addrs)
        elif region:
            pc, consumed = fn(regs, mem, log_unit, log_addr, log_addrs,
                              pc, check_limit - executed)
            executed += consumed
        else:
            executed += count
            pc = fn(regs, mem, log_unit, log_addr, log_addrs)
        if pc is None:
            break

    simulator._finish_run(executed, wall_start, "turbo")
    if trace:
        return _reconstruct(compiled, program, unit_log, addr_log)
    return executed


def _reconstruct(compiled, program, unit_log, addr_log):
    """Expand the per-unit path-id log into the full trace arrays.

    Pure vectorized numpy over static per-id templates: the pc and
    taken sequences of every path are known at compile time, and the
    only dynamic payload is the ordered effective-address stream, which
    scatters into the memory slots of the expanded template.
    """
    if not unit_log:
        return DynamicTrace(program, [], [], [])
    starts, counts, flat_pcs, flat_is_mem, flat_taken = \
        compiled._flat_templates()
    ids = np.asarray(unit_log, dtype=np.int64)
    id_counts = counts[ids]
    ends = np.cumsum(id_counts)
    total = int(ends[-1])
    # Grouped arange: for each invocation, its template's index range.
    index = np.repeat(starts[ids] - (ends - id_counts), id_counts) \
        + np.arange(total, dtype=np.int64)
    addrs = np.full(total, -1, dtype=np.int64)
    if addr_log:
        addrs[flat_is_mem[index]] = np.asarray(addr_log, dtype=np.int64)
    return DynamicTrace(program, flat_pcs[index], addrs, flat_taken[index])
