"""Functional simulation substrate (the paper's ``sim-safe`` analog).

The :class:`FunctionalSimulator` executes an assembled SRISC program over
architected state only.  Its product is a :class:`DynamicTrace` — compact
parallel arrays of (instruction index, data address, branch outcome) —
which is everything the profiler and the timing models downstream consume.
"""

from repro.sim.memory import Memory, MemoryError_
from repro.sim.trace import DynamicTrace
from repro.sim.functional import FunctionalSimulator, SimulationError, run_program
from repro.sim.turbo import BACKENDS, resolve_backend

__all__ = [
    "BACKENDS",
    "DynamicTrace",
    "FunctionalSimulator",
    "Memory",
    "MemoryError_",
    "SimulationError",
    "resolve_backend",
    "run_program",
]
