"""The SRISC functional simulator (architected state only).

This is the analog of SimpleScalar's ``sim-safe``: it executes the program
to completion (or an instruction cap) and can capture the compact dynamic
trace that all profiling and timing tools consume.  Semantics are 32-bit
two's-complement for the integer file and IEEE double for the FP file.
"""

import math
import struct
import time

from repro.isa.assembler import TEXT_BASE
from repro.isa.columns import columns_for
from repro.isa.registers import NUM_REGS, REG_SP
from repro.obs.journal import active_journal, emit_event
from repro.obs.logging import INFO, get_logger
from repro.obs.metrics import REGISTRY
from repro.sim.memory import Memory
from repro.sim.trace import DynamicTrace

_M32 = 0xFFFFFFFF
_SIGN = 0x80000000

_LOG = get_logger("repro.sim")

#: Heartbeat-progress period, in retired instructions.
HEARTBEAT_INTERVAL = 5_000_000


class SimulationError(Exception):
    """Raised for runaway programs, bad jumps, or unimplemented opcodes.

    Carries execution context (``pc``, ``instructions``, ``block``) when
    raised mid-run, so a runaway clone is debuggable from the message
    alone.
    """

    def __init__(self, message, pc=None, instructions=None, block=None):
        super().__init__(message)
        self.pc = pc
        self.instructions = instructions
        self.block = block


def _signed(value):
    return value - 0x100000000 if value & _SIGN else value


def _sdiv(a, b):
    """C-style truncating division; division by zero yields 0."""
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _srem(a, b):
    if b == 0:
        return 0
    return a - _sdiv(a, b) * b


# Opcode -> dense id for the dispatch chain (order roughly by frequency).
_OP_IDS = {name: i for i, name in enumerate([
    "addi", "add", "lw", "sw", "beq", "bne", "blt", "bge", "sub", "and",
    "or", "xor", "sll", "srl", "sra", "slt", "sltu", "andi", "ori", "xori",
    "slli", "srli", "srai", "slti", "sltiu", "lui", "nor", "mul", "mulh",
    "div", "divu", "rem", "remu", "lb", "lbu", "sb", "flw", "fsw", "bltu",
    "bgeu", "j", "jal", "jr", "jalr", "fadd", "fsub", "fmul", "fdiv",
    "fsqrt", "fneg", "fabs", "fmv", "fmin", "fmax", "feq", "flt", "fle",
    "fcvtws", "fcvtsw", "fli", "halt",
])}


class FunctionalSimulator:
    """Executes one program instance over a private memory image.

    ``backend`` selects the execution engine: ``interp`` is this
    module's per-instruction reference loop, ``turbo`` the
    block-compiling Python backend in :mod:`repro.sim.turbo`,
    ``native`` the C-compiled engine in :mod:`repro.sim.native`, and
    ``auto`` (the default, also settable via ``REPRO_SIM_BACKEND``)
    picks the fastest engine that can take the program — native when
    the toolchain is available, else turbo, else (below the codegen
    amortization threshold) the interpreter.  All backends are
    bit-identical; the choice only affects wall time.
    """

    def __init__(self, program, memory_size=None, backend=None):
        self.program = program
        self.backend = backend
        kwargs = {"data_image": program.data_image,
                  "data_base": program.data_base}
        if memory_size is not None:
            kwargs["size"] = memory_size
        self.memory = Memory(**kwargs)
        self.regs = [0] * NUM_REGS
        self.regs[REG_SP] = program.stack_top
        self.instructions_executed = 0
        self.halted = False
        # Pre-decoded (op_id, rd, rs1, rs2, imm, target) tuples, built
        # once per *program* and shared between simulator instances via
        # the columnar tables' derived cache.
        columns = columns_for(program)
        decoded = columns.derived.get("functional_decode")
        if decoded is None:
            decoded = []
            for instr in program.instructions:
                op_id = _OP_IDS.get(instr.opcode)
                if op_id is None:
                    raise SimulationError(
                        f"unimplemented opcode {instr.opcode!r}")
                decoded.append((op_id, instr.rd, instr.rs1, instr.rs2,
                                instr.imm, instr.target))
            columns.derived["functional_decode"] = decoded
        self._decoded = decoded

    # ------------------------------------------------------------------
    def run(self, max_instructions=50_000_000, trace=False, backend=None):
        """Execute from the entry point until ``halt``.

        With ``trace=True`` returns a :class:`DynamicTrace`; otherwise
        returns the number of instructions executed.  Exceeding
        ``max_instructions`` raises :class:`SimulationError` (runaway
        program — almost always an assembly bug).  ``backend`` overrides
        the instance/environment backend selection for this run.
        """
        from repro.sim import turbo
        resolved = turbo.resolve_backend(
            backend if backend is not None else self.backend, self.program)
        if resolved == "native":
            from repro.sim import native
            if native.engine_for(self.program) is not None:
                return native.run_native(self, max_instructions, trace)
            resolved = "turbo"  # no toolchain / untranslatable: fall back
        if resolved == "turbo":
            return turbo.run_turbo(self, max_instructions, trace)
        return self._run_interp(max_instructions, trace)

    def _run_interp(self, max_instructions, trace):
        """The per-instruction reference interpreter loop."""
        decoded = self._decoded
        regs = self.regs
        mem = self.memory.data
        mem_size = self.memory.size
        unpack = struct.unpack_from
        pack = struct.pack_into
        pc = self.program.entry
        n_instrs = len(decoded)
        executed = 0

        pcs = []
        addrs = []
        takens = []
        if trace:
            pcs_append = pcs.append
            addrs_append = addrs.append
            takens_append = takens.append

        # Heartbeat progress shares the cap check: ``check_limit`` is the
        # nearer of the cap and the next heartbeat, so the loop keeps the
        # seed's single integer compare per instruction and telemetry-off
        # runs are exactly as fast as before.
        wall_start = time.perf_counter()
        if REGISTRY.enabled and (_LOG.is_enabled_for(INFO)
                                 or active_journal() is not None):
            next_heartbeat = HEARTBEAT_INTERVAL
        else:
            next_heartbeat = max_instructions + 1
        check_limit = min(max_instructions, next_heartbeat - 1)

        while True:
            if pc < 0 or pc >= n_instrs:
                raise SimulationError(
                    f"pc out of range: {pc} in {self.program.name}",
                    pc=pc, instructions=executed)
            op_id, rd, rs1, rs2, imm, target = decoded[pc]
            executed += 1
            if executed > check_limit:
                if executed > max_instructions:
                    raise self._cap_error(pc, executed, max_instructions)
                next_heartbeat += HEARTBEAT_INTERVAL
                check_limit = min(max_instructions, next_heartbeat - 1)
                elapsed = time.perf_counter() - wall_start
                mips = executed / elapsed / 1e6 if elapsed else 0.0
                _LOG.info("sim.heartbeat", program=self.program.name,
                          instructions=executed, pc=pc, mips=mips)
                emit_event("progress", done=executed,
                           total=max_instructions, unit="instructions",
                           label=self.program.name, mips=round(mips, 2))

            next_pc = pc + 1
            addr = -1
            taken = -1

            if op_id == 0:  # addi
                if rd:
                    regs[rd] = (regs[rs1] + imm) & _M32
            elif op_id == 1:  # add
                if rd:
                    regs[rd] = (regs[rs1] + regs[rs2]) & _M32
            elif op_id == 2:  # lw
                addr = (regs[rs1] + imm) & _M32
                if addr + 4 > mem_size:
                    raise SimulationError(f"lw out of range: {addr:#x}")
                if rd:
                    regs[rd] = unpack("<I", mem, addr)[0]
            elif op_id == 3:  # sw
                addr = (regs[rs1] + imm) & _M32
                if addr + 4 > mem_size:
                    raise SimulationError(f"sw out of range: {addr:#x}")
                pack("<I", mem, addr, regs[rs2])
            elif op_id == 4:  # beq
                taken = 1 if regs[rs1] == regs[rs2] else 0
                if taken:
                    next_pc = target
            elif op_id == 5:  # bne
                taken = 1 if regs[rs1] != regs[rs2] else 0
                if taken:
                    next_pc = target
            elif op_id == 6:  # blt
                a, b = regs[rs1], regs[rs2]
                a = a - 0x100000000 if a & _SIGN else a
                b = b - 0x100000000 if b & _SIGN else b
                taken = 1 if a < b else 0
                if taken:
                    next_pc = target
            elif op_id == 7:  # bge
                a, b = regs[rs1], regs[rs2]
                a = a - 0x100000000 if a & _SIGN else a
                b = b - 0x100000000 if b & _SIGN else b
                taken = 1 if a >= b else 0
                if taken:
                    next_pc = target
            elif op_id == 8:  # sub
                if rd:
                    regs[rd] = (regs[rs1] - regs[rs2]) & _M32
            elif op_id == 9:  # and
                if rd:
                    regs[rd] = regs[rs1] & regs[rs2]
            elif op_id == 10:  # or
                if rd:
                    regs[rd] = regs[rs1] | regs[rs2]
            elif op_id == 11:  # xor
                if rd:
                    regs[rd] = regs[rs1] ^ regs[rs2]
            elif op_id == 12:  # sll
                if rd:
                    regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _M32
            elif op_id == 13:  # srl
                if rd:
                    regs[rd] = regs[rs1] >> (regs[rs2] & 31)
            elif op_id == 14:  # sra
                if rd:
                    a = regs[rs1]
                    a = a - 0x100000000 if a & _SIGN else a
                    regs[rd] = (a >> (regs[rs2] & 31)) & _M32
            elif op_id == 15:  # slt
                if rd:
                    a, b = regs[rs1], regs[rs2]
                    a = a - 0x100000000 if a & _SIGN else a
                    b = b - 0x100000000 if b & _SIGN else b
                    regs[rd] = 1 if a < b else 0
            elif op_id == 16:  # sltu
                if rd:
                    regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
            elif op_id == 17:  # andi
                if rd:
                    regs[rd] = regs[rs1] & (imm & _M32)
            elif op_id == 18:  # ori
                if rd:
                    regs[rd] = regs[rs1] | (imm & _M32)
            elif op_id == 19:  # xori
                if rd:
                    regs[rd] = regs[rs1] ^ (imm & _M32)
            elif op_id == 20:  # slli
                if rd:
                    regs[rd] = (regs[rs1] << (imm & 31)) & _M32
            elif op_id == 21:  # srli
                if rd:
                    regs[rd] = regs[rs1] >> (imm & 31)
            elif op_id == 22:  # srai
                if rd:
                    a = regs[rs1]
                    a = a - 0x100000000 if a & _SIGN else a
                    regs[rd] = (a >> (imm & 31)) & _M32
            elif op_id == 23:  # slti
                if rd:
                    a = regs[rs1]
                    a = a - 0x100000000 if a & _SIGN else a
                    regs[rd] = 1 if a < imm else 0
            elif op_id == 24:  # sltiu
                if rd:
                    regs[rd] = 1 if regs[rs1] < (imm & _M32) else 0
            elif op_id == 25:  # lui
                if rd:
                    regs[rd] = (imm << 16) & _M32
            elif op_id == 26:  # nor
                if rd:
                    regs[rd] = (~(regs[rs1] | regs[rs2])) & _M32
            elif op_id == 27:  # mul
                if rd:
                    a, b = regs[rs1], regs[rs2]
                    a = a - 0x100000000 if a & _SIGN else a
                    b = b - 0x100000000 if b & _SIGN else b
                    regs[rd] = (a * b) & _M32
            elif op_id == 28:  # mulh
                if rd:
                    a, b = regs[rs1], regs[rs2]
                    a = a - 0x100000000 if a & _SIGN else a
                    b = b - 0x100000000 if b & _SIGN else b
                    regs[rd] = ((a * b) >> 32) & _M32
            elif op_id == 29:  # div
                if rd:
                    regs[rd] = _sdiv(_signed(regs[rs1]),
                                     _signed(regs[rs2])) & _M32
            elif op_id == 30:  # divu
                if rd:
                    b = regs[rs2]
                    regs[rd] = (regs[rs1] // b) if b else 0
            elif op_id == 31:  # rem
                if rd:
                    regs[rd] = _srem(_signed(regs[rs1]),
                                     _signed(regs[rs2])) & _M32
            elif op_id == 32:  # remu
                if rd:
                    b = regs[rs2]
                    regs[rd] = (regs[rs1] % b) if b else 0
            elif op_id == 33:  # lb
                addr = (regs[rs1] + imm) & _M32
                if addr >= mem_size:
                    raise SimulationError(f"lb out of range: {addr:#x}")
                if rd:
                    value = mem[addr]
                    regs[rd] = (value - 256 if value & 0x80 else value) & _M32
            elif op_id == 34:  # lbu
                addr = (regs[rs1] + imm) & _M32
                if addr >= mem_size:
                    raise SimulationError(f"lbu out of range: {addr:#x}")
                if rd:
                    regs[rd] = mem[addr]
            elif op_id == 35:  # sb
                addr = (regs[rs1] + imm) & _M32
                if addr >= mem_size:
                    raise SimulationError(f"sb out of range: {addr:#x}")
                mem[addr] = regs[rs2] & 0xFF
            elif op_id == 36:  # flw
                addr = (regs[rs1] + imm) & _M32
                if addr + 8 > mem_size:
                    raise SimulationError(f"flw out of range: {addr:#x}")
                regs[rd] = unpack("<d", mem, addr)[0]
            elif op_id == 37:  # fsw
                addr = (regs[rs1] + imm) & _M32
                if addr + 8 > mem_size:
                    raise SimulationError(f"fsw out of range: {addr:#x}")
                pack("<d", mem, addr, regs[rs2])
            elif op_id == 38:  # bltu
                taken = 1 if regs[rs1] < regs[rs2] else 0
                if taken:
                    next_pc = target
            elif op_id == 39:  # bgeu
                taken = 1 if regs[rs1] >= regs[rs2] else 0
                if taken:
                    next_pc = target
            elif op_id == 40:  # j
                next_pc = target
            elif op_id == 41:  # jal
                if rd:
                    regs[rd] = TEXT_BASE + 4 * (pc + 1)
                next_pc = target
            elif op_id == 42:  # jr
                ret = regs[rs1]
                next_pc = (ret - TEXT_BASE) >> 2
            elif op_id == 43:  # jalr
                ret = regs[rs1]
                if rd:
                    regs[rd] = TEXT_BASE + 4 * (pc + 1)
                next_pc = (ret - TEXT_BASE) >> 2
            elif op_id == 44:  # fadd
                regs[rd] = regs[rs1] + regs[rs2]
            elif op_id == 45:  # fsub
                regs[rd] = regs[rs1] - regs[rs2]
            elif op_id == 46:  # fmul
                regs[rd] = regs[rs1] * regs[rs2]
            elif op_id == 47:  # fdiv
                b = regs[rs2]
                regs[rd] = regs[rs1] / b if b else 0.0
            elif op_id == 48:  # fsqrt
                value = regs[rs1]
                regs[rd] = math.sqrt(value) if value > 0.0 else 0.0
            elif op_id == 49:  # fneg
                regs[rd] = -regs[rs1]
            elif op_id == 50:  # fabs
                regs[rd] = abs(regs[rs1])
            elif op_id == 51:  # fmv
                regs[rd] = regs[rs1]
            elif op_id == 52:  # fmin
                regs[rd] = min(regs[rs1], regs[rs2])
            elif op_id == 53:  # fmax
                regs[rd] = max(regs[rs1], regs[rs2])
            elif op_id == 54:  # feq
                if rd:
                    regs[rd] = 1 if regs[rs1] == regs[rs2] else 0
            elif op_id == 55:  # flt
                if rd:
                    regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
            elif op_id == 56:  # fle
                if rd:
                    regs[rd] = 1 if regs[rs1] <= regs[rs2] else 0
            elif op_id == 57:  # fcvtws
                if rd:
                    regs[rd] = int(regs[rs1]) & _M32
            elif op_id == 58:  # fcvtsw
                regs[rd] = float(_signed(regs[rs1]))
            elif op_id == 59:  # fli
                regs[rd] = imm
            elif op_id == 60:  # halt
                if trace:
                    pcs_append(pc)
                    addrs_append(addr)
                    takens_append(taken)
                break
            else:
                raise SimulationError(f"bad op id {op_id}")

            if trace:
                pcs_append(pc)
                addrs_append(addr)
                takens_append(taken)
            pc = next_pc

        self._finish_run(executed, wall_start, "interp")
        if trace:
            return DynamicTrace(self.program, pcs, addrs, takens)
        return executed

    def _finish_run(self, executed, wall_start, backend):
        """Common run epilogue: final state plus backend-tagged telemetry."""
        self.instructions_executed = executed
        self.halted = True
        if REGISTRY.enabled:
            elapsed = time.perf_counter() - wall_start
            throughput = executed / elapsed / 1e6 if elapsed > 0 else 0.0
            REGISTRY.counter("sim.instructions").inc(executed)
            REGISTRY.counter("sim.runs").inc()
            # A counter (not a gauge) so per-process journal deltas and
            # fleet worker summaries can attribute acquisition time.
            REGISTRY.counter("sim.acquire_seconds").inc(elapsed)
            REGISTRY.gauge("sim.mips").set(throughput)
            REGISTRY.gauge(f"sim.mips.{backend}").set(throughput)
            _LOG.debug("sim.run", program=self.program.name,
                       instructions=executed, wall_s=elapsed,
                       mips=throughput, backend=backend)

    def _cap_error(self, pc, executed, max_instructions):
        """Context-rich error for the instruction-cap (runaway) case."""
        program = self.program
        try:
            block = program.block_of(pc)
        except Exception:
            block = None
        return SimulationError(
            f"instruction cap exceeded in {program.name}: "
            f"{executed} retired (cap {max_instructions}), "
            f"pc={pc}, basic block {block}",
            pc=pc, instructions=executed, block=block)


def run_program(program, max_instructions=50_000_000, trace=True,
                backend=None):
    """One-shot convenience: execute ``program`` and return its trace.

    With ``trace=False`` returns the finished simulator instead (useful to
    inspect final memory/registers in tests).  ``backend`` selects the
    execution engine (``auto``/``turbo``/``interp``); see
    :class:`FunctionalSimulator`.
    """
    from repro.obs.timing import span
    simulator = FunctionalSimulator(program, backend=backend)
    with span("sim.run"):
        result = simulator.run(max_instructions=max_instructions, trace=trace)
    return result if trace else simulator
