"""Flat byte-addressable memory for the functional simulator."""

import struct

from repro.isa.assembler import DATA_BASE, STACK_TOP


class MemoryError_(Exception):
    """Out-of-range or misaligned access (named to avoid the builtin)."""


class Memory:
    """A flat little-endian memory image.

    The address space runs from 0 to ``size`` (default: just past the
    initial stack top).  Words are 4 bytes; doubles are 8 bytes.  The
    functional simulator accesses ``self.data`` directly on its hot path;
    the methods here are the convenient/checked interface used by tests,
    workload setup, and result verification.
    """

    def __init__(self, size=STACK_TOP + 0x10000, data_image=b"",
                 data_base=DATA_BASE):
        if data_image and data_base + len(data_image) > size:
            raise MemoryError_("data image does not fit in memory")
        self.size = size
        self.data = bytearray(size)
        if data_image:
            self.data[data_base:data_base + len(data_image)] = data_image

    def _check(self, address, width):
        if not 0 <= address <= self.size - width:
            raise MemoryError_(f"address out of range: {address:#x}")

    def read_word(self, address):
        """Read an unsigned 32-bit word."""
        self._check(address, 4)
        return struct.unpack_from("<I", self.data, address)[0]

    def read_word_signed(self, address):
        self._check(address, 4)
        return struct.unpack_from("<i", self.data, address)[0]

    def write_word(self, address, value):
        self._check(address, 4)
        struct.pack_into("<I", self.data, address, value & 0xFFFFFFFF)

    def read_byte(self, address):
        self._check(address, 1)
        return self.data[address]

    def write_byte(self, address, value):
        self._check(address, 1)
        self.data[address] = value & 0xFF

    def read_double(self, address):
        self._check(address, 8)
        return struct.unpack_from("<d", self.data, address)[0]

    def write_double(self, address, value):
        self._check(address, 8)
        struct.pack_into("<d", self.data, address, value)

    def read_words(self, address, count):
        """Read ``count`` consecutive signed words (handy in tests)."""
        self._check(address, 4 * count)
        return list(struct.unpack_from(f"<{count}i", self.data, address))
