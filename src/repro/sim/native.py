"""Native functional-execution backend (``repro.sim.native``).

Translates one :class:`~repro.isa.program.Program` into C — every
static instruction becomes a labelled straight-line statement with its
register indices, immediates, branch targets, link addresses, and
memory-bounds constants folded in as literals; direct control flow
becomes ``goto``; indirect jumps re-enter a ``switch`` dispatch —
compiles it once per machine through the shared :mod:`repro.native`
toolchain (content-addressed by generated source, so identical
programs share one ``.so`` across processes), and drives it via ctypes.
The engine writes the columnar trace event arrays *directly* into
fixed-size chunks: no per-instruction Python dispatch, no Python-object
trace, bounded memory on long caps.

Bit-identity with the interpreter is the same hard contract turbo
honors (``tests/test_sim_turbo.py`` / ``tests/test_sim_native.py``):
identical trace arrays, final registers and memory, retired-instruction
counts, cap/heartbeat accounting, and ``SimulationError`` context.  The
re-entry protocol keeps the interpreter's counting exact: the C loop
returns to Python whenever ``executed`` crosses ``check_limit`` (cap or
heartbeat boundary), the wrapper emits the interpreter's heartbeat (or
raises its cap error), then resumes the same instruction with the
pre-increment count restored.

Everything degrades gracefully: no C compiler, ``REPRO_NATIVE=off``, or
a program the translator does not cover (operands outside the register
file its opcode format implies, oversized statics) simply means the
engine is unavailable and callers fall back to turbo.  Semantics are
identical either way; only the wall time differs.
"""

import ctypes
import math
import time

import numpy as np

from repro.isa.assembler import TEXT_BASE
from repro.isa.columns import columns_for
from repro.isa.instructions import OPCODES
from repro.native import toolchain
from repro.obs.journal import active_journal, emit_event
from repro.obs.logging import INFO, get_logger
from repro.obs.metrics import REGISTRY
from repro.sim import functional as _functional
from repro.sim.functional import SimulationError, _OP_IDS
from repro.sim.trace import DynamicTrace

_LOG = get_logger("repro.sim")

#: Trace events per columnar chunk handed back to Python.  Large enough
#: to amortize the ctypes round trip (one per ~65k instructions), small
#: enough that a streaming consumer's working set stays in cache.
CHUNK_EVENTS = 1 << 16

#: Static-size ceiling for translation: beyond this the generated
#: translation unit stops being cheap to compile and the program is not
#: a corpus kernel or clone anyway.
MAX_STATIC = 50_000

#: ``ctl`` scratch-array slots shared with the C engine.
_CTL_PC, _CTL_EXECUTED, _CTL_LIMIT, _CTL_COUNT, _CTL_ERR_OP, \
    _CTL_ERR_ADDR = range(6)

#: Return reasons of the generated ``repro_sim_run``.
_R_HALT, _R_LIMIT, _R_CHUNK, _R_BADPC, _R_MEMERR = range(5)

#: op id -> opcode name for memory-range error messages.
_MEM_OP_NAMES = {2: "lw", 3: "sw", 33: "lb", 34: "lbu", 35: "sb",
                 36: "flw", 37: "fsw"}

_U32P = ctypes.POINTER(ctypes.c_uint32)
_F64P = ctypes.POINTER(ctypes.c_double)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_I64P = ctypes.POINTER(ctypes.c_int64)
_I32P = ctypes.POINTER(ctypes.c_int32)
_I8P = ctypes.POINTER(ctypes.c_int8)


# ----------------------------------------------------------------------
# Availability / translatability gates
# ----------------------------------------------------------------------
def available():
    """Whether this host can run native functional execution at all."""
    return toolchain.enabled() and toolchain.probe()


def reset():
    """Forget the toolchain probe (tests toggling REPRO_NATIVE / cc)."""
    toolchain.reset()


def _is_int(reg):
    return reg is not None and 0 <= reg < 32


def _is_fp(reg):
    return reg is not None and 32 <= reg < 64


def _int_dest(reg):
    """Guarded integer destination: ``None`` and ``r0`` are no-ops."""
    return reg is None or 0 <= reg < 32


def _translatable(program):
    """Whether the translator covers every instruction of ``program``.

    The interpreter dispatches on the opcode and trusts operand fields
    to be in the register file the format implies; the C engine bakes
    the file split (uint32 vs double) into the generated code, so a
    hand-built program that mixes files is simply not translated.
    """
    instructions = program.instructions
    n = len(instructions)
    if n == 0 or n > MAX_STATIC:
        return False
    for instr in instructions:
        op_id = _OP_IDS.get(instr.opcode)
        if op_id is None:
            return False
        fmt = OPCODES[instr.opcode].fmt
        rd, rs1, rs2 = instr.rd, instr.rs1, instr.rs2
        imm, target = instr.imm, instr.target
        in_range = target is not None and 0 <= target < n
        if fmt == "r3":
            ok = _int_dest(rd) and _is_int(rs1) and _is_int(rs2)
        elif fmt == "r2i":
            ok = (_int_dest(rd) and _is_int(rs1)
                  and isinstance(imm, int))
            if ok and instr.opcode == "slti":
                # slti compares the raw (unmasked) immediate.
                ok = -(1 << 31) <= imm < (1 << 31)
        elif fmt == "ri":
            ok = _int_dest(rd) and isinstance(imm, int)
        elif fmt == "f3":
            ok = _is_fp(rd) and _is_fp(rs1) and _is_fp(rs2)
        elif fmt == "f2":
            ok = _is_fp(rd) and _is_fp(rs1)
        elif fmt == "fcmp":
            ok = _int_dest(rd) and _is_fp(rs1) and _is_fp(rs2)
        elif fmt == "fcvt_wf":
            ok = _int_dest(rd) and _is_fp(rs1)
        elif fmt == "fcvt_fw":
            ok = _is_fp(rd) and _is_int(rs1)
        elif fmt == "fli":
            ok = _is_fp(rd) and isinstance(imm, (int, float))
        elif fmt == "load":
            ok = (_int_dest(rd) and _is_int(rs1)
                  and isinstance(imm, int))
        elif fmt == "fload":
            ok = _is_fp(rd) and _is_int(rs1) and isinstance(imm, int)
        elif fmt == "store":
            ok = _is_int(rs1) and _is_int(rs2) and isinstance(imm, int)
        elif fmt == "fstore":
            ok = _is_int(rs1) and _is_fp(rs2) and isinstance(imm, int)
        elif fmt == "br":
            ok = _is_int(rs1) and _is_int(rs2) and in_range
        elif fmt == "j":
            ok = in_range
        elif fmt == "jal":
            ok = _int_dest(rd) and in_range
        elif fmt == "jr":
            ok = _is_int(rs1)
        elif fmt == "jalr":
            ok = _int_dest(rd) and _is_int(rs1)
        elif fmt == "none":
            ok = True
        else:
            ok = False
        if not ok:
            return False
    return True


def translatable(program):
    """Per-program translatability, cached on the shared columns."""
    columns = columns_for(program)
    cached = columns.derived.get("native_sim_ok")
    if cached is None:
        cached = _translatable(program)
        columns.derived["native_sim_ok"] = cached
        if not cached:
            _LOG.debug("sim.native.untranslatable", program=program.name)
    return cached


def usable(program):
    """Cheap resolution gate: gated on, toolchain probed, program
    translatable.  No program compile is attempted here — that happens
    lazily on first run (and a failed compile falls back to turbo)."""
    return available() and translatable(program)


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
def _double_literal(value):
    value = float(value)
    if math.isnan(value):
        return "NAN"
    if math.isinf(value):
        return "-INFINITY" if value < 0 else "INFINITY"
    return value.hex()


def _immu(imm):
    return f"{imm & 0xFFFFFFFF}u"


def _goto(next_pc, n_instrs):
    if next_pc < n_instrs:
        return f"goto I{next_pc};"
    return f"{{ pc = {next_pc}; reason = 3; goto out; }}"


#: Unsigned register-register expression templates (C mirrors of the
#: interpreter arms; uint32 arithmetic wraps exactly like ``& _M32``).
_R3_EXPRS = {
    1: "ir[{a}] + ir[{b}]",                     # add
    8: "ir[{a}] - ir[{b}]",                     # sub
    9: "ir[{a}] & ir[{b}]",                     # and
    10: "ir[{a}] | ir[{b}]",                    # or
    11: "ir[{a}] ^ ir[{b}]",                    # xor
    12: "ir[{a}] << (ir[{b}] & 31)",            # sll
    13: "ir[{a}] >> (ir[{b}] & 31)",            # srl
    14: "(uint32_t)((int64_t)(int32_t)ir[{a}] >> (ir[{b}] & 31))",  # sra
    15: "((int32_t)ir[{a}] < (int32_t)ir[{b}])",  # slt
    16: "(ir[{a}] < ir[{b}])",                  # sltu
    26: "~(ir[{a}] | ir[{b}])",                 # nor
    27: ("(uint32_t)((int64_t)(int32_t)ir[{a}]"
         " * (int64_t)(int32_t)ir[{b}])"),      # mul
    28: ("(uint32_t)(((int64_t)(int32_t)ir[{a}]"
         " * (int64_t)(int32_t)ir[{b}]) >> 32)"),  # mulh
}

#: Register-immediate expression templates ({i} is the masked
#: immediate, {s} the shift amount, {r} the raw int32 immediate).
_R2I_EXPRS = {
    0: "ir[{a}] + {i}",                         # addi
    17: "ir[{a}] & {i}",                        # andi
    18: "ir[{a}] | {i}",                        # ori
    19: "ir[{a}] ^ {i}",                        # xori
    20: "ir[{a}] << {s}",                       # slli
    21: "ir[{a}] >> {s}",                       # srli
    22: "(uint32_t)((int64_t)(int32_t)ir[{a}] >> {s})",  # srai
    23: "((int32_t)ir[{a}] < (int32_t){i})",    # slti
    24: "(ir[{a}] < {i})",                      # sltiu
}

#: Conditional-branch condition expressions.
_BRANCH_EXPRS = {
    4: "(ir[{a}] == ir[{b}])",                  # beq
    5: "(ir[{a}] != ir[{b}])",                  # bne
    6: "((int32_t)ir[{a}] < (int32_t)ir[{b}])",    # blt
    7: "((int32_t)ir[{a}] >= (int32_t)ir[{b}])",   # bge
    38: "(ir[{a}] < ir[{b}])",                  # bltu
    39: "(ir[{a}] >= ir[{b}])",                 # bgeu
}

#: FP expression templates over ``fr`` (indices already rebased).
_FP_EXPRS = {
    44: "fr[{a}] + fr[{b}]",                    # fadd
    45: "fr[{a}] - fr[{b}]",                    # fsub
    46: "fr[{a}] * fr[{b}]",                    # fmul
    49: "-fr[{a}]",                             # fneg
    50: "fabs(fr[{a}])",                        # fabs
    51: "fr[{a}]",                              # fmv
}

#: FP comparisons writing a guarded integer destination.
_FCMP_EXPRS = {
    54: "(fr[{a}] == fr[{b}])",                 # feq
    55: "(fr[{a}] < fr[{b}])",                  # flt
    56: "(fr[{a}] <= fr[{b}])",                 # fle
}


def _emit_instruction(pc, decoded, n_instrs, lines):
    """Emit the labelled C statement(s) for one static instruction."""
    op_id, rd, rs1, rs2, imm, target = decoded
    wr = rd is not None and rd != 0  # guarded integer destination live?
    emit = lines.append
    emit(f"I{pc}:")
    emit(f"    STEP({pc})")
    plain = f"    TR({pc}, -1, -1)"
    fall = f"    {_goto(pc + 1, n_instrs)}"

    if op_id in _R3_EXPRS:
        if wr:
            expr = _R3_EXPRS[op_id].format(a=rs1, b=rs2)
            emit(f"    ir[{rd}] = {expr};")
        emit(plain)
        emit(fall)
    elif op_id in _R2I_EXPRS:
        if wr:
            expr = _R2I_EXPRS[op_id].format(
                a=rs1, i=_immu(imm), s=imm & 31)
            emit(f"    ir[{rd}] = {expr};")
        emit(plain)
        emit(fall)
    elif op_id == 25:  # lui
        if wr:
            emit(f"    ir[{rd}] = {_immu(imm << 16)};")
        emit(plain)
        emit(fall)
    elif op_id in (29, 31):  # div / rem (int64 avoids INT_MIN/-1 UB)
        if wr:
            c_op = "/" if op_id == 29 else "%"
            emit(f"    {{ int64_t a = (int32_t)ir[{rs1}], "
                 f"b = (int32_t)ir[{rs2}];")
            emit(f"      ir[{rd}] = (uint32_t)(b ? a {c_op} b : 0); }}")
        emit(plain)
        emit(fall)
    elif op_id in (30, 32):  # divu / remu
        if wr:
            c_op = "/" if op_id == 30 else "%"
            emit(f"    {{ uint32_t b = ir[{rs2}];")
            emit(f"      ir[{rd}] = b ? ir[{rs1}] {c_op} b : 0u; }}")
        emit(plain)
        emit(fall)
    elif op_id in _BRANCH_EXPRS:
        cond = _BRANCH_EXPRS[op_id].format(a=rs1, b=rs2)
        emit(f"    {{ int8_t t = {cond};")
        emit(f"      TR({pc}, -1, t)")
        emit(f"      if (t) goto I{target}; }}")
        emit(fall)
    elif op_id in (2, 33, 34):  # lw / lb / lbu
        bound = ("(int64_t)a + 4 > mem_size" if op_id == 2
                 else "(int64_t)a >= mem_size")
        emit(f"    {{ uint32_t a = ir[{rs1}] + {_immu(imm)};")
        emit(f"      if ({bound}) MEMERR({pc}, {op_id}, a)")
        if wr:
            if op_id == 2:
                emit("      { uint32_t v; memcpy(&v, mem + a, 4); "
                     f"ir[{rd}] = v; }}")
            elif op_id == 33:
                emit(f"      ir[{rd}] = "
                     "(uint32_t)(int32_t)(int8_t)mem[a];")
            else:
                emit(f"      ir[{rd}] = mem[a];")
        emit(f"      TR({pc}, (int64_t)a, -1) }}")
        emit(fall)
    elif op_id in (3, 35):  # sw / sb
        bound = ("(int64_t)a + 4 > mem_size" if op_id == 3
                 else "(int64_t)a >= mem_size")
        emit(f"    {{ uint32_t a = ir[{rs1}] + {_immu(imm)};")
        emit(f"      if ({bound}) MEMERR({pc}, {op_id}, a)")
        if op_id == 3:
            emit(f"      {{ uint32_t v = ir[{rs2}]; "
                 "memcpy(mem + a, &v, 4); }")
        else:
            emit(f"      mem[a] = (uint8_t)ir[{rs2}];")
        emit(f"      TR({pc}, (int64_t)a, -1) }}")
        emit(fall)
    elif op_id == 36:  # flw
        emit(f"    {{ uint32_t a = ir[{rs1}] + {_immu(imm)};")
        emit(f"      if ((int64_t)a + 8 > mem_size) MEMERR({pc}, 36, a)")
        emit("      { double v; memcpy(&v, mem + a, 8); "
             f"fr[{rd - 32}] = v; }}")
        emit(f"      TR({pc}, (int64_t)a, -1) }}")
        emit(fall)
    elif op_id == 37:  # fsw
        emit(f"    {{ uint32_t a = ir[{rs1}] + {_immu(imm)};")
        emit(f"      if ((int64_t)a + 8 > mem_size) MEMERR({pc}, 37, a)")
        emit(f"      {{ double v = fr[{rs2 - 32}]; "
             "memcpy(mem + a, &v, 8); }")
        emit(f"      TR({pc}, (int64_t)a, -1) }}")
        emit(fall)
    elif op_id == 40:  # j
        emit(plain)
        emit(f"    goto I{target};")
    elif op_id == 41:  # jal
        if wr:
            emit(f"    ir[{rd}] = {_immu(TEXT_BASE + 4 * (pc + 1))};")
        emit(plain)
        emit(f"    goto I{target};")
    elif op_id in (42, 43):  # jr / jalr (rs1 read precedes link write)
        emit(f"    {{ int64_t ret = (int64_t)ir[{rs1}];")
        if op_id == 43 and wr:
            emit(f"      ir[{rd}] = {_immu(TEXT_BASE + 4 * (pc + 1))};")
        emit(f"      TR({pc}, -1, -1)")
        emit(f"      pc = (ret - {TEXT_BASE}) >> 2; goto dispatch; }}")
    elif op_id in _FP_EXPRS:
        expr = _FP_EXPRS[op_id].format(
            a=rs1 - 32, b=(rs2 - 32) if rs2 is not None else None)
        emit(f"    fr[{rd - 32}] = {expr};")
        emit(plain)
        emit(fall)
    elif op_id == 47:  # fdiv
        emit(f"    {{ double b = fr[{rs2 - 32}];")
        emit(f"      fr[{rd - 32}] = (b != 0.0) "
             f"? fr[{rs1 - 32}] / b : 0.0; }}")
        emit(plain)
        emit(fall)
    elif op_id == 48:  # fsqrt
        emit(f"    {{ double v = fr[{rs1 - 32}];")
        emit(f"      fr[{rd - 32}] = (v > 0.0) ? sqrt(v) : 0.0; }}")
        emit(plain)
        emit(fall)
    elif op_id == 52:  # fmin (Python min: b if b < a else a)
        emit(f"    {{ double a = fr[{rs1 - 32}], b = fr[{rs2 - 32}];")
        emit(f"      fr[{rd - 32}] = (b < a) ? b : a; }}")
        emit(plain)
        emit(fall)
    elif op_id == 53:  # fmax
        emit(f"    {{ double a = fr[{rs1 - 32}], b = fr[{rs2 - 32}];")
        emit(f"      fr[{rd - 32}] = (b > a) ? b : a; }}")
        emit(plain)
        emit(fall)
    elif op_id in _FCMP_EXPRS:
        if wr:
            expr = _FCMP_EXPRS[op_id].format(a=rs1 - 32, b=rs2 - 32)
            emit(f"    ir[{rd}] = {expr};")
        emit(plain)
        emit(fall)
    elif op_id == 57:  # fcvtws (truncate toward zero, like int())
        if wr:
            emit(f"    ir[{rd}] = (uint32_t)(int64_t)fr[{rs1 - 32}];")
        emit(plain)
        emit(fall)
    elif op_id == 58:  # fcvtsw
        emit(f"    fr[{rd - 32}] = (double)(int32_t)ir[{rs1}];")
        emit(plain)
        emit(fall)
    elif op_id == 59:  # fli
        emit(f"    fr[{rd - 32}] = {_double_literal(imm)};")
        emit(plain)
        emit(fall)
    elif op_id == 60:  # halt
        emit(plain)
        emit(f"    pc = {pc}; reason = 0; goto out;")
    else:  # unreachable behind _translatable
        raise SimulationError(f"bad op id {op_id}")


def generate_source(program):
    """The full C translation unit for ``program``."""
    columns = columns_for(program)
    decoded = columns.derived.get("functional_decode")
    if decoded is None:
        from repro.sim.functional import FunctionalSimulator
        FunctionalSimulator(program)  # populates the decode cache
        decoded = columns.derived["functional_decode"]
    n_instrs = len(decoded)
    lines = [
        "/* Generated functional-execution engine: exact port of",
        " * repro.sim.functional._run_interp for one program's decoded",
        " * instructions (see repro/sim/native.py). */",
        "#include <stdint.h>",
        "#include <string.h>",
        "#include <math.h>",
        "",
        "#define STEP(PC) \\",
        "    if (n >= cap) { pc = PC; reason = 2; goto out; } \\",
        "    executed++; \\",
        "    if (executed > check_limit) "
        "{ pc = PC; reason = 1; goto out; }",
        "",
        "#define TR(PC, A, T) \\",
        "    t_pcs[n] = PC; t_addrs[n] = (A); t_taken[n] = (T); n++;",
        "",
        "#define MEMERR(PC, OP, A) \\",
        "    { pc = PC; ctl[4] = OP; ctl[5] = (int64_t)(A); \\",
        "      reason = 4; goto out; }",
        "",
        "int64_t repro_sim_run(uint32_t *ir, double *fr, uint8_t *mem,",
        "                      int64_t mem_size, int64_t *ctl,",
        "                      int32_t *t_pcs, int64_t *t_addrs,",
        "                      int8_t *t_taken, int64_t cap)",
        "{",
        "    int64_t pc = ctl[0];",
        "    int64_t executed = ctl[1];",
        "    int64_t check_limit = ctl[2];",
        "    int64_t n = 0;",
        "    int64_t reason;",
        "",
        "dispatch:",
        "    switch (pc) {",
    ]
    for pc in range(n_instrs):
        lines.append(f"    case {pc}: goto I{pc};")
    lines.append("    default: reason = 3; goto out;")
    lines.append("    }")
    lines.append("")
    for pc, entry in enumerate(decoded):
        _emit_instruction(pc, entry, n_instrs, lines)
    lines.extend([
        "",
        "out:",
        "    ctl[0] = pc; ctl[1] = executed; ctl[3] = n;",
        "    return reason;",
        "}",
    ])
    return "\n".join(lines) + "\n"


def engine_for(program):
    """The compiled ctypes entry point for ``program``, or ``None``.

    Compiles lazily on first use; the loaded library and prepared
    function are cached on the program's shared columns, the ``.so``
    itself in the content-addressed toolchain cache (so one compile per
    program content per machine, ever).
    """
    if not usable(program):
        return None
    columns = columns_for(program)
    cached = columns.derived.get("native_sim")
    if cached is None:
        cached = False
        library = toolchain.load_library(generate_source(program),
                                         "simfunc")
        if library is not None:
            run = library.repro_sim_run
            run.restype = ctypes.c_int64
            run.argtypes = [
                _U32P, _F64P, _U8P, ctypes.c_int64, _I64P,
                _I32P, _I64P, _I8P, ctypes.c_int64,
            ]
            cached = (library, run)
        columns.derived["native_sim"] = cached
    return cached[1] if cached else None


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _drive(simulator, max_instructions, sink, chunk_events=CHUNK_EVENTS):
    """Run the compiled engine to completion, streaming trace chunks.

    ``sink`` (if given) receives ``(pcs, addrs, taken)`` numpy views
    per chunk, valid only until the next resume.  Replicates the
    interpreter's cap/heartbeat protocol and error semantics exactly;
    returns instructions executed.
    """
    program = simulator.program
    run = engine_for(program)
    if run is None:
        raise SimulationError(
            f"native backend unavailable for {program.name}")
    regs = simulator.regs
    memory = simulator.memory
    ir = np.array(regs[:32], dtype=np.uint32)
    fr = np.array([float(value) for value in regs[32:]], dtype=np.float64)
    mem_view = np.frombuffer(memory.data, dtype=np.uint8)
    t_pcs = np.empty(chunk_events, dtype=np.int32)
    t_addrs = np.empty(chunk_events, dtype=np.int64)
    t_taken = np.empty(chunk_events, dtype=np.int8)
    ctl = np.zeros(6, dtype=np.int64)
    args = (ir.ctypes.data_as(_U32P), fr.ctypes.data_as(_F64P),
            mem_view.ctypes.data_as(_U8P), memory.size,
            ctl.ctypes.data_as(_I64P), t_pcs.ctypes.data_as(_I32P),
            t_addrs.ctypes.data_as(_I64P), t_taken.ctypes.data_as(_I8P),
            chunk_events)

    # Identical heartbeat arming to the interpreter loop (the interval
    # is read through the module so test monkeypatching applies here).
    heartbeat_interval = _functional.HEARTBEAT_INTERVAL
    wall_start = time.perf_counter()
    if REGISTRY.enabled and (_LOG.is_enabled_for(INFO)
                             or active_journal() is not None):
        next_heartbeat = heartbeat_interval
    else:
        next_heartbeat = max_instructions + 1
    ctl[_CTL_PC] = program.entry
    ctl[_CTL_LIMIT] = min(max_instructions, next_heartbeat - 1)

    def sync_regs():
        regs[:32] = [int(value) for value in ir]
        regs[32:] = [float(value) for value in fr]

    while True:
        reason = run(*args)
        count = int(ctl[_CTL_COUNT])
        if count and sink is not None:
            sink(t_pcs[:count], t_addrs[:count], t_taken[:count])
        if reason == _R_CHUNK:
            continue
        executed = int(ctl[_CTL_EXECUTED])
        pc = int(ctl[_CTL_PC])
        if reason == _R_LIMIT:
            if executed > max_instructions:
                sync_regs()
                raise simulator._cap_error(pc, executed, max_instructions)
            next_heartbeat += heartbeat_interval
            elapsed = time.perf_counter() - wall_start
            mips = executed / elapsed / 1e6 if elapsed else 0.0
            _LOG.info("sim.heartbeat", program=program.name,
                      instructions=executed, pc=pc, mips=mips)
            emit_event("progress", done=executed, total=max_instructions,
                       unit="instructions", label=program.name,
                       mips=round(mips, 2))
            # Restore the pre-increment count: the C loop re-increments
            # when it re-executes the interrupted instruction, exactly
            # like the interpreter's single count per retirement.
            ctl[_CTL_EXECUTED] = executed - 1
            ctl[_CTL_LIMIT] = min(max_instructions, next_heartbeat - 1)
            continue
        if reason == _R_BADPC:
            sync_regs()
            raise SimulationError(
                f"pc out of range: {pc} in {program.name}",
                pc=pc, instructions=executed)
        if reason == _R_MEMERR:
            sync_regs()
            op = _MEM_OP_NAMES[int(ctl[_CTL_ERR_OP])]
            addr = int(ctl[_CTL_ERR_ADDR])
            raise SimulationError(f"{op} out of range: {addr:#x}")
        break  # _R_HALT
    sync_regs()
    simulator._finish_run(executed, wall_start, "native")
    return executed


def run_native(simulator, max_instructions, trace):
    """Drop-in replacement for ``_run_interp`` via the C engine."""
    if not trace:
        return _drive(simulator, max_instructions, None)
    parts = []

    def sink(pcs, addrs, taken):
        parts.append((pcs.copy(), addrs.copy(), taken.copy()))

    _drive(simulator, max_instructions, sink)
    if parts:
        pcs = np.concatenate([part[0] for part in parts])
        addrs = np.concatenate([part[1] for part in parts])
        taken = np.concatenate([part[2] for part in parts])
    else:
        pcs = np.empty(0, dtype=np.int32)
        addrs = np.empty(0, dtype=np.int64)
        taken = np.empty(0, dtype=np.int8)
    return DynamicTrace(simulator.program, pcs, addrs, taken)


def stream_trace(simulator, max_instructions, sink,
                 chunk_events=CHUNK_EVENTS):
    """Execute natively, feeding columnar trace chunks to ``sink``.

    ``sink(pcs, addrs, taken)`` is called with numpy views valid only
    until it returns — consumers keep what they need.  The full trace
    is never materialized.  Returns instructions executed.
    """
    return _drive(simulator, max_instructions, sink, chunk_events)
