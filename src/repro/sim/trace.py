"""Compact dynamic-trace representation.

A trace is three parallel arrays over the dynamic instruction stream:

* ``pcs``   — static instruction index executed (int32);
* ``addrs`` — effective data address for loads/stores, ``-1`` otherwise
  (int64);
* ``taken`` — ``1``/``0`` for taken/not-taken conditional branches, ``-1``
  otherwise (int8).

Together with the static :class:`repro.isa.Program` (which supplies opcode
class and register operands per pc), this is the complete input to both
the microarchitecture-independent profiler and the timing models — the
same information SimpleScalar's functional simulator feeds its tools.
"""

import hashlib

import numpy as np


def write_npz(path, arrays, compress=False):
    """Write an ``.npz`` archive; the single choke point for all trace
    and sweep-artifact persistence.

    ``compress=True`` (deflate) is worth it for long-lived trace
    archives — dynamic traces are highly repetitive and shrink 5-10x —
    while the artifact store's bank/digest saves sit on the cold-sweep
    critical path, where zlib costs more wall time than the disk it
    saves (see EXPERIMENTS.md for the measured tradeoff).
    """
    if compress:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)


def _column_bytes(array):
    # tobytes() on a contiguous array already serializes in C order;
    # only non-contiguous views (sliced traces) need the defensive copy.
    if not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array)
    return array.tobytes()


def combine_column_digests(pcs_hex, addrs_hex, taken_hex):
    """Fold three per-column sha256 hexdigests into one trace digest.

    The per-column structure is what lets a streaming producer hash
    fixed-size chunks as they appear (one running hasher per column)
    and still agree exactly with :meth:`DynamicTrace.content_digest`
    on the materialized arrays.
    """
    return hashlib.sha256(
        (pcs_hex + addrs_hex + taken_hex).encode()).hexdigest()


class TraceRef:
    """A trace's identity without its full columns.

    Stands in for a :class:`DynamicTrace` wherever only the program,
    the length, the ``pcs`` column, and the content digest are needed —
    which is everything the sweep's digest/bank store keys and the
    :class:`~repro.uarch.sweep.TraceDigest` machinery consume.  Built
    by the streaming acquisition path, which compresses the ``addrs``
    and ``taken`` columns into their digest subsets as chunks arrive
    and never holds the full trace.
    """

    def __init__(self, program, pcs, content_digest):
        self.program = program
        self.pcs = np.asarray(pcs, dtype=np.int64)
        self._content_digest = content_digest

    def __len__(self):
        return len(self.pcs)

    @property
    def length(self):
        return len(self.pcs)

    def content_digest(self):
        return self._content_digest


class DynamicTrace:
    """Immutable dynamic instruction trace bound to its static program."""

    def __init__(self, program, pcs, addrs, taken):
        if not (len(pcs) == len(addrs) == len(taken)):
            raise ValueError("trace arrays must have equal length")
        self.program = program
        self.pcs = np.asarray(pcs, dtype=np.int32)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.taken = np.asarray(taken, dtype=np.int8)
        self._memory_mask = None
        self._content_digest = None

    def __len__(self):
        return len(self.pcs)

    @property
    def length(self):
        return len(self.pcs)

    def _mem_mask(self):
        """The ``addrs >= 0`` load/store mask, computed once per trace.

        Every consumer below needs it and the trace is immutable, so it
        is cached on first use instead of being recomputed per call.
        """
        mask = self._memory_mask
        if mask is None:
            mask = self._memory_mask = self.addrs >= 0
        return mask

    def memory_indices(self):
        """Dynamic positions of all loads/stores."""
        return np.nonzero(self._mem_mask())[0]

    def memory_addresses(self):
        """Effective addresses of all loads/stores, in dynamic order."""
        return self.addrs[self._mem_mask()]

    def branch_indices(self):
        """Dynamic positions of all conditional branches."""
        return np.nonzero(self.taken >= 0)[0]

    def content_digest(self):
        """Combined per-column sha256, computed once per trace.

        Identifies the trace *content* independently of how it was
        produced; the sweep engine keys persisted digests and outcome
        banks on it (together with a program fingerprint).  Hashed per
        column and folded through :func:`combine_column_digests`, so a
        streaming producer hashing chunk-by-chunk arrives at the same
        digest without materializing the arrays.
        """
        digest = self._content_digest
        if digest is None:
            digest = self._content_digest = combine_column_digests(
                hashlib.sha256(_column_bytes(self.pcs)).hexdigest(),
                hashlib.sha256(_column_bytes(self.addrs)).hexdigest(),
                hashlib.sha256(_column_bytes(self.taken)).hexdigest())
        return digest

    def data_footprint(self, granularity=4):
        """Number of unique ``granularity``-byte data blocks touched."""
        addresses = self.memory_addresses()
        if len(addresses) == 0:
            return 0
        return int(len(np.unique(addresses // granularity)))

    def summary(self):
        """Human-oriented counts used in reports and tests."""
        mem = int(np.count_nonzero(self._mem_mask()))
        branches = int(np.count_nonzero(self.taken >= 0))
        taken = int(np.count_nonzero(self.taken == 1))
        return {
            "instructions": len(self.pcs),
            "memory_ops": mem,
            "branches": branches,
            "taken_branches": taken,
        }

    def save(self, path, compress=True):
        """Persist to ``.npz`` (program is *not* saved; see ``load``).

        Compressed by default — trace archives are long-lived and
        shrink well; pass ``compress=False`` for throwaway staging
        files where write speed matters more than size.
        """
        write_npz(path, {"pcs": self.pcs, "addrs": self.addrs,
                         "taken": self.taken}, compress=compress)

    @classmethod
    def load(cls, path, program):
        """Load arrays saved by :meth:`save`, rebinding to ``program``."""
        with np.load(path) as blob:
            return cls(program, blob["pcs"], blob["addrs"], blob["taken"])
