"""The embedded workload corpus (Table 1 stand-ins).

23 real algorithm kernels across the paper's application domains, written
in SRISC assembly with deterministic seeded inputs.  Each one plays the
role of a "real world proprietary application" to be cloned.

Use :func:`get_workload` / :func:`build_workload` for one program and
:func:`all_workloads` for the whole suite.
"""

from dataclasses import dataclass

from repro.isa.assembler import assemble


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one workload kernel."""

    name: str
    domain: str
    suite: str  # "mibench" or "mediabench"
    description: str
    source_builder: object

    def source(self):
        """Generate the workload's assembly source (deterministic)."""
        return self.source_builder()

    def build(self):
        """Assemble the workload into an executable Program."""
        return assemble(self.source(), name=self.name)


def _registry():
    from repro.workloads import (automotive, consumer, media, network,
                                 office, security, telecom)
    modules = (automotive, network, security, telecom, office, consumer,
               media)
    registry = {}
    for module in modules:
        for name, domain, suite, builder, description in module.SPECS:
            if name in registry:
                raise ValueError(f"duplicate workload name {name!r}")
            registry[name] = WorkloadSpec(
                name=name, domain=domain, suite=suite,
                description=description, source_builder=builder)
    return registry


_REGISTRY = None


def registry():
    """Name -> WorkloadSpec for the whole corpus (built lazily)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _registry()
    return _REGISTRY


def workload_names():
    return sorted(registry())


def get_workload(name):
    try:
        return registry()[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {workload_names()}"
        ) from None


def build_workload(name):
    """Assemble one workload by name."""
    return get_workload(name).build()


def all_workloads():
    """All specs, sorted by (domain, name) like the paper's Table 1."""
    return sorted(registry().values(),
                  key=lambda spec: (spec.domain, spec.name))


def domains():
    """Domain -> [workload names], the Table 1 grouping."""
    table = {}
    for spec in all_workloads():
        table.setdefault(spec.domain, []).append(spec.name)
    return table
