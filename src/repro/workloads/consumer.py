"""Consumer-electronics kernels (MiBench stand-ins): jpeg, lame, typeset."""

import math

from repro.workloads._support import Lcg, byte_lines, double_lines, word_lines

_JPEG_QUANT = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56, 14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
]


def jpeg_source():
    """JPEG encoder core: 8x8 integer DCT plus quantization per block."""
    rng = Lcg(0x1E6)
    width = height = 32  # 16 blocks of 8x8
    image = rng.bytes(width * height)
    # fixed-point cosine table: C[u][x] = round(cos((2x+1)u*pi/16) * 1024)
    cosines = []
    for u in range(8):
        for x in range(8):
            cosines.append(round(math.cos((2 * x + 1) * u * math.pi / 16)
                                 * 1024))
    n_blocks = (width // 8) * (height // 8)

    return f"""
    .data
{byte_lines("img", image)}
    .align 4
{word_lines("costab", cosines)}
{word_lines("quant", _JPEG_QUANT)}
tmp:    .space {64 * 4}
coef:   .space {n_blocks * 64 * 4}
    .text
main:
    li   r4, 0              # block index
    li   r5, {n_blocks}
blk_loop:
    # block origin: (bx, by) = (blk % 4, blk / 4) * 8
    andi r6, r4, 3
    slli r6, r6, 3          # bx
    srli r7, r4, 2
    slli r7, r7, 3          # by
    la   r8, img
    li   r9, {width}
    mul  r10, r7, r9
    add  r10, r10, r6
    add  r8, r8, r10        # block base in image

    # ---- 1D DCT over rows into tmp ---------------------------------------
    la   r11, costab
    la   r12, tmp
    li   r13, 0             # row y
row_loop:
    li   r14, 0             # u
u_loop:
    li   r15, 0             # acc
    li   r16, 0             # x
x_loop:
    li   r17, {width}
    mul  r18, r13, r17
    add  r18, r18, r16
    add  r18, r8, r18
    lbu  r19, 0(r18)
    addi r19, r19, -128
    slli r20, r14, 3
    add  r20, r20, r16
    slli r20, r20, 2
    add  r20, r11, r20
    lw   r21, 0(r20)
    mul  r19, r19, r21
    add  r15, r15, r19
    addi r16, r16, 1
    li   r17, 8
    blt  r16, r17, x_loop
    srai r15, r15, 10
    # tmp[y*8 + u] = acc
    slli r20, r13, 3
    add  r20, r20, r14
    slli r20, r20, 2
    add  r20, r12, r20
    sw   r15, 0(r20)
    addi r14, r14, 1
    li   r17, 8
    blt  r14, r17, u_loop
    addi r13, r13, 1
    li   r17, 8
    blt  r13, r17, row_loop

    # ---- 1D DCT over columns + quantization into coef ---------------------
    la   r22, coef
    li   r23, 256           # 64 words per block
    mul  r24, r4, r23
    add  r22, r22, r24      # coef base for this block
    la   r25, quant
    li   r14, 0             # v
v_loop:
    li   r16, 0             # column u
col_loop:
    li   r15, 0             # acc
    li   r13, 0             # y
y_loop:
    slli r20, r13, 3
    add  r20, r20, r16
    slli r20, r20, 2
    add  r20, r12, r20
    lw   r19, 0(r20)        # tmp[y][u]
    slli r20, r14, 3
    add  r20, r20, r13
    slli r20, r20, 2
    add  r20, r11, r20
    lw   r21, 0(r20)        # cos[v][y]
    mul  r19, r19, r21
    add  r15, r15, r19
    addi r13, r13, 1
    li   r17, 8
    blt  r13, r17, y_loop
    srai r15, r15, 10
    # quantize
    slli r20, r14, 3
    add  r20, r20, r16
    slli r21, r20, 2
    add  r21, r25, r21
    lw   r18, 0(r21)
    div  r15, r15, r18
    slli r21, r20, 2
    add  r21, r22, r21
    sw   r15, 0(r21)
    addi r16, r16, 1
    li   r17, 8
    blt  r16, r17, col_loop
    addi r14, r14, 1
    li   r17, 8
    blt  r14, r17, v_loop
    addi r4, r4, 1
    blt  r4, r5, blk_loop
    halt
"""


def lame_source():
    """MP3 encoder front end: windowed polyphase subband dot products."""
    rng = Lcg(0x1A3E)
    window = [round(v, 9) for v in
              (math.sin(math.pi * i / 256) * 0.9 for i in range(256))]
    n_granules = 14
    granule = 96
    pcm = [round(v, 9) for v in rng.doubles(n_granules * granule + 256,
                                            -1.0, 1.0)]
    n_subbands = 24
    taps = 12

    return f"""
    .data
{double_lines("win", window)}
{double_lines("pcm", pcm)}
sub:    .space {n_granules * n_subbands * 8}
    .text
main:
    la   r4, pcm
    la   r5, win
    la   r6, sub
    li   r7, 0              # granule
    li   r8, {n_granules}
gran_loop:
    li   r9, {granule * 8}
    mul  r10, r7, r9
    la   r4, pcm
    add  r4, r4, r10        # granule base
    li   r11, 0             # subband s
sb_loop:
    fli  f1, 0.0            # accumulator
    li   r12, 0             # tap
tap_loop:
    # x[s*4 + tap*8] * win[(s*taps + tap) & 255]
    slli r13, r11, 2
    slli r14, r12, 3
    add  r13, r13, r14
    slli r13, r13, 3
    add  r13, r4, r13
    flw  f2, 0(r13)
    li   r14, {taps}
    mul  r15, r11, r14
    add  r15, r15, r12
    andi r15, r15, 255
    slli r15, r15, 3
    add  r15, r5, r15
    flw  f3, 0(r15)
    fmul f2, f2, f3
    fadd f1, f1, f2
    addi r12, r12, 1
    li   r14, {taps}
    blt  r12, r14, tap_loop
    # store subband sample
    li   r14, {n_subbands * 8}
    mul  r15, r7, r14
    slli r16, r11, 3
    add  r15, r15, r16
    add  r15, r6, r15
    fsw  f1, 0(r15)
    addi r11, r11, 1
    li   r14, {n_subbands}
    blt  r11, r14, sb_loop
    addi r7, r7, 1
    blt  r7, r8, gran_loop
    halt
"""


def typeset_source():
    """Greedy paragraph line breaking with quadratic badness (TeX style)."""
    rng = Lcg(0x7E5E)
    n_words = 2200
    widths = [2 + rng.below(12) for _ in range(n_words)]
    line_width = 62

    return f"""
    .data
{word_lines("widths", widths)}
breaks: .space {n_words * 4}
badsum: .word 0
lines:  .word 0
    .text
main:
    la   r4, widths
    la   r5, breaks
    li   r6, 0              # word index
    li   r7, {n_words}
    li   r8, 0              # current line length
    li   r9, 0              # badness total
    li   r10, 0             # line count
word_loop:
    lw   r11, 0(r4)
    # space before word unless line empty
    beq  r8, r0, no_space
    addi r8, r8, 1
no_space:
    add  r12, r8, r11
    li   r13, {line_width}
    ble  r12, r13, fits
    # break line: badness = (width - len)^2, cubed for very short lines
    sub  r14, r13, r8
    mul  r15, r14, r14
    li   r16, 20
    blt  r14, r16, mild
    mul  r15, r15, r14      # heavily penalize loose lines
mild:
    add  r9, r9, r15
    addi r10, r10, 1
    # record break position
    slli r16, r10, 2
    add  r16, r5, r16
    sw   r6, 0(r16)
    add  r8, r11, r0        # word starts new line
    j    word_next
fits:
    add  r8, r12, r0
word_next:
    addi r4, r4, 4
    addi r6, r6, 1
    blt  r6, r7, word_loop
    la   r16, badsum
    sw   r9, 0(r16)
    la   r16, lines
    sw   r10, 0(r16)

    # ---- justification pass: distribute slack over recorded lines --------
    la   r5, breaks
    li   r6, 1
    add  r7, r10, r0
just_loop:
    bge  r6, r7, just_done
    slli r11, r6, 2
    add  r11, r5, r11
    lw   r12, 0(r11)        # break word index
    lw   r13, -4(r11)       # previous break
    sub  r14, r12, r13      # words in line
    beq  r14, r0, just_next
    li   r15, {line_width}
    div  r16, r15, r14      # slack per word
    mul  r17, r16, r14
    sub  r17, r15, r17      # remainder
    add  r18, r16, r17
    sw   r18, 0(r11)        # overwrite with spacing decision
just_next:
    addi r6, r6, 1
    j    just_loop
just_done:
    halt
"""


SPECS = [
    ("jpeg", "consumer", "mibench", jpeg_source,
     "8x8 integer DCT and quantization"),
    ("lame", "consumer", "mibench", lame_source,
     "windowed polyphase subband analysis"),
    ("typeset", "consumer", "mibench", typeset_source,
     "greedy line breaking with badness"),
]
