"""Office-automation kernels (MiBench stand-ins):
stringsearch, ispell, rsynth."""

import math

from repro.workloads._support import Lcg, byte_lines, word_lines


def _random_text(rng, length):
    """Lowercase words separated by spaces, vaguely English-shaped."""
    text = []
    while len(text) < length:
        word_len = 2 + rng.below(9)
        for _ in range(word_len):
            text.append(97 + rng.below(26))
        text.append(32)
    return text[:length]


def stringsearch_source():
    """Boyer-Moore-Horspool search of several patterns over a text."""
    rng = Lcg(0x57E)
    text_len = 6144
    text = _random_text(rng, text_len)
    patterns = []
    for _ in range(6):
        length = 4 + rng.below(6)
        start = rng.below(text_len - 16)
        # Half the patterns are excerpts (guaranteed hits), half random.
        if rng.below(2):
            patterns.append(text[start:start + length])
        else:
            patterns.append([97 + rng.below(26) for _ in range(length)])
    pattern_bytes = []
    pattern_offsets = []
    for pattern in patterns:
        pattern_offsets.append((len(pattern_bytes), len(pattern)))
        pattern_bytes.extend(pattern)
    offsets_flat = [v for pair in pattern_offsets for v in pair]

    return f"""
    .data
{byte_lines("text", text)}
    .align 4
{byte_lines("pats", pattern_bytes)}
    .align 4
{word_lines("patinfo", offsets_flat)}
skip:   .space 1024
found:  .word 0
    .text
main:
    li   r4, 0              # pattern index
    li   r5, {len(patterns)}
pat_loop:
    # pattern base and length
    la   r6, patinfo
    slli r7, r4, 3
    add  r6, r6, r7
    lw   r8, 0(r6)          # offset
    lw   r9, 4(r6)          # length
    la   r10, pats
    add  r10, r10, r8       # pattern base

    # ---- build the bad-character skip table ------------------------------
    la   r11, skip
    li   r12, 0
skip_init:
    slli r13, r12, 2
    add  r13, r11, r13
    sw   r9, 0(r13)
    addi r12, r12, 1
    li   r13, 256
    blt  r12, r13, skip_init
    li   r12, 0
    addi r14, r9, -1        # last index
skip_fill:
    bge  r12, r14, search_start
    add  r13, r10, r12
    lbu  r15, 0(r13)
    sub  r16, r14, r12
    slli r15, r15, 2
    add  r15, r11, r15
    sw   r16, 0(r15)
    addi r12, r12, 1
    j    skip_fill

search_start:
    la   r17, text
    li   r18, 0             # window position
    li   r19, {text_len}
    sub  r19, r19, r9       # last valid start
win_loop:
    bgt  r18, r19, pat_done
    # compare backwards from the window end
    addi r12, r9, -1
cmp_loop:
    add  r13, r18, r12
    add  r13, r17, r13
    lbu  r15, 0(r13)
    add  r13, r10, r12
    lbu  r16, 0(r13)
    bne  r15, r16, cmp_fail
    addi r12, r12, -1
    bgez r12, cmp_loop
    # full match
    la   r13, found
    lw   r15, 0(r13)
    addi r15, r15, 1
    sw   r15, 0(r13)
    addi r18, r18, 1
    j    win_loop
cmp_fail:
    # advance by skip[text[pos + m - 1]]
    add  r13, r18, r9
    addi r13, r13, -1
    add  r13, r17, r13
    lbu  r15, 0(r13)
    slli r15, r15, 2
    add  r15, r11, r15
    lw   r15, 0(r15)
    add  r18, r18, r15
    j    win_loop
pat_done:
    addi r4, r4, 1
    blt  r4, r5, pat_loop
    halt
"""


def ispell_source():
    """Hashed dictionary lookup with chained buckets (spell-check core)."""
    rng = Lcg(0x15B)
    n_dict = 420
    n_queries = 700
    word_bytes = 8
    dictionary = [rng.bytes(word_bytes, 26) for _ in range(n_dict)]
    queries = []
    for i in range(n_queries):
        if i % 2 == 0:
            queries.append(list(dictionary[rng.below(n_dict)]))
        else:
            queries.append(rng.bytes(word_bytes, 26))
    dict_flat = [b for word in dictionary for b in word]
    query_flat = [b for word in queries for b in word]

    return f"""
    .data
{byte_lines("dictw", dict_flat)}
    .align 4
{byte_lines("queryw", query_flat)}
    .align 4
buckets: .space {256 * 4}
# chain node: word_index, next (1-based; 0 = null)
chains:  .space {(n_dict + 1) * 8}
nchain:  .word 1
correct: .word 0
    .text
main:
    # ---- build hash table -------------------------------------------------
    la   r4, dictw
    li   r5, 0
    li   r6, {n_dict}
build_loop:
    # hash = fold of bytes
    li   r7, 0
    li   r8, 0
    li   r9, {word_bytes}
    li   r10, {word_bytes}
    mul  r11, r5, r10
    add  r11, r4, r11       # word base
hash_loop:
    add  r12, r11, r8
    lbu  r13, 0(r12)
    slli r14, r7, 2
    add  r7, r7, r14        # h = h*5
    add  r7, r7, r13
    addi r8, r8, 1
    blt  r8, r9, hash_loop
    andi r7, r7, 255
    # prepend chain node
    la   r14, nchain
    lw   r15, 0(r14)
    la   r16, chains
    slli r17, r15, 3
    add  r17, r16, r17
    sw   r5, 0(r17)         # word index
    la   r18, buckets
    slli r19, r7, 2
    add  r18, r18, r19
    lw   r20, 0(r18)        # old head
    sw   r20, 4(r17)
    sw   r15, 0(r18)        # new head
    addi r15, r15, 1
    sw   r15, 0(r14)
    addi r5, r5, 1
    blt  r5, r6, build_loop

    # ---- query ------------------------------------------------------------
    la   r4, queryw
    li   r5, 0
    li   r6, {n_queries}
query_loop:
    li   r10, {word_bytes}
    mul  r11, r5, r10
    add  r11, r4, r11       # query base
    li   r7, 0
    li   r8, 0
    li   r9, {word_bytes}
qhash_loop:
    add  r12, r11, r8
    lbu  r13, 0(r12)
    slli r14, r7, 2
    add  r7, r7, r14
    add  r7, r7, r13
    addi r8, r8, 1
    blt  r8, r9, qhash_loop
    andi r7, r7, 255
    la   r18, buckets
    slli r19, r7, 2
    add  r18, r18, r19
    lw   r15, 0(r18)        # chain head
chain_loop:
    beq  r15, r0, query_next
    la   r16, chains
    slli r17, r15, 3
    add  r17, r16, r17
    lw   r20, 0(r17)        # word index
    la   r21, dictw
    li   r10, {word_bytes}
    mul  r22, r20, r10
    add  r21, r21, r22      # dict word base
    li   r8, 0
cmp_loop:
    add  r12, r11, r8
    lbu  r13, 0(r12)
    add  r12, r21, r8
    lbu  r22, 0(r12)
    bne  r13, r22, cmp_fail
    addi r8, r8, 1
    blt  r8, r9, cmp_loop
    # matched
    la   r23, correct
    lw   r24, 0(r23)
    addi r24, r24, 1
    sw   r24, 0(r23)
    j    query_next
cmp_fail:
    lw   r15, 4(r17)        # next in chain
    j    chain_loop
query_next:
    addi r5, r5, 1
    blt  r5, r6, query_loop
    halt
"""


def rsynth_source():
    """Additive formant synthesis: harmonics from a sine table."""
    rng = Lcg(0x125)
    sine = [int(2000 * math.sin(2 * math.pi * i / 256)) for i in range(256)]
    n_phonemes = 36
    samples_per = 56
    # phoneme table: 3 harmonics x (step, amplitude)
    phonemes = []
    for _ in range(n_phonemes):
        for _harmonic in range(3):
            phonemes.append(1 + rng.below(24))   # phase step
            phonemes.append(2 + rng.below(14))   # amplitude (shift-scaled)

    return f"""
    .data
{word_lines("sinetab", sine)}
{word_lines("phon", phonemes)}
wave:   .space {n_phonemes * samples_per * 4}
    .text
main:
    la   r4, phon
    la   r5, wave
    li   r6, 0              # phoneme index
    li   r7, {n_phonemes}
ph_loop:
    # load 3 harmonics' parameters
    lw   r8, 0(r4)          # step0
    lw   r9, 4(r4)          # amp0
    lw   r10, 8(r4)         # step1
    lw   r11, 12(r4)        # amp1
    lw   r12, 16(r4)        # step2
    lw   r13, 20(r4)        # amp2
    li   r14, 0             # phase0
    li   r15, 0             # phase1
    li   r16, 0             # phase2
    li   r17, 0             # sample index
    li   r18, {samples_per}
    la   r19, sinetab
samp_loop:
    andi r20, r14, 255
    slli r20, r20, 2
    add  r20, r19, r20
    lw   r21, 0(r20)
    mul  r21, r21, r9
    srai r21, r21, 4
    andi r20, r15, 255
    slli r20, r20, 2
    add  r20, r19, r20
    lw   r22, 0(r20)
    mul  r22, r22, r11
    srai r22, r22, 4
    add  r21, r21, r22
    andi r20, r16, 255
    slli r20, r20, 2
    add  r20, r19, r20
    lw   r22, 0(r20)
    mul  r22, r22, r13
    srai r22, r22, 4
    add  r21, r21, r22
    sw   r21, 0(r5)
    add  r14, r14, r8
    add  r15, r15, r10
    add  r16, r16, r12
    addi r5, r5, 4
    addi r17, r17, 1
    blt  r17, r18, samp_loop
    addi r4, r4, 24
    addi r6, r6, 1
    blt  r6, r7, ph_loop
    halt
"""


SPECS = [
    ("stringsearch", "office", "mibench", stringsearch_source,
     "Boyer-Moore-Horspool multi-pattern text search"),
    ("ispell", "office", "mibench", ispell_source,
     "hashed dictionary spell-check lookups"),
    ("rsynth", "office", "mibench", rsynth_source,
     "additive formant speech synthesis"),
]
