"""Media-processing kernels (MediaBench stand-ins):
mpeg2dec, g721, epic, pegwit."""

import math

from repro.workloads._support import Lcg, byte_lines, word_lines


def mpeg2dec_source():
    """MPEG-2 decoder core: integer IDCT plus motion compensation.

    IDCT blocks are reconstructed with a fixed-point cosine table;
    motion compensation averages a reference region into the frame with
    saturation, like the decoder's half-pel prediction path.
    """
    rng = Lcg(0x3E62)
    cosines = []
    for u in range(8):
        for x in range(8):
            cosines.append(round(math.cos((2 * x + 1) * u * math.pi / 16)
                                 * 1024))
    n_idct = 8
    coeffs = []
    for _ in range(n_idct * 64):
        # sparse high-frequency content, like quantized real blocks
        coeffs.append(rng.below(160) - 80 if rng.below(100) < 35 else 0)
    width = 48
    height = 32
    reference = rng.bytes(width * height)
    n_mc = 18
    motion = []
    for _ in range(n_mc):
        motion.append(rng.below(width - 20))   # src x
        motion.append(rng.below(height - 20))  # src y
        motion.append(rng.below(width - 18))   # dst x
        motion.append(rng.below(height - 18))  # dst y

    return f"""
    .data
{word_lines("costab", cosines)}
{word_lines("coeffs", coeffs)}
{byte_lines("ref", reference)}
    .align 4
{word_lines("mv", motion)}
frame:  .space {width * height}
tmp:    .space {64 * 4}
    .text
main:
    # ---- IDCT over coefficient blocks ------------------------------------
    li   r4, 0
    li   r5, {n_idct}
idct_loop:
    la   r6, coeffs
    li   r7, 256
    mul  r8, r4, r7
    add  r6, r6, r8         # block base
    la   r9, costab
    la   r10, tmp
    # rows: tmp[x][v] = sum_u coef[x][u] * cos[u][v]
    li   r11, 0             # x
irow_loop:
    li   r12, 0             # v
iv_loop:
    li   r13, 0             # acc
    li   r14, 0             # u
iu_loop:
    slli r15, r11, 3
    add  r15, r15, r14
    slli r15, r15, 2
    add  r15, r6, r15
    lw   r16, 0(r15)        # coef[x][u]
    beq  r16, r0, iu_next   # sparse skip (real decoders do this)
    slli r15, r14, 3
    add  r15, r15, r12
    slli r15, r15, 2
    add  r15, r9, r15
    lw   r17, 0(r15)
    mul  r16, r16, r17
    add  r13, r13, r16
iu_next:
    addi r14, r14, 1
    li   r15, 8
    blt  r14, r15, iu_loop
    srai r13, r13, 10
    slli r15, r11, 3
    add  r15, r15, r12
    slli r15, r15, 2
    add  r15, r10, r15
    sw   r13, 0(r15)
    addi r12, r12, 1
    li   r15, 8
    blt  r12, r15, iv_loop
    addi r11, r11, 1
    li   r15, 8
    blt  r11, r15, irow_loop
    addi r4, r4, 1
    blt  r4, r5, idct_loop

    # ---- motion compensation ----------------------------------------------
    li   r4, 0
    li   r5, {n_mc}
mc_loop:
    la   r6, mv
    slli r7, r4, 4
    add  r6, r6, r7
    lw   r8, 0(r6)          # sx
    lw   r9, 4(r6)          # sy
    lw   r10, 8(r6)         # dx
    lw   r11, 12(r6)        # dy
    li   r12, 0             # row
mc_row:
    li   r13, 0             # col
mc_col:
    # src pixel (sx+col, sy+row), plus half-pel neighbour
    add  r14, r9, r12
    li   r15, {width}
    mul  r14, r14, r15
    add  r14, r14, r8
    add  r14, r14, r13
    la   r16, ref
    add  r16, r16, r14
    lbu  r17, 0(r16)
    lbu  r18, 1(r16)        # half-pel average
    add  r17, r17, r18
    addi r17, r17, 1
    srli r17, r17, 1
    # blend into frame with saturation
    add  r14, r11, r12
    li   r15, {width}
    mul  r14, r14, r15
    add  r14, r14, r10
    add  r14, r14, r13
    la   r16, frame
    add  r16, r16, r14
    lbu  r18, 0(r16)
    add  r17, r17, r18
    li   r19, 255
    ble  r17, r19, mc_sat
    add  r17, r19, r0
mc_sat:
    sb   r17, 0(r16)
    addi r13, r13, 1
    li   r19, 16
    blt  r13, r19, mc_col
    addi r12, r12, 1
    blt  r12, r19, mc_row
    addi r4, r4, 1
    blt  r4, r5, mc_loop
    halt
"""


def g721_source():
    """G.721 ADPCM: adaptive 6-tap predictor with sign-sign LMS update."""
    rng = Lcg(0x6721)
    n = 1300
    samples = []
    phase = 0.0
    for _ in range(n):
        phase += 0.09 + 0.04 * (rng.below(64) / 64.0)
        samples.append(int(5000 * math.sin(phase)) + rng.below(500) - 250)

    return f"""
    .data
{word_lines("pcm", samples)}
hist:   .space {6 * 4}
coef:   .space {6 * 4}
codes:  .space {n}
    .text
main:
    la   r4, pcm
    la   r5, hist
    la   r6, coef
    la   r7, codes
    li   r8, 0              # i
    li   r9, {n}
samp_loop:
    # predict: sum coef[k] * hist[k] >> 8
    li   r10, 0             # acc
    li   r11, 0             # k
tap_loop:
    slli r12, r11, 2
    add  r13, r5, r12
    lw   r14, 0(r13)
    add  r13, r6, r12
    lw   r15, 0(r13)
    mul  r14, r14, r15
    add  r10, r10, r14
    addi r11, r11, 1
    li   r12, 6
    blt  r11, r12, tap_loop
    srai r10, r10, 8        # prediction
    lw   r16, 0(r4)         # sample
    sub  r17, r16, r10      # error
    # 4-bit quantization of error by shifting
    li   r18, 0
    bgez r17, g_pos
    li   r18, 8
    neg  r17, r17
g_pos:
    srai r19, r17, 6
    li   r20, 7
    ble  r19, r20, g_clamped
    add  r19, r20, r0
g_clamped:
    or   r18, r18, r19
    sb   r18, 0(r7)
    # sign-sign LMS: coef[k] += sign(err) * sign(hist[k]) * 2
    li   r11, 0
upd_loop:
    slli r12, r11, 2
    add  r13, r5, r12
    lw   r14, 0(r13)        # hist[k]
    add  r15, r6, r12
    lw   r20, 0(r15)
    # step = +2 if signs equal else -2
    xor  r21, r14, r17
    andi r22, r18, 8
    beq  r22, r0, upd_sign
    xori r21, r21, -2147483648
upd_sign:
    bltz r21, upd_minus
    addi r20, r20, 2
    j    upd_store
upd_minus:
    addi r20, r20, -2
upd_store:
    # clamp coefficients to a stable range
    li   r22, 320
    ble  r20, r22, upd_hi
    add  r20, r22, r0
upd_hi:
    li   r22, -320
    bge  r20, r22, upd_wr
    add  r20, r22, r0
upd_wr:
    sw   r20, 0(r15)
    addi r11, r11, 1
    li   r12, 6
    blt  r11, r12, upd_loop
    # shift history, insert reconstructed sample
    li   r11, 5
hist_loop:
    slli r12, r11, 2
    add  r13, r5, r12
    lw   r14, -4(r13)
    sw   r14, 0(r13)
    addi r11, r11, -1
    bgtz r11, hist_loop
    # reconstructed = prediction + dequantized error
    andi r21, r18, 7
    slli r21, r21, 6
    andi r22, r18, 8
    beq  r22, r0, rec_add
    sub  r21, r10, r21
    j    rec_store
rec_add:
    add  r21, r10, r21
rec_store:
    sw   r21, 0(r5)
    addi r4, r4, 4
    addi r7, r7, 1
    addi r8, r8, 1
    blt  r8, r9, samp_loop
    halt
"""


def epic_source():
    """EPIC-style wavelet pyramid: separable 3-tap filtering, 3 levels."""
    rng = Lcg(0xE61C)
    size = 64
    image = rng.bytes(size * size)

    return f"""
    .data
{byte_lines("img", image)}
    .align 4
pyr:    .space {size * size * 4}
low:    .space {size * size * 4}
    .text
main:
    # widen bytes into the working plane
    la   r4, img
    la   r5, pyr
    li   r6, 0
    li   r7, {size * size}
widen_loop:
    lbu  r8, 0(r4)
    sw   r8, 0(r5)
    addi r4, r4, 1
    addi r5, r5, 4
    addi r6, r6, 1
    blt  r6, r7, widen_loop

    li   r9, {size}         # current level size
    li   r26, 3             # levels
level_loop:
    # ---- horizontal 3-tap lowpass, subsample by 2 into `low` ------------
    la   r5, pyr
    la   r10, low
    li   r11, 0             # row
h_row:
    li   r12, 0             # output col
h_col:
    slli r13, r12, 1        # input col = 2*oc
    li   r14, {size}
    mul  r15, r11, r14
    add  r15, r15, r13
    slli r15, r15, 2
    add  r15, r5, r15
    lw   r16, 0(r15)        # centre
    slli r16, r16, 1
    bne  r13, r0, h_left
    li   r17, 0
    j    h_right
h_left:
    lw   r17, -4(r15)
h_right:
    add  r16, r16, r17
    lw   r17, 4(r15)
    add  r16, r16, r17
    srai r16, r16, 2
    srli r18, r9, 1
    mul  r19, r11, r18
    add  r19, r19, r12
    slli r19, r19, 2
    add  r19, r10, r19
    sw   r16, 0(r19)
    addi r12, r12, 1
    blt  r12, r18, h_col
    addi r11, r11, 1
    blt  r11, r9, h_row

    # ---- vertical 3-tap lowpass, subsample by 2 back into `pyr` ----------
    srli r18, r9, 1         # half width
    li   r11, 0             # output row
v_row:
    li   r12, 0             # col
v_col:
    slli r13, r11, 1        # input row
    mul  r15, r13, r18
    add  r15, r15, r12
    slli r15, r15, 2
    add  r15, r10, r15
    lw   r16, 0(r15)
    slli r16, r16, 1
    beq  r13, r0, v_top
    slli r20, r18, 2
    sub  r21, r15, r20
    lw   r17, 0(r21)
    j    v_bottom
v_top:
    li   r17, 0
v_bottom:
    add  r16, r16, r17
    slli r20, r18, 2
    add  r21, r15, r20
    lw   r17, 0(r21)
    add  r16, r16, r17
    srai r16, r16, 2
    mul  r19, r11, r18
    add  r19, r19, r12
    slli r19, r19, 2
    add  r19, r5, r19
    sw   r16, 0(r19)
    addi r12, r12, 1
    blt  r12, r18, v_col
    addi r11, r11, 1
    srli r20, r9, 1
    blt  r11, r20, v_row

    srli r9, r9, 1          # next pyramid level
    addi r26, r26, -1
    bgtz r26, level_loop
    halt
"""


def pegwit_source():
    """Public-key arithmetic core: multi-precision modular multiply.

    16-limb (512-bit) schoolbook multiplication with carry propagation
    and a shift-subtract reduction sweep — the hot loop of pegwit-style
    elliptic/exponentiation code.
    """
    rng = Lcg(0x9E6)
    limbs = 16
    n_ops = 22
    operands = rng.words(2 * limbs * n_ops)
    modulus = rng.words(limbs)
    modulus[-1] |= 0x40000000  # keep the modulus large

    return f"""
    .data
{word_lines("ops", operands)}
{word_lines("modu", modulus)}
prod:   .space {(2 * limbs + 1) * 4}
    .text
main:
    li   r4, 0              # operation index
    li   r5, {n_ops}
op_loop:
    la   r6, ops
    li   r7, {2 * limbs * 4}
    mul  r8, r4, r7
    add  r6, r6, r8         # a = base, b = base + limbs*4
    addi r7, r6, {limbs * 4}
    # clear product
    la   r9, prod
    li   r10, 0
clr_loop:
    slli r11, r10, 2
    add  r11, r9, r11
    sw   r0, 0(r11)
    addi r10, r10, 1
    li   r11, {2 * limbs + 1}
    blt  r10, r11, clr_loop
    # schoolbook multiply with 16-bit half-limbs to keep carries exact
    li   r10, 0             # i
mul_i:
    slli r12, r10, 2
    add  r12, r6, r12
    lw   r13, 0(r12)        # a[i]
    srli r14, r13, 16       # a_hi
    li   r28, 65535
    and  r13, r13, r28      # a_lo
    li   r15, 0             # j
mul_j:
    slli r16, r15, 2
    add  r16, r7, r16
    lw   r17, 0(r16)        # b[j]
    srli r18, r17, 16       # b_hi
    and  r17, r17, r28      # b_lo
    # partial products
    mul  r19, r13, r17      # lo*lo
    mul  r20, r14, r18      # hi*hi
    mul  r21, r13, r18      # lo*hi
    mul  r22, r14, r17      # hi*lo
    add  r21, r21, r22      # mid
    # accumulate into prod[i+j] and prod[i+j+1]
    add  r23, r10, r15
    slli r23, r23, 2
    add  r23, r9, r23
    lw   r24, 0(r23)
    add  r24, r24, r19
    slli r25, r21, 16
    add  r24, r24, r25
    sw   r24, 0(r23)
    bgeu r24, r19, no_carry1
    lw   r25, 4(r23)
    addi r25, r25, 1
    sw   r25, 4(r23)
no_carry1:
    lw   r25, 4(r23)
    srli r27, r21, 16
    add  r25, r25, r27
    add  r25, r25, r20
    sw   r25, 4(r23)
    addi r15, r15, 1
    li   r16, {limbs}
    blt  r15, r16, mul_j
    addi r10, r10, 1
    li   r16, {limbs}
    blt  r10, r16, mul_i
    # crude reduction: subtract shifted modulus while top limb nonzero
    li   r10, {2 * limbs - 1}
red_loop:
    slli r11, r10, 2
    add  r11, r9, r11
    lw   r12, 0(r11)
    beq  r12, r0, red_next
    # prod[limb] -= modu[limb - 16] style sweep (approximate reduction)
    li   r13, 0
red_sub:
    slli r14, r13, 2
    la   r15, modu
    add  r15, r15, r14
    lw   r16, 0(r15)
    add  r17, r10, r13
    addi r17, r17, {-limbs}
    slli r17, r17, 2
    add  r17, r9, r17
    lw   r18, 0(r17)
    sub  r18, r18, r16
    sw   r18, 0(r17)
    addi r13, r13, 1
    li   r14, {limbs}
    blt  r13, r14, red_sub
    srli r12, r12, 1
    sw   r12, 0(r11)
    bne  r12, r0, red_loop
red_next:
    addi r4, r4, 1
    blt  r4, r5, op_loop
    halt
"""


SPECS = [
    ("mpeg2dec", "media", "mediabench", mpeg2dec_source,
     "sparse integer IDCT and half-pel motion compensation"),
    ("g721", "media", "mediabench", g721_source,
     "adaptive-predictor ADPCM with sign-sign LMS"),
    ("epic", "media", "mediabench", epic_source,
     "separable wavelet pyramid decomposition"),
    ("pegwit", "media", "mediabench", pegwit_source,
     "multi-precision modular multiplication"),
]
