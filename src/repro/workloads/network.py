"""Networking kernels (MiBench stand-ins): dijkstra, patricia."""

from repro.workloads._support import Lcg, word_lines

_INF = 1 << 28


def dijkstra_source():
    """Shortest paths by O(V^2) Dijkstra over an adjacency matrix."""
    rng = Lcg(0xD1357)
    n = 36
    n_sources = 5
    matrix = []
    for row in range(n):
        for col in range(n):
            if row == col:
                matrix.append(0)
            elif rng.below(100) < 30:
                matrix.append(1 + rng.below(100))
            else:
                matrix.append(_INF)

    return f"""
    .data
{word_lines("adj", matrix)}
dist:   .space {n * 4}
seen:   .space {n * 4}
total:  .word 0
    .text
main:
    li   r4, 0              # source index
    li   r5, {n_sources}
src_loop:
    # initialise dist[] from the source's adjacency row, seen[] = 0
    la   r6, adj
    li   r7, {n * 4}
    mul  r8, r4, r7
    add  r6, r6, r8         # row base
    la   r9, dist
    la   r10, seen
    li   r11, 0
init_loop:
    slli r12, r11, 2
    add  r13, r6, r12
    lw   r14, 0(r13)
    add  r13, r9, r12
    sw   r14, 0(r13)
    add  r13, r10, r12
    sw   r0, 0(r13)
    addi r11, r11, 1
    li   r12, {n}
    blt  r11, r12, init_loop
    # mark source as settled
    slli r12, r4, 2
    add  r13, r10, r12
    li   r14, 1
    sw   r14, 0(r13)

    li   r15, 1             # settled count
main_loop:
    # select unsettled node with minimum distance
    li   r16, {_INF + 1}    # best distance
    li   r17, -1            # best node
    li   r11, 0
scan_loop:
    slli r12, r11, 2
    add  r13, r10, r12
    lw   r14, 0(r13)
    bne  r14, r0, scan_next
    add  r13, r9, r12
    lw   r14, 0(r13)
    bge  r14, r16, scan_next
    add  r16, r14, r0
    add  r17, r11, r0
scan_next:
    addi r11, r11, 1
    li   r12, {n}
    blt  r11, r12, scan_loop
    bltz r17, src_done      # disconnected remainder
    # settle best node
    slli r12, r17, 2
    add  r13, r10, r12
    li   r14, 1
    sw   r14, 0(r13)
    # relax neighbours of r17
    la   r6, adj
    li   r7, {n * 4}
    mul  r8, r17, r7
    add  r6, r6, r8
    li   r11, 0
relax_loop:
    slli r12, r11, 2
    add  r13, r6, r12
    lw   r14, 0(r13)        # w(best, j)
    li   r18, {_INF}
    bge  r14, r18, relax_next
    add  r14, r14, r16      # dist[best] + w
    add  r13, r9, r12
    lw   r18, 0(r13)
    bge  r14, r18, relax_next
    sw   r14, 0(r13)
relax_next:
    addi r11, r11, 1
    li   r12, {n}
    blt  r11, r12, relax_loop
    addi r15, r15, 1
    li   r12, {n}
    blt  r15, r12, main_loop
src_done:
    # accumulate a checksum of settled distances
    la   r9, dist
    li   r11, 0
    li   r19, 0
sum_loop:
    lw   r14, 0(r9)
    li   r18, {_INF}
    bge  r14, r18, sum_next
    add  r19, r19, r14
sum_next:
    addi r9, r9, 4
    addi r11, r11, 1
    li   r12, {n}
    blt  r11, r12, sum_loop
    la   r13, total
    lw   r14, 0(r13)
    add  r14, r14, r19
    sw   r14, 0(r13)
    addi r4, r4, 1
    blt  r4, r5, src_loop
    halt
"""


def patricia_source():
    """Digital search trie insert/lookup over 32-bit keys.

    Stand-in for MiBench ``patricia`` (routing-table longest-prefix
    structure): pointer chasing through a bit-indexed binary trie built
    from array-backed nodes.
    """
    rng = Lcg(0xA731)
    n_insert = 360
    n_lookup = 850
    inserts = rng.words(n_insert)
    # Half the lookups hit, half miss.
    lookups = []
    for i in range(n_lookup):
        if i % 2 == 0:
            lookups.append(inserts[rng.below(n_insert)])
        else:
            lookups.append(rng.next_u32() & 0x7FFFFFFF)

    return f"""
    .data
{word_lines("keys", inserts)}
{word_lines("queries", lookups)}
# node record: key, left, right (indices; 0 = null, node 0 unused)
nodes:  .space {3 * 4 * (n_insert + 2)}
nnodes: .word 1
hits:   .word 0
    .text
main:
    # --- build the trie --------------------------------------------------
    la   r4, keys
    li   r5, 0
    li   r6, {n_insert}
ins_loop:
    lw   r7, 0(r4)          # key
    la   r8, nodes
    la   r9, nnodes
    lw   r10, 0(r9)         # next free node index
    li   r11, 0             # current node index (0 = root slot)
    li   r12, 31            # bit position
ins_walk:
    # node address = nodes + cur*12
    li   r13, 12
    mul  r13, r11, r13
    add  r13, r8, r13
    beq  r11, r0, ins_root_check
    lw   r14, 0(r13)        # node key
    beq  r14, r7, ins_next  # duplicate
    j    ins_descend
ins_root_check:
    lw   r14, 0(r13)
    bne  r14, r0, ins_descend
    sw   r7, 0(r13)         # claim empty root
    j    ins_next
ins_descend:
    srl  r15, r7, r12
    andi r15, r15, 1
    beq  r15, r0, ins_left
    lw   r16, 8(r13)        # right child
    j    ins_step
ins_left:
    lw   r16, 4(r13)
ins_step:
    bne  r16, r0, ins_move
    # allocate new node r10 for this key
    li   r17, 12
    mul  r17, r10, r17
    la   r18, nodes
    add  r17, r18, r17
    sw   r7, 0(r17)
    sw   r0, 4(r17)
    sw   r0, 8(r17)
    beq  r15, r0, ins_link_left
    sw   r10, 8(r13)
    j    ins_alloc_done
ins_link_left:
    sw   r10, 4(r13)
ins_alloc_done:
    addi r10, r10, 1
    sw   r10, 0(r9)
    j    ins_next
ins_move:
    add  r11, r16, r0
    addi r12, r12, -1
    bgez r12, ins_walk
ins_next:
    addi r4, r4, 4
    addi r5, r5, 1
    blt  r5, r6, ins_loop

    # --- lookups ----------------------------------------------------------
    la   r4, queries
    li   r5, 0
    li   r6, {n_lookup}
    li   r19, 0             # hit count
look_loop:
    lw   r7, 0(r4)
    la   r8, nodes
    li   r11, 0
    li   r12, 31
look_walk:
    li   r13, 12
    mul  r13, r11, r13
    add  r13, r8, r13
    lw   r14, 0(r13)
    bne  r14, r7, look_descend
    addi r19, r19, 1        # found
    j    look_next
look_descend:
    srl  r15, r7, r12
    andi r15, r15, 1
    beq  r15, r0, look_left
    lw   r16, 8(r13)
    j    look_step
look_left:
    lw   r16, 4(r13)
look_step:
    beq  r16, r0, look_next # dead end: miss
    add  r11, r16, r0
    addi r12, r12, -1
    bgez r12, look_walk
look_next:
    addi r4, r4, 4
    addi r5, r5, 1
    blt  r5, r6, look_loop
    la   r20, hits
    sw   r19, 0(r20)
    halt
"""


SPECS = [
    ("dijkstra", "network", "mibench", dijkstra_source,
     "O(V^2) single-source shortest paths, multiple sources"),
    ("patricia", "network", "mibench", patricia_source,
     "bit-indexed trie insert and lookup (routing-table style)"),
]
