"""Security kernels (MiBench stand-ins): blowfish, rijndael, sha."""

from repro.workloads._support import Lcg, word_lines


def blowfish_source():
    """16-round Feistel cipher with four 256-entry S-boxes (Blowfish form).

    F(x) = ((S0[x>>24] + S1[x>>16 & ff]) ^ S2[x>>8 & ff]) + S3[x & ff]
    """
    rng = Lcg(0xB10F)
    p_array = rng.words(18)
    sboxes = rng.words(4 * 256)
    n_blocks = 220
    blocks = rng.words(2 * n_blocks)

    return f"""
    .data
{word_lines("parr", p_array)}
{word_lines("sbox", sboxes)}
{word_lines("blocks", blocks)}
    .text
main:
    la   r4, blocks
    li   r5, 0
    li   r6, {n_blocks}
    la   r7, parr
    la   r8, sbox
blk_loop:
    lw   r9, 0(r4)          # L
    lw   r10, 4(r4)         # R
    li   r11, 0             # round
    li   r12, 16
round_loop:
    # L ^= P[round]
    slli r13, r11, 2
    add  r13, r7, r13
    lw   r14, 0(r13)
    xor  r9, r9, r14
    # F(L)
    srli r15, r9, 24
    slli r15, r15, 2
    add  r15, r8, r15
    lw   r16, 0(r15)        # S0[a]
    srli r15, r9, 16
    andi r15, r15, 255
    slli r15, r15, 2
    add  r15, r8, r15
    lw   r17, 1024(r15)     # S1[b]
    add  r16, r16, r17
    srli r15, r9, 8
    andi r15, r15, 255
    slli r15, r15, 2
    add  r15, r8, r15
    lw   r17, 2048(r15)     # S2[c]
    xor  r16, r16, r17
    andi r15, r9, 255
    slli r15, r15, 2
    add  r15, r8, r15
    lw   r17, 3072(r15)     # S3[d]
    add  r16, r16, r17
    xor  r10, r10, r16      # R ^= F(L)
    # swap L, R
    add  r18, r9, r0
    add  r9, r10, r0
    add  r10, r18, r0
    addi r11, r11, 1
    blt  r11, r12, round_loop
    # final: undo last swap, xor with P[16], P[17]
    add  r18, r9, r0
    add  r9, r10, r0
    add  r10, r18, r0
    lw   r14, 64(r7)
    xor  r10, r10, r14
    lw   r14, 68(r7)
    xor  r9, r9, r14
    sw   r9, 0(r4)
    sw   r10, 4(r4)
    addi r4, r4, 8
    addi r5, r5, 1
    blt  r5, r6, blk_loop
    halt
"""


def rijndael_source():
    """AES-style rounds over a 4-word state with one T-table.

    Each round: w_i = T[b0] ^ rotl8(T[b1]) ^ rotl16(T[b2]) ^ rotl24(T[b3])
    ^ roundkey, bytes taken diagonally as in AES's ShiftRows.
    """
    rng = Lcg(0xAE5)
    ttab = rng.words(256)
    round_keys = rng.words(4 * 11)
    n_blocks = 44
    blocks = rng.words(4 * n_blocks)

    return f"""
    .data
{word_lines("ttab", ttab)}
{word_lines("rkeys", round_keys)}
{word_lines("blocks", blocks)}
state:  .space 32
    .text
main:
    la   r4, blocks
    li   r5, 0
    li   r6, {n_blocks}
    la   r7, ttab
    la   r28, state
blk_loop:
    lw   r9, 0(r4)
    lw   r10, 4(r4)
    lw   r11, 8(r4)
    lw   r12, 12(r4)
    la   r8, rkeys
    li   r13, 0             # round
    li   r14, 10
round_loop:
    sw   r9, 0(r28)         # spill state so columns can be picked
    sw   r10, 4(r28)
    sw   r11, 8(r28)
    sw   r12, 12(r28)
    li   r15, 0             # column
col_loop:
    # bytes from columns c, c+1, c+2, c+3 (mod 4) -- ShiftRows diagonal
    slli r16, r15, 2
    add  r16, r28, r16
    lw   r17, 0(r16)        # w[c]
    srli r18, r17, 24
    slli r18, r18, 2
    add  r18, r7, r18
    lw   r19, 0(r18)        # acc = T[b0]
    addi r16, r15, 1
    andi r16, r16, 3
    slli r16, r16, 2
    add  r16, r28, r16
    lw   r17, 0(r16)
    srli r18, r17, 16
    andi r18, r18, 255
    slli r18, r18, 2
    add  r18, r7, r18
    lw   r20, 0(r18)
    slli r21, r20, 8        # rotl8
    srli r20, r20, 24
    or   r20, r20, r21
    xor  r19, r19, r20
    addi r16, r15, 2
    andi r16, r16, 3
    slli r16, r16, 2
    add  r16, r28, r16
    lw   r17, 0(r16)
    srli r18, r17, 8
    andi r18, r18, 255
    slli r18, r18, 2
    add  r18, r7, r18
    lw   r20, 0(r18)
    slli r21, r20, 16       # rotl16
    srli r20, r20, 16
    or   r20, r20, r21
    xor  r19, r19, r20
    addi r16, r15, 3
    andi r16, r16, 3
    slli r16, r16, 2
    add  r16, r28, r16
    lw   r17, 0(r16)
    andi r18, r17, 255
    slli r18, r18, 2
    add  r18, r7, r18
    lw   r20, 0(r18)
    slli r21, r20, 24       # rotl24
    srli r20, r20, 8
    or   r20, r20, r21
    xor  r19, r19, r20
    # add round key
    slli r16, r15, 2
    add  r16, r8, r16
    lw   r20, 0(r16)
    xor  r19, r19, r20
    # write back into the live registers via a rotating pick
    beq  r15, r0, col0
    li   r21, 1
    beq  r15, r21, col1
    li   r21, 2
    beq  r15, r21, col2
    add  r12, r19, r0
    j    col_next
col0:
    add  r9, r19, r0
    j    col_next
col1:
    add  r10, r19, r0
    j    col_next
col2:
    add  r11, r19, r0
col_next:
    addi r15, r15, 1
    li   r21, 4
    blt  r15, r21, col_loop
    addi r8, r8, 16         # next round key group
    addi r13, r13, 1
    blt  r13, r14, round_loop
    sw   r9, 0(r4)
    sw   r10, 4(r4)
    sw   r11, 8(r4)
    sw   r12, 12(r4)
    addi r4, r4, 16
    addi r5, r5, 1
    blt  r5, r6, blk_loop
    halt
"""


def sha_source():
    """SHA-1 message schedule and compression rounds over random blocks."""
    rng = Lcg(0x5A1)
    n_blocks = 36
    message = rng.words(16 * n_blocks)

    return f"""
    .data
{word_lines("msg", message)}
sched:  .space {80 * 4}
digest: .word 1732584193, 4023233417, 2562383102, 271733878, 3285377520
    .text
main:
    la   r4, msg
    li   r5, 0
    li   r6, {n_blocks}
blk_loop:
    # ---- message schedule: W[0..15] copied, W[16..79] expanded ----------
    la   r7, sched
    li   r8, 0
    li   r9, 16
copy_loop:
    slli r10, r8, 2
    add  r11, r4, r10
    lw   r12, 0(r11)
    add  r11, r7, r10
    sw   r12, 0(r11)
    addi r8, r8, 1
    blt  r8, r9, copy_loop
    li   r9, 80
expand_loop:
    slli r10, r8, 2
    add  r11, r7, r10
    lw   r12, -12(r11)      # W[t-3]
    lw   r13, -32(r11)      # W[t-8]
    xor  r12, r12, r13
    lw   r13, -56(r11)      # W[t-14]
    xor  r12, r12, r13
    lw   r13, -64(r11)      # W[t-16]
    xor  r12, r12, r13
    slli r13, r12, 1        # rotl1
    srli r12, r12, 31
    or   r12, r12, r13
    sw   r12, 0(r11)
    addi r8, r8, 1
    blt  r8, r9, expand_loop

    # ---- compression ------------------------------------------------------
    la   r14, digest
    lw   r15, 0(r14)        # a
    lw   r16, 4(r14)        # b
    lw   r17, 8(r14)        # c
    lw   r18, 12(r14)       # d
    lw   r19, 16(r14)       # e
    li   r8, 0
round_loop:
    # f and k by round quarter
    li   r9, 20
    blt  r8, r9, f_ch
    li   r9, 40
    blt  r8, r9, f_par1
    li   r9, 60
    blt  r8, r9, f_maj
    # parity 2
    xor  r20, r16, r17
    xor  r20, r20, r18
    li   r21, -899497514
    j    f_done
f_ch:
    and  r20, r16, r17
    not  r22, r16
    and  r22, r22, r18
    or   r20, r20, r22
    li   r21, 1518500249
    j    f_done
f_par1:
    xor  r20, r16, r17
    xor  r20, r20, r18
    li   r21, 1859775393
    j    f_done
f_maj:
    and  r20, r16, r17
    and  r22, r16, r18
    or   r20, r20, r22
    and  r22, r17, r18
    or   r20, r20, r22
    li   r21, -1894007588
f_done:
    slli r22, r15, 5        # rotl5(a)
    srli r23, r15, 27
    or   r22, r22, r23
    add  r22, r22, r20
    add  r22, r22, r19
    add  r22, r22, r21
    slli r23, r8, 2
    add  r23, r7, r23
    lw   r24, 0(r23)
    add  r22, r22, r24      # temp
    add  r19, r18, r0       # e = d
    add  r18, r17, r0       # d = c
    slli r23, r16, 30       # c = rotl30(b)
    srli r17, r16, 2
    or   r17, r17, r23
    add  r16, r15, r0       # b = a
    add  r15, r22, r0       # a = temp
    addi r8, r8, 1
    li   r9, 80
    blt  r8, r9, round_loop
    # fold into digest
    lw   r20, 0(r14)
    add  r20, r20, r15
    sw   r20, 0(r14)
    lw   r20, 4(r14)
    add  r20, r20, r16
    sw   r20, 4(r14)
    lw   r20, 8(r14)
    add  r20, r20, r17
    sw   r20, 8(r14)
    lw   r20, 12(r14)
    add  r20, r20, r18
    sw   r20, 12(r14)
    lw   r20, 16(r14)
    add  r20, r20, r19
    sw   r20, 16(r14)
    addi r4, r4, 64
    addi r5, r5, 1
    blt  r5, r6, blk_loop
    halt
"""


SPECS = [
    ("blowfish", "security", "mibench", blowfish_source,
     "16-round Feistel cipher with S-box lookups"),
    ("rijndael", "security", "mibench", rijndael_source,
     "AES-style T-table rounds"),
    ("sha", "security", "mibench", sha_source,
     "SHA-1 schedule expansion and compression"),
]
