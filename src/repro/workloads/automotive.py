"""Automotive/industrial-control kernels (MiBench stand-ins):
basicmath, bitcount, qsort, susan."""

from repro.workloads._support import Lcg, byte_lines, double_lines, word_lines


def basicmath_source():
    """Cubic-root solving (Newton), integer square roots, angle conversion.

    Mirrors MiBench ``basicmath``: simple FP math a vehicle controller
    would run, with no fancy data structures.
    """
    rng = Lcg(0xB451C)
    n_cubics = 280
    coeffs = []
    for _ in range(n_cubics):
        coeffs.extend([round(v, 6) for v in rng.doubles(3, -3.0, 3.0)])
    n_isqrt = 380
    isq_in = rng.words(n_isqrt, 1 << 26)
    n_deg = 600
    degrees = [round(v, 6) for v in rng.doubles(n_deg, 0.0, 360.0)]

    return f"""
    .data
{double_lines("coeffs", coeffs)}
roots:  .space {n_cubics * 8}
{word_lines("isq_in", isq_in)}
isq_out: .space {n_isqrt * 4}
{double_lines("degs", degrees)}
rads:   .space {n_deg * 8}
    .text
main:
    # --- cubic roots by Newton iteration -------------------------------
    la   r4, coeffs
    la   r10, roots
    li   r5, 0
    li   r6, {n_cubics}
cubic_loop:
    flw  f1, 0(r4)          # a
    flw  f2, 8(r4)          # b
    flw  f3, 16(r4)         # c
    fli  f4, 1.0            # x
    fli  f8, 3.0
    li   r7, 0
    li   r8, 12
newton:
    fadd f5, f4, f1         # ((x+a)x+b)x+c
    fmul f5, f5, f4
    fadd f5, f5, f2
    fmul f5, f5, f4
    fadd f5, f5, f3
    fmul f6, f8, f4         # (3x+2a)x+b
    fadd f7, f1, f1
    fadd f6, f6, f7
    fmul f6, f6, f4
    fadd f6, f6, f2
    fdiv f5, f5, f6
    fsub f4, f4, f5
    addi r7, r7, 1
    blt  r7, r8, newton
    fsw  f4, 0(r10)
    addi r10, r10, 8
    addi r4, r4, 24
    addi r5, r5, 1
    blt  r5, r6, cubic_loop

    # --- integer square roots (bit-by-bit) ------------------------------
    la   r4, isq_in
    la   r10, isq_out
    li   r5, 0
    li   r6, {n_isqrt}
isq_loop:
    lw   r7, 0(r4)          # x
    li   r8, 0              # res
    li   r9, 1073741824     # bit = 1 << 30
isq_shrink:
    bleu r9, r7, isq_bits
    srli r9, r9, 2
    bne  r9, r0, isq_shrink
isq_bits:
    beq  r9, r0, isq_done
    add  r11, r8, r9        # t = res + bit
    srli r8, r8, 1
    bltu r7, r11, isq_next
    sub  r7, r7, r11
    add  r8, r8, r9
isq_next:
    srli r9, r9, 2
    j    isq_bits
isq_done:
    sw   r8, 0(r10)
    addi r10, r10, 4
    addi r4, r4, 4
    addi r5, r5, 1
    blt  r5, r6, isq_loop

    # --- degrees to radians ---------------------------------------------
    la   r4, degs
    la   r10, rads
    li   r5, 0
    li   r6, {n_deg}
    fli  f9, 0.017453292519943295
deg_loop:
    flw  f1, 0(r4)
    fmul f1, f1, f9
    fsw  f1, 0(r10)
    addi r4, r4, 8
    addi r10, r10, 8
    addi r5, r5, 1
    blt  r5, r6, deg_loop
    halt
"""


def bitcount_source():
    """Population counts by Kernighan's loop and nibble-table lookup."""
    rng = Lcg(0xB17C)
    n = 640
    data = rng.words(n)
    table = [bin(v).count("1") for v in range(16)]

    return f"""
    .data
{word_lines("data", data)}
{word_lines("nibtab", table)}
counts: .space {2 * 4}
    .text
main:
    # --- method 1: Kernighan (clears lowest set bit) --------------------
    la   r4, data
    li   r5, 0              # index
    li   r6, {n}
    li   r7, 0              # total
k_loop:
    lw   r8, 0(r4)
k_inner:
    beq  r8, r0, k_next
    addi r9, r8, -1
    and  r8, r8, r9
    addi r7, r7, 1
    j    k_inner
k_next:
    addi r4, r4, 4
    addi r5, r5, 1
    blt  r5, r6, k_loop
    la   r10, counts
    sw   r7, 0(r10)

    # --- method 2: 4-bit table lookups ----------------------------------
    la   r4, data
    la   r11, nibtab
    li   r5, 0
    li   r7, 0
t_loop:
    lw   r8, 0(r4)
    li   r12, 0             # nibble index
    li   r13, 8
t_inner:
    andi r9, r8, 15
    slli r9, r9, 2
    add  r9, r11, r9
    lw   r9, 0(r9)
    add  r7, r7, r9
    srli r8, r8, 4
    addi r12, r12, 1
    blt  r12, r13, t_inner
t_next:
    addi r4, r4, 4
    addi r5, r5, 1
    blt  r5, r6, t_loop
    la   r10, counts
    sw   r7, 4(r10)
    halt
"""


def qsort_source():
    """Iterative quicksort (Lomuto partition, explicit stack)."""
    rng = Lcg(0x5047)
    n = 1024
    data = rng.words(n, 1 << 20)

    return f"""
    .data
{word_lines("arr", data)}
nelem:  .word {n}
stack:  .space 4096
    .text
main:
    la   r4, arr
    la   r5, stack          # stack pointer (grows up, pairs of lo,hi)
    li   r6, 0              # lo = 0
    li   r7, {n - 1}        # hi = n-1
    sw   r6, 0(r5)
    sw   r7, 4(r5)
    addi r5, r5, 8
qs_loop:
    la   r8, stack
    bleu r5, r8, qs_done    # stack empty?
    addi r5, r5, -8
    lw   r6, 0(r5)          # lo
    lw   r7, 4(r5)          # hi
    bge  r6, r7, qs_loop
    # Lomuto partition: pivot = arr[hi]
    slli r9, r7, 2
    add  r9, r4, r9
    lw   r10, 0(r9)         # pivot
    addi r11, r6, -1        # i
    add  r12, r6, r0        # j
part_loop:
    bge  r12, r7, part_done
    slli r13, r12, 2
    add  r13, r4, r13
    lw   r14, 0(r13)        # arr[j]
    bgt  r14, r10, part_skip
    addi r11, r11, 1
    slli r15, r11, 2
    add  r15, r4, r15
    lw   r16, 0(r15)        # swap arr[i], arr[j]
    sw   r14, 0(r15)
    sw   r16, 0(r13)
part_skip:
    addi r12, r12, 1
    j    part_loop
part_done:
    addi r11, r11, 1        # p = i+1
    slli r15, r11, 2
    add  r15, r4, r15
    lw   r16, 0(r15)        # swap arr[p], arr[hi]
    lw   r17, 0(r9)
    sw   r17, 0(r15)
    sw   r16, 0(r9)
    # push (lo, p-1) and (p+1, hi)
    addi r13, r11, -1
    sw   r6, 0(r5)
    sw   r13, 4(r5)
    addi r5, r5, 8
    addi r13, r11, 1
    sw   r13, 0(r5)
    sw   r7, 4(r5)
    addi r5, r5, 8
    j    qs_loop
qs_done:
    halt
"""


def susan_source():
    """SUSAN-style image smoothing: thresholded cross-neighbourhood mean.

    The image is large enough (72x48) that the sweep's cache behaviour is
    capacity-driven across the paper's 256B-16KB range rather than pure
    conflict noise.
    """
    rng = Lcg(0x5054)
    width, height = 72, 48
    image = rng.bytes(width * height)
    threshold = 24

    # The cross-shaped window is unrolled into five distinct static
    # loads, exactly as a compiler emits fixed-offset neighbourhood code;
    # each then carries a clean per-pixel stride for the profiler.
    neighbour_checks = []
    for tag, offset in (("n", -width), ("w", -1), ("c", 0), ("e", 1),
                        ("s", width)):
        neighbour_checks.append(f"""\
    lbu  r18, {offset}(r11)
    sub  r19, r18, r12
    bge  r19, r0, win_abs_{tag}
    neg  r19, r19
win_abs_{tag}:
    bge  r19, r20, win_skip_{tag}
    add  r13, r13, r18
    addi r14, r14, 1
win_skip_{tag}:""")
    window_code = "\n".join(neighbour_checks)
    return f"""
    .data
{byte_lines("img", image)}
    .align 4
out:    .space {width * height}
    .text
main:
    la   r4, img
    la   r5, out
    li   r20, {threshold}
    li   r6, 1              # y
    li   r7, {height - 1}
row_loop:
    li   r8, 1              # x
    li   r9, {width - 1}
col_loop:
    # centre pixel address = img + y*width + x
    li   r10, {width}
    mul  r10, r6, r10
    add  r10, r10, r8
    add  r11, r4, r10
    lbu  r12, 0(r11)        # centre brightness
    li   r13, 0             # sum
    li   r14, 0             # count
{window_code}
    # output = sum / count (count >= 1: centre always passes)
    div  r21, r13, r14
    add  r22, r5, r10
    sb   r21, 0(r22)
    addi r8, r8, 1
    blt  r8, r9, col_loop
    addi r6, r6, 1
    blt  r6, r7, row_loop
    halt
"""


SPECS = [
    ("basicmath", "automotive", "mibench", basicmath_source,
     "Newton cubic roots, integer sqrt, angle conversion"),
    ("bitcount", "automotive", "mibench", bitcount_source,
     "bit counting by Kernighan loop and nibble tables"),
    ("qsort", "automotive", "mibench", qsort_source,
     "iterative quicksort with explicit stack"),
    ("susan", "automotive", "mibench", susan_source,
     "thresholded 3x3 image smoothing"),
]
