"""Telecommunication kernels (MiBench stand-ins): adpcm, crc32, fft, gsm."""

import math

from repro.workloads._support import Lcg, byte_lines, double_lines, word_lines

_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

_INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def _crc_table():
    table = []
    for n in range(256):
        crc = n
        for _ in range(8):
            crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
        table.append(crc)
    return table


def adpcm_source():
    """IMA ADPCM encoder over a synthetic speech-like waveform."""
    rng = Lcg(0xADC)
    n = 2400
    samples = []
    phase = 0.0
    for _ in range(n):
        phase += 0.05 + 0.02 * (rng.below(100) / 100.0)
        value = int(6000 * math.sin(phase) + 800 * math.sin(3.1 * phase))
        value += rng.below(400) - 200
        samples.append(max(-32768, min(32767, value)))

    return f"""
    .data
{word_lines("samples", samples)}
{word_lines("steptab", _STEP_TABLE)}
{word_lines("idxtab", _INDEX_TABLE)}
out:    .space {n}
    .text
main:
    la   r4, samples
    la   r5, out
    la   r6, steptab
    la   r7, idxtab
    li   r8, 0              # predicted
    li   r9, 0              # index
    li   r10, 0             # i
    li   r11, {n}
samp_loop:
    lw   r12, 0(r4)         # sample
    sub  r13, r12, r8       # diff
    li   r14, 0             # code
    bgez r13, adp_pos
    li   r14, 8             # sign bit
    neg  r13, r13
adp_pos:
    slli r15, r9, 2         # step = steptab[index]
    add  r15, r6, r15
    lw   r15, 0(r15)
    # quantize: 3 magnitude bits
    add  r16, r15, r0       # temp step
    li   r17, 0             # diffq accumulator
    bge  r13, r16, adp_b2
    j    adp_b1
adp_b2:
    ori  r14, r14, 4
    sub  r13, r13, r16
    add  r17, r17, r16
adp_b1:
    srli r16, r16, 1
    bge  r13, r16, adp_b1h
    j    adp_b0
adp_b1h:
    ori  r14, r14, 2
    sub  r13, r13, r16
    add  r17, r17, r16
adp_b0:
    srli r16, r16, 1
    bge  r13, r16, adp_b0h
    j    adp_upd
adp_b0h:
    ori  r14, r14, 1
    add  r17, r17, r16
adp_upd:
    srli r16, r15, 3        # step >> 3 rounding term
    add  r17, r17, r16
    andi r18, r14, 8        # apply sign to predictor update
    beq  r18, r0, adp_addp
    sub  r8, r8, r17
    j    adp_clamp
adp_addp:
    add  r8, r8, r17
adp_clamp:
    li   r18, 32767
    ble  r8, r18, adp_cl2
    add  r8, r18, r0
adp_cl2:
    li   r18, -32768
    bge  r8, r18, adp_idx
    add  r8, r18, r0
adp_idx:
    andi r18, r14, 15       # index += idxtab[code]
    slli r18, r18, 2
    add  r18, r7, r18
    lw   r18, 0(r18)
    add  r9, r9, r18
    bgez r9, adp_ic2
    li   r9, 0
adp_ic2:
    li   r18, 88
    ble  r9, r18, adp_emit
    add  r9, r18, r0
adp_emit:
    sb   r14, 0(r5)
    addi r4, r4, 4
    addi r5, r5, 1
    addi r10, r10, 1
    blt  r10, r11, samp_loop
    halt
"""


def crc32_source():
    """Table-driven CRC-32 over a byte buffer."""
    rng = Lcg(0xC3C)
    n = 9 * 1024
    buffer = rng.bytes(n)

    return f"""
    .data
{word_lines("crctab", _crc_table())}
{byte_lines("buf", buffer)}
    .align 4
result: .word 0
    .text
main:
    la   r4, buf
    la   r5, crctab
    li   r6, 0              # i
    li   r7, {n}
    li   r8, -1             # crc = 0xffffffff
byte_loop:
    lbu  r9, 0(r4)
    xor  r10, r8, r9
    andi r10, r10, 255
    slli r10, r10, 2
    add  r10, r5, r10
    lw   r10, 0(r10)
    srli r8, r8, 8
    xor  r8, r8, r10
    addi r4, r4, 1
    addi r6, r6, 1
    blt  r6, r7, byte_loop
    not  r8, r8
    la   r9, result
    sw   r8, 0(r9)
    halt
"""


def fft_source():
    """Iterative radix-2 FFT, 256 complex points, three signals."""
    rng = Lcg(0xFF7)
    n = 256
    levels = 8
    signals = []
    for s in range(3):
        phase = 0.0
        for _ in range(n):
            phase += 0.19 + 0.11 * s
            signals.append(round(math.sin(phase)
                                 + 0.5 * math.sin(2.7 * phase + s), 9))
    twiddles = []
    for k in range(n // 2):
        angle = -2.0 * math.pi * k / n
        twiddles.append(round(math.cos(angle), 12))
        twiddles.append(round(math.sin(angle), 12))
    bitrev = [int(format(i, f"0{levels}b")[::-1], 2) for i in range(n)]

    return f"""
    .data
{double_lines("signals", signals)}
{double_lines("twid", twiddles)}
{word_lines("bitrev", bitrev)}
re:     .space {n * 8}
im:     .space {n * 8}
    .text
main:
    li   r4, 0              # signal index
    li   r5, 3
sig_loop:
    # ---- bit-reversed copy into working arrays (imag = 0) ---------------
    la   r6, signals
    li   r7, {n * 8}
    mul  r8, r4, r7
    add  r6, r6, r8
    la   r9, re
    la   r10, im
    la   r11, bitrev
    li   r12, 0
copy_loop:
    slli r13, r12, 2
    add  r13, r11, r13
    lw   r14, 0(r13)        # rev index
    slli r15, r14, 3
    add  r15, r6, r15
    flw  f1, 0(r15)
    slli r15, r12, 3
    add  r16, r9, r15
    fsw  f1, 0(r16)
    add  r16, r10, r15
    fli  f2, 0.0
    fsw  f2, 0(r16)
    addi r12, r12, 1
    li   r13, {n}
    blt  r12, r13, copy_loop

    # ---- butterfly stages -------------------------------------------------
    li   r17, 1             # half = 1, doubles each stage
stage_loop:
    slli r18, r17, 1        # span = 2*half
    li   r19, 0             # group start
group_loop:
    li   r20, 0             # j within group
bfly_loop:
    # twiddle index = j * (n / span)
    li   r21, {n}
    div  r21, r21, r18
    mul  r21, r21, r20
    slli r21, r21, 4        # *16 bytes per complex
    la   r22, twid
    add  r22, r22, r21
    flw  f3, 0(r22)         # wr
    flw  f4, 8(r22)         # wi
    add  r23, r19, r20      # top index
    add  r24, r23, r17      # bottom index
    slli r25, r24, 3
    add  r26, r9, r25
    flw  f5, 0(r26)         # bottom re
    add  r27, r10, r25
    flw  f6, 0(r27)         # bottom im
    # t = w * bottom
    fmul f7, f3, f5
    fmul f8, f4, f6
    fsub f7, f7, f8         # tr
    fmul f8, f3, f6
    fmul f9, f4, f5
    fadd f8, f8, f9         # ti
    slli r25, r23, 3
    add  r28, r9, r25
    flw  f5, 0(r28)         # top re
    add  r25, r10, r25
    add  r25, r25, r0
    slli r21, r23, 3
    add  r21, r10, r21
    flw  f6, 0(r21)         # top im
    fsub f9, f5, f7
    fsw  f9, 0(r26)         # bottom = top - t
    fsub f9, f6, f8
    fsw  f9, 0(r27)
    fadd f9, f5, f7
    fsw  f9, 0(r28)         # top = top + t
    fadd f9, f6, f8
    fsw  f9, 0(r21)
    addi r20, r20, 1
    blt  r20, r17, bfly_loop
    add  r19, r19, r18
    li   r21, {n}
    blt  r19, r21, group_loop
    slli r17, r17, 1
    li   r21, {n}
    blt  r17, r21, stage_loop
    addi r4, r4, 1
    blt  r4, r5, sig_loop
    halt
"""


def gsm_source():
    """GSM-style frame analysis: autocorrelation plus lattice filtering."""
    rng = Lcg(0x65A)
    frame = 160
    n_frames = 5
    samples = []
    phase = 0.0
    for _ in range(frame * n_frames):
        phase += 0.11 + 0.05 * (rng.below(50) / 50.0)
        samples.append(int(4000 * math.sin(phase)) + rng.below(600) - 300)

    return f"""
    .data
{word_lines("speech", samples)}
acf:    .space {9 * 4}
refl:   .space {8 * 4}
work:   .space {frame * 4}
    .text
main:
    li   r4, 0              # frame index
    li   r5, {n_frames}
frame_loop:
    la   r6, speech
    li   r7, {frame * 4}
    mul  r8, r4, r7
    add  r6, r6, r8         # frame base

    # ---- autocorrelation for lags 0..8 ----------------------------------
    la   r9, acf
    li   r10, 0             # lag
    li   r11, 9
lag_loop:
    li   r12, 0             # acc
    add  r13, r10, r0       # i = lag
    li   r14, {frame}
corr_loop:
    slli r15, r13, 2
    add  r16, r6, r15
    lw   r17, 0(r16)        # x[i]
    sub  r18, r13, r10
    slli r18, r18, 2
    add  r18, r6, r18
    lw   r19, 0(r18)        # x[i-lag]
    mul  r17, r17, r19
    srai r17, r17, 10       # keep fixed-point range
    add  r12, r12, r17
    addi r13, r13, 1
    blt  r13, r14, corr_loop
    slli r15, r10, 2
    add  r15, r9, r15
    sw   r12, 0(r15)
    addi r10, r10, 1
    blt  r10, r11, lag_loop

    # ---- 8-stage lattice (Schur-like recursion on working copy) ---------
    la   r20, work
    li   r13, 0
    li   r14, {frame}
copy_loop:
    slli r15, r13, 2
    add  r16, r6, r15
    lw   r17, 0(r16)
    add  r16, r20, r15
    sw   r17, 0(r16)
    addi r13, r13, 1
    blt  r13, r14, copy_loop
    la   r21, refl
    li   r10, 0             # stage
    li   r11, 8
stage_loop:
    # reflection coefficient from acf ratio (bounded)
    slli r15, r10, 2
    add  r16, r9, r15
    lw   r17, 4(r16)        # acf[stage+1]
    lw   r18, 0(r16)        # acf[stage]
    beq  r18, r0, refl_zero
    slli r17, r17, 8
    div  r19, r17, r18
    j    refl_store
refl_zero:
    li   r19, 0
refl_store:
    add  r16, r21, r15
    sw   r19, 0(r16)
    # filter pass: w[i] -= (k * w[i-1]) >> 8
    li   r13, 1
filt_loop:
    slli r15, r13, 2
    add  r16, r20, r15
    lw   r17, 0(r16)
    lw   r18, -4(r16)
    mul  r18, r18, r19
    srai r18, r18, 8
    sub  r17, r17, r18
    sw   r17, 0(r16)
    addi r13, r13, 1
    blt  r13, r14, filt_loop
    addi r10, r10, 1
    blt  r10, r11, stage_loop
    addi r4, r4, 1
    blt  r4, r5, frame_loop
    halt
"""


SPECS = [
    ("adpcm", "telecom", "mibench", adpcm_source,
     "IMA ADPCM speech encoder"),
    ("crc32", "telecom", "mibench", crc32_source,
     "table-driven CRC-32 over a buffer"),
    ("fft", "telecom", "mibench", fft_source,
     "iterative radix-2 complex FFT"),
    ("gsm", "telecom", "mibench", gsm_source,
     "autocorrelation and lattice filtering per speech frame"),
]
