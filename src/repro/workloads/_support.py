"""Shared utilities for the workload corpus.

Workloads are real algorithm kernels hand-written in SRISC assembly with
deterministic, seeded input data baked into their ``.data`` sections —
the stand-in for the paper's proprietary MiBench/MediaBench binaries
(see DESIGN.md, substitution table).
"""


class Lcg:
    """Deterministic 32-bit linear congruential generator for input data.

    Numerical Recipes constants; every workload seeds its own instance so
    inputs are reproducible and independent.
    """

    def __init__(self, seed):
        self.state = seed & 0xFFFFFFFF

    def next_u32(self):
        self.state = (self.state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.state

    def below(self, bound):
        """Uniform integer in [0, bound)."""
        return self.next_u32() % bound

    def words(self, count, bound=None):
        if bound is None:
            return [self.next_u32() & 0x7FFFFFFF for _ in range(count)]
        return [self.below(bound) for _ in range(count)]

    def bytes(self, count, bound=256):
        return [self.below(bound) for _ in range(count)]

    def doubles(self, count, low=-1.0, high=1.0):
        span = high - low
        return [low + span * (self.next_u32() / 2 ** 32)
                for _ in range(count)]


def word_lines(label, values, per_line=12):
    """Render ``label: .word v, v, ...`` wrapped for readability."""
    lines = [f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[start:start + per_line])
        lines.append(f"    .word {chunk}")
    if not values:
        lines.append("    .word 0")
    return "\n".join(lines)


def byte_lines(label, values, per_line=24):
    lines = [f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[start:start + per_line])
        lines.append(f"    .byte {chunk}")
    if not values:
        lines.append("    .byte 0")
    return "\n".join(lines)


def double_lines(label, values, per_line=6):
    lines = ["    .align 8", f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = ", ".join(f"{v!r}" for v in values[start:start + per_line])
        lines.append(f"    .double {chunk}")
    if not values:
        lines.append("    .double 0.0")
    return "\n".join(lines)
