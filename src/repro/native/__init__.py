"""Shared native-code toolchain for the C-compiled fast paths."""

from repro.native.toolchain import (
    cache_dir,
    compile_cached,
    enabled,
    load_library,
    probe,
    reset,
)

__all__ = [
    "cache_dir",
    "compile_cached",
    "enabled",
    "load_library",
    "probe",
    "reset",
]
