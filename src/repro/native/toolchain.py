"""Shared native toolchain: cc probe, compile-once cache, loading.

Both native engines — the sweep's scheduling loop
(:mod:`repro.uarch.native`) and the functional-execution engine
(:mod:`repro.sim.native`) — need the same machinery: a ``REPRO_NATIVE``
gate, a C-compiler probe, and a content-addressed compile cache under
the repro cache dir.  This module is that machinery, factored out so
there is a single gate, one compile cache, and one probe event per
process no matter how many engines are in play.

Everything degrades gracefully: no C compiler, a failed compile, or
``REPRO_NATIVE=off`` means :func:`load_library` returns ``None`` and
callers keep using their pure-Python paths.  Semantics are identical
either way; only the wall time differs.
"""

import contextlib
import ctypes
import hashlib
import os
import subprocess
import tempfile

from repro.obs.logging import get_logger

_LOG = get_logger("repro.native.toolchain")

_FALSY = {"0", "off", "false", "no", "disabled"}

#: Compiler invocation shared by every engine.
CC = ("cc", "-O2", "-shared", "-fPIC")

#: None = not yet probed this process, else bool (cc works).
_PROBE = None

#: One-line library whose successful compile+dlopen proves the
#: toolchain works; cached like any engine source, so later processes
#: just stat the ``.so``.
_PROBE_SOURCE = "int repro_native_probe(void) { return 42; }\n"


def enabled():
    """Whether native codegen is allowed (the single REPRO_NATIVE gate)."""
    return os.environ.get("REPRO_NATIVE", "").strip().lower() not in _FALSY


def cache_dir():
    from repro.exec.store import default_cache_dir
    return os.path.join(default_cache_dir(), "native")


def compile_cached(source, stem):
    """Build (or reuse) the content-addressed shared library; its path.

    Keyed by source hash so any edit to the C source rebuilds cleanly;
    concurrent builders race benignly through a temp-file rename.
    """
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    directory = cache_dir()
    library = os.path.join(directory, f"{stem}-{digest}.so")
    if os.path.exists(library):
        return library
    os.makedirs(directory, exist_ok=True)
    fd, source_path = tempfile.mkstemp(suffix=".c", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(source)
        staged = source_path[:-2] + ".so"
        subprocess.run([*CC, "-o", staged, source_path, "-lm"],
                       check=True, capture_output=True, timeout=120)
        os.replace(staged, library)
    finally:
        for leftover in (source_path, source_path[:-2] + ".so"):
            if os.path.exists(leftover):
                with contextlib.suppress(OSError):
                    os.remove(leftover)
    return library


def probe():
    """Whether this host can compile and load native code at all.

    The outcome is cached for the process and logged exactly once, so
    a missing compiler costs one failed ``cc`` invocation total — not
    one per engine.
    """
    global _PROBE
    if _PROBE is None:
        try:
            ctypes.CDLL(compile_cached(_PROBE_SOURCE, "probe"))
        except (OSError, subprocess.SubprocessError, ValueError) as exc:
            _LOG.warning("native.probe", available=False, error=str(exc))
            _PROBE = False
        else:
            _LOG.info("native.probe", available=True)
            _PROBE = True
    return _PROBE


def load_library(source, stem):
    """Compile-or-reuse ``source`` and dlopen it; ``None`` when gated
    off or the toolchain is unavailable (the graceful-fallback
    contract shared by every native engine)."""
    if not enabled() or not probe():
        return None
    try:
        return ctypes.CDLL(compile_cached(source, stem))
    except (OSError, subprocess.SubprocessError, ValueError) as exc:
        _LOG.warning("native.unavailable", stem=stem, error=str(exc))
        return None


def reset():
    """Forget the probe result (tests toggling REPRO_NATIVE / cc)."""
    global _PROBE
    _PROBE = None
