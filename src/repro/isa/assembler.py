"""Two-pass assembler for SRISC.

Accepted source structure::

        .data
    arr:    .word 5, 3, 8, 1
    tab:    .space 256
    pi:     .double 3.14159
        .text
    main:
        la   r4, arr
        li   r5, 0
    loop:
        lw   r6, 0(r4)
        add  r5, r5, r6
        addi r4, r4, 4
        bne  r4, r7, loop
        halt

Comments start with ``#`` or ``;``.  Labels may share a line with an
instruction or directive.  Pseudo-ops (``li``, ``la``, ``mv``, ``nop``,
``not``, ``neg``, ``bgt``, ``ble``, ``bgtu``, ``bleu``, ``beqz``, ``bnez``,
``bltz``, ``bgez``, ``bgtz``, ``blez``, ``b``) expand to real opcodes, so
the profiled instruction mix reflects what the machine executes.
"""

import struct

from repro.isa.instructions import Instruction, OPCODES
from repro.isa.registers import REG_RA, ZERO_REG, parse_reg


class AssemblerError(Exception):
    """Raised with file/line context for any malformed source."""


#: Base virtual address of the text segment (instruction ``i`` lives at
#: ``TEXT_BASE + 4 * i``).
TEXT_BASE = 0x1000

#: Base virtual address of the data segment.
DATA_BASE = 0x100000

#: Initial stack pointer (stacks grow down).
STACK_TOP = 0x400000


def _parse_int(token):
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal: {token!r}") from None


def _parse_float(token):
    try:
        return float(token)
    except ValueError:
        raise AssemblerError(f"bad float literal: {token!r}") from None


def _split_operands(rest):
    return [tok.strip() for tok in rest.split(",")] if rest.strip() else []


def _parse_mem_operand(token):
    """Parse ``imm(reg)`` into ``(imm, reg_index)``."""
    token = token.strip()
    if not token.endswith(")") or "(" not in token:
        raise AssemblerError(f"bad memory operand: {token!r}")
    imm_part, reg_part = token[:-1].split("(", 1)
    imm = _parse_int(imm_part) if imm_part.strip() else 0
    return imm, parse_reg(reg_part)


def _li_sequence(rd, value):
    """Expand ``li rd, value`` into real instructions.

    Values representable in 16 signed bits take one ``addi``; anything else
    takes the classic ``lui``/``ori`` pair over the 32-bit two's-complement
    encoding.
    """
    if -32768 <= value <= 32767:
        return [Instruction("addi", rd=rd, rs1=ZERO_REG, imm=value)]
    encoded = value & 0xFFFFFFFF
    hi, lo = encoded >> 16, encoded & 0xFFFF
    seq = [Instruction("lui", rd=rd, imm=hi)]
    if lo:
        seq.append(Instruction("ori", rd=rd, rs1=rd, imm=lo))
    return seq


class _PendingLoadAddress:
    """Placeholder for ``la``: patched once data symbols are known."""

    __slots__ = ("rd", "symbol", "line")

    def __init__(self, rd, symbol, line):
        self.rd = rd
        self.symbol = symbol
        self.line = line


class _DataSection:
    """Accumulates the initial data image and symbol addresses."""

    def __init__(self, base):
        self.base = base
        self.image = bytearray()
        self.symbols = {}

    @property
    def cursor(self):
        return self.base + len(self.image)

    def define(self, label):
        if label in self.symbols:
            raise AssemblerError(f"duplicate data label {label!r}")
        self.symbols[label] = self.cursor

    def align(self, boundary):
        while len(self.image) % boundary:
            self.image.append(0)

    def emit_words(self, values):
        self.align(4)
        for value in values:
            self.image += struct.pack("<I", value & 0xFFFFFFFF)

    def emit_bytes(self, values):
        for value in values:
            self.image.append(value & 0xFF)

    def emit_doubles(self, values):
        self.align(8)
        for value in values:
            self.image += struct.pack("<d", value)

    def emit_space(self, count):
        self.image += bytes(count)


def assemble(source, name="<asm>"):
    """Assemble SRISC source text into a :class:`repro.isa.Program`."""
    from repro.isa.program import Program

    data = _DataSection(DATA_BASE)
    instructions = []
    labels = {}
    branch_fixups = []  # (instr_index, symbol, line)
    word_fixups = []  # (byte_offset, symbol, line)
    section = ".text"

    def define_label(label):
        if section == ".data":
            data.define(label)
        else:
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}")
            labels[label] = len(instructions)

    def process_line(line, lineno):
        nonlocal section
        while line:
            head, _, rest = line.partition(" ")
            if head.endswith(":"):
                define_label(head[:-1])
                line = rest.strip()
                continue
            break
        if not line:
            return

        if line.startswith("."):
            directive, _, rest = line.partition(" ")
            if directive in (".text", ".data"):
                section = directive
            elif directive == ".align":
                data.align(_parse_int(rest.strip()))
            elif directive == ".space":
                data.emit_space(_parse_int(rest.strip()))
            elif directive == ".word":
                tokens = _split_operands(rest)
                data.align(4)
                for token in tokens:
                    if token and (token[0].isalpha() or token[0] == "_"):
                        word_fixups.append((len(data.image), token, lineno))
                        data.emit_words([0])
                    else:
                        data.emit_words([_parse_int(token)])
            elif directive == ".byte":
                data.emit_bytes([_parse_int(t) for t in _split_operands(rest)])
            elif directive in (".double", ".float"):
                data.emit_doubles([_parse_float(t) for t in _split_operands(rest)])
            else:
                raise AssemblerError(f"unknown directive {directive}")
            return

        if section != ".text":
            raise AssemblerError("instruction outside .text")
        instructions.extend(
            _parse_instruction(line, branch_fixups, len(instructions), lineno))

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        try:
            process_line(line, lineno)
        except AssemblerError as exc:
            raise AssemblerError(f"{name}:{lineno}: {exc}") from None
        except ValueError as exc:
            raise AssemblerError(f"{name}:{lineno}: {exc}") from None

    # Patch `la` placeholders now that data symbols are known.
    for index, instr in enumerate(instructions):
        if isinstance(instr, _PendingLoadAddress):
            address = data.symbols.get(instr.symbol)
            if address is None:
                raise AssemblerError(
                    f"{name}:{instr.line}: undefined data symbol "
                    f"{instr.symbol!r} in `la`")
            hi, lo = address >> 16, address & 0xFFFF
            instructions[index] = Instruction("lui", rd=instr.rd, imm=hi)
            instructions[index + 1] = Instruction(
                "ori", rd=instr.rd, rs1=instr.rd, imm=lo)

    for index, symbol, lineno in branch_fixups:
        target = labels.get(symbol)
        if target is None:
            target_addr = data.symbols.get(symbol)
            if target_addr is None:
                raise AssemblerError(
                    f"{name}:{lineno}: undefined label {symbol!r}")
            raise AssemblerError(
                f"{name}:{lineno}: branch to data symbol {symbol!r}")
        instructions[index].target = target

    for offset, symbol, lineno in word_fixups:
        address = data.symbols.get(symbol)
        if address is None and symbol in labels:
            address = TEXT_BASE + 4 * labels[symbol]
        if address is None:
            raise AssemblerError(f"{name}:{lineno}: undefined symbol {symbol!r}")
        data.image[offset:offset + 4] = struct.pack("<I", address)

    return Program(instructions=instructions, labels=labels,
                   data_image=bytes(data.image), data_symbols=dict(data.symbols),
                   name=name)


_BRANCH_SWAPS = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}
_ZERO_BRANCHES = {
    "beqz": ("beq", False), "bnez": ("bne", False),
    "bltz": ("blt", False), "bgez": ("bge", False),
    "bgtz": ("blt", True), "blez": ("bge", True),
}


def _parse_instruction(line, branch_fixups, next_index, lineno=None):
    """Parse one statement; returns the (possibly expanded) instructions.

    ``lineno`` is the source line, threaded into branch fixups and
    ``la`` placeholders so late (fixup-time) errors still point at the
    offending source line.
    """
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    ops = _split_operands(rest)

    def need(count):
        if len(ops) != count:
            raise AssemblerError(
                f"{mnemonic} expects {count} operands, got {len(ops)}")

    # --- pseudo-ops ---------------------------------------------------
    if mnemonic == "nop":
        return [Instruction("add", rd=ZERO_REG, rs1=ZERO_REG, rs2=ZERO_REG)]
    if mnemonic == "li":
        need(2)
        return _li_sequence(parse_reg(ops[0]), _parse_int(ops[1]))
    if mnemonic == "la":
        need(2)
        pending = _PendingLoadAddress(parse_reg(ops[0]), ops[1], lineno)
        # Reserve two slots; both get patched once addresses are known.
        return [pending, Instruction("add", rd=ZERO_REG, rs1=ZERO_REG,
                                     rs2=ZERO_REG)]
    if mnemonic == "mv":
        need(2)
        return [Instruction("add", rd=parse_reg(ops[0]), rs1=parse_reg(ops[1]),
                            rs2=ZERO_REG)]
    if mnemonic == "not":
        need(2)
        return [Instruction("nor", rd=parse_reg(ops[0]), rs1=parse_reg(ops[1]),
                            rs2=ZERO_REG)]
    if mnemonic == "neg":
        need(2)
        return [Instruction("sub", rd=parse_reg(ops[0]), rs1=ZERO_REG,
                            rs2=parse_reg(ops[1]))]
    if mnemonic == "b":
        need(1)
        instr = Instruction("j")
        branch_fixups.append((next_index, ops[0], lineno))
        return [instr]
    if mnemonic in _BRANCH_SWAPS:
        need(3)
        instr = Instruction(_BRANCH_SWAPS[mnemonic], rs1=parse_reg(ops[1]),
                            rs2=parse_reg(ops[0]))
        branch_fixups.append((next_index, ops[2], lineno))
        return [instr]
    if mnemonic in _ZERO_BRANCHES:
        need(2)
        opcode, zero_first = _ZERO_BRANCHES[mnemonic]
        reg = parse_reg(ops[0])
        rs1, rs2 = (ZERO_REG, reg) if zero_first else (reg, ZERO_REG)
        instr = Instruction(opcode, rs1=rs1, rs2=rs2)
        branch_fixups.append((next_index, ops[1], lineno))
        return [instr]

    # --- real opcodes -------------------------------------------------
    spec = OPCODES.get(mnemonic)
    if spec is None:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
    fmt = spec.fmt

    if fmt in ("r3", "f3"):
        need(3)
        return [Instruction(mnemonic, rd=parse_reg(ops[0]),
                            rs1=parse_reg(ops[1]), rs2=parse_reg(ops[2]))]
    if fmt == "r2i":
        need(3)
        return [Instruction(mnemonic, rd=parse_reg(ops[0]),
                            rs1=parse_reg(ops[1]), imm=_parse_int(ops[2]))]
    if fmt == "ri":
        need(2)
        return [Instruction(mnemonic, rd=parse_reg(ops[0]),
                            imm=_parse_int(ops[1]))]
    if fmt in ("f2", "fcvt_wf", "fcvt_fw"):
        need(2)
        return [Instruction(mnemonic, rd=parse_reg(ops[0]),
                            rs1=parse_reg(ops[1]))]
    if fmt == "fcmp":
        need(3)
        return [Instruction(mnemonic, rd=parse_reg(ops[0]),
                            rs1=parse_reg(ops[1]), rs2=parse_reg(ops[2]))]
    if fmt == "fli":
        need(2)
        return [Instruction(mnemonic, rd=parse_reg(ops[0]),
                            imm=_parse_float(ops[1]))]
    if fmt in ("load", "fload"):
        need(2)
        imm, base = _parse_mem_operand(ops[1])
        return [Instruction(mnemonic, rd=parse_reg(ops[0]), rs1=base, imm=imm)]
    if fmt in ("store", "fstore"):
        need(2)
        imm, base = _parse_mem_operand(ops[1])
        return [Instruction(mnemonic, rs2=parse_reg(ops[0]), rs1=base, imm=imm)]
    if fmt == "br":
        need(3)
        instr = Instruction(mnemonic, rs1=parse_reg(ops[0]),
                            rs2=parse_reg(ops[1]))
        branch_fixups.append((next_index, ops[2], lineno))
        return [instr]
    if fmt == "j":
        need(1)
        instr = Instruction(mnemonic)
        branch_fixups.append((next_index, ops[0], lineno))
        return [instr]
    if fmt == "jal":
        need(1)
        instr = Instruction(mnemonic, rd=REG_RA)
        branch_fixups.append((next_index, ops[0], lineno))
        return [instr]
    if fmt == "jr":
        need(1)
        return [Instruction(mnemonic, rs1=parse_reg(ops[0]))]
    if fmt == "jalr":
        need(2)
        return [Instruction(mnemonic, rd=parse_reg(ops[0]),
                            rs1=parse_reg(ops[1]))]
    if fmt == "none":
        need(0)
        return [Instruction(mnemonic)]
    raise AssemblerError(f"unhandled format {fmt!r} for {mnemonic!r}")
