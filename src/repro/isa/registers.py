"""Register file naming for SRISC.

A single flat register index space is used throughout the toolchain so that
dependence tracking needs only one table:

* indices ``0 .. 31``  — integer registers ``r0`` .. ``r31`` (``r0`` is a
  hardwired zero, like MIPS/RISC-V);
* indices ``32 .. 63`` — floating-point registers ``f0`` .. ``f31``.
"""

NUM_INT_REGS = 32
NUM_FP_REGS = 32
FP_REG_BASE = NUM_INT_REGS
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Flat index of the hardwired-zero integer register.
ZERO_REG = 0

# Conventional roles used by hand-written workloads and the synthesizer.
# These are conventions only; the hardware treats all registers (except r0)
# identically.
REG_SP = 29  # stack pointer
REG_RA = 31  # return address (written by jal)


def int_reg(number):
    """Return the flat register index for integer register ``r<number>``."""
    if not 0 <= number < NUM_INT_REGS:
        raise ValueError(f"integer register out of range: r{number}")
    return number


def fp_reg(number):
    """Return the flat register index for floating-point register ``f<number>``."""
    if not 0 <= number < NUM_FP_REGS:
        raise ValueError(f"fp register out of range: f{number}")
    return FP_REG_BASE + number


def is_fp_reg(index):
    """True if the flat register index names a floating-point register."""
    return index >= FP_REG_BASE


def reg_name(index):
    """Render a flat register index as its assembly name (``r7`` / ``f3``)."""
    if not 0 <= index < NUM_REGS:
        raise ValueError(f"register index out of range: {index}")
    if index < FP_REG_BASE:
        return f"r{index}"
    return f"f{index - FP_REG_BASE}"


def parse_reg(token):
    """Parse an assembly register token (``r12`` or ``f4``) to a flat index.

    Raises ``ValueError`` for anything else.
    """
    token = token.strip().lower()
    if len(token) < 2 or token[0] not in "rf" or not token[1:].isdigit():
        raise ValueError(f"not a register: {token!r}")
    number = int(token[1:])
    if token[0] == "r":
        return int_reg(number)
    return fp_reg(number)
