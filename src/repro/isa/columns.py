"""Shared columnar (struct-of-arrays) view of a :class:`Program`.

Every downstream consumer of a program's static facts — the functional
simulator's decode tables, the profiler's per-instruction lookups, the
conformance lint's body walks, ``PipelineModel.run``'s per-pc decode
tuples, and the sweep engine's static tables — used to rebuild its own
per-instruction arrays by dereferencing :class:`Instruction` objects,
once per *call*.  :class:`ProgramColumns` centralizes that work: one
pass over the instruction objects per program per process, producing
numpy columns (and the plain-list mirrors the pure-Python hot loops
index fastest), cached on the program object.

The contract is load-bearing for performance and is enforced by a
regression test: after the columns exist, no hot path touches
``program.instructions[i]`` attributes again, and
:data:`BUILD_COUNTS` lets tests assert the tables are built at most
once per program per process.

Consumers that derive further per-program tables from the columns (the
functional simulator's opcode-id decode, the sweep's scheduling
tables) park them in :attr:`ProgramColumns.derived` so they share the
same build-once lifetime without this module importing simulator
internals.
"""

import hashlib

import numpy as np

from repro.isa.instructions import IClass

#: Functional-unit pools in scheduling-state order, mirrored by the
#: pipeline model and the sweep kernels.
POOL_NAMES = ("ialu", "imul", "falu", "fmul", "mem")

#: Instruction class -> functional-unit pool index.
POOL_OF_CLASS = {
    int(IClass.IALU): 0, int(IClass.IMUL): 1, int(IClass.IDIV): 1,
    int(IClass.FALU): 2, int(IClass.FMUL): 3, int(IClass.FDIV): 3,
    int(IClass.LOAD): 4, int(IClass.STORE): 4,
    int(IClass.BRANCH): 0, int(IClass.JUMP): 0, int(IClass.OTHER): 0,
}

#: program name -> number of ProgramColumns builds this process.  Keyed
#: by ``id(program)`` would be unstable across gc; tests key on names,
#: which the corpus keeps unique.
BUILD_COUNTS = {}


def total_builds():
    """Total column builds this process (regression-test hook)."""
    return sum(BUILD_COUNTS.values())


class ProgramColumns:
    """Struct-of-arrays decode/block tables for one program."""

    __slots__ = (
        "n", "iclass", "dest", "src1", "src2", "pc_addresses",
        "is_load", "is_store", "is_mem", "is_cond", "is_jump",
        "iclass_list", "dest_list", "srcs_list", "pool_list",
        "opcode_list", "imm_list", "target_list",
        "block_of", "is_block_start", "block_bounds", "block_size",
        "structure_ok", "derived", "_fingerprint",
    )

    def __init__(self, program):
        BUILD_COUNTS[program.name] = BUILD_COUNTS.get(program.name, 0) + 1
        instructions = program.instructions
        n = self.n = len(instructions)
        iclass = self.iclass = np.empty(n, dtype=np.int16)
        dest = self.dest = np.full(n, -1, dtype=np.int16)
        src1 = self.src1 = np.full(n, -1, dtype=np.int16)
        src2 = self.src2 = np.full(n, -1, dtype=np.int16)
        is_cond = self.is_cond = np.zeros(n, dtype=bool)
        srcs_list = self.srcs_list = []
        opcode_list = self.opcode_list = []
        imm_list = self.imm_list = []
        target_list = self.target_list = []
        # The single per-instruction object walk in the process.
        for index, instr in enumerate(instructions):
            iclass[index] = instr.iclass
            if instr.rd is not None:
                dest[index] = instr.rd
            srcs = instr.srcs
            srcs_list.append(srcs)
            opcode_list.append(instr.opcode)
            imm_list.append(instr.imm)
            target_list.append(instr.target)
            if len(srcs) >= 1:
                src1[index] = srcs[0]
                if len(srcs) >= 2:
                    src2[index] = srcs[1]
            if instr.is_cond_branch:
                is_cond[index] = True
        self.pc_addresses = (program.text_base
                             + 4 * np.arange(n, dtype=np.int64))
        self.is_load = iclass == int(IClass.LOAD)
        self.is_store = iclass == int(IClass.STORE)
        self.is_mem = self.is_load | self.is_store
        self.is_jump = iclass == int(IClass.JUMP)
        self.iclass_list = iclass.tolist()
        self.dest_list = dest.tolist()
        pool_of = POOL_OF_CLASS
        self.pool_list = [pool_of[klass] for klass in self.iclass_list]

        blocks = program.basic_blocks()
        self.block_bounds = [(block.start, block.end) for block in blocks]
        self.block_size = np.array(
            [end - start for start, end in self.block_bounds],
            dtype=np.int64)
        self.is_block_start = np.zeros(n, dtype=bool)
        self.block_of = np.zeros(n, dtype=np.int64)
        ok = bool(n)
        covered = 0
        for bid, (start, end) in enumerate(self.block_bounds):
            if blocks[bid].bid != bid or end <= start:
                ok = False
                break
            self.is_block_start[start] = True
            self.block_of[start:end] = bid
            covered += end - start
        if ok and covered == n:
            # Control transfers (cond branches, BRANCH, JUMP) may only
            # sit in a block's last slot; the sweep kernels assume it.
            is_ctrl = (is_cond | (iclass == int(IClass.BRANCH))
                       | (iclass == int(IClass.JUMP)))
            is_last = np.zeros(n, dtype=bool)
            for _, end in self.block_bounds:
                is_last[end - 1] = True
            self.structure_ok = not bool(np.any(is_ctrl & ~is_last))
        else:
            self.structure_ok = False
        self.derived = {}
        self._fingerprint = None

    def fingerprint(self):
        """Content hash over everything timing kernels/banks depend on."""
        cached = self._fingerprint
        if cached is None:
            hasher = hashlib.sha256()
            hasher.update(self.pc_addresses.tobytes())
            hasher.update(self.iclass.astype(np.int64).tobytes())
            hasher.update(np.asarray(self.dest_list,
                                     dtype=np.int64).tobytes())
            hasher.update(repr(self.srcs_list).encode())
            hasher.update(repr(self.block_bounds).encode())
            cached = self._fingerprint = hasher.hexdigest()
        return cached

    def mix_matrix(self):
        """(n_blocks, IClass.COUNT) static per-block class histogram."""
        cached = self.derived.get("mix_matrix")
        if cached is None:
            n_blocks = len(self.block_bounds)
            flat = np.bincount(
                self.block_of * IClass.COUNT + self.iclass,
                minlength=n_blocks * IClass.COUNT)
            cached = flat.reshape(n_blocks, IClass.COUNT)
            self.derived["mix_matrix"] = cached
        return cached


def columns_for(program):
    """The (cached) columnar view of ``program``."""
    columns = getattr(program, "_columns", None)
    if columns is None:
        columns = program._columns = ProgramColumns(program)
    return columns
