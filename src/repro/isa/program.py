"""Static program representation and control-flow analysis for SRISC."""

from repro.isa.assembler import DATA_BASE, STACK_TOP, TEXT_BASE
from repro.isa.instructions import IClass


class BasicBlock:
    """A maximal straight-line instruction sequence.

    ``start`` is inclusive and ``end`` exclusive (instruction indices).
    """

    __slots__ = ("bid", "start", "end")

    def __init__(self, bid, start, end):
        self.bid = bid
        self.start = start
        self.end = end

    @property
    def size(self):
        return self.end - self.start

    def __repr__(self):
        return f"BasicBlock(bid={self.bid}, start={self.start}, end={self.end})"

    def __eq__(self, other):
        return (isinstance(other, BasicBlock)
                and (self.bid, self.start, self.end)
                == (other.bid, other.start, other.end))

    def __hash__(self):
        return hash((self.bid, self.start, self.end))


class Program:
    """An assembled SRISC program: instructions plus the initial data image."""

    text_base = TEXT_BASE
    data_base = DATA_BASE
    stack_top = STACK_TOP

    def __init__(self, instructions, labels=None, data_image=b"",
                 data_symbols=None, name="<program>", entry=0):
        self.instructions = list(instructions)
        self.labels = dict(labels or {})
        self.data_image = bytes(data_image)
        self.data_symbols = dict(data_symbols or {})
        self.name = name
        self.entry = entry
        self._blocks = None
        self._block_of = None

    def __len__(self):
        return len(self.instructions)

    def pc_address(self, index):
        """Virtual address of instruction ``index`` (for I-cache modelling)."""
        return self.text_base + 4 * index

    # ------------------------------------------------------------------
    # Control-flow analysis
    # ------------------------------------------------------------------
    def basic_blocks(self):
        """Return the program's basic blocks (computed once, then cached).

        Leaders are the entry point, every branch/jump target, and every
        instruction following a control transfer.  ``jr``/``jalr`` have no
        static target; only their successor becomes a leader.
        """
        if self._blocks is None:
            self._discover_blocks()
        return self._blocks

    def block_of(self, index):
        """Map an instruction index to its basic block id.

        Raises :class:`IndexError` with a descriptive message for an
        empty program or an out-of-range index (e.g. a branch target past
        the end — the lint pass reports those as ``SR102``).
        """
        if self._block_of is None:
            self._discover_blocks()
        if not self._block_of:
            raise IndexError(
                f"program {self.name!r} has no instructions, so no blocks")
        if not 0 <= index < len(self._block_of):
            raise IndexError(
                f"instruction index {index} out of range for program "
                f"{self.name!r} with {len(self._block_of)} instructions")
        return self._block_of[index]

    def _discover_blocks(self):
        n = len(self.instructions)
        leaders = {0} if n else set()
        for i, instr in enumerate(self.instructions):
            if instr.is_ctrl or instr.opcode == "halt":
                if i + 1 < n:
                    leaders.add(i + 1)
                # Out-of-range targets (a malformed program; see lint
                # code SR102) contribute no leader: the partition must
                # stay valid so analyses can still run.
                if instr.target is not None and 0 <= instr.target < n:
                    leaders.add(instr.target)
        ordered = sorted(leaders)
        blocks = []
        block_of = [0] * n
        for bid, start in enumerate(ordered):
            end = ordered[bid + 1] if bid + 1 < len(ordered) else n
            blocks.append(BasicBlock(bid, start, end))
            for i in range(start, end):
                block_of[i] = bid
        self._blocks = blocks
        self._block_of = block_of

    def static_mix(self):
        """Histogram of static instruction counts per instruction class."""
        counts = [0] * IClass.COUNT
        for instr in self.instructions:
            counts[instr.iclass] += 1
        return counts

    def __repr__(self):
        return (f"<Program {self.name!r}: {len(self.instructions)} instrs, "
                f"{len(self.data_image)} data bytes>")


def disassemble(program):
    """Render a program back to assembly text (labels re-derived)."""
    index_to_label = {index: label for label, index in program.labels.items()}
    # Ensure every branch target has a printable label.
    for instr in program.instructions:
        if instr.target is not None and instr.target not in index_to_label:
            index_to_label[instr.target] = f"L{instr.target}"
    lines = [".text"]
    for i, instr in enumerate(program.instructions):
        if i in index_to_label:
            lines.append(f"{index_to_label[i]}:")
        lines.append(f"    {instr.render(index_to_label)}")
    return "\n".join(lines) + "\n"
