"""SRISC: the small RISC instruction set used as the paper's Alpha stand-in.

The performance-cloning technique consumes a dynamic instruction stream
(opcode classes, register dependences, memory addresses, branch outcomes).
The paper obtained that stream from Alpha binaries on SimpleScalar; this
package provides an equivalent substrate we fully control: an instruction
set, a two-pass assembler, and static program/CFG analysis.
"""

from repro.isa.instructions import (
    ICLASS_NAMES,
    IClass,
    Instruction,
    OPCODES,
    OpcodeSpec,
)
from repro.isa.registers import (
    FP_REG_BASE,
    NUM_INT_REGS,
    NUM_FP_REGS,
    ZERO_REG,
    fp_reg,
    int_reg,
    reg_name,
)
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.columns import POOL_NAMES, POOL_OF_CLASS, ProgramColumns, columns_for
from repro.isa.program import BasicBlock, Program, disassemble

__all__ = [
    "AssemblerError",
    "BasicBlock",
    "POOL_NAMES",
    "POOL_OF_CLASS",
    "ProgramColumns",
    "columns_for",
    "FP_REG_BASE",
    "ICLASS_NAMES",
    "IClass",
    "Instruction",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "OPCODES",
    "OpcodeSpec",
    "Program",
    "ZERO_REG",
    "assemble",
    "disassemble",
    "fp_reg",
    "int_reg",
    "reg_name",
]
